#pragma once
// Shared rig setup for the figure-regeneration benches. Parameters follow
// the fabricated prototype: 9-output electrode array, 450 Hz lock-in
// output, 0.08 uL/min nominal flow, PBS-suspended 3.58/7.8 um beads and
// blood cells.

#include <cstdio>

#include "core/controller.h"
#include "core/encryptor.h"
#include "sim/acquisition.h"

namespace medsen::bench {

inline sim::ChannelConfig default_channel(bool losses = false) {
  sim::ChannelConfig channel;
  channel.loss.enabled = losses;
  return channel;
}

inline sim::AcquisitionConfig quiet_acquisition(
    std::vector<double> carriers = {5.0e5, 2.0e6}) {
  sim::AcquisitionConfig config;
  config.carriers_hz = std::move(carriers);
  config.noise_sigma = 5e-5;
  config.drift.slow_amplitude = 0.002;
  config.drift.random_walk_sigma = 1e-6;
  return config;
}

inline core::KeyParams default_key_params(std::size_t electrodes = 9) {
  core::KeyParams params;
  params.num_electrodes = electrodes;
  params.period_s = 4.0;
  params.gain_min = 0.8;
  params.gain_max = 1.6;
  return params;
}

/// A fixed control trace: one segment, given mask, unit gains, 0.08 uL/min.
inline std::vector<sim::ControlSegment> fixed_control(
    sim::ElectrodeMask mask, double flow_ul_min = 0.08) {
  sim::ControlSegment seg;
  seg.t_start_s = 0.0;
  seg.active_mask = mask;
  seg.flow_ul_min = flow_ul_min;
  return {seg};
}

inline void header(const char* figure, const char* claim) {
  std::printf("== %s ==\n", figure);
  std::printf("paper: %s\n", claim);
}

}  // namespace medsen::bench
