#pragma once
// Shared rig setup for the figure-regeneration benches. Parameters follow
// the fabricated prototype: 9-output electrode array, 450 Hz lock-in
// output, 0.08 uL/min nominal flow, PBS-suspended 3.58/7.8 um beads and
// blood cells.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/controller.h"
#include "core/encryptor.h"
#include "sim/acquisition.h"

namespace medsen::bench {

inline sim::ChannelConfig default_channel(bool losses = false) {
  sim::ChannelConfig channel;
  channel.loss.enabled = losses;
  return channel;
}

inline sim::AcquisitionConfig quiet_acquisition(
    std::vector<double> carriers = {5.0e5, 2.0e6}) {
  sim::AcquisitionConfig config;
  config.carriers_hz = std::move(carriers);
  config.noise_sigma = 5e-5;
  config.drift.slow_amplitude = 0.002;
  config.drift.random_walk_sigma = 1e-6;
  return config;
}

inline core::KeyParams default_key_params(std::size_t electrodes = 9) {
  core::KeyParams params;
  params.num_electrodes = electrodes;
  params.period_s = 4.0;
  params.gain_min = 0.8;
  params.gain_max = 1.6;
  return params;
}

/// A fixed control trace: one segment, given mask, unit gains, 0.08 uL/min.
inline std::vector<sim::ControlSegment> fixed_control(
    sim::ElectrodeMask mask, double flow_ul_min = 0.08) {
  sim::ControlSegment seg;
  seg.t_start_s = 0.0;
  seg.active_mask = mask;
  seg.flow_ul_min = flow_ul_min;
  return {seg};
}

inline void header(const char* figure, const char* claim) {
  std::printf("== %s ==\n", figure);
  std::printf("paper: %s\n", claim);
}

/// Shared JSON counter artifact for the benches: every bench that wants
/// a machine-scrapable trajectory emits the same schema,
///
///   {"bench": "<name>", "counters": {"<dotted.key>": <value>, ...}}
///
/// into `BENCH_<name>.json` (insertion-ordered keys, so diffs across
/// runs line up). Nested groups are spelled with dotted keys
/// ("scaling.speedup") instead of nested objects — flat files make
/// regression floors one-line comparisons for CI.
class JsonCounters {
 public:
  explicit JsonCounters(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void set(const std::string& key, double value) {
    std::ostringstream formatted;
    formatted.precision(6);
    formatted << std::fixed << value;
    entries_.emplace_back(key, formatted.str());
  }
  void set_count(const std::string& key, std::uint64_t value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void set_text(const std::string& key, const std::string& value) {
    entries_.emplace_back(key, "\"" + value + "\"");
  }

  [[nodiscard]] std::string str() const {
    std::string json = "{\n  \"bench\": \"" + bench_name_ +
                       "\",\n  \"counters\": {\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      json += "    \"" + entries_[i].first + "\": " + entries_[i].second;
      json += i + 1 < entries_.size() ? ",\n" : "\n";
    }
    json += "  }\n}\n";
    return json;
  }

  /// Write `BENCH_<name>.json` (or an explicit path) and echo to stdout.
  void write(const std::string& path = "") const {
    const std::string target =
        path.empty() ? "BENCH_" + bench_name_ + ".json" : path;
    std::ofstream out(target);
    out << str();
    std::printf("json artifact: %s\n%s", target.c_str(), str().c_str());
  }

 private:
  std::string bench_name_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace medsen::bench
