// Threat-model evaluation (Section IV-A / VII-A): how well each
// eavesdropper strategy recovers the true cell count as the cipher's
// three concealment features are toggled:
//   E — random electrode subsets (peak multiplication)
//   G — random per-electrode gains (amplitude concealment)
//   S — random flow speeds (width concealment)
// The legitimate decryptor's error is printed alongside.

#include <cstdio>

#include "bench_common.h"
#include "cloud/analysis_service.h"
#include "core/attacker.h"
#include "core/decryptor.h"

using namespace medsen;

namespace {

struct CipherFeatures {
  const char* label;
  bool random_electrodes;
  bool random_gains;
  bool random_flow;
};

core::KeySchedule make_schedule(const CipherFeatures& features,
                                const core::KeyParams& params,
                                double duration_s, crypto::ChaChaRng& rng) {
  auto schedule = core::KeySchedule::generate(params, duration_s, rng);
  if (features.random_electrodes && features.random_gains &&
      features.random_flow)
    return schedule;
  // Neutralize disabled features.
  std::vector<core::TimedKey> keys = schedule.keys();
  std::uint8_t unit_gain = 0;
  double best = 1e9;
  for (std::uint32_t c = 0; c < params.gain_levels(); ++c) {
    const double err = std::abs(
        core::gain_value(params, static_cast<std::uint8_t>(c)) - 1.0);
    if (err < best) {
      best = err;
      unit_gain = static_cast<std::uint8_t>(c);
    }
  }
  for (auto& tk : keys) {
    if (!features.random_electrodes) tk.key.electrodes = 0b111;  // fixed
    if (!features.random_gains)
      tk.key.gain_codes.assign(params.num_electrodes, unit_gain);
    if (!features.random_flow) tk.key.flow_code = 8;  // fixed mid speed
  }
  return core::KeySchedule(params, std::move(keys));
}

}  // namespace

int main() {
  bench::header("Attack resistance",
                "each cipher feature defeats the attacker class it targets; "
                "only the key holder recovers the count");

  const auto design = sim::standard_design(9);
  const auto channel = bench::default_channel();
  const auto config = bench::quiet_acquisition({5.0e5});
  auto params = bench::default_key_params();
  params.min_active_electrodes = 2;

  const CipherFeatures variants[] = {
      {"none (plaintext-ish: fixed 3 electrodes)", false, false, false},
      {"E only (random electrodes)", true, false, false},
      {"E+G (.. + random gains)", true, true, false},
      {"E+G+S (full cipher)", true, true, true},
  };

  std::printf(
      "cipher,naive_err,division_err,amp_sig_err,width_sig_err,"
      "gap_cluster_err,periodic_train_err,decryptor_err\n");
  for (const auto& variant : variants) {
    crypto::ChaChaRng rng(321);
    const double duration = 45.0;
    const auto schedule = make_schedule(variant, params, duration, rng);

    core::SensorEncryptor encryptor(design, channel, config);
    sim::SampleSpec sample;
    sample.components = {{sim::ParticleType::kBead780, 130.0}};
    const auto enc = encryptor.acquire(sample, schedule, duration, 654);
    cloud::AnalysisService service;
    const auto report = service.analyze(enc.signals);
    const double truth = static_cast<double>(enc.truth.total_particles());

    const auto decoded =
        core::decrypt_report(report, schedule, design, duration);
    std::printf("%s", variant.label);
    for (auto& attacker : core::standard_attackers(design)) {
      const double err = core::recovery_error(
          attacker->estimate_count(report), truth);
      std::printf(",%.3f", err);
    }
    std::printf(",%.3f\n",
                core::recovery_error(decoded.estimated_count, truth));
  }
  std::printf("note: lower = attacker recovers the count. The decryptor "
              "column should stay near 0 in every row.\n");
  return 0;
}
