// Figure 8: representative encrypted cytometry data — output electrodes
// 1-3 switched on by the mux turn ONE passing blood cell into a FIVE-peak
// signature (lead electrode single + two doubles).

#include <cstdio>

#include "bench_common.h"
#include "cloud/analysis_service.h"

using namespace medsen;

int main() {
  bench::header("Figure 8",
                "electrodes 1-3 on -> five peaks for a single blood cell");

  auto design = sim::standard_design(9);
  design.lead_index = 0;  // Fig. 8 device: lead is the first output
  const auto channel = bench::default_channel();
  const auto config = bench::quiet_acquisition({2.0e6});
  const auto control = bench::fixed_control(0b111);  // outputs 1-3

  sim::SampleSpec sample;
  sample.components = {{sim::ParticleType::kBloodCell, 40.0}};

  std::printf("expected peaks/cell: %zu\n",
              design.peaks_per_particle(0b111));
  std::printf("run,true_cells,detected_peaks,peaks_per_cell\n");
  cloud::AnalysisService service;
  double total_ratio = 0.0;
  int runs = 0;
  for (std::uint64_t seed = 1; runs < 5 && seed < 500; ++seed) {
    const auto result =
        sim::acquire(sample, channel, design, config, control, 10.0, seed);
    if (result.truth.total_particles() == 0) continue;
    const auto report = service.analyze(result.signals);
    const double ratio =
        static_cast<double>(report.reference_peak_count(2.0e6)) /
        static_cast<double>(result.truth.total_particles());
    std::printf("%d,%zu,%zu,%.2f\n", runs, result.truth.total_particles(),
                report.reference_peak_count(2.0e6), ratio);
    total_ratio += ratio;
    ++runs;
  }
  std::printf("mean peaks/cell: %.2f (paper: 5)\n", total_ratio / runs);
  return 0;
}
