// Figure 7: voltage drop when a single cell passes through an electrode
// pair. Reproduces the single-peak waveform: one blood cell, one active
// output electrode pair, 2 MHz carrier, ~20 ms transit.

#include <cstdio>

#include "bench_common.h"
#include "cloud/analysis_service.h"
#include "dsp/detrend.h"
#include "dsp/peak_detect.h"

using namespace medsen;

int main() {
  bench::header("Figure 7",
                "a passing cell produces a single clean voltage-drop peak "
                "(~20 ms response)");

  // Single blood cell: tiny concentration over a short window, retried
  // across seeds until exactly one transit occurs.
  const auto design = sim::standard_design(9);
  const auto channel = bench::default_channel();
  const auto config = bench::quiet_acquisition({2.0e6});
  const auto control = bench::fixed_control(0b10);  // one non-lead output

  sim::SampleSpec sample;
  sample.components = {{sim::ParticleType::kBloodCell, 40.0}};
  sim::AcquisitionResult result;
  for (std::uint64_t seed = 1; seed < 200; ++seed) {
    result = sim::acquire(sample, channel, design, config, control, 8.0,
                          seed);
    if (result.truth.total_particles() == 1) break;
  }
  if (result.truth.total_particles() != 1) {
    std::printf("could not isolate a single transit\n");
    return 1;
  }

  const auto& trace = result.signals.channels.front();
  const auto detrended = dsp::detrend(trace.samples());
  const auto peaks =
      dsp::detect_peaks(detrended, trace.sample_rate(), trace.start_time());

  std::printf("true transits: 1, detected peaks: %zu (double peak from one "
              "flanked output electrode)\n",
              peaks.size());
  std::printf("peak_idx,time_s,depth_frac,width_ms\n");
  for (std::size_t i = 0; i < peaks.size(); ++i)
    std::printf("%zu,%.4f,%.5f,%.2f\n", i, peaks[i].time_s,
                peaks[i].amplitude, peaks[i].width_s * 1e3);

  // Waveform excerpt around the transit (what Fig. 7 plots).
  const double t0 = result.truth.transits.front().event.enter_time_s;
  std::printf("time_s,normalized_amplitude\n");
  const std::size_t i0 = trace.index_at(t0 - 0.05);
  const std::size_t i1 = trace.index_at(t0 + 0.10);
  for (std::size_t i = i0; i <= i1; ++i)
    std::printf("%.4f,%.6f\n", trace.time_at(i), detrended[i]);
  return 0;
}
