// Section VI-B key-length accounting (Eq. 2): reproduces the paper's
// worked example (20 K cells, 16 electrodes, 4-bit gains, 4-bit flow ->
// ~1 Mbit / 0.12 MB) and sweeps the parameters, contrasting the ideal
// per-cell scheme with the deployed periodic-rotation scheme.

#include <cstdio>

#include "core/key.h"
#include "crypto/keymath.h"

using namespace medsen;

int main() {
  std::printf("== Key size (Eq. 2) ==\n");
  std::printf("paper: 20K cells, 16 electrodes, 16 gains, 16 flow speeds "
              "-> 1 Mbit (0.12 MB)\n\n");

  crypto::KeySizeParams paper;
  paper.cells = 20000;
  paper.electrodes = 16;
  paper.gain_bits = 4;
  paper.flow_bits = 4;
  std::printf("worked example: %llu bits/cell, total %llu bits = %.3f MB\n",
              static_cast<unsigned long long>(crypto::key_bits_per_cell(paper)),
              static_cast<unsigned long long>(crypto::total_key_bits(paper)),
              static_cast<double>(crypto::total_key_bytes(paper)) / 1.0e6);

  std::printf("\ncells,electrodes,gain_bits,flow_bits,ideal_bits,ideal_MB\n");
  for (std::uint64_t cells : {1000ull, 20000ull, 100000ull}) {
    for (std::uint32_t electrodes : {9u, 16u}) {
      for (std::uint32_t bits : {2u, 4u, 6u}) {
        crypto::KeySizeParams p;
        p.cells = cells;
        p.electrodes = electrodes;
        p.gain_bits = bits;
        p.flow_bits = bits;
        std::printf("%llu,%u,%u,%u,%llu,%.4f\n",
                    static_cast<unsigned long long>(cells), electrodes, bits,
                    bits,
                    static_cast<unsigned long long>(crypto::total_key_bits(p)),
                    static_cast<double>(crypto::total_key_bytes(p)) / 1.0e6);
      }
    }
  }

  // Deployed scheme: periodic rotation instead of per-cell keys.
  std::printf("\nperiodic scheme (60 s acquisition):\n");
  std::printf("period_s,keys,total_bits,vs_ideal_20Kcells\n");
  crypto::KeySizeParams p = paper;
  for (double period : {0.5, 1.0, 2.0, 4.0}) {
    const auto bits = crypto::periodic_key_bits(p, 60.0, period);
    std::printf("%.1f,%.0f,%llu,%.6f\n", period, 60.0 / period,
                static_cast<unsigned long long>(bits),
                static_cast<double>(bits) /
                    static_cast<double>(crypto::total_key_bits(p)));
  }

  // Cross-check with the KeySchedule implementation.
  core::KeyParams kp;
  kp.num_electrodes = 9;
  kp.period_s = 2.0;
  crypto::ChaChaRng rng(1);
  const auto schedule = core::KeySchedule::generate(kp, 60.0, rng);
  std::printf("\nKeySchedule (9 electrodes, 2 s period, 60 s): %llu bits\n",
              static_cast<unsigned long long>(schedule.size_bits()));
  return 0;
}
