// Figure 12: measured vs expected bead counts for dilutions of 7.8 um
// synthetic beads (4 samples per concentration, first 5 minutes counted).

#include "count_calibration.h"

int main() {
  medsen::bench::header(
      "Figure 12",
      "7.8 um bead counts vary linearly with concentration; empirical "
      "counts fall below expected (losses)");
  medsen::bench::run_count_calibration(medsen::sim::ParticleType::kBead780,
                                       {100.0, 250.0, 500.0, 875.0});
  return 0;
}
