// Long-acquisition analysis (the paper's 3 h / ~600 MB experiment,
// scaled): the cloud cannot hold hours of multi-carrier signal in memory
// per request, so production analysis streams in chunks. This bench
// verifies the streaming analyzer finds the same peaks as batch analysis
// on a multi-minute signal and reports throughput and working-set bounds.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cloud/streaming.h"
#include "dsp/detrend.h"
#include "dsp/peak_detect.h"
#include "sim/signal_synth.h"

using namespace medsen;

namespace {

/// 450 Hz lock-in output times the 8-carrier multiplex: the rate the
/// hardware actually produces. real_time_factor = how many times faster
/// than the instrument one core churns through the samples.
constexpr double kHardwareSamplesPerSec = 450.0 * 8.0;

}  // namespace

int main(int argc, char** argv) {
  // `--smoke`: CI preset — only the 10-minute workload.
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  bench::header("Streaming analysis (600 MB-class workloads)",
                "peak analysis of hours-long acquisitions runs in bounded "
                "memory with batch-identical results");

  const double rate = 450.0;
  util::ThreadPool pool;  // pipelined mode: detrend k+1 overlaps detect k
  bench::JsonCounters json("streaming_analysis");
  const std::vector<double> workloads =
      smoke ? std::vector<double>{10.0} : std::vector<double>{10.0, 30.0, 60.0};
  std::printf(
      "duration_min,samples,batch_peaks,stream_peaks,pipe_peaks,batch_MB,"
      "working_MB,batch_Msamp_per_s,stream_Msamp_per_s,pipe_Msamp_per_s\n");
  for (double minutes : workloads) {
    const auto n = static_cast<std::size_t>(minutes * 60.0 * rate);
    crypto::ChaChaRng rng(static_cast<std::uint64_t>(minutes));
    // ~1 peak every 2 s.
    std::vector<double> depth(n, 0.0);
    const auto peaks_planted = static_cast<std::size_t>(minutes * 30.0);
    for (std::size_t k = 0; k < peaks_planted; ++k)
      sim::add_gaussian_pulse(
          depth, rate, 0.0,
          rng.uniform_double() * minutes * 60.0, 0.010,
          0.005 + 0.008 * rng.uniform_double());
    sim::DriftConfig drift;
    auto xs = sim::synth_baseline(n, rate, 0.0, drift, rng);
    for (std::size_t i = 0; i < n; ++i) xs[i] *= 1.0 - depth[i];
    sim::add_white_noise(xs, 1e-4, rng);

    const auto t0 = std::chrono::steady_clock::now();
    const auto batch =
        dsp::detect_peaks(dsp::detrend(xs), rate, 0.0);
    const double batch_s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();

    cloud::StreamingConfig config;
    cloud::StreamingAnalyzer analyzer(rate, config);
    const auto t1 = std::chrono::steady_clock::now();
    for (std::size_t pos = 0; pos < xs.size(); pos += 9000)
      analyzer.push(std::span<const double>(
          xs.data() + pos, std::min<std::size_t>(9000, xs.size() - pos)));
    const auto streamed = analyzer.finish();
    const double stream_s = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t1)
                                .count();

    cloud::StreamingAnalyzer pipelined(rate, config, &pool);
    const auto t2 = std::chrono::steady_clock::now();
    for (std::size_t pos = 0; pos < xs.size(); pos += 9000)
      pipelined.push(std::span<const double>(
          xs.data() + pos, std::min<std::size_t>(9000, xs.size() - pos)));
    const auto piped = pipelined.finish();
    const double pipe_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t2)
                              .count();

    std::printf("%.0f,%zu,%zu,%zu,%zu,%.1f,%.2f,%.1f,%.1f,%.1f\n", minutes,
                n, batch.size(), streamed.size(), piped.size(),
                static_cast<double>(n) * 8.0 / 1e6,
                static_cast<double>(config.chunk_samples) * 8.0 / 1e6,
                static_cast<double>(n) / 1e6 / batch_s,
                static_cast<double>(n) / 1e6 / stream_s,
                static_cast<double>(n) / 1e6 / pipe_s);

    // Fold into the JSON artifact. Batch and serial streaming run on the
    // caller's core alone; the pipelined path uses the pool's workers
    // plus the caller, so its per-core figure divides by that count.
    const std::string prefix = "min" + std::to_string(static_cast<int>(minutes));
    const double batch_rate = static_cast<double>(n) / batch_s;
    const double stream_rate = static_cast<double>(n) / stream_s;
    const double pipe_rate = static_cast<double>(n) / pipe_s /
                             static_cast<double>(pool.concurrency());
    json.set(prefix + ".batch.samples_per_sec_per_core", batch_rate);
    json.set(prefix + ".batch.real_time_factor",
             batch_rate / kHardwareSamplesPerSec);
    json.set(prefix + ".stream.samples_per_sec_per_core", stream_rate);
    json.set(prefix + ".stream.real_time_factor",
             stream_rate / kHardwareSamplesPerSec);
    json.set(prefix + ".pipe.samples_per_sec_per_core", pipe_rate);
    json.set(prefix + ".pipe.real_time_factor",
             pipe_rate / kHardwareSamplesPerSec);
    json.set_count(prefix + ".batch_peaks", batch.size());
    json.set_count(prefix + ".stream_peaks", streamed.size());
    json.set_count(prefix + ".pipe_peaks", piped.size());
  }
  json.write();
  std::printf("note: working set is the fixed chunk size regardless of "
              "acquisition length; peak counts must match batch.\n");
  return 0;
}
