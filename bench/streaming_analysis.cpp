// Long-acquisition analysis (the paper's 3 h / ~600 MB experiment,
// scaled): the cloud cannot hold hours of multi-carrier signal in memory
// per request, so production analysis streams in chunks. This bench
// verifies the streaming analyzer finds the same peaks as batch analysis
// on a multi-minute signal and reports throughput and working-set bounds.

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "cloud/streaming.h"
#include "dsp/detrend.h"
#include "dsp/peak_detect.h"
#include "sim/signal_synth.h"

using namespace medsen;

int main() {
  bench::header("Streaming analysis (600 MB-class workloads)",
                "peak analysis of hours-long acquisitions runs in bounded "
                "memory with batch-identical results");

  const double rate = 450.0;
  util::ThreadPool pool;  // pipelined mode: detrend k+1 overlaps detect k
  std::printf(
      "duration_min,samples,batch_peaks,stream_peaks,pipe_peaks,batch_MB,"
      "working_MB,batch_Msamp_per_s,stream_Msamp_per_s,pipe_Msamp_per_s\n");
  for (double minutes : {10.0, 30.0, 60.0}) {
    const auto n = static_cast<std::size_t>(minutes * 60.0 * rate);
    crypto::ChaChaRng rng(static_cast<std::uint64_t>(minutes));
    // ~1 peak every 2 s.
    std::vector<double> depth(n, 0.0);
    const auto peaks_planted = static_cast<std::size_t>(minutes * 30.0);
    for (std::size_t k = 0; k < peaks_planted; ++k)
      sim::add_gaussian_pulse(
          depth, rate, 0.0,
          rng.uniform_double() * minutes * 60.0, 0.010,
          0.005 + 0.008 * rng.uniform_double());
    sim::DriftConfig drift;
    auto xs = sim::synth_baseline(n, rate, 0.0, drift, rng);
    for (std::size_t i = 0; i < n; ++i) xs[i] *= 1.0 - depth[i];
    sim::add_white_noise(xs, 1e-4, rng);

    const auto t0 = std::chrono::steady_clock::now();
    const auto batch =
        dsp::detect_peaks(dsp::detrend(xs), rate, 0.0);
    const double batch_s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();

    cloud::StreamingConfig config;
    cloud::StreamingAnalyzer analyzer(rate, config);
    const auto t1 = std::chrono::steady_clock::now();
    for (std::size_t pos = 0; pos < xs.size(); pos += 9000)
      analyzer.push(std::span<const double>(
          xs.data() + pos, std::min<std::size_t>(9000, xs.size() - pos)));
    const auto streamed = analyzer.finish();
    const double stream_s = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t1)
                                .count();

    cloud::StreamingAnalyzer pipelined(rate, config, &pool);
    const auto t2 = std::chrono::steady_clock::now();
    for (std::size_t pos = 0; pos < xs.size(); pos += 9000)
      pipelined.push(std::span<const double>(
          xs.data() + pos, std::min<std::size_t>(9000, xs.size() - pos)));
    const auto piped = pipelined.finish();
    const double pipe_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t2)
                              .count();

    std::printf("%.0f,%zu,%zu,%zu,%zu,%.1f,%.2f,%.1f,%.1f,%.1f\n", minutes,
                n, batch.size(), streamed.size(), piped.size(),
                static_cast<double>(n) * 8.0 / 1e6,
                static_cast<double>(config.chunk_samples) * 8.0 / 1e6,
                static_cast<double>(n) / 1e6 / batch_s,
                static_cast<double>(n) / 1e6 / stream_s,
                static_cast<double>(n) / 1e6 / pipe_s);
  }
  std::printf("note: working set is the fixed chunk size regardless of "
              "acquisition length; peak counts must match batch.\n");
  return 0;
}
