// Figure 15 (a-c): normalized impedance response of (a) a blood cell,
// (b) a 3.58 um bead, (c) a 7.8 um bead at carriers 500 kHz - 3 MHz.
// Shape to reproduce: beads respond equally at all carriers; the blood
// cell's dip shrinks at >= 2 MHz (membrane short-circuit); absolute dip
// ordering 3.58 um < blood < 7.8 um (1x / 2x / 4x).

#include <cstdio>

#include "bench_common.h"
#include "cloud/analysis_service.h"

using namespace medsen;

int main() {
  bench::header("Figure 15",
                "per-carrier normalized peak depth by particle type");

  const std::vector<double> carriers = {5.0e5, 1.0e6, 2.0e6, 2.5e6, 3.0e6};
  auto design = sim::standard_design(9);
  design.lead_index = 0;
  const auto channel = bench::default_channel();
  const auto config = bench::quiet_acquisition(carriers);
  const auto control = bench::fixed_control(0b1);  // lead only: 1 peak each
  cloud::AnalysisService service;

  std::printf("particle,carrier_hz,mean_depth_frac,depth_rel_500kHz\n");
  for (auto type : {sim::ParticleType::kBloodCell,
                    sim::ParticleType::kBead358,
                    sim::ParticleType::kBead780}) {
    sim::SampleSpec sample;
    sample.components = {{type, 120.0}};
    const auto result =
        sim::acquire(sample, channel, design, config, control, 60.0, 4242);
    const auto report = service.analyze(result.signals);
    // Mean peak depth per carrier.
    double ref_depth = 0.0;
    for (std::size_t c = 0; c < carriers.size(); ++c) {
      const auto& peaks = report.channels[c].peaks;
      double mean = 0.0;
      for (const auto& p : peaks) mean += p.amplitude;
      if (!peaks.empty()) mean /= static_cast<double>(peaks.size());
      if (c == 0) ref_depth = mean;
      std::printf("%s,%.0f,%.5f,%.3f\n", sim::to_string(type).c_str(),
                  carriers[c], mean,
                  ref_depth > 0.0 ? mean / ref_depth : 0.0);
    }
  }
  std::printf("paper shape: beads flat across carriers; blood cell decays "
              "above 2 MHz; depths ~1x/2x/4x for 3.58um/blood/7.8um\n");
  return 0;
}
