// Self-healing session loop under injected sensor faults: sweeps each
// fault scenario over many seeded sessions and reports how often the
// detect -> re-key -> retry -> quarantine loop converges to a
// full-confidence diagnosis, how many attempts it needs, and how many
// electrodes end up quarantined. Emits both a CSV table and the shared
// bench::JsonCounters artifact (BENCH_fault_recovery.json) for
// dashboard scraping.

#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cloud/server.h"
#include "phone/relay.h"

using namespace medsen;

namespace {

using FaultSetup = std::function<void(sim::FaultConfig&)>;

struct Scenario {
  const char* name;
  FaultSetup setup;
};

struct Counters {
  std::size_t sessions = 0;
  std::size_t successes = 0;   ///< full-confidence diagnosis
  std::size_t recovered = 0;   ///< succeeded after >= 1 rejection
  std::size_t degraded = 0;    ///< retry budget exhausted
  std::size_t attempts = 0;
  std::size_t rejections = 0;
  std::size_t quarantined = 0;  ///< electrodes, summed over sessions
};

std::size_t popcount(sim::ElectrodeMask mask) {
  std::size_t n = 0;
  for (; mask != 0; mask &= mask - 1) ++n;
  return n;
}

Counters sweep(const FaultSetup& setup, std::size_t sessions) {
  const auto design = sim::standard_design(9);
  const auto channel = bench::default_channel();
  const auto key_params = bench::default_key_params();
  const double duration_s = 25.0;

  Counters counters;
  for (std::size_t run = 0; run < sessions; ++run) {
    auto acquisition = bench::quiet_acquisition();
    acquisition.faults.seed = 0x1457 + 977 * run;
    setup(acquisition.faults);

    core::Controller controller(key_params, design,
                                core::DiagnosticProfile::cd4_staging(),
                                1000 + run);
    auto server = cloud::CloudServer(cloud::AnalysisConfig{},
                                     auth::CytoAlphabet{},
                                     auth::ParticleClassifier::train({}));
    phone::PhoneRelay relay;
    const std::vector<std::uint8_t> mac_key = {0xB0, 0x0B};
    server.provision_device(relay.config().device_id, mac_key);

    sim::SampleSpec sample;
    sample.components = {{sim::ParticleType::kBead780, 300.0}};
    const phone::AcquireFn acquire =
        [&](std::span<const sim::ControlSegment> control, double duration,
            std::size_t attempt) {
          auto config = acquisition;
          config.faults.attempt = attempt;
          return sim::acquire(sample, channel, design, config, control,
                              duration, 40 + run)
              .signals;
        };

    const auto outcome = relay.run_diagnostic_session(
        controller, duration_s, acquire, 1 + run * 100, server, mac_key);
    ++counters.sessions;
    counters.attempts += outcome.attempts;
    counters.rejections += outcome.quality_rejections;
    counters.quarantined += popcount(controller.health().quarantined());
    if (outcome.degraded)
      ++counters.degraded;
    else
      ++counters.successes;
    if (outcome.recovered) ++counters.recovered;
  }
  return counters;
}

}  // namespace

int main() {
  bench::header("Fault injection x self-healing recovery",
                "a dead electrode plus transient bubbles converges to a "
                "correct diagnosis within the 3-attempt retry budget; "
                "unhealable faults degrade instead of failing");

  const std::vector<Scenario> scenarios = {
      {"fault_free", [](sim::FaultConfig&) {}},
      {"open_electrode",
       [](sim::FaultConfig& f) {
         f.open.enabled = true;
         f.open.electrode = 0;
       }},
      {"bubbles",
       [](sim::FaultConfig& f) { f.bubbles.enabled = true; }},
      {"open_plus_bubbles",
       [](sim::FaultConfig& f) {
         f.open.enabled = true;
         f.open.electrode = 0;
         f.bubbles.enabled = true;
       }},
      {"stuck_on_mux",
       [](sim::FaultConfig& f) {
         f.stuck_mux.enabled = true;
         f.stuck_mux.electrode = 4;
       }},
      {"clog_stall",
       [](sim::FaultConfig& f) {
         f.clog.enabled = true;
         f.clog.tau_s = 2.0;
       }},
      {"adc_stuck",
       [](sim::FaultConfig& f) {
         f.adc_stuck.enabled = true;
         f.adc_stuck.channel = 1;
         f.adc_stuck.window_frac = 0.4;
       }},
  };

  const std::size_t sessions = 8;
  std::printf(
      "scenario,sessions,success_rate,recovered_rate,degraded_rate,"
      "mean_attempts,mean_rejections,quarantined_electrodes\n");
  bench::JsonCounters json("fault_recovery");
  json.set_count("sessions_per_scenario", sessions);
  for (const auto& scenario : scenarios) {
    const auto c = sweep(scenario.setup, sessions);
    const double n = static_cast<double>(c.sessions);
    const double success_rate = static_cast<double>(c.successes) / n;
    const double recovered_rate = static_cast<double>(c.recovered) / n;
    const double degraded_rate = static_cast<double>(c.degraded) / n;
    const double mean_attempts = static_cast<double>(c.attempts) / n;
    const double mean_rejections = static_cast<double>(c.rejections) / n;
    std::printf("%s,%zu,%.2f,%.2f,%.2f,%.2f,%.2f,%zu\n", scenario.name,
                c.sessions, success_rate, recovered_rate, degraded_rate,
                mean_attempts, mean_rejections, c.quarantined);
    const std::string prefix = scenario.name;
    json.set(prefix + ".success_rate", success_rate);
    json.set(prefix + ".recovered_rate", recovered_rate);
    json.set(prefix + ".degraded_rate", degraded_rate);
    json.set(prefix + ".mean_attempts", mean_attempts);
    json.set(prefix + ".mean_rejections", mean_rejections);
    json.set_count(prefix + ".quarantined_electrodes", c.quarantined);
  }
  json.write();
  std::printf(
      "note: success_rate counts full-confidence diagnoses; degraded "
      "sessions still produce a best-effort diagnosis with confidence "
      "%.2f.\n",
      core::RetryPolicy{}.degraded_confidence);
  return 0;
}
