// Ablation of the two design fixes the paper proposes in Section VII-A:
//
//  1. The all-on / successive-electrode key patterns produce "a
//     relatively flat periodic train of 17 peaks" that a domain-aware
//     attacker can segment into per-cell groups (GapClusterAttacker).
//     Countermeasure: select keys that avoid successive electrodes.
//  2. The lead electrode's single peak makes peak counts odd and leaks
//     which periods had the lead active. Countermeasure: the proposed
//     extra input electrode (fixed_lead_electrode).
//
// This bench measures the gap-cluster attacker's count recovery with and
// without each countermeasure.

#include <cstdio>

#include "bench_common.h"
#include "cloud/analysis_service.h"
#include "core/attacker.h"
#include "core/decryptor.h"

using namespace medsen;

namespace {

struct Config {
  const char* label;
  bool all_on;            // degenerate key: every electrode, every period
  bool avoid_successive;
  bool fixed_lead;
};

}  // namespace

int main() {
  bench::header("Countermeasure ablation (Section VII-A)",
                "avoiding successive electrodes defeats train-signature "
                "attacks; the lead-electrode fix removes the odd-count "
                "leak");

  const Config configs[] = {
      {"all-on key (the Fig. 11d flat train)", true, false, false},
      {"random subsets (successive allowed)", false, false, false},
      {"random subsets, avoid successive", false, true, false},
      {"avoid successive + fixed lead", false, true, true},
  };

  std::printf(
      "configuration,train_attack_err,naive_err,decryptor_err,"
      "odd_count_periods\n");
  for (const auto& config : configs) {
    auto design = sim::standard_design(9);
    design.fixed_lead_electrode = config.fixed_lead;
    auto params = bench::default_key_params();
    params.min_active_electrodes = 3;
    params.avoid_successive_electrodes = config.avoid_successive;
    // Hold the flow speed fixed so this ablation isolates the electrode
    // pattern (feature E); feature S is evaluated in
    // bench_attack_resistance.
    params.flow_min_ul_min = params.flow_max_ul_min = 0.08;

    const auto channel = bench::default_channel();
    const auto acquisition = bench::quiet_acquisition({5.0e5});
    crypto::ChaChaRng rng(515);
    const double duration = 30.0;
    auto schedule = core::KeySchedule::generate(params, duration, rng);
    if (config.all_on) {
      auto keys = schedule.keys();
      for (auto& tk : keys) tk.key.electrodes = design.all_mask();
      schedule = core::KeySchedule(params, std::move(keys));
    }

    core::SensorEncryptor encryptor(design, channel, acquisition);
    sim::SampleSpec sample;
    sample.components = {{sim::ParticleType::kBead780, 400.0}};
    const auto enc = encryptor.acquire(sample, schedule, duration, 626);
    cloud::AnalysisService service;
    const auto report = service.analyze(enc.signals);
    const double truth = static_cast<double>(enc.truth.total_particles());

    core::PeriodicTrainAttacker train_attacker;
    core::NaiveCountAttacker naive_attacker;
    const auto decoded =
        core::decrypt_report(report, schedule, design, duration);

    // The odd-count leak: periods whose multiplication factor is odd
    // reveal the lead electrode was active.
    std::size_t odd_periods = 0;
    for (const auto& period : decoded.periods)
      if (period.multiplication % 2 == 1) ++odd_periods;

    std::printf("%s,%.3f,%.3f,%.3f,%zu/%zu\n", config.label,
                core::recovery_error(
                    train_attacker.estimate_count(report), truth),
                core::recovery_error(naive_attacker.estimate_count(report),
                                     truth),
                core::recovery_error(decoded.estimated_count, truth),
                odd_periods, decoded.periods.size());
  }
  std::printf("note: train_attack_err should RISE when successive "
              "electrodes are avoided; odd_count_periods should drop to 0 "
              "with the lead fix.\n");
  return 0;
}
