// Fleet-scale closed-loop load harness for the sharded cloud service
// layer (ROADMAP open item 1). Provisions 10^4..10^6 devices, then
// drives mixed traffic — fresh uploads, idempotent replays, auth passes,
// malformed payloads, bad MACs, unknown devices — from a configurable
// worker count with Poisson or bursty arrivals, optionally through a
// lossy net::FaultyLink. Reports throughput, p50/p99/p999 latency, and
// the server's shed/replay/eviction counters as BENCH_fleet_load.json
// (the shared bench::JsonCounters schema), seeding the perf trajectory
// future re-anchors regress against.
//
// The whole harness runs with `allow_legacy_plane = false`: every
// command rides a negotiated session (devices handshake lazily on first
// use, and the fleet is partitioned across workers because SessionCrypto
// is single-threaded state). A slice of mixed traffic still sends
// counter-0 static-key envelopes on purpose — the server must refuse
// each one with kAuthRequired, and the harness fails if any slips
// through.
//
// A second scaling phase isolates the service layer itself: a replay
// storm (registry lookup + MAC verify + session-cache hit, no analysis)
// measured with shards=1 — the old single-mutex layout — versus the
// sharded default, emitting `scaling.speedup`. On a multi-core host the
// sharded layout must win by >2x; on one core the two are equivalent.
//
// Session phases exercise the EV2-style session plane: a handshake
// storm over an enrolled (zero-stored-secret) fleet emitting
// `session.handshakes_per_sec`, then a rekey storm that rotates the
// master key between rounds — every rotation stampedes the fleet
// through kAuthRequired -> re-handshake -> resend — while a slice of
// traffic replays burned command counters and must be rejected
// (`session.counter_rejections`).
//
// Everything is deterministic for a fixed seed and worker count except
// wall-clock timing itself.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "cloud/server.h"
#include "core/session_crypto.h"
#include "crypto/cmac.h"
#include "net/faulty_link.h"

using namespace medsen;

namespace {

struct Options {
  std::size_t devices = 100000;
  std::size_t workers = 0;  ///< 0 = hardware concurrency
  std::size_t shards = 0;   ///< mixed-phase shard count (0 = default)
  std::size_t requests = 200000;
  std::size_t cache_capacity = 1u << 16;
  std::size_t max_inflight = 0;
  std::uint64_t seed = 0x464C4545544C44ull;  // "FLEETLD"
  std::string arrivals = "poisson";          // poisson | bursty
  double mean_think_us = 0.0;  ///< Poisson think time (0 = saturating)
  bool faulty = false;
  bool quality_gate = false;
  bool scaling = true;
  std::size_t scaling_devices = 20000;
  std::size_t scaling_requests = 100000;
  bool session = true;
  std::size_t session_devices = 5000;
  std::size_t session_commands = 50000;
  std::size_t rekey_rounds = 3;
  std::string out = "BENCH_fleet_load.json";
};

[[noreturn]] void usage() {
  std::printf(
      "fleet_load [--devices N] [--workers N] [--shards N] [--requests N]\n"
      "           [--cache-capacity N] [--max-inflight N] [--seed S]\n"
      "           [--arrivals poisson|bursty] [--mean-think-us U]\n"
      "           [--faulty] [--quality-gate] [--no-scaling]\n"
      "           [--scaling-devices N] [--scaling-requests N]\n"
      "           [--no-session] [--session-devices N]\n"
      "           [--session-commands N] [--rekey-rounds N]\n"
      "           [--out PATH] [--smoke]\n"
      "--smoke: short deterministic CI preset (10^4 devices, fixed seed)\n");
  std::exit(2);
}

Options parse_options(int argc, char** argv) {
  Options options;
  const auto next_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage();
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--devices") {
      options.devices = std::strtoull(next_value(i), nullptr, 10);
    } else if (arg == "--workers") {
      options.workers = std::strtoull(next_value(i), nullptr, 10);
    } else if (arg == "--shards") {
      options.shards = std::strtoull(next_value(i), nullptr, 10);
    } else if (arg == "--requests") {
      options.requests = std::strtoull(next_value(i), nullptr, 10);
    } else if (arg == "--cache-capacity") {
      options.cache_capacity = std::strtoull(next_value(i), nullptr, 10);
    } else if (arg == "--max-inflight") {
      options.max_inflight = std::strtoull(next_value(i), nullptr, 10);
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next_value(i), nullptr, 10);
    } else if (arg == "--arrivals") {
      options.arrivals = next_value(i);
    } else if (arg == "--mean-think-us") {
      options.mean_think_us = std::strtod(next_value(i), nullptr);
    } else if (arg == "--faulty") {
      options.faulty = true;
    } else if (arg == "--quality-gate") {
      options.quality_gate = true;
    } else if (arg == "--no-scaling") {
      options.scaling = false;
    } else if (arg == "--scaling-devices") {
      options.scaling_devices = std::strtoull(next_value(i), nullptr, 10);
    } else if (arg == "--scaling-requests") {
      options.scaling_requests = std::strtoull(next_value(i), nullptr, 10);
    } else if (arg == "--no-session") {
      options.session = false;
    } else if (arg == "--session-devices") {
      options.session_devices = std::strtoull(next_value(i), nullptr, 10);
    } else if (arg == "--session-commands") {
      options.session_commands = std::strtoull(next_value(i), nullptr, 10);
    } else if (arg == "--rekey-rounds") {
      options.rekey_rounds = std::strtoull(next_value(i), nullptr, 10);
    } else if (arg == "--out") {
      options.out = next_value(i);
    } else if (arg == "--smoke") {
      options.devices = 10000;
      options.requests = 20000;
      options.scaling_devices = 2000;
      options.scaling_requests = 20000;
      options.session_devices = 1000;
      options.session_commands = 10000;
      options.workers = options.workers == 0 ? 2 : options.workers;
    } else {
      usage();
    }
  }
  if (options.arrivals != "poisson" && options.arrivals != "bursty") usage();
  return options;
}

/// Deterministic per-worker RNG (SplitMix64): the lint-approved seeded
/// generators live in src/crypto; the bench only needs cheap uniform
/// draws with no cross-run drift.
struct SplitMix {
  std::uint64_t state;

  std::uint64_t next() {
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
  /// Exponential with the given mean (Poisson inter-arrival think time).
  double exponential(double mean) {
    return -mean * std::log(1.0 - uniform());
  }
};

std::vector<std::uint8_t> device_key(std::uint64_t device_id,
                                     std::uint64_t seed) {
  SplitMix rng{device_id ^ seed};
  std::vector<std::uint8_t> key(16);
  for (std::size_t i = 0; i < key.size(); ++i)
    key[i] = static_cast<std::uint8_t>(rng.next() & 0xFF);
  return key;
}

/// A small but analyzable acquisition: one carrier, ~2 s at 450 Hz, a
/// couple of particle dips plus ADC-grain noise so the quality gate (when
/// enabled) sees a live signal. Built once and shared by every upload —
/// the harness measures the service layer, not series generation.
util::MultiChannelSeries upload_series() {
  util::MultiChannelSeries series;
  series.carrier_frequencies_hz = {5.0e5};
  util::TimeSeries ts(450.0);
  const std::size_t n = 900;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / 450.0;
    double v = 1.0;
    for (const double center : {0.6, 1.3}) {
      const double z = (t - center) / 0.008;
      v *= 1.0 - 0.01 * std::exp(-0.5 * z * z);
    }
    v += 1e-5 * static_cast<double>(static_cast<int>((i * 7) % 11) - 5);
    ts.push_back(v);
  }
  series.channels.push_back(std::move(ts));
  return series;
}

cloud::CloudServer make_server(const Options& options, std::size_t shards,
                               std::size_t cache_capacity) {
  cloud::ServiceConfig service;
  service.quality_gate = options.quality_gate;
  service.max_inflight = options.max_inflight;
  service.shards = shards;
  service.session_cache_capacity = cache_capacity;
  service.allow_legacy_plane = false;
  cloud::AnalysisConfig analysis;
  analysis.threads = 1;  // the workers are the parallelism under test
  return cloud::CloudServer(analysis, auth::CytoAlphabet{},
                            auth::ParticleClassifier::train({}),
                            auth::VerifierConfig{}, nullptr, service);
}

struct WorkerResult {
  std::vector<double> latencies_us;
  std::uint64_t sent = 0;
  std::uint64_t transport_dropped = 0;  ///< FaultyLink ate the request
  std::uint64_t transport_garbled = 0;  ///< arrived undecodable
  std::uint64_t handshakes = 0;         ///< lazy first-use negotiations
  std::uint64_t handshake_failures = 0;
  std::uint64_t legacy_attempts = 0;  ///< deliberate static-key sends
  std::uint64_t legacy_refused = 0;   ///< ... answered kAuthRequired
};

struct Percentiles {
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

Percentiles percentiles(std::vector<double>& values) {
  Percentiles result;
  if (values.empty()) return result;
  std::sort(values.begin(), values.end());
  const auto at = [&](double q) {
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1));
    return values[rank];
  };
  result.p50 = at(0.50);
  result.p99 = at(0.99);
  result.p999 = at(0.999);
  return result;
}

/// One closed-loop worker: pick a device from this worker's partition,
/// negotiate a session on first use, build (or replay) a request,
/// optionally push it through a lossy link, time handle(), think, loop.
WorkerResult run_worker(cloud::CloudServer& server, const Options& options,
                        std::size_t worker_index, std::size_t worker_count,
                        std::size_t request_count,
                        const std::vector<std::uint8_t>& upload_payload,
                        const std::vector<std::uint8_t>& auth_payload) {
  WorkerResult result;
  result.latencies_us.reserve(request_count);
  SplitMix rng{options.seed ^ (0xABCD0000ull + worker_index)};

  // Session ids are globally unique: the worker index occupies the top
  // bits so no two workers (or phases) ever collide in the cache.
  std::uint64_t next_session = (worker_index + 1) << 40;

  // The worker's slice of the fleet (ids congruent to its index):
  // SessionCrypto is single-threaded state, so devices are partitioned,
  // never shared. Sessions are negotiated lazily the first time a device
  // appears in the traffic mix; the handshake itself runs outside the
  // per-request latency window (it models the device's app start-up, not
  // a command round trip).
  std::unordered_map<std::uint64_t, std::unique_ptr<core::SessionCrypto>>
      sessions;
  const auto session_for =
      [&](std::uint64_t device) -> core::SessionCrypto* {
    auto& slot = sessions[device];
    if (slot == nullptr)
      slot = std::make_unique<core::SessionCrypto>(
          device, device_key(device, options.seed), /*key_epoch=*/0,
          options.seed ^ device);
    if (!slot->active()) {
      ++result.handshakes;
      if (!slot->complete(
              server.handle(slot->make_challenge(next_session++)))) {
        ++result.handshake_failures;
        return nullptr;
      }
    }
    return slot.get();
  };

  // The worker's recent successful uploads, replayed byte-identically to
  // model the reliable transport's retries.
  std::vector<net::Envelope> history;
  constexpr std::size_t kHistory = 64;
  std::size_t history_next = 0;

  std::unique_ptr<net::FaultyLink> link;
  if (options.faulty) {
    net::FaultConfig faults;
    faults.drop_rate = 0.01;
    faults.corrupt_rate = 0.01;
    faults.duplicate_rate = 0.005;
    faults.seed = options.seed ^ (0x11E7u + worker_index);
    link = std::make_unique<net::FaultyLink>(net::lte_uplink(), faults,
                                             nullptr);
  }

  using Clock = std::chrono::steady_clock;
  const auto burst_epoch = Clock::now();

  for (std::size_t i = 0; i < request_count; ++i) {
    // Arrival pacing. Poisson: exponential think time between closed-loop
    // requests (0 = saturating). Bursty: 50 ms on at full rate, 50 ms off.
    if (options.arrivals == "poisson") {
      if (options.mean_think_us > 0.0) {
        const double think = rng.exponential(options.mean_think_us);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::micro>(think));
      }
    } else {
      const double phase_ms =
          std::chrono::duration<double, std::milli>(Clock::now() -
                                                    burst_epoch)
              .count();
      const double in_period = std::fmod(phase_ms, 100.0);
      if (in_period >= 50.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(100.0 - in_period));
      }
    }

    // Draw from this worker's partition only (ids congruent to the
    // worker index modulo the worker count).
    const std::uint64_t device =
        worker_index +
        worker_count * (rng.next() % (options.devices / worker_count));
    const double op = rng.uniform();

    net::Envelope request;
    bool cacheable_upload = false;
    bool legacy_attempt = false;
    core::SessionCrypto* crypto = nullptr;
    if (op < 0.20 && !history.empty()) {
      // Replay: byte-identical re-send of an earlier success. While the
      // exchange is still cached this is answered from the idempotency
      // cache; once evicted, the burned counter dies in the anti-replay
      // window instead — both are correct session-plane behavior.
      request = history[rng.next() % history.size()];
    } else if (op < 0.90) {
      crypto = session_for(device);
      if (crypto == nullptr) continue;  // handshake failed; counted
      if (op < 0.70) {
        request = net::make_envelope(
            net::MessageType::kSignalUpload, crypto->session_id(), device,
            upload_payload, crypto->session_mac_key(),
            crypto->next_counter());
        cacheable_upload = true;
      } else if (op < 0.75) {
        request = net::make_envelope(
            net::MessageType::kAuthPass, crypto->session_id(), device,
            auth_payload, crypto->session_mac_key(),
            crypto->next_counter());
      } else if (op < 0.825) {
        // MAC-valid garbage on the session: the kMalformed path. The
        // client-side counter burns; the window accepts the gap.
        request = net::make_envelope(
            net::MessageType::kSignalUpload, crypto->session_id(), device,
            {0xDE, 0xAD}, crypto->session_mac_key(),
            crypto->next_counter());
      } else {
        request = net::make_envelope(
            net::MessageType::kSignalUpload, crypto->session_id(), device,
            upload_payload, crypto->session_mac_key(),
            crypto->next_counter());
        request.payload[0] ^= 0xFF;  // tampering relay: kBadMac
      }
    } else if (op < 0.95) {
      // Deliberate legacy-plane send: a counter-0 command on the
      // provisioned static key. With allow_legacy_plane=false the server
      // must refuse every one of these with kAuthRequired.
      legacy_attempt = true;
      ++result.legacy_attempts;
      request = net::make_envelope(net::MessageType::kSignalUpload,
                                   next_session++, device, upload_payload,
                                   device_key(device, options.seed));
    } else {
      const std::vector<std::uint8_t> stray_key = {0x55, 0x66};
      request = net::make_envelope(
          net::MessageType::kSignalUpload, next_session++,
          static_cast<std::uint64_t>(options.devices) + 1 +
              (rng.next() % 1000),
          upload_payload, stray_key);  // never provisioned
    }

    const auto note_response = [&](const net::Envelope& arrived,
                                   const net::Envelope& response) {
      if (cacheable_upload &&
          response.type == net::MessageType::kAnalysisResult) {
        if (history.size() < kHistory) {
          history.push_back(arrived);
        } else {
          history[history_next] = arrived;
          history_next = (history_next + 1) % kHistory;
        }
      }
      if (response.type == net::MessageType::kError &&
          net::ErrorPayload::deserialize(response.payload).code ==
              net::ErrorCode::kAuthRequired) {
        if (legacy_attempt) {
          ++result.legacy_refused;
        } else if (crypto != nullptr) {
          crypto->invalidate();  // session died server-side; re-handshake
        }
      }
    };

    ++result.sent;
    const auto start = Clock::now();
    if (link) {
      link->send(request.serialize());
      bool handled = false;
      while (auto datagram = link->try_receive()) {
        try {
          const auto arrived = net::Envelope::deserialize(*datagram);
          const auto response = server.handle(arrived);
          handled = true;
          note_response(arrived, response);
        } catch (const std::exception&) {
          ++result.transport_garbled;  // structural corruption
        }
      }
      if (!handled && result.transport_garbled == 0) ++result.transport_dropped;
    } else {
      note_response(request, server.handle(request));
    }
    result.latencies_us.push_back(
        std::chrono::duration<double, std::micro>(Clock::now() - start)
            .count());
  }
  return result;
}

/// Replay-storm throughput at a given shard count: the pure service-layer
/// path (admission + registry lookup + MAC verify + cache hit), no
/// analysis, so shard-lock contention is the dominant cost and the
/// shards=1 baseline exposes the old single-mutex layout. Each device
/// handshakes once during setup and the storm replays its first
/// session-plane command byte-identically — a cache hit every time, the
/// same hot path the old static-key storm measured.
double replay_storm_rps(const Options& options, std::size_t shards,
                        std::size_t workers,
                        const std::vector<std::uint8_t>& upload_payload) {
  auto server = make_server(options, shards,
                            /*cache_capacity=*/0);  // unbounded: no evictions
  const std::size_t devices = options.scaling_devices;
  std::vector<net::Envelope> replays(devices);
  for (std::uint64_t device = 0; device < devices; ++device) {
    const auto key = device_key(device, options.seed);
    server.provision_device(device, key);
    core::SessionCrypto crypto(device, key, /*key_epoch=*/0,
                               options.seed ^ device);
    if (!crypto.complete(server.handle(
            crypto.make_challenge((1ull << 62) + device)))) {
      std::fprintf(stderr, "scaling: handshake failed for device %llu\n",
                   static_cast<unsigned long long>(device));
      std::exit(1);
    }
    replays[device] = net::make_envelope(
        net::MessageType::kSignalUpload, crypto.session_id(), device,
        upload_payload, crypto.session_mac_key(), crypto.next_counter());
  }
  // Prime: one processed exchange per device fills the cache.
  {
    std::vector<std::thread> primers;
    std::atomic<std::size_t> cursor{0};
    for (std::size_t w = 0; w < workers; ++w) {
      primers.emplace_back([&] {
        for (std::size_t i = cursor.fetch_add(1); i < devices;
             i = cursor.fetch_add(1))
          (void)server.handle(replays[i]);
      });
    }
    for (auto& primer : primers) primer.join();
  }

  const std::size_t per_worker = options.scaling_requests / workers;
  std::vector<std::thread> storm;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t w = 0; w < workers; ++w) {
    storm.emplace_back([&, w] {
      SplitMix rng{options.seed ^ (0x5708Au + w)};
      for (std::size_t i = 0; i < per_worker; ++i)
        (void)server.handle(replays[rng.next() % devices]);
    });
  }
  for (auto& thread : storm) thread.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const auto stats = server.stats();
  if (stats.replays_served <
      static_cast<std::uint64_t>(per_worker * workers)) {
    std::printf("warning: replay storm had %llu non-replay responses\n",
                static_cast<unsigned long long>(
                    per_worker * workers - stats.replays_served));
  }
  return static_cast<double>(per_worker * workers) / elapsed;
}

/// Outcome of the session-plane phases (handshake storm + rekey storm).
struct SessionPhaseResult {
  double handshake_elapsed_s = 0.0;
  double handshakes_per_sec = 0.0;
  std::uint64_t handshakes = 0;
  double rekey_elapsed_s = 0.0;
  double commands_per_sec = 0.0;
  std::uint64_t commands_ok = 0;
  std::uint64_t rehandshakes = 0;
  std::uint64_t auth_required_errors = 0;
  std::uint64_t stale_attacks = 0;
  std::uint64_t counter_rejections = 0;  ///< server-side, from stats()
};

/// Phase 4+5: the EV2-style session plane under fleet load.
///
/// Handshake storm: every device is *enrolled* (diversified keys — the
/// registry stores zero per-device secrets) and runs a full
/// AuthChallenge/AuthResponse handshake; throughput is
/// `handshakes_per_sec`. Rekey storm: the fleet drives session-plane
/// commands while the master key rotates every round, so each rotation
/// stampedes every device through kAuthRequired -> re-handshake ->
/// resend; a slice of traffic deliberately replays burned counters and
/// must die with kStaleCounter (`counter_rejections`).
SessionPhaseResult run_session_phases(
    const Options& options, std::size_t workers,
    const std::vector<std::uint8_t>& upload_payload) {
  SessionPhaseResult result;
  // A small idempotency cache on purpose: replayed counters whose cached
  // exchange is still resident are answered as conflicts/replays by the
  // cache layer, so to exercise the anti-replay *window* (kStaleCounter)
  // the storm must churn entries out first. Nothing in this phase relies
  // on ARQ replays, so eviction costs nothing.
  auto server = make_server(options, options.shards, /*cache_capacity=*/512);
  const std::vector<std::uint8_t> master(16, 0x5A);
  constexpr std::uint32_t kEpoch = 1;
  server.rotate_master_key(kEpoch, master);

  const std::size_t devices = options.session_devices;
  std::vector<std::unique_ptr<core::SessionCrypto>> cryptos;
  cryptos.reserve(devices);
  for (std::uint64_t id = 0; id < devices; ++id) {
    server.enroll_device(id);
    cryptos.push_back(std::make_unique<core::SessionCrypto>(
        id, crypto::diversify_device_key(master, id, kEpoch), kEpoch,
        options.seed ^ id));
  }

  // Session ids live far above the other phases' ranges; each device
  // re-keys at (base + device * rounds + rekey_count).
  const auto session_base = [&](std::uint64_t id) {
    return (1ull << 52) + id * (options.rekey_rounds + 2);
  };
  const auto handshake = [&](std::uint64_t id, std::uint64_t ordinal) {
    auto& crypto = *cryptos[id];
    crypto.invalidate();
    return crypto.complete(
        server.handle(crypto.make_challenge(session_base(id) + ordinal)));
  };

  // --- Handshake storm ------------------------------------------------
  std::atomic<std::uint64_t> completed{0};
  {
    std::vector<std::thread> threads;
    std::atomic<std::size_t> cursor{0};
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&] {
        for (std::size_t id = cursor.fetch_add(1); id < devices;
             id = cursor.fetch_add(1))
          if (handshake(id, 0)) completed.fetch_add(1);
      });
    }
    for (auto& thread : threads) thread.join();
    result.handshake_elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  }
  result.handshakes = completed.load();
  result.handshakes_per_sec =
      static_cast<double>(result.handshakes) / result.handshake_elapsed_s;

  // --- Rekey storm ----------------------------------------------------
  // Device id space is partitioned across workers (each SessionCrypto is
  // single-threaded state); the master rotation between rounds is the
  // fleet-wide synchronization point.
  std::atomic<std::uint64_t> ok{0}, rehandshakes{0}, auth_required{0},
      stale{0};
  const std::size_t rounds = options.rekey_rounds;
  const std::size_t per_round =
      std::max<std::size_t>(1, options.session_commands / (rounds + 1));
  std::uint32_t next_epoch = kEpoch + 1;
  const auto rekey_start = std::chrono::steady_clock::now();
  for (std::size_t round = 0; round <= rounds; ++round) {
    if (round > 0) {
      // Rotate: every live session dies; devices (still personalized
      // under kEpoch) must re-handshake through the grace window.
      server.rotate_master_key(next_epoch++, master);
    }
    std::vector<std::thread> threads;
    const std::size_t per_worker = per_round / workers + 1;
    for (std::size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, w, round] {
        SplitMix rng{options.seed ^ (0x5E55u + w * 131 + round)};
        for (std::size_t i = 0; i < per_worker; ++i) {
          const std::uint64_t id = w + workers * (rng.next() %
                                                  (devices / workers + 1));
          if (id >= devices) continue;
          auto& crypto = *cryptos[id];
          if (!crypto.active()) continue;  // handshake failed earlier
          const double op = rng.uniform();
          if (op < 0.05 && crypto.last_counter() > 1) {
            // Replay attack: a *fresh* envelope reusing a burned
            // counter (not byte-identical to the cached exchange, so
            // the idempotency cache cannot answer it).
            auto attack = net::make_envelope(
                net::MessageType::kSignalUpload, crypto.session_id(),
                id, {0xDE, 0xAD, 0xBE, 0xEF}, crypto.session_mac_key(),
                /*counter=*/1);
            const auto response = server.handle(attack);
            stale.fetch_add(1);
            (void)response;
            continue;
          }
          auto request = net::make_envelope(
              net::MessageType::kSignalUpload, crypto.session_id(), id,
              upload_payload, crypto.session_mac_key(),
              crypto.next_counter());
          auto response = server.handle(request);
          if (response.type == net::MessageType::kError) {
            const auto error =
                net::ErrorPayload::deserialize(response.payload);
            if (error.code == net::ErrorCode::kAuthRequired) {
              auth_required.fetch_add(1);
              if (handshake(id, 1 + round)) {
                rehandshakes.fetch_add(1);
                request = net::make_envelope(
                    net::MessageType::kSignalUpload, crypto.session_id(),
                    id, upload_payload, crypto.session_mac_key(),
                    crypto.next_counter());
                response = server.handle(request);
              }
            }
          }
          if (response.type == net::MessageType::kAnalysisResult)
            ok.fetch_add(1);
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  result.rekey_elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    rekey_start)
          .count();
  result.commands_ok = ok.load();
  result.rehandshakes = rehandshakes.load();
  result.auth_required_errors = auth_required.load();
  result.stale_attacks = stale.load();
  result.commands_per_sec =
      static_cast<double>(result.commands_ok) / result.rekey_elapsed_s;
  result.counter_rejections = server.stats().counter_rejections;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_options(argc, argv);
  const std::size_t workers =
      options.workers != 0
          ? options.workers
          : std::max(1u, std::thread::hardware_concurrency());

  bench::header("Fleet-scale load harness",
                "the sharded service layer absorbs fleet traffic without "
                "serializing on global locks (ROADMAP item 1)");

  const auto series = upload_series();
  net::SignalUploadPayload upload;
  upload.compressed = false;
  upload.sample_rate_hz = 450.0;
  upload.data = net::serialize_series(series);
  const auto upload_payload = upload.serialize();
  net::AuthPassPayload pass;
  pass.upload = upload;
  pass.volume_ul = 1.0;
  const auto auth_payload = pass.serialize();

  auto server = make_server(options, options.shards, options.cache_capacity);

  // Phase 1: provision the fleet.
  const auto provision_start = std::chrono::steady_clock::now();
  for (std::uint64_t device = 0; device < options.devices; ++device)
    server.provision_device(device, device_key(device, options.seed));
  const double provision_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    provision_start)
          .count();
  std::printf("provisioned %zu devices in %.2f s (%zu registry shards)\n",
              options.devices, provision_s, server.devices().shard_count());

  // Phase 2: mixed closed-loop traffic.
  std::vector<WorkerResult> results(workers);
  std::vector<std::thread> threads;
  const std::size_t per_worker = options.requests / workers;
  const auto mixed_start = std::chrono::steady_clock::now();
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      results[w] = run_worker(server, options, w, workers, per_worker,
                              upload_payload, auth_payload);
    });
  }
  for (auto& thread : threads) thread.join();
  const double mixed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    mixed_start)
          .count();

  std::vector<double> latencies;
  std::uint64_t sent = 0, dropped = 0, garbled = 0;
  std::uint64_t handshakes = 0, handshake_failures = 0;
  std::uint64_t legacy_attempts = 0, legacy_refused = 0;
  for (auto& result : results) {
    latencies.insert(latencies.end(), result.latencies_us.begin(),
                     result.latencies_us.end());
    sent += result.sent;
    dropped += result.transport_dropped;
    garbled += result.transport_garbled;
    handshakes += result.handshakes;
    handshake_failures += result.handshake_failures;
    legacy_attempts += result.legacy_attempts;
    legacy_refused += result.legacy_refused;
  }
  const auto tail = percentiles(latencies);
  const double throughput = static_cast<double>(sent) / mixed_s;
  const auto stats = server.stats();

  std::printf(
      "mixed phase: %llu requests, %zu workers, %.2f s -> %.0f req/s\n"
      "  latency p50 %.1f us  p99 %.1f us  p999 %.1f us\n"
      "  processed %llu  replays %llu  errors %llu  shed %llu\n"
      "  cache size %zu  evictions %llu\n"
      "  sessions: %llu handshakes (%llu failed); legacy plane: "
      "%llu/%llu refused\n",
      static_cast<unsigned long long>(sent), workers, mixed_s, throughput,
      tail.p50, tail.p99, tail.p999,
      static_cast<unsigned long long>(stats.requests_processed),
      static_cast<unsigned long long>(stats.replays_served),
      static_cast<unsigned long long>(stats.errors_returned),
      static_cast<unsigned long long>(stats.requests_shed),
      server.session_cache().size(),
      static_cast<unsigned long long>(server.session_cache().evictions()),
      static_cast<unsigned long long>(handshakes),
      static_cast<unsigned long long>(handshake_failures),
      static_cast<unsigned long long>(legacy_refused),
      static_cast<unsigned long long>(legacy_attempts));
  // Without link faults every deliberate static-key send must come back
  // kAuthRequired; one slipping through means the legacy plane is open.
  if (!options.faulty && legacy_refused != legacy_attempts) {
    std::fprintf(stderr,
                 "FAIL: %llu legacy-plane sends were not refused\n",
                 static_cast<unsigned long long>(legacy_attempts -
                                                 legacy_refused));
    return 1;
  }
  if (handshake_failures != 0) {
    std::fprintf(stderr, "FAIL: %llu session handshakes failed\n",
                 static_cast<unsigned long long>(handshake_failures));
    return 1;
  }

  bench::JsonCounters json("fleet_load");
  json.set_count("devices", options.devices);
  json.set_count("workers", workers);
  json.set_count("shards", server.devices().shard_count());
  json.set_count("cache_capacity", options.cache_capacity);
  json.set_text("arrivals", options.arrivals);
  json.set_count("faulty", options.faulty ? 1 : 0);
  json.set("provision_s", provision_s);
  json.set_count("requests_sent", sent);
  json.set("elapsed_s", mixed_s);
  json.set("throughput_rps", throughput);
  json.set("latency_p50_us", tail.p50);
  json.set("latency_p99_us", tail.p99);
  json.set("latency_p999_us", tail.p999);
  json.set_count("processed", stats.requests_processed);
  json.set_count("replays", stats.replays_served);
  json.set_count("errors", stats.errors_returned);
  json.set_count("shed", stats.requests_shed);
  json.set_count("cache_entries", server.session_cache().size());
  json.set_count("cache_evictions", server.session_cache().evictions());
  json.set_count("transport_dropped", dropped);
  json.set_count("transport_garbled", garbled);
  json.set_count("mixed.handshakes", handshakes);
  json.set_count("mixed.handshake_failures", handshake_failures);
  json.set_count("mixed.legacy_attempts", legacy_attempts);
  json.set_count("mixed.legacy_refused", legacy_refused);

  // Phase 3: shard-scaling proof. shards=1 is the pre-sharding layout
  // (every request on one registry mutex and one cache mutex).
  if (options.scaling) {
    const std::size_t sharded = util::default_shard_count();
    const double rps_single =
        replay_storm_rps(options, 1, workers, upload_payload);
    const double rps_sharded =
        replay_storm_rps(options, sharded, workers, upload_payload);
    const double speedup = rps_single > 0.0 ? rps_sharded / rps_single : 0.0;
    std::printf(
        "scaling: replay storm, %zu workers, %zu devices\n"
        "  shards=1   %.0f req/s\n"
        "  shards=%-3zu %.0f req/s\n"
        "  speedup %.2fx (expect >2x on a multi-core host; ~1x on 1 core)\n",
        workers, options.scaling_devices, rps_single, sharded, rps_sharded,
        speedup);
    json.set_count("scaling.devices", options.scaling_devices);
    json.set_count("scaling.requests", options.scaling_requests);
    json.set_count("scaling.workers", workers);
    json.set_count("scaling.shards_baseline", 1);
    json.set_count("scaling.shards_sharded", sharded);
    json.set("scaling.throughput_shards1_rps", rps_single);
    json.set("scaling.throughput_sharded_rps", rps_sharded);
    json.set("scaling.speedup", speedup);
  }

  // Phases 4+5: the session plane — handshake storm, then a rekey storm
  // with master rotations and deliberate stale-counter replays.
  if (options.session) {
    const auto session =
        run_session_phases(options, workers, upload_payload);
    std::printf(
        "session: %zu devices, %zu commands, %zu rekey rounds\n"
        "  handshakes   %llu in %.2fs (%.0f/s)\n"
        "  commands ok  %llu (%.0f/s), rehandshakes %llu, "
        "auth-required %llu\n"
        "  stale attacks sent %llu, counter rejections %llu\n",
        options.session_devices, options.session_commands,
        options.rekey_rounds,
        static_cast<unsigned long long>(session.handshakes),
        session.handshake_elapsed_s, session.handshakes_per_sec,
        static_cast<unsigned long long>(session.commands_ok),
        session.commands_per_sec,
        static_cast<unsigned long long>(session.rehandshakes),
        static_cast<unsigned long long>(session.auth_required_errors),
        static_cast<unsigned long long>(session.stale_attacks),
        static_cast<unsigned long long>(session.counter_rejections));
    json.set_count("session.devices", options.session_devices);
    json.set_count("session.rekey_rounds", options.rekey_rounds);
    json.set_count("session.handshakes", session.handshakes);
    json.set("session.handshakes_per_sec", session.handshakes_per_sec);
    json.set_count("session.commands_ok", session.commands_ok);
    json.set("session.commands_per_sec", session.commands_per_sec);
    json.set_count("session.rehandshakes", session.rehandshakes);
    json.set_count("session.auth_required", session.auth_required_errors);
    json.set_count("session.stale_attacks", session.stale_attacks);
    json.set_count("session.counter_rejections",
                   session.counter_rejections);
  }

  json.write(options.out);
  return 0;
}
