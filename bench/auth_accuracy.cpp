// Section VII-C claim: "MedSen can reliably classify different users
// based on their cyto-coded passwords with high accuracy." Enrolls a
// population of users with random collision-free codes, runs a full
// authentication pass per user (bead mixture + blood through the
// simulated sensor), and reports identification accuracy plus
// false-accept behaviour for unenrolled mixtures.

#include <cstdio>

#include "auth/roc.h"
#include "auth/verifier.h"
#include "bench_common.h"
#include "cloud/analysis_service.h"

using namespace medsen;

namespace {

auth::BeadCensus census_for_mixture(
    const std::vector<sim::MixtureComponent>& mixture,
    const auth::Verifier& verifier, double duration_s, std::uint64_t seed) {
  auto design = sim::standard_design(9);
  design.lead_index = 0;
  const auto channel = bench::default_channel();
  const auto config = bench::quiet_acquisition(
      verifier.classifier().config().carriers_hz);
  const auto control = bench::fixed_control(0b1);  // auth: encryption off

  sim::SampleSpec sample;
  sample.components = mixture;
  sample.components.push_back({sim::ParticleType::kBloodCell, 400.0});
  const auto result = sim::acquire(sample, channel, design, config,
                                   control, duration_s, seed);
  cloud::AnalysisService service;
  const auto report = service.analyze(result.signals);

  // Build decoded peaks (plaintext pass: no gain/flow correction needed).
  std::vector<core::DecodedPeak> peaks;
  const auto& ref = report.channels[0].peaks;
  for (const auto& p : ref) {
    core::DecodedPeak d;
    d.time_s = p.time_s;
    d.width_s = p.width_s;
    for (const auto& ch : report.channels) {
      double amplitude = 0.0;
      for (const auto& q : ch.peaks)
        if (std::abs(q.time_s - p.time_s) < 0.02) amplitude = q.amplitude;
      d.amplitudes.push_back(amplitude);
    }
    peaks.push_back(std::move(d));
  }
  const double volume_ul = 0.08 * duration_s / 60.0;
  return verifier.census_from_peaks(peaks, volume_ul);
}

}  // namespace

int main() {
  bench::header("Authentication accuracy (Section VII-C)",
                "users reliably identified from cyto-coded passwords");

  auth::CytoAlphabet alphabet;
  const auto classifier = auth::ParticleClassifier::train({});
  auth::Verifier verifier(alphabet, classifier);
  auth::EnrollmentDatabase db(alphabet);

  crypto::ChaChaRng rng(2026);
  constexpr int kUsers = 8;
  std::vector<auth::CytoCode> codes;
  for (int u = 0; u < kUsers; ++u)
    codes.push_back(db.enroll_random("user" + std::to_string(u), rng));

  const double duration_s = 600.0;  // ~0.8 uL pumped (repeatability needs volume)
  int identified = 0, rejected_impostors = 0;
  std::vector<double> genuine_distances, impostor_distances;
  std::printf("user,code,decoded,authenticated,matched_user,distance\n");
  for (int u = 0; u < kUsers; ++u) {
    const auto mixture = auth::encode_mixture(alphabet, codes[u]);
    const auto census = census_for_mixture(
        mixture, verifier, duration_s, 5000 + static_cast<std::uint64_t>(u));
    const auto result = verifier.authenticate(census, db);
    const bool ok =
        result.authenticated && result.user_id == "user" + std::to_string(u);
    if (ok) ++identified;
    genuine_distances.push_back(result.distance);
    std::printf("user%d,%s,%s,%d,%s,%.3f\n", u,
                codes[u].to_string().c_str(),
                result.decoded_code.to_string().c_str(),
                result.authenticated ? 1 : 0, result.user_id.c_str(),
                result.distance);
  }

  // Impostor attempts: random unenrolled codes.
  constexpr int kImpostors = 4;
  for (int i = 0; i < kImpostors; ++i) {
    auth::CytoCode code;
    do {
      code = auth::random_code(alphabet, rng);
    } while (db.lookup(code).has_value());
    const auto census = census_for_mixture(
        auth::encode_mixture(alphabet, code), verifier, duration_s,
        7000 + static_cast<std::uint64_t>(i));
    const auto result = verifier.authenticate(census, db);
    if (!result.authenticated) ++rejected_impostors;
    impostor_distances.push_back(result.distance);
  }

  std::printf("identification accuracy: %d/%d\n", identified, kUsers);
  std::printf("impostor rejection: %d/%d\n", rejected_impostors, kImpostors);
  std::printf("equal error rate: %.4f; threshold for FRR<=12.5%%: %.3f "
              "(deployed max_distance: 0.9)\n",
              auth::equal_error_rate(genuine_distances, impostor_distances),
              auth::threshold_for_frr(genuine_distances, 0.125));
  std::printf("paper: reliable classification of users with high accuracy\n");
  return 0;
}
