// Ablation (related-work comparison, Section VIII): MedSen's in-sensor
// analog encryption costs zero software cycles at acquisition time; the
// conventional alternative encrypts the digitized samples with a block or
// stream cipher on the device. This bench measures that alternative's
// cost (AES-128-CTR and ChaCha20 over acquisition-sized buffers) next to
// MedSen's (constant-time key generation only), quantifying the
// "no encryption overhead" claim.

#include <benchmark/benchmark.h>

#include <array>
#include <vector>

#include "core/key.h"
#include "crypto/aes.h"
#include "crypto/chacha20.h"

namespace {

using namespace medsen;

std::vector<std::uint8_t> sample_buffer(std::size_t bytes) {
  std::vector<std::uint8_t> buf(bytes);
  crypto::ChaChaRng rng(bytes);
  rng.fill(buf);
  return buf;
}

void BM_SoftwareAes128Ctr(benchmark::State& state) {
  auto buf = sample_buffer(static_cast<std::size_t>(state.range(0)));
  std::array<std::uint8_t, 16> key{};
  key[0] = 1;
  for (auto _ : state) {
    crypto::Aes128Ctr ctr(key, 42);
    ctr.apply(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_SoftwareChaCha20(benchmark::State& state) {
  auto buf = sample_buffer(static_cast<std::size_t>(state.range(0)));
  std::array<std::uint8_t, 32> key{};
  std::array<std::uint8_t, 12> nonce{};
  for (auto _ : state) {
    crypto::ChaCha20 cipher(key, nonce, 0);
    cipher.apply(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

// MedSen's in-sensor scheme: the only software work is generating the key
// schedule; the "encryption" happens in the analog domain for free. Cost
// is independent of the acquisition size.
void BM_MedSenInSensor(benchmark::State& state) {
  core::KeyParams params;
  params.num_electrodes = 9;
  params.period_s = 2.0;
  crypto::ChaChaRng rng(7);
  const double duration_s = 60.0;
  for (auto _ : state) {
    auto schedule = core::KeySchedule::generate(params, duration_s, rng);
    benchmark::DoNotOptimize(schedule);
  }
  // Report the equivalent acquisition bytes this schedule covers so the
  // byte-rate columns are comparable: 60 s x 450 Hz x 8 ch x 8 B.
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(duration_s * 450 * 8 * 8));
}

// Acquisition-sized buffers: 60 s and 600 s of 8-channel 450 Hz doubles.
BENCHMARK(BM_SoftwareAes128Ctr)->Arg(1728000)->Arg(17280000);
BENCHMARK(BM_SoftwareChaCha20)->Arg(1728000)->Arg(17280000);
BENCHMARK(BM_MedSenInSensor);

}  // namespace

BENCHMARK_MAIN();
