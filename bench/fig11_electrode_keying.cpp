// Figure 11 (a-d): encrypted cytometry signatures of a 9-output sensor
// detecting 7.8 um beads at 2 MHz under four electrode-key patterns:
//   (a) one output electrode alone
//   (b) lead electrode 9 + electrode 1
//   (c) lead electrode 9 + electrodes 1, 2
//   (d) all nine outputs -> the 17-peak train the paper reports.
// The true count is only recoverable with the key (the mask).

#include <cstdio>

#include "bench_common.h"
#include "cloud/analysis_service.h"

using namespace medsen;

int main() {
  bench::header("Figure 11",
                "peak multiplicity follows the electrode key; all-on gives "
                "a 17-peak train per bead");

  auto design = sim::standard_design(9);
  design.lead_index = 8;  // the paper's Fig. 11 device: lead is "electrode 9"
  const auto channel = bench::default_channel();
  const auto config = bench::quiet_acquisition({2.0e6});

  struct Pattern {
    const char* label;
    sim::ElectrodeMask mask;
  };
  const Pattern patterns[] = {
      {"(a) electrode 5 only", 1u << 4},
      {"(b) lead 9 + electrode 1", (1u << 8) | 1u},
      {"(c) lead 9 + electrodes 1,2", (1u << 8) | 0b11u},
      {"(d) all nine outputs", design.all_mask()},
  };

  sim::SampleSpec sample;
  sample.components = {{sim::ParticleType::kBead780, 35.0}};
  cloud::AnalysisService service;

  std::printf("pattern,expected_peaks_per_bead,measured_peaks_per_bead\n");
  for (const auto& pattern : patterns) {
    const auto control = bench::fixed_control(pattern.mask);
    double beads = 0.0, peaks = 0.0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const auto result = sim::acquire(sample, channel, design, config,
                                       control, 12.0, seed);
      if (result.truth.total_particles() == 0) continue;
      const auto report = service.analyze(result.signals);
      beads += static_cast<double>(result.truth.total_particles());
      peaks += static_cast<double>(report.reference_peak_count(2.0e6));
    }
    std::printf("%s,%zu,%.2f\n", pattern.label,
                design.peaks_per_particle(pattern.mask),
                beads > 0 ? peaks / beads : 0.0);
  }
  std::printf("note: pattern (d) expected 17 = 8 double-peak outputs + "
              "single-peak lead (fabrication quirk reproduced)\n");
  return 0;
}
