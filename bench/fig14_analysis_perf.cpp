// Figure 14: peak-analysis processing time vs sample size, computer vs
// smartphone. Paper numbers (i7-4710MQ vs Nexus 5 Snapdragon 800):
//   240,607 samples: 0.110 s vs 0.343 s
//   481,214 samples: 0.215 s vs 0.810 s
//   962,428 samples: 0.452 s vs 1.554 s
// Absolute times differ on this substrate; the shape to reproduce is
// linear scaling with sample count and a constant ~3.4x phone penalty.
//
// Beyond the paper: the cloud side now runs the analysis on a thread
// pool, so BM_PeakAnalysis_Threads sweeps the thread count over the same
// workloads (plus a 4-carrier acquisition) and records the measured
// `speedup_vs_serial` so the scaling curve lands in the perf trajectory.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "cloud/analysis_service.h"
#include "crypto/chacha20.h"
#include "phone/profile.h"
#include "sim/signal_synth.h"

namespace {

using namespace medsen;

/// The instrument's aggregate output rate: 450 Hz lock-in output times
/// the 8-carrier frequency-division multiplex. `real_time_factor` is how
/// many times faster than this hardware rate one core analyzes.
constexpr double kHardwareSamplesPerSec = 450.0 * 8.0;

/// Synthetic acquisition of n total samples (split evenly over
/// `channels` carriers) with realistic peak density.
util::MultiChannelSeries make_series(std::size_t n_samples,
                                     std::size_t channels = 1) {
  const double rate = 450.0;
  const std::size_t per_channel = n_samples / channels;
  util::MultiChannelSeries series;
  for (std::size_t c = 0; c < channels; ++c) {
    crypto::ChaChaRng rng(n_samples + c);
    std::vector<double> depth(per_channel, 0.0);
    // ~1 peak per second of signal.
    const auto peaks = static_cast<std::size_t>(per_channel / rate);
    for (std::size_t p = 0; p < peaks; ++p) {
      const double center =
          rng.uniform_double() * static_cast<double>(per_channel) / rate;
      sim::add_gaussian_pulse(depth, rate, 0.0, center, 0.006,
                              0.004 + 0.01 * rng.uniform_double());
    }
    sim::DriftConfig drift;
    auto baseline = sim::synth_baseline(per_channel, rate, 0.0, drift, rng);
    for (std::size_t i = 0; i < per_channel; ++i)
      baseline[i] *= 1.0 - depth[i];
    sim::add_white_noise(baseline, 1.2e-4, rng);
    series.carrier_frequencies_hz.push_back(5.0e5 * (c + 1));
    series.channels.emplace_back(rate, std::move(baseline));
  }
  return series;
}

/// One serial analyze() to baseline the thread sweep against.
double serial_seconds(const util::MultiChannelSeries& series) {
  cloud::AnalysisConfig config;
  config.threads = 1;
  cloud::AnalysisService serial(config);
  const auto start = std::chrono::steady_clock::now();
  auto report = serial.analyze(series);
  benchmark::DoNotOptimize(report);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void BM_PeakAnalysis_Computer(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto series = make_series(n);
  // Paper's Fig. 14 computer curve is a single-core i7: keep serial.
  cloud::AnalysisConfig config;
  config.threads = 1;
  cloud::AnalysisService service(config);
  double total_s = 0.0;
  std::size_t iterations = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    auto report = service.analyze(series);
    benchmark::DoNotOptimize(report);
    total_s += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
    ++iterations;
  }
  const double per_core =
      iterations > 0 && total_s > 0.0
          ? static_cast<double>(n) /
                (total_s / static_cast<double>(iterations))
          : 0.0;
  state.counters["samples"] = static_cast<double>(n);
  state.counters["profile_scale"] = phone::computer_profile().slowdown;
  state.counters["samples_per_sec_per_core"] = per_core;
  state.counters["real_time_factor"] = per_core / kHardwareSamplesPerSec;
}

void BM_PeakAnalysis_Nexus5Model(benchmark::State& state) {
  const auto series = make_series(static_cast<std::size_t>(state.range(0)));
  cloud::AnalysisConfig config;
  config.threads = 1;
  cloud::AnalysisService service(config);
  const auto profile = phone::nexus5_profile();
  double total_scaled_s = 0.0;
  std::size_t iterations = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    auto report = service.analyze(series);
    benchmark::DoNotOptimize(report);
    const double real = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    // Report the profile-scaled time as this iteration's duration.
    state.SetIterationTime(profile.scale(real));
    total_scaled_s += profile.scale(real);
    ++iterations;
  }
  const auto n = static_cast<std::size_t>(state.range(0));
  const double per_core =
      iterations > 0 && total_scaled_s > 0.0
          ? static_cast<double>(n) /
                (total_scaled_s / static_cast<double>(iterations))
          : 0.0;
  state.counters["samples"] = static_cast<double>(n);
  state.counters["profile_scale"] = profile.slowdown;
  state.counters["samples_per_sec_per_core"] = per_core;
  state.counters["real_time_factor"] = per_core / kHardwareSamplesPerSec;
}

/// Thread-count sweep over the paper's workloads. range(0) = total
/// samples, range(1) = threads, range(2) = carrier channels.
void BM_PeakAnalysis_Threads(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<unsigned>(state.range(1));
  const auto channels = static_cast<std::size_t>(state.range(2));
  const auto series = make_series(n, channels);
  const double serial_s = serial_seconds(series);

  cloud::AnalysisConfig config;
  config.threads = threads;
  cloud::AnalysisService service(config);

  double total_s = 0.0;
  std::size_t iterations = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    auto report = service.analyze(series);
    benchmark::DoNotOptimize(report);
    total_s += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
    ++iterations;
  }
  const double mean_s =
      iterations > 0 ? total_s / static_cast<double>(iterations) : 0.0;
  const double per_core =
      mean_s > 0.0
          ? static_cast<double>(n) / mean_s / static_cast<double>(threads)
          : 0.0;
  state.counters["samples"] = static_cast<double>(n);
  state.counters["channels"] = static_cast<double>(channels);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["speedup_vs_serial"] = mean_s > 0.0 ? serial_s / mean_s : 0.0;
  state.counters["samples_per_sec_per_core"] = per_core;
  state.counters["real_time_factor"] = per_core / kHardwareSamplesPerSec;
}

BENCHMARK(BM_PeakAnalysis_Computer)
    ->Arg(240607)
    ->Arg(481214)
    ->Arg(962428)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PeakAnalysis_Nexus5Model)
    ->Arg(240607)
    ->Arg(481214)
    ->Arg(962428)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);
// Single-carrier sweep (window-level parallelism only) ...
BENCHMARK(BM_PeakAnalysis_Threads)
    ->ArgsProduct({{240607, 481214, 962428}, {1, 2, 4, 8}, {1}})
    ->Unit(benchmark::kMillisecond);
// ... and the 4-carrier acquisition (channel- and window-level).
BENCHMARK(BM_PeakAnalysis_Threads)
    ->ArgsProduct({{962428}, {1, 2, 4, 8}, {4}})
    ->Unit(benchmark::kMillisecond);

/// Console output as usual, plus every finished run folded into the
/// shared bench::JsonCounters artifact: per run, its adjusted time and
/// user counters under dotted keys
/// ("BM_PeakAnalysis_Threads.962428.4.1.speedup_vs_serial").
class JsonArtifactReporter : public benchmark::ConsoleReporter {
 public:
  JsonArtifactReporter() : json_("fig14_analysis_perf") {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      std::string key = run.benchmark_name();
      for (char& c : key)
        if (c == '/') c = '.';
      json_.set(key + ".time_ms", run.GetAdjustedRealTime());
      for (const auto& [counter_name, counter] : run.counters)
        json_.set(key + "." + counter_name,
                  static_cast<double>(counter.value));
    }
  }

  void write_artifact() const { json_.write(); }

 private:
  medsen::bench::JsonCounters json_;
};

}  // namespace

int main(int argc, char** argv) {
  // `--smoke`: CI preset — run only the paper's smallest computer-curve
  // workload so bench-smoke gets the headline samples_per_sec_per_core /
  // real_time_factor counters in seconds, not minutes.
  std::vector<char*> args(argv, argv + argc);
  std::string smoke_filter =
      "--benchmark_filter=BM_PeakAnalysis_Computer/240607";
  bool smoke = false;
  for (auto it = args.begin(); it != args.end();) {
    if (std::string(*it) == "--smoke") {
      smoke = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  if (smoke) args.push_back(smoke_filter.data());
  int arg_count = static_cast<int>(args.size());
  benchmark::Initialize(&arg_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(arg_count, args.data()))
    return 1;
  JsonArtifactReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  reporter.write_artifact();
  benchmark::Shutdown();
  return 0;
}
