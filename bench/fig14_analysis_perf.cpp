// Figure 14: peak-analysis processing time vs sample size, computer vs
// smartphone. Paper numbers (i7-4710MQ vs Nexus 5 Snapdragon 800):
//   240,607 samples: 0.110 s vs 0.343 s
//   481,214 samples: 0.215 s vs 0.810 s
//   962,428 samples: 0.452 s vs 1.554 s
// Absolute times differ on this substrate; the shape to reproduce is
// linear scaling with sample count and a constant ~3.4x phone penalty.

#include <benchmark/benchmark.h>

#include "cloud/analysis_service.h"
#include "crypto/chacha20.h"
#include "phone/profile.h"
#include "sim/signal_synth.h"

namespace {

using namespace medsen;

/// Synthetic acquisition of n total samples with realistic peak density.
util::MultiChannelSeries make_series(std::size_t n_samples) {
  crypto::ChaChaRng rng(n_samples);
  std::vector<double> depth(n_samples, 0.0);
  const double rate = 450.0;
  // ~1 peak per second of signal.
  const auto peaks = static_cast<std::size_t>(n_samples / rate);
  for (std::size_t p = 0; p < peaks; ++p) {
    const double center =
        rng.uniform_double() * static_cast<double>(n_samples) / rate;
    sim::add_gaussian_pulse(depth, rate, 0.0, center, 0.006,
                            0.004 + 0.01 * rng.uniform_double());
  }
  sim::DriftConfig drift;
  auto baseline = sim::synth_baseline(n_samples, rate, 0.0, drift, rng);
  for (std::size_t i = 0; i < n_samples; ++i)
    baseline[i] *= 1.0 - depth[i];
  sim::add_white_noise(baseline, 1.2e-4, rng);

  util::MultiChannelSeries series;
  series.carrier_frequencies_hz = {5.0e5};
  series.channels.emplace_back(rate, std::move(baseline));
  return series;
}

void BM_PeakAnalysis_Computer(benchmark::State& state) {
  const auto series = make_series(static_cast<std::size_t>(state.range(0)));
  cloud::AnalysisService service;
  for (auto _ : state) {
    auto report = service.analyze(series);
    benchmark::DoNotOptimize(report);
  }
  state.counters["samples"] = static_cast<double>(state.range(0));
  state.counters["profile_scale"] = phone::computer_profile().slowdown;
}

void BM_PeakAnalysis_Nexus5Model(benchmark::State& state) {
  const auto series = make_series(static_cast<std::size_t>(state.range(0)));
  cloud::AnalysisService service;
  const auto profile = phone::nexus5_profile();
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    auto report = service.analyze(series);
    benchmark::DoNotOptimize(report);
    const double real = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    // Report the profile-scaled time as this iteration's duration.
    state.SetIterationTime(profile.scale(real));
  }
  state.counters["samples"] = static_cast<double>(state.range(0));
  state.counters["profile_scale"] = profile.slowdown;
}

BENCHMARK(BM_PeakAnalysis_Computer)
    ->Arg(240607)
    ->Arg(481214)
    ->Arg(962428)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PeakAnalysis_Nexus5Model)
    ->Arg(240607)
    ->Arg(481214)
    ->Arg(962428)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
