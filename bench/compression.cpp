// Section VII-B data-transfer experiment: a 3 h acquisition produced
// ~600 MB of CSV measurements which the phone's zip stage reduced to
// ~240 MB (2.5x). Scaled down here: a multi-minute 8-carrier acquisition
// rendered to CSV and pushed through the LZSS+Huffman codec. The shape to
// match is the ~2-3x ratio on CSV sensor dumps.

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "compress/codec.h"
#include "util/csv.h"

using namespace medsen;

int main() {
  bench::header("Compression (600 MB -> 240 MB experiment, scaled)",
                "zip compression of CSV sensor dumps achieves ~2.5x");

  auto design = sim::standard_design(9);
  const auto channel = bench::default_channel();
  // Full 8-carrier configuration like the prototype.
  auto config = bench::quiet_acquisition(
      {5.0e5, 8.0e5, 1.0e6, 1.2e6, 1.4e6, 2.0e6, 3.0e6, 4.0e6});
  const auto control = bench::fixed_control(0b101);

  sim::SampleSpec sample;
  sample.components = {{sim::ParticleType::kBloodCell, 300.0},
                       {sim::ParticleType::kBead358, 150.0}};

  std::printf("duration_s,csv_bytes,compressed_bytes,ratio,comp_MB_per_s\n");
  for (double duration : {60.0, 180.0, 420.0}) {
    const auto result = sim::acquire(sample, channel, design, config,
                                     control, duration, 99);
    const std::string csv = util::to_csv(result.signals);
    const auto start = std::chrono::steady_clock::now();
    const auto packed = compress::compress_string(csv);
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    // Round-trip sanity.
    if (compress::decompress_string(packed) != csv) {
      std::printf("ROUND TRIP FAILED\n");
      return 1;
    }
    std::printf("%.0f,%zu,%zu,%.2f,%.1f\n", duration, csv.size(),
                packed.size(),
                compress::compression_ratio(csv.size(), packed.size()),
                static_cast<double>(csv.size()) / 1.0e6 / seconds);
  }
  std::printf("paper: 600 MB -> 240 MB is a 2.50x ratio\n");
  return 0;
}
