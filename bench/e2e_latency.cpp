// Abstract / Section VII claim: MedSen's end-to-end time requirement for
// disease diagnostics is ~0.2 s on average (post-acquisition processing:
// upload the encrypted measurement window, cloud peak analysis, download,
// controller decode + threshold diagnosis). Acquisition itself (pumping
// blood) is physical time and excluded, as in the paper.

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "phone/relay.h"

using namespace medsen;

int main() {
  bench::header("End-to-end latency",
                "diagnostics processing completes in ~0.2 s on average");

  const auto design = sim::standard_design(9);
  const auto channel = bench::default_channel();
  const auto config = bench::quiet_acquisition();
  auto key_params = bench::default_key_params();

  core::Controller controller(key_params, design,
                              core::DiagnosticProfile::cd4_staging(), 11);
  core::SensorEncryptor encryptor(design, channel, config);
  auto server = cloud::CloudServer(cloud::AnalysisConfig{},
                                   auth::CytoAlphabet{},
                                   auth::ParticleClassifier::train({}));
  const std::vector<std::uint8_t> mac_key = {1, 2, 3};
  server.provision_device(phone::RelayConfig{}.device_id, mac_key);

  std::printf(
      "run,usb_in_ms,compress_ms,uplink_ms,analysis_ms,downlink_ms,"
      "usb_out_ms,decode_ms,total_ms\n");
  double total_sum = 0.0;
  constexpr int kRuns = 5;
  for (int run = 0; run < kRuns; ++run) {
    const double duration = 20.0;  // one measurement window
    (void)controller.begin_session(duration);
    sim::SampleSpec sample;
    sample.components = {{sim::ParticleType::kBloodCell, 400.0}};
    const auto enc = encryptor.acquire(
        sample, controller.session_key_schedule_for_testing(), duration,
        200 + static_cast<std::uint64_t>(run));

    phone::PhoneRelay relay;
    const auto response = relay.relay_analysis(
        enc.signals, static_cast<std::uint64_t>(run), server, mac_key);
    const auto report = core::PeakReport::deserialize(response.payload);

    const auto t0 = std::chrono::steady_clock::now();
    const auto diagnosis = controller.conclude(report);
    const double decode_s = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
    (void)diagnosis;

    const auto& t = relay.timing();
    const double total = t.total_s() + decode_s;
    total_sum += total;
    std::printf("%d,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%.2f,%.1f\n", run,
                t.usb_in_s * 1e3, t.compression_s * 1e3, t.uplink_s * 1e3,
                t.analysis_s * 1e3, t.downlink_s * 1e3, t.usb_out_s * 1e3,
                decode_s * 1e3, total * 1e3);
  }
  std::printf("mean end-to-end: %.1f ms (paper: ~200 ms)\n",
              total_sum / kRuns * 1e3);

  // Latency vs loss rate: the same round trip over a lossy uplink with
  // the reliable transport (chunked ARQ, exponential backoff). 100% drop
  // exercises the graceful degradation to on-phone analysis.
  bench::header("Latency vs loss rate",
                "reliable transport keeps the result exact; retries and "
                "timeout waits stretch the wire time");
  std::printf(
      "drop_pct,retransmissions,timeouts,uplink_ms,downlink_ms,total_ms,"
      "local_fallback\n");
  const double duration = 20.0;
  (void)controller.begin_session(duration);
  sim::SampleSpec sample;
  sample.components = {{sim::ParticleType::kBloodCell, 400.0}};
  const auto enc = encryptor.acquire(
      sample, controller.session_key_schedule_for_testing(), duration, 900);
  for (const double drop_pct : {0.0, 2.0, 5.0, 10.0, 20.0, 100.0}) {
    phone::RelayConfig relay_config;
    relay_config.reliable_transport = true;
    relay_config.uplink_faults.drop_rate = drop_pct / 100.0;
    relay_config.uplink_faults.corrupt_rate = 0.02;
    relay_config.uplink_faults.duplicate_rate = 0.01;
    relay_config.uplink_faults.reorder_rate = 0.01;
    relay_config.uplink_faults.seed = 31 + static_cast<std::uint64_t>(drop_pct);
    relay_config.downlink_faults = relay_config.uplink_faults;
    relay_config.downlink_faults.seed += 1000;
    relay_config.reliable.chunk_bytes = 4096;
    relay_config.reliable.retry_budget = drop_pct >= 100.0 ? 8 : 500;

    phone::PhoneRelay lossy(relay_config);
    const auto session =
        1000 + static_cast<std::uint64_t>(drop_pct * 10.0);
    const auto response =
        lossy.relay_analysis(enc.signals, session, server, mac_key);
    (void)response;
    const auto& t = lossy.timing();
    std::printf("%.0f,%zu,%zu,%.1f,%.1f,%.1f,%s\n", drop_pct,
                t.retransmissions, t.timeouts, t.uplink_s * 1e3,
                t.downlink_s * 1e3, t.total_s() * 1e3,
                t.local_fallback ? "yes" : "no");
  }
  return 0;
}
