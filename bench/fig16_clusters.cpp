// Figure 16: scatter of peak amplitude at 500 kHz vs 2.5 MHz for a mixed
// sample of 3.58 um beads, 7.8 um beads and blood cells — three clusters
// with clear margins, the basis of cyto-coded password classification.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "auth/classifier.h"
#include "bench_common.h"
#include "cloud/analysis_service.h"
#include "dsp/kmeans.h"

using namespace medsen;

int main() {
  bench::header("Figure 16",
                "three separable clusters in the (500 kHz, 2.5 MHz) "
                "amplitude plane");

  const std::vector<double> carriers = {5.0e5, 2.5e6};
  auto design = sim::standard_design(9);
  design.lead_index = 0;
  const auto channel = bench::default_channel();
  const auto config = bench::quiet_acquisition(carriers);
  const auto control = bench::fixed_control(0b1);
  cloud::AnalysisService service;

  // Known-type acquisitions give labeled ground truth for the scatter.
  std::vector<dsp::FeatureVector> points;
  std::vector<std::size_t> labels;
  std::printf("particle,amp_500kHz,amp_2500kHz\n");
  for (auto type : {sim::ParticleType::kBead358,
                    sim::ParticleType::kBead780,
                    sim::ParticleType::kBloodCell}) {
    sim::SampleSpec sample;
    sample.components = {{type, 250.0}};
    const auto result =
        sim::acquire(sample, channel, design, config, control, 120.0,
                     1000 + static_cast<std::uint64_t>(type));
    const auto report = service.analyze(result.signals);
    const auto& ref = report.channels[0].peaks;
    for (const auto& p : ref) {
      // Match across channels by time.
      double hi = 0.0;
      for (const auto& q : report.channels[1].peaks)
        if (std::abs(q.time_s - p.time_s) < 0.02) hi = q.amplitude;
      if (hi <= 0.0) continue;
      std::printf("%s,%.5f,%.5f\n", sim::to_string(type).c_str(),
                  p.amplitude, hi);
      points.push_back({p.amplitude, hi});
      labels.push_back(static_cast<std::size_t>(type));
    }
  }

  // Unsupervised check: k-means recovers the three clusters. Clustering
  // runs in the classifier's transformed feature space (log size + shape
  // ratio), where the Fig. 16 clusters are compact.
  std::vector<dsp::FeatureVector> transformed;
  transformed.reserve(points.size());
  for (const auto& point : points)
    transformed.push_back(auth::ParticleClassifier::transform(point));
  const auto clustering = dsp::kmeans(transformed, 3);
  // Map clusters to majority labels and compute purity.
  std::size_t correct = 0;
  for (std::size_t c = 0; c < 3; ++c) {
    std::size_t votes[3] = {0, 0, 0};
    for (std::size_t i = 0; i < points.size(); ++i)
      if (clustering.assignment[i] == c) ++votes[labels[i]];
    correct += *std::max_element(votes, votes + 3);
  }
  std::printf("k-means cluster purity: %.3f over %zu peaks (paper: clear "
              "margins between clusters)\n",
              static_cast<double>(correct) /
                  static_cast<double>(points.size()),
              points.size());

  // Supervised check with the production classifier.
  const auto classifier = auth::ParticleClassifier::train(
      {carriers, 300, 0.06, 7});
  std::size_t agree = 0;
  for (std::size_t i = 0; i < points.size(); ++i)
    if (static_cast<std::size_t>(classifier.classify(points[i])) ==
        labels[i])
      ++agree;
  std::printf("nearest-centroid classification accuracy: %.3f\n",
              static_cast<double>(agree) /
                  static_cast<double>(points.size()));
  return 0;
}
