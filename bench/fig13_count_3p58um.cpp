// Figure 13: measured vs expected bead counts for dilutions of 3.58 um
// synthetic beads (larger counts than Fig. 12 — smaller beads at higher
// concentrations, losses milder because they sediment less).

#include "count_calibration.h"

int main() {
  medsen::bench::header(
      "Figure 13",
      "3.58 um bead counts vary linearly with concentration up to ~1200 "
      "expected");
  medsen::bench::run_count_calibration(medsen::sim::ParticleType::kBead358,
                                       {250.0, 750.0, 1500.0, 2750.0});
  return 0;
}
