// Restart-chaos harness for the crash-consistent durability layer
// (ISSUE 10 tentpole). Drives a scripted mix of durable traffic —
// provisioning, master rotation, diversified enrollment, user
// enrollment, stored records, session handshakes, compactions — against
// a WAL-backed CloudServer, kills the "process" with a SimulatedCrash at
// every registered crash point (exhaustive site sweep; --smoke runs
// exactly that, deterministically), reconstructs the server from disk,
// and verifies five invariants after every crash:
//
//   1. No acked record lost: everything acknowledged before the crash
//      is present after recovery.
//   2. No ghost record: nothing appears that was neither acked nor the
//      single in-flight operation the crash interrupted.
//   3. No duplicated auth decision: handshake nonces (RndB) stay
//      globally unique across every restart — a rewound ordinal would
//      let an observer replay a recorded handshake.
//   4. Counters monotonic across restart: the journal LSN never rewinds
//      past an acknowledged write.
//   5. No plaintext secret bytes on disk: device keys and the master
//      key never appear in any state file (the store is sealed).
//   6. No sealing-nonce reuse: across every file a crash leaves behind
//      (including stranded .tmp snapshots recovery never reads), no
//      AES-CTR nonce ever covers two different ciphertexts — keystream
//      reuse would leak the sealed secrets (XOR of ciphertexts = XOR of
//      plaintexts) without any plaintext substring for invariant 5's
//      scan to find.
//
// The long mode adds seeded random crash schedules (arm_random) on top
// of the exhaustive sweep; the same --seed replays the same schedule. A
// separate no-crash sizing phase measures recovery itself and exports
// recovery.replay_ms / recovery.records_replayed for the CI floor check
// (tools/bench/check_crash_floor.py).
//
// In-process limits, stated honestly: a SimulatedCrash unwinds the stack
// instead of killing the process, so destructors close file descriptors
// that a real power cut would abandon — but the harness writes nothing
// after the throw, crash sites inside write_file_atomic and
// Journal::append physically tear the files mid-write, and the page
// cache is the same one a kill -9 would leave behind.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include <span>
#include <utility>

#include "bench_common.h"
#include "cloud/durability.h"
#include "compress/crc32.h"
#include "cloud/persistence_error.h"
#include "cloud/server.h"
#include "core/session_crypto.h"
#include "crypto/cmac.h"
#include "net/messages.h"
#include "util/crash_point.h"
#include "util/fileio.h"

using namespace medsen;

namespace {

struct Options {
  std::uint64_t seed = 0x43485348414F53ull;  // "CHSHAOS"
  std::size_t random_runs = 100;
  double crash_probability = 0.02;
  std::size_t replay_records = 2000;
  std::string dir = "/tmp/medsen_crash_chaos";
  std::string out = "BENCH_crash_chaos.json";
  bool smoke = false;
};

[[noreturn]] void usage() {
  std::printf(
      "crash_chaos [--seed S] [--random-runs N] [--crash-prob P]\n"
      "            [--replay-records N] [--dir PATH] [--out PATH]\n"
      "            [--smoke]\n"
      "--smoke: exhaustive crash-site sweep only (deterministic CI "
      "preset)\n");
  std::exit(2);
}

Options parse_options(int argc, char** argv) {
  Options options;
  const auto next_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage();
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed") {
      options.seed = std::strtoull(next_value(i), nullptr, 10);
    } else if (arg == "--random-runs") {
      options.random_runs = std::strtoull(next_value(i), nullptr, 10);
    } else if (arg == "--crash-prob") {
      options.crash_probability = std::strtod(next_value(i), nullptr);
    } else if (arg == "--replay-records") {
      options.replay_records = std::strtoull(next_value(i), nullptr, 10);
    } else if (arg == "--dir") {
      options.dir = next_value(i);
    } else if (arg == "--out") {
      options.out = next_value(i);
    } else if (arg == "--smoke") {
      options.smoke = true;
      options.random_runs = 0;
      options.replay_records = 300;
    } else {
      usage();
    }
  }
  return options;
}

// The cast of the scripted workload. The key bytes are distinctive
// ascending runs so the on-disk secret scan (invariant 5) cannot
// false-negative on them.
constexpr std::uint64_t kLegacyA = 1;
constexpr std::uint64_t kLegacyB = 2;
constexpr std::uint64_t kEnrolled = 7;
constexpr std::uint32_t kEpoch = 1;
constexpr std::uint64_t kCryptoSeed = 0x1234;

std::vector<std::uint8_t> pattern_key(std::uint8_t base) {
  std::vector<std::uint8_t> key(16);
  for (std::size_t i = 0; i < key.size(); ++i)
    key[i] = static_cast<std::uint8_t>(base + i);
  return key;
}

std::vector<std::uint8_t> storage_key() {
  return std::vector<std::uint8_t>(32, 0x6B);
}

auth::CytoCode code_of(std::initializer_list<std::uint8_t> levels) {
  auth::CytoCode code;
  code.levels = levels;
  return code;
}

const char* kStateFiles[] = {"/journal.wal", "/records.snap", "/enroll.snap",
                             "/registry.snap", "/sessions.snap"};

void remove_state(const std::string& dir) {
  for (const char* file : kStateFiles) {
    std::remove((dir + file).c_str());
    std::remove((dir + file + ".tmp").c_str());
  }
  std::remove((dir + "/seal.epoch").c_str());
  std::remove((dir + "/seal.epoch.tmp").c_str());
}

/// Is `needle` a contiguous byte run in any state file (including torn
/// .tmp leftovers a crash may have abandoned)?
bool on_disk(const std::string& dir,
             const std::vector<std::uint8_t>& needle) {
  for (const char* file : kStateFiles) {
    for (const char* suffix : {"", ".tmp"}) {
      const auto path = dir + file + suffix;
      if (!util::file_exists(path)) continue;
      const auto bytes = util::read_file(path);
      if (std::search(bytes.begin(), bytes.end(), needle.begin(),
                      needle.end()) != bytes.end())
        return true;
    }
  }
  return false;
}

// ---- Invariant 6: sealed-payload scanner ---------------------------
// Reads the on-disk formats from the outside (docs/PROTOCOL.md), the
// way an attacker with the disk would, so a regression in the sealing
// layer cannot hide behind its own accessors.

std::uint32_t le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t le64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(le32(p)) |
         (static_cast<std::uint64_t>(le32(p + 4)) << 32);
}

/// One sealed payload observed on disk: its CTR nonce plus a ciphertext
/// fingerprint (CRC32 + length) so the same nonce showing up again can
/// be classified as "same bytes, still there" vs "reused keystream".
struct SealedSighting {
  std::uint64_t nonce = 0;
  std::uint32_t crc = 0;
  std::size_t len = 0;
};

/// Record one flag-prefixed payload (u8 flag | u64 nonce | ciphertext)
/// if it is sealed and complete enough to fingerprint.
void note_flagged(std::span<const std::uint8_t> flagged,
                  std::vector<SealedSighting>& out) {
  if (flagged.size() < 9 || flagged[0] != 1) return;
  out.push_back({le64(flagged.data() + 1),
                 compress::crc32(flagged.subspan(9)), flagged.size() - 9});
}

/// Walk a journal's frames, collecting the sealed payload of every
/// CRC-complete record. A torn tail is skipped: its ciphertext cannot
/// be fingerprinted — the nonce it consumed is exactly why sealing uses
/// per-boot epoch partitions instead of max(observed)+1.
void scan_journal(const std::vector<std::uint8_t>& bytes,
                  std::vector<SealedSighting>& out) {
  std::size_t offset = 16;  // file header
  while (offset + 8 <= bytes.size()) {
    const std::uint32_t len = le32(bytes.data() + offset);
    const std::uint32_t crc = le32(bytes.data() + offset + 4);
    if (len > bytes.size() - offset - 8) break;
    const std::span<const std::uint8_t> body{bytes.data() + offset + 8, len};
    if (compress::crc32(body) != crc) break;
    if (len > 9) note_flagged(body.subspan(9), out);  // skip LSN + type
    offset += 8 + len;
  }
}

/// Parse one snapshot container (live or stranded .tmp): u32 magic |
/// u32 version | u32 crc | blob(u64 applied_lsn | blob(flagged)). A
/// torn prefix that does not reach the flagged payload is skipped.
void scan_snapshot(const std::vector<std::uint8_t>& bytes,
                   std::vector<SealedSighting>& out) {
  if (bytes.size() < 16) return;
  const std::uint32_t outer_len = le32(bytes.data() + 12);
  if (outer_len < 12 || outer_len > bytes.size() - 16) return;
  const std::uint8_t* outer = bytes.data() + 16;
  const std::uint32_t flagged_len = le32(outer + 8);
  if (flagged_len > outer_len - 12) return;
  note_flagged({outer + 12, flagged_len}, out);
}

/// One server lifetime reconstructed from the state directory — the
/// harness's unit of "reboot".
struct Rig {
  std::unique_ptr<cloud::DurableState> durable;  // outlives the server
  std::unique_ptr<cloud::CloudServer> server;
  cloud::RecoveryStats recovery;

  explicit Rig(const std::string& dir, std::uint64_t compact_after = 5) {
    cloud::DurabilityConfig config;
    config.dir = dir;
    config.compact_after_records = compact_after;
    config.storage_key = storage_key();
    durable = std::make_unique<cloud::DurableState>(std::move(config));
    cloud::AnalysisConfig analysis;
    analysis.threads = 1;
    cloud::ServiceConfig service;
    service.quality_gate = false;
    service.allow_legacy_plane = false;
    service.shards = 4;
    server = std::make_unique<cloud::CloudServer>(
        analysis, auth::CytoAlphabet{}, auth::ParticleClassifier::train({}),
        auth::VerifierConfig{}, nullptr, service);
    recovery = server->attach_durability(*durable);
  }
  ~Rig() { server.reset(); }  // server first: it points at durable
};

/// What the harness has been promised. `acked` holds operations whose
/// calls returned before the crash (must survive); `allowed` adds the
/// single in-flight operation the crash interrupted (may survive — the
/// journal append races the power cut). Everything outside `allowed` is
/// a ghost.
struct Ledger {
  // code string -> acked / allowed session ids, in store order.
  std::map<std::string, std::vector<std::uint64_t>> acked_records;
  std::map<std::string, std::vector<std::uint64_t>> allowed_records;
  std::map<std::string, auth::CytoCode> codes;  ///< key -> the code itself
  std::map<std::string, std::string> acked_users, allowed_users;
  std::set<std::uint64_t> acked_devices, allowed_devices;
  std::set<std::uint64_t> acked_revoked, allowed_revoked;
  bool acked_epoch = false, allowed_epoch = false;
  std::uint64_t acked_lsn = 0;
  /// Every RndB this state-directory lineage has ever issued; invariant
  /// 3 is their global pairwise uniqueness.
  std::set<std::vector<std::uint8_t>> rnd_bs;
  /// Sealing nonce -> ciphertext fingerprint, across every disk
  /// observation of this lineage; invariant 6 is that no nonce ever
  /// reappears over *different* ciphertext (CTR keystream reuse).
  std::map<std::uint64_t, std::pair<std::uint32_t, std::size_t>> seal_nonces;
  std::uint64_t next_session = 100;
};

/// Per-invariant violation counters, aggregated across every run.
struct Invariants {
  std::uint64_t acked_lost = 0;
  std::uint64_t ghosts = 0;
  std::uint64_t duplicate_auth = 0;
  std::uint64_t counter_rewinds = 0;
  std::uint64_t secret_leaks = 0;
  std::uint64_t nonce_reuse = 0;
  std::uint64_t recovery_errors = 0;

  [[nodiscard]] std::uint64_t total() const {
    return acked_lost + ghosts + duplicate_auth + counter_rewinds +
           secret_leaks + nonce_reuse + recovery_errors;
  }
};

/// Invariant 6: fold every sealed payload currently on disk (state
/// files AND stranded .tmp snapshots) into the lineage's nonce map. The
/// dangerous case this exists for: a crash after a snapshot tmp is
/// fsync'd but before its rename leaves ciphertext under nonces that
/// recovery never reads — a counter rebuilt from observed payloads
/// would hand those nonces out again, and the reused keystream leaks
/// the sealed secrets with no plaintext substring for invariant 5.
std::size_t check_seal_nonces(const std::string& dir, Ledger& led,
                              Invariants& inv, const char* label) {
  std::vector<SealedSighting> sightings;
  for (const char* file : kStateFiles) {
    for (const char* suffix : {"", ".tmp"}) {
      const auto path = dir + file + suffix;
      if (!util::file_exists(path)) continue;
      const auto bytes = util::read_file(path);
      if (bytes.size() >= 4 && le32(bytes.data()) == 0x4D534A4CU)  // "MSJL"
        scan_journal(bytes, sightings);
      else
        scan_snapshot(bytes, sightings);
    }
  }
  std::size_t failures = 0;
  for (const auto& sighting : sightings) {
    const auto fingerprint = std::make_pair(sighting.crc, sighting.len);
    const auto [it, fresh] =
        led.seal_nonces.emplace(sighting.nonce, fingerprint);
    if (!fresh && it->second != fingerprint) {
      std::printf("INVARIANT 6 VIOLATED [%s]: sealing nonce %llu covers "
                  "two different ciphertexts — CTR keystream reuse\n",
                  label, static_cast<unsigned long long>(sighting.nonce));
      ++inv.nonce_reuse;
      ++failures;
    }
  }
  return failures;
}

/// Run the device side of one handshake and return the server's RndB,
/// or nullopt when the server (correctly) refuses. The device-side RndA
/// is the SAME every time (fixed crypto seed), so RndB freshness rests
/// entirely on the durability of the server's handshake ordinal.
std::optional<std::vector<std::uint8_t>> handshake_rnd_b(Rig& rig,
                                                         Ledger& led) {
  core::SessionCrypto crypto(
      kEnrolled,
      crypto::diversify_device_key(pattern_key(0xC0), kEnrolled, kEpoch),
      kEpoch, kCryptoSeed);
  const auto response =
      rig.server->handle(crypto.make_challenge(led.next_session++));
  if (response.type != net::MessageType::kAuthResponse) return std::nullopt;
  const auto payload = net::AuthResponsePayload::deserialize(response.payload);
  if (!crypto.complete(response)) return std::nullopt;
  return std::vector<std::uint8_t>(payload.challenge.begin(),
                                   payload.challenge.end());
}

/// Record a fresh RndB, reporting an invariant-3 violation when it
/// duplicates any nonce this lineage has seen.
bool note_rnd_b(Ledger& led, const std::vector<std::uint8_t>& rnd_b,
                Invariants& inv, const char* where) {
  if (!led.rnd_bs.insert(rnd_b).second) {
    std::printf("INVARIANT 3 VIOLATED (%s): duplicated RndB — a recorded "
                "handshake would replay\n",
                where);
    ++inv.duplicate_auth;
    return false;
  }
  return true;
}

/// The scripted workload: every durable operation the server supports,
/// sequenced so compaction (auto at 5 appends, plus one explicit call)
/// lands in the middle of live traffic. Throws SimulatedCrash when a
/// site is armed; the ledger then holds exactly what was acked.
void run_workload(Rig& rig, Ledger& led, Invariants& inv) {
  const auto code1 = code_of({2, 1});
  const auto code2 = code_of({1, 2});
  const auto ack_lsn = [&] { led.acked_lsn = rig.durable->last_lsn(); };

  const auto provision = [&](std::uint64_t id, std::uint8_t base) {
    led.allowed_devices.insert(id);
    rig.server->provision_device(id, pattern_key(base));
    led.acked_devices.insert(id);
    ack_lsn();
  };
  const auto store = [&](const auth::CytoCode& code, std::uint64_t session,
                         std::uint8_t fill) {
    led.codes[code.to_string()] = code;
    led.allowed_records[code.to_string()].push_back(session);
    rig.server->store_result(code,
                             {session, std::vector<std::uint8_t>(8, fill)});
    led.acked_records[code.to_string()].push_back(session);
    ack_lsn();
  };
  const auto enroll_user = [&](const std::string& user,
                               const auth::CytoCode& code) {
    led.codes[code.to_string()] = code;
    led.allowed_users[code.to_string()] = user;
    rig.server->enroll_user(user, code);
    led.acked_users[code.to_string()] = user;
    ack_lsn();
  };
  const auto handshake = [&] {
    // The ordinal may burn even when the crash eats the response; only
    // a *returned* RndB joins the uniqueness set.
    const auto rnd_b = handshake_rnd_b(rig, led);
    if (rnd_b) note_rnd_b(led, *rnd_b, inv, "workload");
    ack_lsn();
  };

  provision(kLegacyA, 0xA0);
  led.allowed_epoch = true;
  rig.server->rotate_master_key(kEpoch, pattern_key(0xC0));
  led.acked_epoch = true;
  ack_lsn();
  led.allowed_devices.insert(kEnrolled);
  rig.server->enroll_device(kEnrolled);
  led.acked_devices.insert(kEnrolled);
  ack_lsn();
  enroll_user("alice", code1);
  handshake();  // 5th append: auto-compaction fires here
  store(code1, 11, 0x11);
  provision(kLegacyB, 0xB0);
  handshake();
  store(code1, 12, 0x12);
  rig.durable->compact(*rig.server);
  led.allowed_revoked.insert(kLegacyA);
  if (rig.server->revoke_device(kLegacyA)) {
    led.acked_revoked.insert(kLegacyA);
  }
  ack_lsn();
  enroll_user("bob", code2);
  store(code2, 21, 0x21);
  handshake();
  store(code1, 13, 0x13);  // 5 appends since compact: auto-compacts again
}

/// Check every invariant against a freshly recovered rig.
std::size_t verify(Rig& rig, Ledger& led, const std::string& dir,
                   const char* label, Invariants& inv) {
  std::size_t failures = 0;
  const auto fail = [&](const char* what, const std::string& detail) {
    std::printf("INVARIANT VIOLATED [%s] %s: %s\n", label, what,
                detail.c_str());
    ++failures;
  };

  // 1 + 2: records. Every acked id must recover, in store order —
  // as a subsequence, not a prefix, because a crash-interrupted store
  // whose journal append already landed legitimately survives *ahead*
  // of records acked after recovery. Everything recovered must be
  // allowed.
  std::size_t recovered_total = 0;
  for (const auto& [key, allowed] : led.allowed_records) {
    const auto& code = led.codes.at(key);
    std::vector<std::uint64_t> got;
    for (const auto& record : rig.server->records().fetch(code))
      got.push_back(record.session_id);
    recovered_total += got.size();
    const auto& acked = led.acked_records[key];
    std::size_t matched = 0;
    for (const auto id : got)
      if (matched < acked.size() && acked[matched] == id) ++matched;
    if (matched < acked.size()) {
      fail("acked record lost",
           "code " + key + " session " + std::to_string(acked[matched]));
      ++inv.acked_lost;
    }
    for (const auto id : got) {
      if (std::find(allowed.begin(), allowed.end(), id) == allowed.end()) {
        fail("ghost record", "code " + key + " session " +
                                 std::to_string(id));
        ++inv.ghosts;
      }
    }
  }
  if (rig.server->records().record_count() != recovered_total) {
    fail("ghost record", "records under a key the workload never used");
    ++inv.ghosts;
  }

  // 1 + 2: user enrollments.
  for (const auto& [key, user] : led.acked_users) {
    const auto& code = led.codes.at(key);
    if (rig.server->enrollments().lookup(code) !=
        std::optional<std::string>(user)) {
      fail("acked enrollment lost", user);
      ++inv.acked_lost;
    }
  }
  for (const auto& record : rig.server->enrollments().records()) {
    const auto it = led.allowed_users.find(record.code.to_string());
    if (it == led.allowed_users.end() || it->second != record.user_id) {
      fail("ghost enrollment", record.user_id);
      ++inv.ghosts;
    }
  }

  // 1 + 2: registry.
  for (const auto id : led.acked_devices) {
    const bool present = id == kEnrolled
                             ? rig.server->devices()
                                   .lookup_epoch(id, kEpoch)
                                   .has_value()
                             : rig.server->devices().lookup(id).has_value();
    // Revocation tombstones a device: a revoked id no longer resolves,
    // and is_revoked is the surviving acked fact. An *in-flight* revoke
    // (allowed, unacked) may also have committed its append.
    if (!present && led.allowed_revoked.count(id) == 0) {
      fail("acked device lost", "device " + std::to_string(id));
      ++inv.acked_lost;
    }
  }
  for (const auto id : led.acked_revoked) {
    if (!rig.server->devices().is_revoked(id)) {
      fail("acked revocation lost", "device " + std::to_string(id));
      ++inv.acked_lost;
    }
  }
  if (rig.server->devices().size() > led.allowed_devices.size()) {
    fail("ghost device",
         "registry size " + std::to_string(rig.server->devices().size()));
    ++inv.ghosts;
  }
  if (led.acked_epoch && !rig.server->devices().has_epoch(kEpoch)) {
    fail("acked master rotation lost", "epoch 1");
    ++inv.acked_lost;
  }

  // 4: the LSN high-water mark never rewinds past an acked write.
  if (rig.durable->last_lsn() < led.acked_lsn) {
    fail("LSN rewound", "recovered " +
                            std::to_string(rig.durable->last_lsn()) +
                            " < acked " + std::to_string(led.acked_lsn));
    ++inv.counter_rewinds;
  }

  // 3: a fresh handshake against the recovered server must issue an
  // RndB this lineage has never seen, even though the device replays
  // the exact same RndA.
  if (rig.server->devices().has_epoch(kEpoch) &&
      rig.server->devices().lookup_epoch(kEnrolled, kEpoch).has_value()) {
    const auto rnd_b = handshake_rnd_b(rig, led);
    if (!rnd_b) {
      fail("post-recovery handshake refused", "device 7");
      ++inv.recovery_errors;
    } else if (!note_rnd_b(led, *rnd_b, inv, label)) {
      ++failures;
    }
  }

  // 5: no plaintext key material in any state file (or torn .tmp).
  for (const auto base : {0xA0, 0xB0, 0xC0}) {
    if (on_disk(dir, pattern_key(static_cast<std::uint8_t>(base)))) {
      fail("plaintext secret on disk",
           "key pattern base " + std::to_string(base));
      ++inv.secret_leaks;
    }
  }

  // 6: no sealing-nonce reuse across the lineage's disk observations.
  failures += check_seal_nonces(dir, led, inv, label);
  return failures;
}

struct RunOutcome {
  bool crashed = false;
  std::string crash_site;
  std::size_t failures = 0;
};

/// One chaos run: arm, run the workload until the crash (or to the
/// end), "reboot" from disk — re-arming stays live so the crash can
/// land inside recovery itself — verify, then prove the recovered
/// server still acknowledges durably (a liveness write that must
/// survive one more restart).
RunOutcome run_once(const Options& options,
                    const std::function<void()>& arm_fn, const char* label,
                    Invariants& inv) {
  RunOutcome out;
  remove_state(options.dir);
  util::CrashPoints::instance().reset();
  Ledger led;
  arm_fn();

  std::unique_ptr<Rig> rig;
  try {
    rig = std::make_unique<Rig>(options.dir);
    run_workload(*rig, led, inv);
  } catch (const util::SimulatedCrash& crash) {
    out.crashed = true;
    out.crash_site = crash.site;
  }
  rig.reset();  // process death

  // Snapshot the nonce map from the crash wreckage BEFORE rebooting:
  // recovery unlinks stranded .tmp files, so this is the only moment
  // their sealed ciphertext (and the nonces it burned) is observable.
  // A post-recovery append that recycled one of those nonces is then
  // caught by the verify()-time scans against the same map.
  out.failures += check_seal_nonces(options.dir, led, inv, "pre-reboot");

  // Reboot. The trigger stays armed: an nth-hit that falls inside
  // recovery kills the recovering process too, and the second reboot
  // must then succeed (hit counts advance monotonically, so a single
  // armed site cannot fire twice).
  for (int attempt = 0; attempt < 2 && !rig; ++attempt) {
    try {
      rig = std::make_unique<Rig>(options.dir);
    } catch (const util::SimulatedCrash& crash) {
      out.crashed = true;
      out.crash_site = crash.site;
    } catch (const cloud::PersistenceError& e) {
      // Crash damage is always a clean prefix or a torn tail; the typed
      // corruption error here means recovery mis-classified it.
      std::printf("INVARIANT VIOLATED [%s] recovery threw: %s\n", label,
                  e.what());
      ++inv.recovery_errors;
      ++out.failures;
      util::CrashPoints::instance().reset();
      remove_state(options.dir);
      return out;
    }
  }
  util::CrashPoints::instance().reset();  // quiesce for verification
  if (!rig) {
    std::printf("INVARIANT VIOLATED [%s] recovery crashed twice\n", label);
    ++inv.recovery_errors;
    ++out.failures;
    remove_state(options.dir);
    return out;
  }

  out.failures += verify(*rig, led, options.dir, label, inv);

  // Liveness: the recovered server keeps its ack ⇒ durable promise.
  const auto code = code_of({2, 1});
  led.codes[code.to_string()] = code;
  led.allowed_records[code.to_string()].push_back(91);
  rig->server->store_result(code, {91, {0x91}});
  led.acked_records[code.to_string()].push_back(91);
  led.acked_lsn = rig->durable->last_lsn();
  rig.reset();

  Rig third(options.dir);
  out.failures += verify(third, led, options.dir, label, inv);
  remove_state(options.dir);
  return out;
}

/// Tracking-only discovery run: enumerate every crash site the workload
/// and a restart actually reach, so the sweep can never silently go
/// stale as sites are added.
std::vector<std::pair<std::string, std::uint64_t>> discover_sites(
    const Options& options, Invariants& inv) {
  remove_state(options.dir);
  util::CrashPoints::instance().reset();
  util::CrashPoints::instance().set_tracking(true);
  Ledger led;
  {
    Rig rig(options.dir);
    run_workload(rig, led, inv);
  }
  { Rig rig(options.dir); }  // restart: recovery-side sites
  auto sites = util::CrashPoints::instance().discovered();
  util::CrashPoints::instance().set_tracking(false);
  util::CrashPoints::instance().reset();
  remove_state(options.dir);
  return sites;
}

/// No-crash recovery sizing: N records through the WAL (no compaction),
/// one restart, report how long replay took.
cloud::RecoveryStats measure_recovery(const Options& options) {
  const auto dir = options.dir + "_sizing";
  remove_state(dir);
  const auto code = code_of({2, 2});
  {
    Rig rig(dir, /*compact_after=*/0);
    rig.server->rotate_master_key(kEpoch, pattern_key(0xC0));
    rig.server->enroll_device(kEnrolled);
    rig.server->enroll_user("carol", code);
    for (std::uint64_t i = 0; i < options.replay_records; ++i)
      rig.server->store_result(
          code, {1000 + i, std::vector<std::uint8_t>(
                               32, static_cast<std::uint8_t>(i & 0xFF))});
  }
  Rig rig(dir, /*compact_after=*/0);
  const auto stats = rig.recovery;
  remove_state(dir);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_options(argc, argv);
  bench::header("Restart-chaos harness",
                "a crash at any persistence boundary loses no acked "
                "write, invents none, and never re-issues an auth nonce");

  Invariants inv;

  // Phase 0: baseline — the workload and a restart with nothing armed.
  {
    const auto outcome = run_once(options, [] {}, "baseline", inv);
    if (outcome.crashed) {
      std::printf("baseline run crashed unexpectedly at %s\n",
                  outcome.crash_site.c_str());
      ++inv.recovery_errors;
    }
  }

  // Phase 1: discovery.
  const auto sites = discover_sites(options, inv);
  std::printf("discovered %zu crash sites:\n", sites.size());
  for (const auto& [site, hits] : sites)
    std::printf("  %-40s %llu hits\n", site.c_str(),
                static_cast<unsigned long long>(hits));

  // Phase 2: exhaustive sweep — first, middle and last hit of every
  // site, so each boundary dies early, mid-traffic and at its final use
  // (which for boot-time sites lands inside recovery itself).
  std::size_t sweep_runs = 0, sweep_crashes = 0;
  for (const auto& [site, hits] : sites) {
    std::set<std::uint64_t> nths = {1, (hits + 1) / 2, hits};
    for (const auto nth : nths) {
      const std::string label = site + "#" + std::to_string(nth);
      const auto outcome = run_once(
          options,
          [&, site = site] { util::CrashPoints::instance().arm(site, nth); },
          label.c_str(), inv);
      ++sweep_runs;
      if (outcome.crashed) ++sweep_crashes;
    }
  }
  std::printf("sweep: %zu runs over %zu sites, %zu crashes fired, "
              "%llu invariant failures\n",
              sweep_runs, sites.size(), sweep_crashes,
              static_cast<unsigned long long>(inv.total()));

  // Phase 3 (long mode): seeded random crash schedules.
  std::size_t random_crashes = 0;
  for (std::size_t run = 0; run < options.random_runs; ++run) {
    const std::string label = "random#" + std::to_string(run);
    const auto outcome = run_once(
        options,
        [&] {
          util::CrashPoints::instance().arm_random(
              options.crash_probability, options.seed + run);
        },
        label.c_str(), inv);
    if (outcome.crashed) ++random_crashes;
  }
  if (options.random_runs > 0)
    std::printf("random: %zu runs (p=%.3f), %zu crashes fired\n",
                options.random_runs, options.crash_probability,
                random_crashes);

  // Phase 4: recovery sizing (the CI floor input).
  const auto sizing = measure_recovery(options);
  std::printf("recovery: %llu records replayed in %.2f ms (%.1f rec/ms)\n",
              static_cast<unsigned long long>(sizing.records_replayed),
              sizing.replay_ms,
              sizing.replay_ms > 0.0
                  ? static_cast<double>(sizing.records_replayed) /
                        sizing.replay_ms
                  : 0.0);

  bench::JsonCounters json("crash_chaos");
  json.set_text("mode", options.smoke ? "smoke" : "full");
  json.set_count("seed", options.seed);
  json.set_count("sites_discovered", sites.size());
  json.set_count("sweep.runs", sweep_runs);
  json.set_count("sweep.crashes_fired", sweep_crashes);
  json.set_count("random.runs", options.random_runs);
  json.set_count("random.crashes_fired", random_crashes);
  json.set_count("invariants.acked_lost", inv.acked_lost);
  json.set_count("invariants.ghost_records", inv.ghosts);
  json.set_count("invariants.duplicate_auth", inv.duplicate_auth);
  json.set_count("invariants.counter_rewinds", inv.counter_rewinds);
  json.set_count("invariants.secret_leaks", inv.secret_leaks);
  json.set_count("invariants.nonce_reuse", inv.nonce_reuse);
  json.set_count("invariants.recovery_errors", inv.recovery_errors);
  json.set_count("invariants.total_failures", inv.total());
  json.set_count("recovery.records_replayed", sizing.records_replayed);
  json.set("recovery.replay_ms", sizing.replay_ms);
  json.set("recovery.ms_per_1k_records",
           sizing.records_replayed > 0
               ? sizing.replay_ms * 1000.0 /
                     static_cast<double>(sizing.records_replayed)
               : 0.0);
  json.write(options.out);

  if (inv.total() != 0) {
    std::printf("FAILED: %llu invariant violations\n",
                static_cast<unsigned long long>(inv.total()));
    return 1;
  }
  std::printf("all invariants held across every crash\n");
  return 0;
}
