#pragma once
// Shared harness for the bead-count calibration figures (Fig. 12/13):
// dilution series of one synthetic bead type, four samples per
// concentration, counts taken from the first five minutes of each run —
// exactly the paper's protocol. Loss mechanisms (inlet sedimentation,
// wall adsorption) are enabled, producing the measured-below-expected
// slope the paper reports.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "cloud/analysis_service.h"
#include "util/stats.h"

namespace medsen::bench {

inline void run_count_calibration(sim::ParticleType type,
                                  const std::vector<double>& concentrations,
                                  double duration_s = 300.0) {
  auto design = sim::standard_design(9);
  design.lead_index = 0;
  auto channel = default_channel(/*losses=*/true);
  const auto config = quiet_acquisition({5.0e5});
  // Lead electrode alone: exactly one peak per particle, so the peak
  // count IS the bead count (encryption off for calibration).
  const auto control = fixed_control(0b1);

  cloud::AnalysisService service;
  std::vector<double> expected, measured;

  std::printf("concentration_per_ul,sample,expected_count,measured_count\n");
  for (double conc : concentrations) {
    sim::SampleSpec sample;
    sample.components = {{type, conc}};
    const double volume_ul = 0.08 * duration_s / 60.0;
    for (std::uint64_t replica = 0; replica < 4; ++replica) {
      const auto result = sim::acquire(
          sample, channel, design, config, control, duration_s,
          0x9000 + static_cast<std::uint64_t>(conc) * 10 + replica);
      const auto report = service.analyze(result.signals);
      const double expect = sample.expected_count(type, volume_ul);
      const double measure =
          static_cast<double>(report.reference_peak_count(5.0e5));
      std::printf("%.0f,%llu,%.1f,%.0f\n", conc,
                  static_cast<unsigned long long>(replica), expect, measure);
      expected.push_back(expect);
      measured.push_back(measure);
    }
  }

  const auto fit = util::linear_fit(expected, measured);
  std::printf("linear fit: measured = %.3f * expected + %.2f (r^2 = %.4f)\n",
              fit.slope, fit.intercept, fit.r2);
  std::printf("paper shape: linear correlation with slope < 1 "
              "(sedimentation + wall adsorption losses)\n");
}

}  // namespace medsen::bench
