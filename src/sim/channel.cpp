#include "sim/channel.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace medsen::sim {

double linear_velocity_um_s(const ChannelGeometry& geometry,
                            double flow_ul_min) {
  // 1 uL = 1e9 um^3; per minute -> per second.
  const double q_um3_s = flow_ul_min * 1.0e9 / 60.0;
  return q_um3_s / geometry.area_um2();
}

double pumped_volume_ul(const std::vector<FlowSegment>& flow_profile,
                        double duration_s) {
  double volume = 0.0;
  for (std::size_t i = 0; i < flow_profile.size(); ++i) {
    const double start = std::max(0.0, flow_profile[i].t_start_s);
    const double end = (i + 1 < flow_profile.size())
                           ? std::min(flow_profile[i + 1].t_start_s, duration_s)
                           : duration_s;
    if (end <= start) continue;
    volume += flow_profile[i].flow_ul_min * (end - start) / 60.0;
  }
  return volume;
}

namespace {

double flow_at(const std::vector<FlowSegment>& profile, double t) {
  double flow = profile.front().flow_ul_min;
  for (const auto& seg : profile) {
    if (seg.t_start_s <= t) flow = seg.flow_ul_min;
    else break;
  }
  return flow;
}

}  // namespace

std::vector<TransitEvent> simulate_transits(
    const SampleSpec& sample, const ChannelConfig& config,
    std::vector<FlowSegment> flow_profile, double duration_s,
    crypto::ChaChaRng& rng) {
  if (flow_profile.empty())
    throw std::invalid_argument("simulate_transits: empty flow profile");
  std::sort(flow_profile.begin(), flow_profile.end(),
            [](const FlowSegment& a, const FlowSegment& b) {
              return a.t_start_s < b.t_start_s;
            });

  std::vector<TransitEvent> events;
  for (const auto& component : sample.components) {
    if (component.concentration_per_ul <= 0.0) continue;
    const ParticleProperties& props = properties(component.type);

    // Thinned Poisson process: step through time in small increments so
    // the rate can follow the flow profile.
    const double dt = 0.25;  // s
    for (double t = 0.0; t < duration_s; t += dt) {
      const double flow = flow_at(flow_profile, t);
      const double window = std::min(dt, duration_s - t);
      const double rate_per_s =
          component.concentration_per_ul * flow / 60.0;  // particles/s
      const std::uint64_t n = rng.poisson(rate_per_s * window);
      for (std::uint64_t i = 0; i < n; ++i) {
        const double arrival = t + rng.uniform_double() * window;

        // Loss mechanisms.
        if (config.loss.enabled) {
          if (rng.bernoulli(config.loss.adsorption_probability)) continue;
          const double size_factor =
              std::pow(props.diameter_um_mean / 5.0,
                       config.loss.size_exponent);
          const double p_sed = std::min(
              config.loss.sed_cap,
              config.loss.sed_rate_per_hour * size_factor * arrival / 3600.0);
          if (rng.bernoulli(p_sed)) continue;
        }

        TransitEvent ev;
        ev.particle.type = component.type;
        ev.particle.diameter_um = std::max(
            0.5, rng.normal(props.diameter_um_mean, props.diameter_um_sigma));
        ev.enter_time_s = arrival;
        const double mean_v =
            linear_velocity_um_s(config.geometry, flow_at(flow_profile, arrival));
        ev.speed_um_s =
            mean_v * std::max(0.2, rng.normal(1.0, config.speed_jitter));
        events.push_back(ev);
      }
    }
  }

  std::sort(events.begin(), events.end(),
            [](const TransitEvent& a, const TransitEvent& b) {
              return a.enter_time_s < b.enter_time_s;
            });

  // Enforce single-file headway: push colliding arrivals back.
  for (std::size_t i = 1; i < events.size(); ++i) {
    const double min_time =
        events[i - 1].enter_time_s + config.min_headway_s;
    if (events[i].enter_time_s < min_time) events[i].enter_time_s = min_time;
  }
  // Queued particles can be pushed past the end of the acquisition.
  while (!events.empty() && events.back().enter_time_s >= duration_s)
    events.pop_back();
  return events;
}

}  // namespace medsen::sim
