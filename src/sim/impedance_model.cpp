#include "sim/impedance_model.h"

#include <cmath>
#include <numbers>

namespace medsen::sim {

std::complex<double> pair_impedance(const ElectrodePairModel& model,
                                    double frequency_hz) {
  using namespace std::complex_literals;
  const double omega = 2.0 * std::numbers::pi * frequency_hz;
  if (omega <= 0.0) return {1e12, 0.0};  // DC: capacitors block
  // Two double-layer capacitances in series with the solution resistance.
  const std::complex<double> z_dl =
      1.0 / (1i * omega * model.double_layer_capacitance_f);
  const std::complex<double> series =
      model.solution_resistance_ohm + 2.0 * z_dl;
  // Parasitic capacitance shunts the whole branch.
  if (model.parasitic_capacitance_f > 0.0) {
    const std::complex<double> z_par =
        1.0 / (1i * omega * model.parasitic_capacitance_f);
    return (series * z_par) / (series + z_par);
  }
  return series;
}

double impedance_magnitude(const ElectrodePairModel& model,
                           double frequency_hz) {
  return std::abs(pair_impedance(model, frequency_hz));
}

double resistive_fraction(const ElectrodePairModel& model,
                          double frequency_hz) {
  const double omega = 2.0 * std::numbers::pi * frequency_hz;
  if (omega <= 0.0) return 0.0;
  const double x_dl = 2.0 / (omega * model.double_layer_capacitance_f);
  const double r = model.solution_resistance_ohm;
  return r / std::sqrt(r * r + x_dl * x_dl);
}

double amplitude_sensitivity(const ElectrodePairModel& model,
                             double frequency_hz) {
  // d|Z|/dR for the series branch = R / |Z_series|; this is exactly the
  // resistive fraction, reused here under its physical meaning.
  return resistive_fraction(model, frequency_hz);
}

}  // namespace medsen::sim
