#include "sim/particle.h"

#include <cmath>
#include <stdexcept>

namespace medsen::sim {

std::string to_string(ParticleType type) {
  switch (type) {
    case ParticleType::kBloodCell: return "blood_cell";
    case ParticleType::kBead358: return "bead_3.58um";
    case ParticleType::kBead780: return "bead_7.8um";
  }
  return "unknown";
}

const ParticleProperties& properties(ParticleType type) {
  // Contrast calibration anchors the simulator to the paper's Fig. 15:
  // at 500 kHz the 3.58 um bead dips ~0.3% below baseline, blood cells
  // ~0.6%, and 7.8 um beads ~1.3%; blood-cell response halves by ~2.5 MHz.
  static const ParticleProperties kBlood{7.0, 0.6, 0.0060, 2.5e6};
  static const ParticleProperties kSmallBead{3.58, 0.12, 0.0030, 0.0};
  static const ParticleProperties kLargeBead{7.8, 0.25, 0.0130, 0.0};
  switch (type) {
    case ParticleType::kBloodCell: return kBlood;
    case ParticleType::kBead358: return kSmallBead;
    case ParticleType::kBead780: return kLargeBead;
  }
  throw std::invalid_argument("properties: unknown particle type");
}

double frequency_factor(ParticleType type, double frequency_hz) {
  const ParticleProperties& props = properties(type);
  if (props.membrane_cutoff_hz <= 0.0) return 1.0;
  // Single-pole roll-off of the membrane polarization contribution,
  // normalized to 1 at the 500 kHz reference carrier.
  const double ratio = frequency_hz / props.membrane_cutoff_hz;
  const double ref_ratio = 5.0e5 / props.membrane_cutoff_hz;
  const double raw = 1.0 / std::sqrt(1.0 + ratio * ratio);
  const double ref = 1.0 / std::sqrt(1.0 + ref_ratio * ref_ratio);
  return raw / ref;
}

double peak_contrast(const Particle& particle, double frequency_hz) {
  const ParticleProperties& props = properties(particle.type);
  const double size_ratio = particle.diameter_um / props.diameter_um_mean;
  return props.base_contrast * size_ratio * size_ratio * size_ratio *
         frequency_factor(particle.type, frequency_hz);
}

double SampleSpec::expected_count(ParticleType type, double volume_ul) const {
  double total = 0.0;
  for (const auto& c : components)
    if (c.type == type) total += c.concentration_per_ul * volume_ul;
  return total;
}

}  // namespace medsen::sim
