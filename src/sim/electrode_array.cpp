#include "sim/electrode_array.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace medsen::sim {

std::size_t ElectrodeArrayDesign::peaks_per_particle(
    ElectrodeMask active) const {
  const ElectrodeMask mask = active & all_mask();
  const auto selected = static_cast<std::size_t>(std::popcount(mask));
  if (selected == 0) return 0;
  const bool lead_active = (mask >> lead_index) & 1u;
  if (fixed_lead_electrode || !lead_active) return 2 * selected;
  return 2 * selected - 1;  // lead contributes one peak instead of two
}

std::vector<ElectrodePulse> particle_pulses(const ElectrodeArrayDesign& design,
                                            ElectrodeMask active,
                                            double enter_time_s,
                                            double speed_um_s) {
  if (speed_um_s <= 0.0)
    throw std::invalid_argument("particle_pulses: speed must be positive");
  std::vector<ElectrodePulse> pulses;
  const ElectrodeMask mask = active & design.all_mask();
  // A pulse's FWHM is the dwell over one half-gap (the field is
  // concentrated between electrode edges); this keeps the double peaks
  // of one output and the peaks of adjacent outputs resolvable at the
  // 450 Hz output rate, as in the paper's Fig. 11 traces.
  const double width_s = design.pitch_um / 2.0 / speed_um_s;
  const double half_gap_s = design.pitch_um / 2.0 / speed_um_s;

  for (std::size_t i = 0; i < design.num_outputs; ++i) {
    if (((mask >> i) & 1u) == 0) continue;
    const double center_time =
        enter_time_s + design.output_position_um(i) / speed_um_s;
    const bool single_peak =
        (i == design.lead_index) && !design.fixed_lead_electrode;
    ElectrodePulse p;
    p.electrode = i;
    p.width_s = width_s;
    if (single_peak) {
      p.time_s = center_time;
      pulses.push_back(p);
    } else {
      p.time_s = center_time - half_gap_s;
      pulses.push_back(p);
      p.time_s = center_time + half_gap_s;
      pulses.push_back(p);
    }
  }
  std::sort(pulses.begin(), pulses.end(),
            [](const ElectrodePulse& a, const ElectrodePulse& b) {
              return a.time_s < b.time_s;
            });
  return pulses;
}

ElectrodeArrayDesign standard_design(std::size_t num_outputs) {
  switch (num_outputs) {
    case 2:
    case 3:
    case 5:
    case 9:
    case 16:
      break;
    default:
      throw std::invalid_argument(
          "standard_design: fabricated designs have 2/3/5/9/16 outputs");
  }
  ElectrodeArrayDesign design;
  design.num_outputs = num_outputs;
  design.lead_index = 0;
  return design;
}

}  // namespace medsen::sim
