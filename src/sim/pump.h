#pragma once
// Peristaltic pump program (the Harvard Apparatus Pico Plus of Fig. 9,
// label D). Real pumps cannot step flow instantaneously: a program is a
// sequence of holds and linear ramps, bounded by the pump's rate limits.
// The program compiles to the piecewise-constant FlowSegments the channel
// simulation consumes (ramps are discretized).

#include <vector>

#include "sim/channel.h"

namespace medsen::sim {

struct PumpLimits {
  double min_ul_min = 0.01;
  double max_ul_min = 1.0;
  /// Fastest rate change the pump can execute (uL/min per second).
  double max_slew_ul_min_per_s = 0.5;
};

/// One program step: hold at (or ramp to) a target flow.
struct PumpStep {
  double target_ul_min = 0.08;
  double hold_s = 1.0;    ///< dwell at the target after reaching it
  bool ramp = false;      ///< ramp linearly (at the slew limit) vs step
};

/// A validated, compilable pump program.
class PumpProgram {
 public:
  explicit PumpProgram(PumpLimits limits = {}) : limits_(limits) {}

  /// Append a step; throws std::invalid_argument if the target violates
  /// the pump's limits or the hold is negative.
  PumpProgram& add(const PumpStep& step);

  [[nodiscard]] const PumpLimits& limits() const { return limits_; }
  [[nodiscard]] std::size_t size() const { return steps_.size(); }
  [[nodiscard]] bool empty() const { return steps_.empty(); }

  /// Total program duration including ramp times (s).
  [[nodiscard]] double duration_s(double initial_ul_min = 0.0) const;

  /// Compile to flow segments starting from `initial_ul_min`, sampling
  /// ramps every `ramp_resolution_s`.
  [[nodiscard]] std::vector<FlowSegment> compile(
      double initial_ul_min = 0.0, double ramp_resolution_s = 0.25) const;

 private:
  PumpLimits limits_;
  std::vector<PumpStep> steps_;
};

/// Flow at time t for a compiled profile (piecewise constant, same rule
/// the channel simulation applies).
double flow_at(const std::vector<FlowSegment>& profile, double t);

/// Delivered flow under a progressive clog: from `onset_s` the channel
/// resistance grows and the delivered rate decays exponentially. Lower
/// commanded rates pack the occlusion more slowly, so the decay constant
/// scales inversely with the commanded rate relative to `nominal_ul_min`
/// — which is exactly why the recovery policy's flow derate helps.
double clogged_flow(double commanded_ul_min, double t, double onset_s,
                    double tau_s, double nominal_ul_min);

}  // namespace medsen::sim
