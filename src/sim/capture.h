#pragma once
// The capture chamber of the paper's Fig. 1: a probe-molecule (antibody)
// coated microfluidic section pre-concentrates target biomolecules on the
// channel surface; the specifically bound cells are then released and
// flow through the impedance sensor. Functionally it is a selective
// filter ahead of the counter: target particles are retained with high
// efficiency, non-targets mostly wash through (with some non-specific
// binding), and the release step re-suspends the retained population into
// a smaller volume — raising the target's effective concentration.

#include "crypto/chacha20.h"
#include "sim/particle.h"

namespace medsen::sim {

struct CaptureChamberConfig {
  ParticleType target = ParticleType::kBloodCell;
  /// Fraction of target particles bound by the antibody coating.
  double capture_efficiency = 0.92;
  /// Fraction of non-target particles retained non-specifically.
  double nonspecific_binding = 0.04;
  /// Fraction of bound particles recovered by the release step.
  double release_efficiency = 0.95;
  /// Volume ratio: the released sample is re-suspended into
  /// (1/concentration_factor) of the input volume.
  double concentration_factor = 10.0;
};

/// Result of one capture-release cycle.
struct CaptureResult {
  SampleSpec enriched;     ///< released sample, per-uL of the NEW volume
  SampleSpec flow_through; ///< what washed out, per-uL of the input volume

  /// Target fraction (purity) of the enriched sample by concentration.
  [[nodiscard]] double purity(ParticleType target) const;
};

/// Apply a capture-release cycle to a sample. Deterministic expected-value
/// model; per-particle stochasticity happens downstream in the channel
/// simulation.
CaptureResult capture_release(const SampleSpec& sample,
                              const CaptureChamberConfig& config);

/// Enrichment factor achieved for the target type: enriched target
/// concentration / input target concentration.
double enrichment_factor(const SampleSpec& sample,
                         const CaptureResult& result,
                         ParticleType target);

}  // namespace medsen::sim
