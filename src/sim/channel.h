#pragma once
// Microfluidic channel and pump model. Geometry follows the fabricated
// device (paper Section III-C / VI-A): a 30 um x 20 um measurement pore of
// 500 um length, fed by dispersal regions at both ends, driven by an
// external peristaltic pump at ~0.08 uL/min. Particles transit the pore
// single-file; arrivals follow a Poisson process set by concentration and
// volumetric flow. Loss mechanisms (inlet-well sedimentation growing with
// run time, wall adsorption) reproduce the systematic undercount of
// Fig. 12/13.

#include <cstdint>
#include <vector>

#include "crypto/chacha20.h"
#include "sim/particle.h"

namespace medsen::sim {

struct ChannelGeometry {
  double width_um = 30.0;
  double height_um = 20.0;
  double pore_length_um = 500.0;

  /// Cross-section area in um^2.
  [[nodiscard]] double area_um2() const { return width_um * height_um; }
};

/// Convert a volumetric flow (uL/min) to mean linear velocity in the pore
/// (um/s): v = Q / A.
double linear_velocity_um_s(const ChannelGeometry& geometry,
                            double flow_ul_min);

struct LossModel {
  /// Constant per-particle probability of adsorption to channel walls.
  double adsorption_probability = 0.03;
  /// Sedimentation: particles entering at time t are additionally lost
  /// with probability sed_rate_per_hour * (t / 3600 s), capped at
  /// sed_cap. Heavier (larger) particles sediment faster via the
  /// size_exponent on diameter relative to 5 um.
  double sed_rate_per_hour = 0.25;
  double sed_cap = 0.6;
  double size_exponent = 1.0;
  bool enabled = true;
};

/// One particle transit through the measurement pore.
struct TransitEvent {
  Particle particle;
  double enter_time_s = 0.0;     ///< time the particle reaches the sensing
                                 ///< region's first electrode
  double speed_um_s = 0.0;       ///< linear speed during the transit
};

struct ChannelConfig {
  ChannelGeometry geometry;
  LossModel loss;
  /// Relative jitter of individual particle speed around the mean
  /// (Poiseuille profile: particles ride different streamlines).
  double speed_jitter = 0.08;
  /// Minimum spacing enforced between consecutive transits (s); the pore
  /// singles particles out, so simultaneous arrivals queue up.
  double min_headway_s = 0.004;
};

/// A stretch of constant pump speed.
struct FlowSegment {
  double t_start_s = 0.0;
  double flow_ul_min = 0.08;
};

/// Simulate all particle transits over [0, duration_s) for a sample pumped
/// through the channel. `flow_profile` must be sorted by t_start_s and
/// non-empty; the first segment's start is clamped to 0.
std::vector<TransitEvent> simulate_transits(
    const SampleSpec& sample, const ChannelConfig& config,
    std::vector<FlowSegment> flow_profile, double duration_s,
    crypto::ChaChaRng& rng);

/// Pumped volume over [0, duration_s) for a flow profile (uL).
double pumped_volume_ul(const std::vector<FlowSegment>& flow_profile,
                        double duration_s);

}  // namespace medsen::sim
