#include "sim/pump.h"

#include <cmath>
#include <stdexcept>

namespace medsen::sim {

PumpProgram& PumpProgram::add(const PumpStep& step) {
  if (step.target_ul_min < limits_.min_ul_min ||
      step.target_ul_min > limits_.max_ul_min)
    throw std::invalid_argument("PumpProgram: target outside pump limits");
  if (step.hold_s < 0.0)
    throw std::invalid_argument("PumpProgram: negative hold");
  steps_.push_back(step);
  return *this;
}

double PumpProgram::duration_s(double initial_ul_min) const {
  double t = 0.0;
  double current = initial_ul_min;
  for (const auto& step : steps_) {
    if (step.ramp && limits_.max_slew_ul_min_per_s > 0.0)
      t += std::fabs(step.target_ul_min - current) /
           limits_.max_slew_ul_min_per_s;
    current = step.target_ul_min;
    t += step.hold_s;
  }
  return t;
}

std::vector<FlowSegment> PumpProgram::compile(
    double initial_ul_min, double ramp_resolution_s) const {
  if (ramp_resolution_s <= 0.0)
    throw std::invalid_argument("PumpProgram: bad ramp resolution");
  std::vector<FlowSegment> segments;
  double t = 0.0;
  double current = initial_ul_min;
  for (const auto& step : steps_) {
    if (step.ramp && limits_.max_slew_ul_min_per_s > 0.0 &&
        std::fabs(step.target_ul_min - current) > 1e-12) {
      const double ramp_time = std::fabs(step.target_ul_min - current) /
                               limits_.max_slew_ul_min_per_s;
      const auto slices = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::ceil(ramp_time /
                                                ramp_resolution_s)));
      for (std::size_t k = 0; k < slices; ++k) {
        const double frac =
            (static_cast<double>(k) + 0.5) / static_cast<double>(slices);
        segments.push_back(
            {t + ramp_time * static_cast<double>(k) /
                     static_cast<double>(slices),
             current + (step.target_ul_min - current) * frac});
      }
      t += ramp_time;
    }
    segments.push_back({t, step.target_ul_min});
    current = step.target_ul_min;
    t += step.hold_s;
  }
  if (segments.empty()) segments.push_back({0.0, initial_ul_min});
  return segments;
}

double clogged_flow(double commanded_ul_min, double t, double onset_s,
                    double tau_s, double nominal_ul_min) {
  if (t < onset_s || commanded_ul_min <= 0.0 || tau_s <= 0.0)
    return commanded_ul_min;
  const double tau_eff =
      nominal_ul_min > 0.0
          ? tau_s * (nominal_ul_min / commanded_ul_min)
          : tau_s;
  return commanded_ul_min * std::exp(-(t - onset_s) / tau_eff);
}

double flow_at(const std::vector<FlowSegment>& profile, double t) {
  if (profile.empty())
    throw std::invalid_argument("flow_at: empty profile");
  double flow = profile.front().flow_ul_min;
  for (const auto& segment : profile) {
    if (segment.t_start_s <= t)
      flow = segment.flow_ul_min;
    else
      break;
  }
  return flow;
}

}  // namespace medsen::sim
