#pragma once
// Deterministic sensor fault injection. The paper's trusted sensor is
// physical hardware that fails in physical ways — air bubbles, channel
// clogs, fouled/open electrodes, pump stalls, stuck multiplexer bits,
// stuck ADC codes — and the self-healing session loop (core/recovery.h)
// exists to survive them. This layer realizes each fault as a
// deterministic corruption of the simulated acquisition:
//
//   open electrode      selected-but-dead: its carrier channel rails low
//                       while the key's E(t) selects it; its pulses are
//                       dropped. Masking the electrode out of E(t) heals
//                       the channel (the mux disconnects the fault).
//   shorted electrode   large burst excursions on its carrier channel,
//                       gated on selection — also healed by masking.
//   stuck mux bit       stuck-ON: the electrode conducts (and chatters
//                       on its channel) regardless of E(t), so masking
//                       does NOT heal it — the strike counter walks it
//                       into quarantine. stuck-OFF behaves like an open.
//   bubble transits     transient multiplicative dips on all channels;
//                       re-drawn per attempt and cleared after
//                       `attempts_affected` (a flush carries them out).
//   progressive clog    delivered flow decays from an onset; below the
//                       stall threshold the pump stalls and every
//                       channel falls to a stalled baseline. Lower
//                       commanded flow slows the decay, which is why
//                       the recovery policy's flow derate helps.
//   ADC stuck code      a window of one channel pinned to a constant.
//   gain drift          a slow multiplicative ramp on one channel.
//   front-end saturation extra gain on one channel, clipped at the rail.
//
// Every fault draws exclusively from its own ChaChaRng stream seeded
// from FaultConfig::seed (never from the base simulation's RNG), so
// enabling a fault — or changing which faults are enabled — perturbs
// neither the particle arrivals nor the noise realization, and with all
// faults disabled the rendered output is bit-identical to a build
// without this layer. Electrode faults surface on the carrier channel
// given by carrier_channel_of_electrode(); only the controller, holding
// the secret key schedule, can map a failing channel back to candidate
// electrodes.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sim/channel.h"
#include "sim/electrode_array.h"
#include "util/time_series.h"

namespace medsen::sim {

struct ControlSegment;  // sim/acquisition.h

/// Onset window as fractions of the acquisition duration; the actual
/// onset is drawn uniformly from [min_frac, max_frac] * duration using
/// the fault's own RNG stream.
struct FaultOnset {
  double min_frac = 0.05;
  double max_frac = 0.35;
};

struct OpenElectrodeFault {
  bool enabled = false;
  std::size_t electrode = 0;
  FaultOnset onset;
  /// Channel output while the dead electrode is selected (rails low,
  /// well outside the quality gate's plausible range).
  double dead_level = 0.05;
};

struct ShortedElectrodeFault {
  bool enabled = false;
  std::size_t electrode = 0;
  FaultOnset onset;
  double burst_depth = 0.8;    ///< fractional dip per burst
  double burst_rate_hz = 3.0;  ///< mean bursts per second post-onset
  double burst_width_s = 0.02;
};

struct StuckMuxFault {
  bool enabled = false;
  std::size_t electrode = 0;
  /// true: bit stuck ON — the electrode conducts regardless of E(t) and
  /// its channel carries ungated contact chatter (masking cannot heal
  /// it). false: stuck OFF — behaves like an open electrode.
  bool stuck_on = true;
  FaultOnset onset;
  double chatter_depth = 0.35;
  double chatter_rate_hz = 12.0;
  double chatter_width_s = 0.01;
};

struct BubbleFault {
  bool enabled = false;
  double rate_hz = 0.4;   ///< mean bubble transits per second
  double depth = 0.5;     ///< multiplicative dip amplitude
  double width_s = 0.25;
  /// Attempts (0-based) still affected; a flush/retry carries the
  /// bubbles out after this many. 1 = only the first attempt.
  std::size_t attempts_affected = 1;
};

struct ClogFault {
  bool enabled = false;
  FaultOnset onset{0.1, 0.3};
  double tau_s = 6.0;               ///< decay constant at nominal flow
  double nominal_ul_min = 0.08;     ///< rate the tau is specified at
  double stall_below_ul_min = 0.01; ///< delivered flow below this stalls
  double stalled_baseline = 0.15;   ///< all-channel level after a stall
};

struct AdcStuckFault {
  bool enabled = false;
  std::size_t channel = 0;
  FaultOnset onset;
  double window_frac = 0.3;  ///< fraction of the record pinned
  /// 0 = persists on every attempt; otherwise cleared (reseated
  /// connector) once `attempt >= attempts_affected`.
  std::size_t attempts_affected = 0;
};

struct GainDriftFault {
  bool enabled = false;
  std::size_t channel = 0;
  FaultOnset onset;
  double drift_per_s = 0.05;  ///< multiplicative ramp slope
};

struct SaturationFault {
  bool enabled = false;
  std::size_t channel = 0;
  FaultOnset onset;
  double extra_gain = 1.9;  ///< runaway front-end gain
  double rail_high = 1.75;  ///< clip level
  double rail_low = 0.0;
};

/// Which faults are enabled and how. Each fault's realization (onset,
/// burst times, ...) is drawn from ChaChaRng(seed ^ fault_tag), so the
/// faults are independent of each other and of the base simulation.
struct FaultConfig {
  std::uint64_t seed = 0x1457;
  /// Session attempt index (0-based). Transient faults (bubbles, a
  /// transient ADC glitch) mix it into their stream and clear after
  /// their `attempts_affected`; persistent hardware faults ignore it.
  std::size_t attempt = 0;

  OpenElectrodeFault open;
  ShortedElectrodeFault short_circuit;
  StuckMuxFault stuck_mux;
  BubbleFault bubbles;
  ClogFault clog;
  AdcStuckFault adc_stuck;
  GainDriftFault gain_drift;
  SaturationFault saturation;

  [[nodiscard]] bool any_enabled() const;
};

/// A fully drawn fault realization for one acquisition attempt. Built
/// once per acquisition; inert (and allocation-free) when no fault is
/// enabled, so the fault-free path is bit-identical to a build without
/// fault support.
class FaultPlan {
 public:
  FaultPlan() = default;

  static FaultPlan plan(const FaultConfig& config, double duration_s,
                        const ElectrodeArrayDesign& design,
                        std::size_t num_channels);

  [[nodiscard]] bool active() const { return active_; }

  /// Electrode-level overrides in effect at time t (open electrodes,
  /// stuck mux bits). Applied to the commanded mask via apply_health().
  [[nodiscard]] ElectrodeHealth electrode_health(double t) const;

  /// Degrade a commanded flow profile in place (clog decay, stall) and
  /// record the stall time for corrupt_output(). Resamples the profile
  /// at `resolution_s` once the clog's onset has passed.
  void degrade_flow(std::vector<FlowSegment>& profile, double duration_s,
                    double resolution_s = 0.25);

  /// Time the pump stalled, if the clog progressed that far.
  [[nodiscard]] std::optional<double> stall_time_s() const {
    return stall_time_s_;
  }

  /// Apply all signal-level corruptions to the rendered lock-in output.
  /// `control` is the commanded trace (selection-gated artifacts follow
  /// the commanded E(t), not the realized mask).
  void corrupt_output(util::MultiChannelSeries& signals,
                      std::span<const ControlSegment> control) const;

 private:
  bool active_ = false;
  FaultConfig config_;
  std::size_t num_channels_ = 0;

  double open_onset_s_ = 0.0;
  double short_onset_s_ = 0.0;
  std::vector<double> short_burst_times_s_;
  double mux_onset_s_ = 0.0;
  std::vector<double> mux_chatter_times_s_;
  std::vector<double> bubble_times_s_;
  double clog_onset_s_ = 0.0;
  double adc_onset_s_ = 0.0;
  double adc_window_s_ = 0.0;
  double drift_onset_s_ = 0.0;
  double saturation_onset_s_ = 0.0;
  std::optional<double> stall_time_s_;
};

}  // namespace medsen::sim
