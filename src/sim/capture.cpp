#include "sim/capture.h"

#include <stdexcept>

namespace medsen::sim {

double CaptureResult::purity(ParticleType target) const {
  double target_concentration = 0.0;
  double total = 0.0;
  for (const auto& component : enriched.components) {
    total += component.concentration_per_ul;
    if (component.type == target)
      target_concentration += component.concentration_per_ul;
  }
  return total > 0.0 ? target_concentration / total : 0.0;
}

CaptureResult capture_release(const SampleSpec& sample,
                              const CaptureChamberConfig& config) {
  if (config.capture_efficiency < 0.0 || config.capture_efficiency > 1.0 ||
      config.nonspecific_binding < 0.0 || config.nonspecific_binding > 1.0 ||
      config.release_efficiency < 0.0 || config.release_efficiency > 1.0)
    throw std::invalid_argument("capture_release: fractions must be [0,1]");
  if (config.concentration_factor <= 0.0)
    throw std::invalid_argument(
        "capture_release: concentration factor must be positive");

  CaptureResult result;
  for (const auto& component : sample.components) {
    const double bound_fraction = component.type == config.target
                                      ? config.capture_efficiency
                                      : config.nonspecific_binding;
    const double recovered =
        component.concentration_per_ul * bound_fraction *
        config.release_efficiency;
    const double washed =
        component.concentration_per_ul * (1.0 - bound_fraction);
    if (recovered > 0.0)
      result.enriched.components.push_back(
          {component.type, recovered * config.concentration_factor});
    if (washed > 0.0)
      result.flow_through.components.push_back({component.type, washed});
  }
  return result;
}

double enrichment_factor(const SampleSpec& sample,
                         const CaptureResult& result, ParticleType target) {
  double input = 0.0, output = 0.0;
  for (const auto& component : sample.components)
    if (component.type == target) input += component.concentration_per_ul;
  for (const auto& component : result.enriched.components)
    if (component.type == target) output += component.concentration_per_ul;
  return input > 0.0 ? output / input : 0.0;
}

}  // namespace medsen::sim
