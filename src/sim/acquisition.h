#pragma once
// Top-level sensor simulation: pump a particle mixture through the
// microfluidic channel past the multi-electrode array while the controller
// sweeps the hardware configuration (active electrode subset, per-electrode
// gains, flow speed) according to a control trace — the physical
// realization of MedSen's in-sensor encryption. Produces the multi-carrier
// lock-in output the phone uploads, plus the ground-truth event log used
// by tests and benches.
//
// The simulator is deliberately key-agnostic: it executes whatever control
// trace it is given, exactly as the fabricated hardware executes whatever
// the micro-controller programs into the multiplexer. Key semantics live
// in medsen::core.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/channel.h"
#include "sim/electrode_array.h"
#include "sim/faults.h"
#include "sim/impedance_model.h"
#include "sim/lockin.h"
#include "sim/particle.h"
#include "sim/signal_synth.h"
#include "util/time_series.h"

namespace medsen::sim {

/// One stretch of constant sensor configuration (a decoded key period).
struct ControlSegment {
  double t_start_s = 0.0;
  ElectrodeMask active_mask = 0;
  std::vector<double> gains;  ///< per-output linear gain; empty = all 1.0
  double flow_ul_min = 0.08;
};

struct AcquisitionConfig {
  /// Carrier frequencies (paper Section VI-D uses eight, 500 kHz-4 MHz).
  std::vector<double> carriers_hz = {5.0e5, 8.0e5, 1.0e6, 1.2e6,
                                     1.4e6, 2.0e6, 3.0e6, 4.0e6};
  LockInConfig lockin;
  DriftConfig drift;
  ElectrodePairModel pair_model;
  double noise_sigma = 1.2e-4;
  /// Hardware fault injection (sim/faults.h). Defaults to all-disabled;
  /// fault realizations draw from FaultConfig::seed only, never from the
  /// acquisition seed, so enabling faults perturbs neither the particle
  /// arrivals nor the noise realization.
  FaultConfig faults;
};

/// Ground truth for one particle transit.
struct TransitRecord {
  TransitEvent event;
  std::size_t pulses_emitted = 0;  ///< electrode pulses under the active key
};

struct GroundTruth {
  std::vector<TransitRecord> transits;
  std::array<std::size_t, kParticleTypeCount> type_counts{};
  std::size_t total_pulses = 0;

  [[nodiscard]] std::size_t total_particles() const {
    return transits.size();
  }
};

struct AcquisitionResult {
  util::MultiChannelSeries signals;  ///< normalized lock-in output per carrier
  GroundTruth truth;
};

/// Run a full acquisition of `duration_s` seconds. `control` must be
/// non-empty and sorted by t_start_s; the first segment applies from t=0.
/// The control trace's flow speeds drive the channel's flow profile.
AcquisitionResult acquire(const SampleSpec& sample,
                          const ChannelConfig& channel,
                          const ElectrodeArrayDesign& design,
                          const AcquisitionConfig& config,
                          std::span<const ControlSegment> control,
                          double duration_s, std::uint64_t seed);

/// Render the measured signals for precomputed transits. Split out of
/// acquire() for two-phase schemes: the ideal per-cell keying of Section
/// IV-A assigns a fresh key to each cell, which requires knowing the
/// transit times before building the control trace. `seed` drives the
/// noise/drift randomness only.
///
/// `plan` optionally supplies a pre-built fault realization (acquire()
/// passes its own so flow degradation and signal corruption agree on the
/// stall time); when null and config.faults enables faults, a plan is
/// built internally.
AcquisitionResult render_acquisition(std::vector<TransitEvent> transits,
                                     const ElectrodeArrayDesign& design,
                                     const AcquisitionConfig& config,
                                     std::span<const ControlSegment> control,
                                     double duration_s, std::uint64_t seed,
                                     const FaultPlan* plan = nullptr);

/// The control segment in effect at time t (last segment whose start <= t).
const ControlSegment& control_at(std::span<const ControlSegment> control,
                                 double t);

}  // namespace medsen::sim
