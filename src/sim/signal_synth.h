#pragma once
// Baseband signal synthesis: baseline drift (slow sinusoidal temperature/
// concentration wander + linear trend + random walk, per the paper's
// Section VI-C discussion of why detrending is needed), Gaussian pulse
// deposition for particle transits, and white measurement noise.

#include <cstddef>
#include <vector>

#include "crypto/chacha20.h"

namespace medsen::sim {

struct DriftConfig {
  double slow_amplitude = 0.004;     ///< relative sinusoidal wander
  double slow_period_s = 120.0;
  double linear_per_hour = -0.010;   ///< relative linear drift per hour
  double random_walk_sigma = 4e-6;   ///< per-sample random-walk step
};

/// Multiplicative baseline trace (nominal 1.0) of `n` samples at
/// `sample_rate_hz`, starting at `start_time_s`.
std::vector<double> synth_baseline(std::size_t n, double sample_rate_hz,
                                   double start_time_s,
                                   const DriftConfig& config,
                                   crypto::ChaChaRng& rng);

/// Deposit a Gaussian pulse of fractional depth `amplitude` centered at
/// `center_s` with characteristic width `width_s` (full width ~ 2.355
/// sigma) into a depth accumulation buffer sampled at `sample_rate_hz`
/// from `start_time_s`.
void add_gaussian_pulse(std::vector<double>& depth, double sample_rate_hz,
                        double start_time_s, double center_s, double width_s,
                        double amplitude);

/// Add white Gaussian noise in place.
void add_white_noise(std::vector<double>& samples, double sigma,
                     crypto::ChaChaRng& rng);

}  // namespace medsen::sim
