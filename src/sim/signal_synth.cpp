#include "sim/signal_synth.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace medsen::sim {

std::vector<double> synth_baseline(std::size_t n, double sample_rate_hz,
                                   double start_time_s,
                                   const DriftConfig& config,
                                   crypto::ChaChaRng& rng) {
  std::vector<double> out(n, 1.0);
  double walk = 0.0;
  const double phase = rng.uniform_double() * 2.0 * std::numbers::pi;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = start_time_s + static_cast<double>(i) / sample_rate_hz;
    const double slow =
        config.slow_amplitude *
        std::sin(2.0 * std::numbers::pi * t / config.slow_period_s + phase);
    const double linear = config.linear_per_hour * t / 3600.0;
    walk += rng.normal(0.0, config.random_walk_sigma);
    out[i] = 1.0 + slow + linear + walk;
  }
  return out;
}

void add_gaussian_pulse(std::vector<double>& depth, double sample_rate_hz,
                        double start_time_s, double center_s, double width_s,
                        double amplitude) {
  if (depth.empty() || width_s <= 0.0) return;
  const double sigma = width_s / 2.355;  // FWHM -> sigma
  const double span = 4.0 * sigma;
  const auto n = static_cast<double>(depth.size());
  const double i_center = (center_s - start_time_s) * sample_rate_hz;
  const double i_lo = std::max(0.0, i_center - span * sample_rate_hz);
  const double i_hi =
      std::min(n - 1.0, i_center + span * sample_rate_hz);
  if (i_hi < 0.0 || i_lo > n - 1.0) return;
  for (auto i = static_cast<std::size_t>(i_lo);
       i <= static_cast<std::size_t>(i_hi); ++i) {
    const double t =
        start_time_s + static_cast<double>(i) / sample_rate_hz;
    const double z = (t - center_s) / sigma;
    depth[i] += amplitude * std::exp(-0.5 * z * z);
  }
}

void add_white_noise(std::vector<double>& samples, double sigma,
                     crypto::ChaChaRng& rng) {
  if (sigma <= 0.0) return;
  for (double& s : samples) s += rng.normal(0.0, sigma);
}

}  // namespace medsen::sim
