#include "sim/faults.h"

#include <algorithm>
#include <cmath>

#include "crypto/chacha20.h"
#include "sim/acquisition.h"
#include "sim/pump.h"

namespace medsen::sim {

namespace {

// Per-fault stream tags: every fault draws from ChaChaRng(seed ^ tag),
// so each realization is independent of which other faults are enabled
// and of the base simulation's RNG.
constexpr std::uint64_t kOpenTag = 0x6f70656e'00000001ULL;
constexpr std::uint64_t kShortTag = 0x73687274'00000002ULL;
constexpr std::uint64_t kMuxTag = 0x6d757862'00000003ULL;
constexpr std::uint64_t kBubbleTag = 0x6275626c'00000004ULL;
constexpr std::uint64_t kClogTag = 0x636c6f67'00000005ULL;
constexpr std::uint64_t kAdcTag = 0x61646373'00000006ULL;
constexpr std::uint64_t kDriftTag = 0x64726674'00000007ULL;
constexpr std::uint64_t kSatTag = 0x73617467'00000008ULL;
constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ULL;

double draw_onset(crypto::ChaChaRng& rng, const FaultOnset& onset,
                  double duration_s) {
  const double lo = std::clamp(onset.min_frac, 0.0, 1.0);
  const double hi = std::clamp(onset.max_frac, lo, 1.0);
  return duration_s * (lo + rng.uniform_double() * (hi - lo));
}

/// Arrival times of a Poisson process over [window_start, duration).
std::vector<double> draw_events(crypto::ChaChaRng& rng, double rate_hz,
                                double window_start_s, double duration_s) {
  std::vector<double> times;
  const double window = duration_s - window_start_s;
  if (window <= 0.0 || rate_hz <= 0.0) return times;
  const auto count = rng.poisson(rate_hz * window);
  times.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i)
    times.push_back(window_start_s + rng.uniform_double() * window);
  std::sort(times.begin(), times.end());
  return times;
}

/// Raised-cosine multiplicative dip centered at `center_s`: the sample
/// at the center drops by `depth`, tapering smoothly to the edges.
void apply_dip(util::TimeSeries& channel, double center_s, double width_s,
               double depth) {
  if (width_s <= 0.0 || channel.empty()) return;
  const double half = width_s / 2.0;
  const std::size_t begin = channel.index_at(center_s - half);
  const std::size_t end =
      std::min(channel.index_at(center_s + half) + 1, channel.size());
  auto samples = channel.samples_mut();
  for (std::size_t i = begin; i < end; ++i) {
    const double dt = channel.time_at(i) - center_s;
    if (std::fabs(dt) > half) continue;
    const double shape = 0.5 * (1.0 + std::cos(M_PI * dt / half));
    samples[i] *= 1.0 - depth * shape;
  }
}

bool selects(std::span<const ControlSegment> control, double t,
             std::size_t electrode) {
  return ((control_at(control, t).active_mask >> electrode) & 1u) != 0;
}

}  // namespace

bool FaultConfig::any_enabled() const {
  return open.enabled || short_circuit.enabled || stuck_mux.enabled ||
         bubbles.enabled || clog.enabled || adc_stuck.enabled ||
         gain_drift.enabled || saturation.enabled;
}

FaultPlan FaultPlan::plan(const FaultConfig& config, double duration_s,
                          const ElectrodeArrayDesign& design,
                          std::size_t num_channels) {
  (void)design;
  FaultPlan p;
  if (!config.any_enabled() || duration_s <= 0.0) return p;
  p.active_ = true;
  p.config_ = config;
  p.num_channels_ = num_channels;

  // Persistent faults draw their onsets from attempt-independent
  // streams (the hardware stays broken the same way across retries);
  // stochastic event trains and transient faults mix the attempt index
  // so each retry sees a fresh — but still deterministic — realization.
  const std::uint64_t attempt_mix =
      kGolden * (static_cast<std::uint64_t>(config.attempt) + 1);

  if (config.open.enabled) {
    crypto::ChaChaRng rng(config.seed ^ kOpenTag);
    p.open_onset_s_ = draw_onset(rng, config.open.onset, duration_s);
  }
  if (config.short_circuit.enabled) {
    crypto::ChaChaRng rng(config.seed ^ kShortTag);
    p.short_onset_s_ =
        draw_onset(rng, config.short_circuit.onset, duration_s);
    crypto::ChaChaRng events(config.seed ^ kShortTag ^ attempt_mix);
    p.short_burst_times_s_ =
        draw_events(events, config.short_circuit.burst_rate_hz,
                    p.short_onset_s_, duration_s);
  }
  if (config.stuck_mux.enabled) {
    crypto::ChaChaRng rng(config.seed ^ kMuxTag);
    p.mux_onset_s_ = draw_onset(rng, config.stuck_mux.onset, duration_s);
    if (config.stuck_mux.stuck_on) {
      crypto::ChaChaRng events(config.seed ^ kMuxTag ^ attempt_mix);
      p.mux_chatter_times_s_ =
          draw_events(events, config.stuck_mux.chatter_rate_hz,
                      p.mux_onset_s_, duration_s);
    }
  }
  if (config.bubbles.enabled &&
      config.attempt < config.bubbles.attempts_affected) {
    crypto::ChaChaRng events(config.seed ^ kBubbleTag ^ attempt_mix);
    p.bubble_times_s_ =
        draw_events(events, config.bubbles.rate_hz, 0.0, duration_s);
  }
  if (config.clog.enabled) {
    crypto::ChaChaRng rng(config.seed ^ kClogTag);
    p.clog_onset_s_ = draw_onset(rng, config.clog.onset, duration_s);
  }
  if (config.adc_stuck.enabled &&
      (config.adc_stuck.attempts_affected == 0 ||
       config.attempt < config.adc_stuck.attempts_affected)) {
    crypto::ChaChaRng rng(config.seed ^ kAdcTag);
    p.adc_onset_s_ = draw_onset(rng, config.adc_stuck.onset, duration_s);
    p.adc_window_s_ =
        std::clamp(config.adc_stuck.window_frac, 0.0, 1.0) * duration_s;
  }
  if (config.gain_drift.enabled) {
    crypto::ChaChaRng rng(config.seed ^ kDriftTag);
    p.drift_onset_s_ = draw_onset(rng, config.gain_drift.onset, duration_s);
  }
  if (config.saturation.enabled) {
    crypto::ChaChaRng rng(config.seed ^ kSatTag);
    p.saturation_onset_s_ =
        draw_onset(rng, config.saturation.onset, duration_s);
  }
  return p;
}

ElectrodeHealth FaultPlan::electrode_health(double t) const {
  ElectrodeHealth health;
  if (!active_) return health;
  if (config_.open.enabled && t >= open_onset_s_)
    health.forced_off |= ElectrodeMask{1} << config_.open.electrode;
  if (config_.stuck_mux.enabled && t >= mux_onset_s_) {
    const auto bit = ElectrodeMask{1} << config_.stuck_mux.electrode;
    if (config_.stuck_mux.stuck_on)
      health.forced_on |= bit;
    else
      health.forced_off |= bit;
  }
  if (stall_time_s_ && t >= *stall_time_s_) {
    // A stalled pump delivers no particles; the channel output falls to
    // the stalled baseline regardless of electrode state. Force the
    // array dark so no phantom pulses render after the stall.
    health.forced_off = ~ElectrodeMask{0};
    health.forced_on = 0;
  }
  return health;
}

void FaultPlan::degrade_flow(std::vector<FlowSegment>& profile,
                             double duration_s, double resolution_s) {
  if (!active_ || !config_.clog.enabled || profile.empty() ||
      duration_s <= 0.0 || resolution_s <= 0.0)
    return;
  const auto& clog = config_.clog;
  std::vector<FlowSegment> degraded;
  for (const auto& segment : profile)
    if (segment.t_start_s < clog_onset_s_) degraded.push_back(segment);
  if (degraded.empty())
    degraded.push_back({0.0, flow_at(profile, 0.0)});

  // Integrate the occlusion: the decay multiplier accumulates with a
  // rate set by the *commanded* flow at each instant (lower commanded
  // rates pack the clog more slowly), so a flow derate on retry
  // genuinely postpones — and can avoid — the stall.
  double multiplier = 1.0;
  for (double t = clog_onset_s_; t < duration_s; t += resolution_s) {
    const double commanded = flow_at(profile, t);
    const double decayed =
        clogged_flow(commanded, t + resolution_s, t, clog.tau_s,
                     clog.nominal_ul_min);
    if (commanded > 0.0) multiplier *= decayed / commanded;
    const double delivered = commanded * multiplier;
    if (delivered < clog.stall_below_ul_min) {
      stall_time_s_ = t;
      degraded.push_back({t, 0.0});
      break;
    }
    degraded.push_back({t, delivered});
  }
  profile = std::move(degraded);
}

void FaultPlan::corrupt_output(util::MultiChannelSeries& signals,
                               std::span<const ControlSegment> control) const {
  if (!active_) return;
  const std::size_t n_channels = signals.channels.size();
  for (std::size_t c = 0; c < n_channels; ++c) {
    auto& channel = signals.channels[c];
    if (channel.empty()) continue;
    auto samples = channel.samples_mut();

    // Transient bubbles dip every channel (the bubble displaces the
    // conductive medium across the whole array).
    for (double tc : bubble_times_s_)
      apply_dip(channel, tc, config_.bubbles.width_s, config_.bubbles.depth);

    // Shorted electrode: burst excursions on its bound channel, gated
    // on the commanded E(t) selecting it (the short sits downstream of
    // the mux) — masking the electrode removes the artifact.
    if (config_.short_circuit.enabled &&
        carrier_channel_of_electrode(config_.short_circuit.electrode,
                                     n_channels) == c) {
      for (double tc : short_burst_times_s_)
        if (selects(control, tc, config_.short_circuit.electrode))
          apply_dip(channel, tc, config_.short_circuit.burst_width_s,
                    config_.short_circuit.burst_depth);
    }

    // Stuck-ON mux bit: contact chatter on the bound channel regardless
    // of E(t) — the one artifact masking cannot remove.
    if (config_.stuck_mux.enabled && config_.stuck_mux.stuck_on &&
        carrier_channel_of_electrode(config_.stuck_mux.electrode,
                                     n_channels) == c) {
      for (double tc : mux_chatter_times_s_)
        apply_dip(channel, tc, config_.stuck_mux.chatter_width_s,
                  config_.stuck_mux.chatter_depth);
    }

    // Gain drift: slow multiplicative ramp.
    if (config_.gain_drift.enabled && config_.gain_drift.channel == c) {
      for (std::size_t i = 0; i < samples.size(); ++i) {
        const double t = channel.time_at(i);
        if (t >= drift_onset_s_)
          samples[i] *=
              1.0 + config_.gain_drift.drift_per_s * (t - drift_onset_s_);
      }
    }

    // Front-end saturation: runaway gain clipped at the rail.
    if (config_.saturation.enabled && config_.saturation.channel == c) {
      const std::size_t begin = channel.index_at(saturation_onset_s_);
      for (std::size_t i = begin; i < samples.size(); ++i)
        if (channel.time_at(i) >= saturation_onset_s_)
          samples[i] *= config_.saturation.extra_gain;
      clamp_rail(samples.subspan(begin), config_.saturation.rail_low,
                 config_.saturation.rail_high);
    }

    // Open electrode (or stuck-OFF mux bit): selected-but-dead — the
    // channel rails low whenever the commanded mask selects the dead
    // electrode. Masking it out of E(t) heals the channel.
    const bool open_here =
        config_.open.enabled &&
        carrier_channel_of_electrode(config_.open.electrode, n_channels) == c;
    const bool stuck_off_here =
        config_.stuck_mux.enabled && !config_.stuck_mux.stuck_on &&
        carrier_channel_of_electrode(config_.stuck_mux.electrode,
                                     n_channels) == c;
    if (open_here || stuck_off_here) {
      for (std::size_t i = 0; i < samples.size(); ++i) {
        const double t = channel.time_at(i);
        const bool open_dead = open_here && t >= open_onset_s_ &&
                               selects(control, t, config_.open.electrode);
        const bool mux_dead =
            stuck_off_here && t >= mux_onset_s_ &&
            selects(control, t, config_.stuck_mux.electrode);
        if (open_dead || mux_dead) samples[i] = config_.open.dead_level;
      }
    }

    // ADC stuck code: a window pinned to the conversion at its start.
    if (config_.adc_stuck.enabled && config_.adc_stuck.channel == c &&
        adc_window_s_ > 0.0) {
      const std::size_t begin = channel.index_at(adc_onset_s_);
      const std::size_t end =
          channel.index_at(adc_onset_s_ + adc_window_s_) + 1;
      pin_samples(samples, begin, end, samples[begin]);
    }

    // Pump stall: every channel falls to the stalled baseline (no flow,
    // no conduction modulation). Applied last — it overrides everything.
    if (stall_time_s_) {
      const std::size_t begin = channel.index_at(*stall_time_s_);
      pin_samples(samples, begin, samples.size(),
                  config_.clog.stalled_baseline);
    }
  }
}

}  // namespace medsen::sim
