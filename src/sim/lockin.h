#pragma once
// Simulated lock-in amplifier chain (the Zurich Instruments HF2IS +
// HF2TA of the prototype): per-carrier synchronous demodulation is
// abstracted to its baseband effect — the demodulated amplitude trace —
// which is then low-pass filtered (120 Hz cutoff) and decimated to the
// 450 Hz output rate the paper records.

#include <span>
#include <vector>

#include "dsp/filters.h"
#include "util/time_series.h"

namespace medsen::sim {

struct LockInConfig {
  double output_rate_hz = 450.0;    ///< recorded sample rate
  unsigned oversample = 10;         ///< internal simulation oversampling
  double lowpass_cutoff_hz = 120.0; ///< output filter cutoff
  double excitation_v = 1.0;        ///< per-carrier excitation amplitude

  [[nodiscard]] double internal_rate_hz() const {
    return output_rate_hz * oversample;
  }
};

/// Apply the lock-in output chain to an internally oversampled baseband
/// trace: 2nd-order Butterworth low-pass then decimation to the output
/// rate. Input must be sampled at config.internal_rate_hz().
util::TimeSeries lockin_output(const std::vector<double>& oversampled,
                               double start_time_s,
                               const LockInConfig& config);

/// Clamp samples to the front-end rails [lo, hi] — the saturation
/// behaviour of the transimpedance stage when its input range is
/// exceeded. Used by the fault layer.
void clamp_rail(std::span<double> samples, double lo, double hi);

/// Pin samples[begin, end) to a constant value — a stuck ADC code or a
/// dead front-end holding its last conversion. Indices are clamped to
/// the valid range. Used by the fault layer.
void pin_samples(std::span<double> samples, std::size_t begin,
                 std::size_t end, double value);

}  // namespace medsen::sim
