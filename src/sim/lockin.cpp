#include "sim/lockin.h"

#include <algorithm>

namespace medsen::sim {

util::TimeSeries lockin_output(const std::vector<double>& oversampled,
                               double start_time_s,
                               const LockInConfig& config) {
  dsp::ButterworthLowPass2 lpf(config.lowpass_cutoff_hz,
                               config.internal_rate_hz());
  // Prime the filter at the first sample so start-up transients do not
  // masquerade as peaks. reset(dc) places the delay line exactly at the
  // DC steady state — what the old 64-iteration warm-up loop only
  // converged toward.
  std::vector<double> filtered;
  filtered.reserve(oversampled.size());
  if (!oversampled.empty()) lpf.reset(oversampled.front());
  for (double x : oversampled) filtered.push_back(lpf.step(x));
  const auto decimated = dsp::decimate(filtered, config.oversample);
  return util::TimeSeries(config.output_rate_hz, decimated, start_time_s);
}

void clamp_rail(std::span<double> samples, double lo, double hi) {
  for (double& x : samples) {
    if (x < lo) x = lo;
    if (x > hi) x = hi;
  }
}

void pin_samples(std::span<double> samples, std::size_t begin,
                 std::size_t end, double value) {
  begin = std::min(begin, samples.size());
  end = std::min(end, samples.size());
  for (std::size_t i = begin; i < end; ++i) samples[i] = value;
}

}  // namespace medsen::sim
