#include "sim/acquisition.h"

#include <cmath>
#include <stdexcept>

namespace medsen::sim {

const ControlSegment& control_at(std::span<const ControlSegment> control,
                                 double t) {
  if (control.empty())
    throw std::invalid_argument("control_at: empty control trace");
  const ControlSegment* current = &control.front();
  for (const auto& seg : control) {
    if (seg.t_start_s <= t)
      current = &seg;
    else
      break;
  }
  return *current;
}

AcquisitionResult acquire(const SampleSpec& sample,
                          const ChannelConfig& channel,
                          const ElectrodeArrayDesign& design,
                          const AcquisitionConfig& config,
                          std::span<const ControlSegment> control,
                          double duration_s, std::uint64_t seed) {
  if (control.empty())
    throw std::invalid_argument("acquire: control trace must be non-empty");

  crypto::ChaChaRng rng(seed);
  // Flow profile follows the control trace (flow speed is a key parameter).
  std::vector<FlowSegment> flow;
  flow.reserve(control.size());
  for (const auto& seg : control)
    flow.push_back({seg.t_start_s, seg.flow_ul_min});

  // Fault injection: a progressive clog degrades the delivered flow
  // before particle transits are simulated; the plan is forwarded so the
  // rendered output's stall artifact matches the degraded profile. The
  // plan draws only from config.faults.seed — when no fault is enabled
  // this is a no-op and the acquisition is bit-identical to a fault-free
  // build.
  FaultPlan plan = FaultPlan::plan(config.faults, duration_s, design,
                                   config.carriers_hz.size());
  plan.degrade_flow(flow, duration_s);

  auto transits = simulate_transits(sample, channel, flow, duration_s, rng);
  return render_acquisition(std::move(transits), design, config, control,
                            duration_s, seed + 0x5eed, &plan);
}

AcquisitionResult render_acquisition(std::vector<TransitEvent> transits,
                                     const ElectrodeArrayDesign& design,
                                     const AcquisitionConfig& config,
                                     std::span<const ControlSegment> control,
                                     double duration_s, std::uint64_t seed,
                                     const FaultPlan* plan) {
  if (control.empty())
    throw std::invalid_argument(
        "render_acquisition: control trace must be non-empty");
  if (config.carriers_hz.empty())
    throw std::invalid_argument(
        "render_acquisition: need at least one carrier");

  FaultPlan local_plan;
  if (plan == nullptr && config.faults.any_enabled()) {
    local_plan = FaultPlan::plan(config.faults, duration_s, design,
                                 config.carriers_hz.size());
    plan = &local_plan;
  }

  crypto::ChaChaRng rng(seed);
  AcquisitionResult result;

  // Collect every electrode pulse with its per-carrier base depth.
  struct RenderedPulse {
    double time_s;
    double width_s;
    double gain;
    const Particle* particle;
  };
  std::vector<RenderedPulse> pulses;
  result.truth.transits.reserve(transits.size());
  for (const auto& transit : transits) {
    const ControlSegment& seg = control_at(control, transit.enter_time_s);
    // The commanded mask passes through the physical array's health:
    // open electrodes and stuck mux bits override the key's E(t).
    ElectrodeMask realized = seg.active_mask;
    if (plan != nullptr && plan->active())
      realized =
          apply_health(realized, plan->electrode_health(transit.enter_time_s));
    const auto electrode_pulses = particle_pulses(
        design, realized, transit.enter_time_s, transit.speed_um_s);
    for (const auto& ep : electrode_pulses) {
      RenderedPulse rp;
      rp.time_s = ep.time_s;
      rp.width_s = ep.width_s;
      rp.gain = (ep.electrode < seg.gains.size()) ? seg.gains[ep.electrode]
                                                  : 1.0;
      rp.particle = &transit.particle;
      pulses.push_back(rp);
    }
    TransitRecord record;
    record.event = transit;
    record.pulses_emitted = electrode_pulses.size();
    result.truth.transits.push_back(record);
    ++result.truth.type_counts[static_cast<std::size_t>(transit.particle.type)];
    result.truth.total_pulses += electrode_pulses.size();
  }

  // Render each carrier channel at the internal oversampled rate, then run
  // it through the lock-in output chain.
  const double internal_rate = config.lockin.internal_rate_hz();
  const auto n_internal =
      static_cast<std::size_t>(std::ceil(duration_s * internal_rate));

  result.signals.carrier_frequencies_hz = config.carriers_hz;
  result.signals.channels.reserve(config.carriers_hz.size());
  for (double carrier : config.carriers_hz) {
    std::vector<double> depth(n_internal, 0.0);
    const double sensitivity =
        amplitude_sensitivity(config.pair_model, carrier) /
        amplitude_sensitivity(config.pair_model, 5.0e5);
    for (const auto& rp : pulses) {
      const double amplitude =
          peak_contrast(*rp.particle, carrier) * sensitivity * rp.gain;
      add_gaussian_pulse(depth, internal_rate, 0.0, rp.time_s, rp.width_s,
                         amplitude);
    }
    auto baseline =
        synth_baseline(n_internal, internal_rate, 0.0, config.drift, rng);
    for (std::size_t i = 0; i < n_internal; ++i)
      baseline[i] *= (1.0 - depth[i]);
    add_white_noise(baseline, config.noise_sigma, rng);
    result.signals.channels.push_back(
        lockin_output(baseline, 0.0, config.lockin));
  }
  // Signal-level fault artifacts land on the rendered output after the
  // lock-in chain — they model electrical faults in the front end, not
  // fluidics (those were applied to transits/flow above).
  if (plan != nullptr && plan->active())
    plan->corrupt_output(result.signals, control);
  return result;
}

}  // namespace medsen::sim
