#pragma once
// Particle populations: blood cells and the synthetic password beads
// (3.58 um and 7.8 um polystyrene, as purchased from MicroChem in the
// paper). Each type carries a size distribution and a frequency-dependent
// impedance contrast model that reproduces the relative peak amplitudes
// the paper reports: blood cells ~2x and 7.8 um beads ~4x the amplitude of
// the 3.58 um reference bead, with blood-cell response decaying above
// ~2 MHz (membrane capacitance short-circuit) while insulating beads stay
// flat (Fig. 15/16).

#include <cstdint>
#include <string>
#include <vector>

namespace medsen::sim {

enum class ParticleType : std::uint8_t {
  kBloodCell = 0,
  kBead358 = 1,   ///< 3.58 um synthetic bead
  kBead780 = 2,   ///< 7.8 um synthetic bead
};

constexpr std::size_t kParticleTypeCount = 3;

/// Human-readable type name ("blood_cell", "bead_3.58um", "bead_7.8um").
std::string to_string(ParticleType type);

/// Physical description of one particle type.
struct ParticleProperties {
  double diameter_um_mean = 0.0;
  double diameter_um_sigma = 0.0;
  /// Relative impedance-peak depth at the 500 kHz reference carrier for a
  /// nominal-size particle (fraction of baseline, e.g. 0.003 = 0.3%).
  double base_contrast = 0.0;
  /// Membrane cutoff frequency (Hz) above which the contrast rolls off;
  /// 0 means no roll-off (insulating bead).
  double membrane_cutoff_hz = 0.0;
};

/// Calibrated defaults per type.
const ParticleProperties& properties(ParticleType type);

/// One concrete particle instance.
struct Particle {
  ParticleType type = ParticleType::kBloodCell;
  double diameter_um = 0.0;
};

/// Frequency-dependent contrast multiplier in (0, 1]: 1 at DC, rolling off
/// above the membrane cutoff for cells, constant 1 for beads.
double frequency_factor(ParticleType type, double frequency_hz);

/// Peak depth (fraction of baseline) for a particle observed at a carrier
/// frequency: base contrast scaled by (d/d_nominal)^3 volume displacement
/// and the frequency factor.
double peak_contrast(const Particle& particle, double frequency_hz);

/// Mixture component: a particle type at a concentration.
struct MixtureComponent {
  ParticleType type = ParticleType::kBloodCell;
  double concentration_per_ul = 0.0;
};

/// A fluid sample: mixture of particle types suspended in PBS.
struct SampleSpec {
  std::vector<MixtureComponent> components;
  /// Expected particle count of one component over a pumped volume.
  [[nodiscard]] double expected_count(ParticleType type,
                                      double volume_ul) const;
};

}  // namespace medsen::sim
