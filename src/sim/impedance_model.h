#pragma once
// Electrical model of a planar electrode pair in electrolyte (paper
// Section III-A, Fig. 3): the double-layer capacitance at each
// electrode-electrolyte interface in series with the ionic resistance of
// the fluid in the gap. Below ~10 kHz the capacitance dominates (|Z| in
// the MOhm range); above ~100 kHz it is short-circuited and the ionic
// resistance dominates — the regime MedSen operates in, where a passing
// particle's volume displacement raises the resistance and produces a
// voltage peak.

#include <complex>

namespace medsen::sim {

struct ElectrodePairModel {
  /// Ionic (solution) resistance of the gap, Ohm. PBS 0.9% in a
  /// 30x20 um channel with 25 um pitch gives tens of kOhm.
  double solution_resistance_ohm = 35.0e3;
  /// Double-layer capacitance per interface, Farad (two in series).
  double double_layer_capacitance_f = 1.2e-9;
  /// Stray parallel capacitance across the gap, Farad.
  double parasitic_capacitance_f = 0.4e-12;
};

/// Complex impedance of the pair at `frequency_hz`.
std::complex<double> pair_impedance(const ElectrodePairModel& model,
                                    double frequency_hz);

/// |Z| at frequency.
double impedance_magnitude(const ElectrodePairModel& model,
                           double frequency_hz);

/// Fraction of |Z| attributable to the resistive term at this frequency
/// (1.0 = fully resistance-dominated). MedSen operates where this is
/// close to 1 (>= 100 kHz).
double resistive_fraction(const ElectrodePairModel& model,
                          double frequency_hz);

/// Relative sensitivity of the measured amplitude to a resistance change
/// at this frequency: d|Z|/dR normalized. Scales particle peak contrast —
/// at capacitance-dominated frequencies a passing particle is nearly
/// invisible, matching why the instrument excites at >= 500 kHz.
double amplitude_sensitivity(const ElectrodePairModel& model,
                             double frequency_hz);

}  // namespace medsen::sim
