#pragma once
// Small binary file helpers for the persistence layer.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace medsen::util {

/// Write a byte buffer to a file, replacing any existing content.
/// Throws std::runtime_error on I/O failure.
void write_file(const std::string& path, std::span<const std::uint8_t> data);

/// Atomically replace `path` with `data`: writes `path + ".tmp"` first
/// and renames it over the target, so a crash mid-write leaves the
/// previous file intact (at worst an orphaned .tmp). Throws
/// std::runtime_error on I/O failure.
void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> data);

/// Read a whole file; throws std::runtime_error if it cannot be opened.
std::vector<std::uint8_t> read_file(const std::string& path);

/// Does the path exist and open readably?
bool file_exists(const std::string& path);

}  // namespace medsen::util
