#pragma once
// Durable binary file helpers for the persistence layer, built on POSIX
// file descriptors so the fsync discipline is explicit (std::ofstream
// can flush its own buffer but cannot ask the kernel to reach the
// platter). Failures throw std::system_error carrying the errno, so a
// full disk is distinguishable from a permissions problem at the call
// site. Every durability boundary names a crash site (util/crash_point.h)
// so the chaos harness can kill the process at each intermediate state.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace medsen::util {

/// Write a byte buffer to a file, replacing any existing content. No
/// durability guarantee (no fsync) — use write_file_atomic for state
/// that must survive a crash. Throws std::system_error on I/O failure.
void write_file(const std::string& path, std::span<const std::uint8_t> data);

/// Atomically and durably replace `path` with `data`:
///
///   1. write `path + ".tmp"`, 2. fsync the tmp file, 3. rename it over
///   the target, 4. fsync the parent directory.
///
/// A crash at any point leaves either the complete previous file or the
/// complete new file (at worst plus an orphaned .tmp); after a normal
/// return the new content survives power loss — the rename is not
/// durable until the directory entry itself is synced. Throws
/// std::system_error on I/O failure.
void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> data);

/// Read a whole file; throws std::system_error if it cannot be opened
/// or read.
std::vector<std::uint8_t> read_file(const std::string& path);

/// Does the path exist? stat-based on purpose: a file that exists but
/// cannot be read (permissions) still reports true, so callers that
/// would (re)initialize an absent file never wipe live state they
/// merely failed to open — the subsequent open/read throws the real
/// error instead. Follows symlinks; any stat-able entry counts.
bool file_exists(const std::string& path);

/// Unlink `path`. Returns true if a file was removed, false if the path
/// did not exist; any other failure throws std::system_error. The
/// caller decides whether the unlink needs a parent-directory fsync
/// (sync_parent_dir) to be durable.
bool remove_file(const std::string& path);

/// fsync the directory containing `path`, making renames/creations of
/// entries inside it durable.
void sync_parent_dir(const std::string& path);

/// Create a directory (parents must exist). Existing directory is fine.
void ensure_directory(const std::string& path);

/// An append-only file handle with explicit durability: append() writes,
/// sync() makes everything written so far durable, truncate() durably
/// discards a suffix (journal compaction). Move-only; closes on
/// destruction. All failures throw std::system_error.
class DurableFile {
 public:
  DurableFile() = default;
  ~DurableFile();
  DurableFile(DurableFile&& other) noexcept;
  DurableFile& operator=(DurableFile&& other) noexcept;
  DurableFile(const DurableFile&) = delete;
  DurableFile& operator=(const DurableFile&) = delete;

  /// Open `path` for appending, creating it (and durably recording the
  /// creation in the parent directory) if needed.
  static DurableFile open_append(const std::string& path);

  void append(std::span<const std::uint8_t> data);
  void sync();
  /// ftruncate to `size` bytes and fsync.
  void truncate(std::uint64_t size);
  [[nodiscard]] std::uint64_t size() const;
  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const { return path_; }
  void close();

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace medsen::util
