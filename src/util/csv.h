#pragma once
// Minimal CSV writer/reader. The paper's prototype captures bio-sensor
// measurements in CSV files before compressing them on the phone; the
// compression benchmark (600 MB -> 240 MB experiment) reproduces that
// data layout.

#include <string>
#include <vector>

#include "util/time_series.h"

namespace medsen::util {

/// Serialize a multi-channel acquisition to CSV text:
/// header "time,ch<f0>,ch<f1>,..." then one row per sample instant.
std::string to_csv(const MultiChannelSeries& series);

/// Parse CSV text produced by to_csv back into a MultiChannelSeries.
/// Throws std::runtime_error on malformed input.
MultiChannelSeries from_csv(const std::string& text, double sample_rate_hz);

/// Generic row-oriented CSV table.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<double>> rows;
};

/// Render a numeric table (used by the bench harness for figure data).
std::string table_to_csv(const CsvTable& table);

}  // namespace medsen::util
