#include "util/secret_bytes.h"

#include <algorithm>

#include "util/secure_zero.h"

namespace medsen::util {

SecretBytes::SecretBytes(std::span<const std::uint8_t> bytes) {
  assign(bytes);
}

SecretBytes::SecretBytes(std::vector<std::uint8_t>&& bytes) {
  adopt(std::move(bytes));
}

SecretBytes::SecretBytes(const SecretBytes& other) { assign(other.span()); }

SecretBytes& SecretBytes::operator=(const SecretBytes& other) {
  if (this != &other) assign(other.span());
  return *this;
}

SecretBytes::SecretBytes(SecretBytes&& other) noexcept { take_from(other); }

SecretBytes& SecretBytes::operator=(SecretBytes&& other) noexcept {
  if (this != &other) {
    wipe();
    take_from(other);
  }
  return *this;
}

SecretBytes::~SecretBytes() { wipe(); }

void SecretBytes::take_from(SecretBytes& other) noexcept {
  if (other.spill_) {
    // Transfer the heap buffer wholesale; nothing is copied, so the
    // source holds no residue beyond its (already zero) inline array.
    spill_ = std::move(other.spill_);
    spill_capacity_ = other.spill_capacity_;
    size_ = other.size_;
    other.spill_capacity_ = 0;
    other.size_ = 0;
    return;
  }
  size_ = other.size_;
  std::copy_n(other.inline_.data(), other.size_, inline_.data());
  other.wipe();
}

void SecretBytes::assign(std::span<const std::uint8_t> bytes) {
  if (bytes.size() <= kInlineCapacity) {
    // Copy before wiping: `bytes` may alias our own storage.
    std::array<std::uint8_t, kInlineCapacity> staged{};
    std::copy(bytes.begin(), bytes.end(), staged.begin());
    wipe();
    inline_ = staged;
    size_ = bytes.size();
    secure_wipe(staged);
    return;
  }
  auto staged = std::make_unique<std::uint8_t[]>(bytes.size());
  std::copy(bytes.begin(), bytes.end(), staged.get());
  wipe();
  spill_ = std::move(staged);
  spill_capacity_ = bytes.size();
  size_ = bytes.size();
}

void SecretBytes::adopt(std::vector<std::uint8_t>&& bytes) {
  assign(bytes);
  secure_wipe(bytes);
}

void SecretBytes::wipe() noexcept {
  secure_wipe(inline_);
  if (spill_) {
    secure_zero(spill_.get(), spill_capacity_);
    spill_.reset();
  }
  spill_capacity_ = 0;
  size_ = 0;
}

bool constant_time_equal_bytes(std::span<const std::uint8_t> a,
                               std::span<const std::uint8_t> b) noexcept {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc = static_cast<std::uint8_t>(acc | (a[i] ^ b[i]));
  return acc == 0;
}

}  // namespace medsen::util
