#pragma once
// Fixed-capacity ring buffer. Used by the simulated lock-in amplifier's
// moving-average stage and the phone relay's streaming chunker, where
// bounded memory mirrors the embedded deployment constraints.

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace medsen::util {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : buf_(capacity), capacity_(capacity) {
    if (capacity == 0)
      throw std::invalid_argument("RingBuffer: capacity must be > 0");
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == capacity_; }

  /// Append an element, overwriting the oldest if full. Returns true if an
  /// element was evicted.
  bool push(const T& v) {
    const bool evicted = full();
    buf_[head_] = v;
    head_ = (head_ + 1) % capacity_;
    if (evicted) {
      tail_ = (tail_ + 1) % capacity_;
    } else {
      ++size_;
    }
    return evicted;
  }

  /// Remove and return the oldest element; throws if empty.
  T pop() {
    if (empty()) throw std::out_of_range("RingBuffer: pop from empty");
    T v = std::move(buf_[tail_]);
    tail_ = (tail_ + 1) % capacity_;
    --size_;
    return v;
  }

  /// Element i positions from the oldest (0 == oldest).
  [[nodiscard]] const T& at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("RingBuffer: index");
    return buf_[(tail_ + i) % capacity_];
  }

  [[nodiscard]] const T& front() const { return at(0); }
  [[nodiscard]] const T& back() const { return at(size_ - 1); }

  void clear() {
    head_ = tail_ = size_ = 0;
  }

 private:
  std::vector<T> buf_;
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t size_ = 0;
};

}  // namespace medsen::util
