#pragma once
// Uniformly sampled time-series container. This is the fundamental data type
// exchanged between the MedSen sensor, phone and cloud: the lock-in
// amplifier's demodulated output per carrier frequency.

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace medsen::util {

/// A uniformly sampled scalar signal with a start time and sample rate.
class TimeSeries {
 public:
  TimeSeries() = default;

  /// Construct with a sample rate (Hz, > 0) and optional start time (s).
  explicit TimeSeries(double sample_rate_hz, double start_time_s = 0.0)
      : rate_(sample_rate_hz), start_(start_time_s) {
    if (sample_rate_hz <= 0.0)
      throw std::invalid_argument("TimeSeries: sample rate must be positive");
  }

  TimeSeries(double sample_rate_hz, std::vector<double> samples,
             double start_time_s = 0.0)
      : TimeSeries(sample_rate_hz, start_time_s) {
    samples_ = std::move(samples);
  }

  [[nodiscard]] double sample_rate() const { return rate_; }
  [[nodiscard]] double start_time() const { return start_; }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double duration() const {
    return static_cast<double>(samples_.size()) / rate_;
  }

  [[nodiscard]] double operator[](std::size_t i) const { return samples_[i]; }
  double& operator[](std::size_t i) { return samples_[i]; }

  [[nodiscard]] std::span<const double> samples() const { return samples_; }
  [[nodiscard]] std::span<double> samples_mut() { return samples_; }
  [[nodiscard]] std::vector<double>& storage() { return samples_; }

  /// Timestamp (seconds) of sample i.
  [[nodiscard]] double time_at(std::size_t i) const {
    return start_ + static_cast<double>(i) / rate_;
  }

  /// Index of the sample nearest to time t (clamped to the valid range).
  [[nodiscard]] std::size_t index_at(double t) const;

  void push_back(double v) { samples_.push_back(v); }
  void reserve(std::size_t n) { samples_.reserve(n); }
  void clear() { samples_.clear(); }

  /// Copy out the sub-series covering [t0, t1) (clamped to bounds).
  [[nodiscard]] TimeSeries slice(double t0, double t1) const;

 private:
  double rate_ = 1.0;
  double start_ = 0.0;
  std::vector<double> samples_;
};

/// A bundle of simultaneously sampled channels (one per carrier frequency).
struct MultiChannelSeries {
  std::vector<double> carrier_frequencies_hz;  ///< one per channel
  std::vector<TimeSeries> channels;            ///< same length/rate each

  [[nodiscard]] std::size_t channel_count() const { return channels.size(); }
  /// Total scalar samples across all channels.
  [[nodiscard]] std::size_t total_samples() const;
};

}  // namespace medsen::util
