#include "util/time_series.h"

#include <algorithm>
#include <cmath>

namespace medsen::util {

std::size_t TimeSeries::index_at(double t) const {
  if (samples_.empty()) return 0;
  const double raw = (t - start_) * rate_;
  const auto idx = static_cast<long>(std::llround(raw));
  return static_cast<std::size_t>(
      std::clamp<long>(idx, 0, static_cast<long>(samples_.size()) - 1));
}

TimeSeries TimeSeries::slice(double t0, double t1) const {
  TimeSeries out(rate_, std::max(t0, start_));
  if (samples_.empty() || t1 <= t0) return out;
  const std::size_t i0 = index_at(t0);
  std::size_t i1 = index_at(t1);
  if (time_at(i1) < t1 && i1 + 1 < samples_.size()) ++i1;
  out.samples_.assign(samples_.begin() + static_cast<long>(i0),
                      samples_.begin() + static_cast<long>(i1));
  out.start_ = time_at(i0);
  return out;
}

std::size_t MultiChannelSeries::total_samples() const {
  std::size_t n = 0;
  for (const auto& ch : channels) n += ch.size();
  return n;
}

}  // namespace medsen::util
