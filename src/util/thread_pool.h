#pragma once
// Fixed-size worker pool for the cloud analysis stack. Two properties
// matter more than raw queue throughput here:
//
//  1. *Help-while-waiting*: parallel_for's caller executes queued tasks
//     itself until its batch completes, so nested parallel sections
//     (channels in AnalysisService, detrend windows inside each channel)
//     cannot deadlock on a fixed worker set — a thread blocked on a batch
//     is always draining the queue instead of sleeping on it.
//  2. *Exception propagation*: the first exception thrown by any task of
//     a parallel_for batch is captured and rethrown on the caller after
//     the whole batch has drained, so partially-written scratch state is
//     never observed mid-flight.
//
// Determinism is the callers' contract, not the pool's: work submitted
// here must write to disjoint slots (or per-task slabs reduced serially)
// so the result is bit-identical to a serial run — see dsp::detrend_into
// and cloud::AnalysisService.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace medsen::util {

class ThreadPool {
 public:
  /// Spawn `workers` worker threads (0 = one per hardware core, minus the
  /// caller, but at least one). Total concurrency of a parallel_for is
  /// workers + 1 because the calling thread participates.
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker threads plus the participating caller.
  [[nodiscard]] unsigned concurrency() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Split [0, n) into contiguous chunks of at least `grain` indices and
  /// run `body(begin, end)` on each, using the workers plus the calling
  /// thread. Blocks until every chunk has finished; rethrows the first
  /// task exception. n == 0 is a no-op. The chunking never affects
  /// callers that reduce per-chunk results in index order.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Enqueue a single task and return a future for its result. The task
  /// may itself call parallel_for on the same pool.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    enqueue([task] { (*task)(); });
    return result;
  }

 private:
  void enqueue(std::function<void()> task);
  /// Pop and run one queued task; false if the queue was empty.
  bool run_one();
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  bool stop_ = false;
};

}  // namespace medsen::util
