#include "util/fileio.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <system_error>
#include <utility>

#include "util/crash_point.h"

namespace medsen::util {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

/// The directory component of `path` ("." when there is none).
std::string parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

int open_or_throw(const std::string& path, int flags, mode_t mode = 0644) {
  int fd = -1;
  do {
    fd = ::open(path.c_str(), flags, mode);  // NOLINT(cppcoreguidelines-pro-type-vararg)
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) throw_errno("open: " + path);
  return fd;
}

void write_all(int fd, std::span<const std::uint8_t> data,
               const std::string& path) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write: " + path);
    }
    written += static_cast<std::size_t>(n);
  }
}

void fsync_or_throw(int fd, const std::string& path) {
  if (::fsync(fd) != 0) throw_errno("fsync: " + path);
}

/// RAII fd so an exception (including SimulatedCrash) between open and
/// close never leaks a descriptor.
class Fd {
 public:
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  [[nodiscard]] int get() const { return fd_; }
  int release() { return std::exchange(fd_, -1); }

 private:
  int fd_;
};

void sync_dir(const std::string& dir) {
  const Fd fd(open_or_throw(dir, O_RDONLY | O_DIRECTORY));
  fsync_or_throw(fd.get(), dir);
}

}  // namespace

void write_file(const std::string& path,
                std::span<const std::uint8_t> data) {
  const Fd fd(open_or_throw(path, O_WRONLY | O_CREAT | O_TRUNC));
  write_all(fd.get(), data, path);
}

void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> data) {
  const std::string tmp = path + ".tmp";
  {
    const Fd fd(open_or_throw(tmp, O_WRONLY | O_CREAT | O_TRUNC));
    crash_point("fileio.atomic.tmp_open");
    // Two half-writes around a crash site so the sweep exercises a
    // genuinely torn temp file, not just an empty one.
    const std::size_t half = data.size() / 2;
    write_all(fd.get(), data.first(half), tmp);
    crash_point("fileio.atomic.tmp_partial");
    write_all(fd.get(), data.subspan(half), tmp);
    crash_point("fileio.atomic.tmp_written");
    fsync_or_throw(fd.get(), tmp);
    crash_point("fileio.atomic.tmp_synced");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    errno = saved;
    throw_errno("rename: " + tmp + " -> " + path);
  }
  crash_point("fileio.atomic.renamed");
  // The rename is not durable until the directory entry is: a power cut
  // here may resurrect the old file, never tear the new one.
  sync_dir(parent_dir(path));
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  const Fd fd(open_or_throw(path, O_RDONLY));
  struct stat st {};
  if (::fstat(fd.get(), &st) != 0) throw_errno("fstat: " + path);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(st.st_size));
  std::size_t total = 0;
  while (total < data.size()) {
    const ssize_t n =
        ::read(fd.get(), data.data() + total, data.size() - total);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("read: " + path);
    }
    if (n == 0) break;  // shrank under us; return what exists
    total += static_cast<std::size_t>(n);
  }
  data.resize(total);
  return data;
}

bool file_exists(const std::string& path) {
  // stat, not access(R_OK): an existing-but-unreadable file must still
  // report true, or a caller (Journal::open) would mistake a permissions
  // problem for absence and reinitialize — destroying acknowledged
  // state. The open/read that follows surfaces the real EACCES.
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

bool remove_file(const std::string& path) {
  if (::unlink(path.c_str()) == 0) return true;
  if (errno == ENOENT) return false;
  throw_errno("unlink: " + path);
}

void sync_parent_dir(const std::string& path) {
  sync_dir(parent_dir(path));
}

void ensure_directory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0) return;
  if (errno == EEXIST) return;
  throw_errno("mkdir: " + path);
}

DurableFile::~DurableFile() { close(); }

DurableFile::DurableFile(DurableFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}

DurableFile& DurableFile::operator=(DurableFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

DurableFile DurableFile::open_append(const std::string& path) {
  const bool existed = file_exists(path);
  DurableFile file;
  file.fd_ = open_or_throw(path, O_WRONLY | O_CREAT | O_APPEND);
  file.path_ = path;
  // A freshly created file is not durable until its directory entry is.
  if (!existed) sync_dir(parent_dir(path));
  return file;
}

void DurableFile::append(std::span<const std::uint8_t> data) {
  write_all(fd_, data, path_);
}

void DurableFile::sync() { fsync_or_throw(fd_, path_); }

void DurableFile::truncate(std::uint64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0)
    throw_errno("ftruncate: " + path_);
  crash_point("fileio.truncate.before_sync");
  fsync_or_throw(fd_, path_);
}

std::uint64_t DurableFile::size() const {
  struct stat st {};
  if (::fstat(fd_, &st) != 0) throw_errno("fstat: " + path_);
  return static_cast<std::uint64_t>(st.st_size);
}

void DurableFile::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace medsen::util
