#include "util/fileio.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace medsen::util {

void write_file(const std::string& path,
                std::span<const std::uint8_t> data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("write_file: cannot open " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw std::runtime_error("write_file: write failed: " + path);
}

void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> data) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw std::runtime_error("write_file_atomic: cannot open " + tmp);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw std::runtime_error("write_file_atomic: write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("write_file_atomic: rename failed: " + path);
  }
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("read_file: cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  if (!in) throw std::runtime_error("read_file: read failed: " + path);
  return data;
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

}  // namespace medsen::util
