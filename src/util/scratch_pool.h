#pragma once
// Mutex-guarded freelist of reusable scratch objects. The analysis hot
// path wants per-task working memory (detrend workspaces, peak-detect
// buffers) without a heap round-trip per request — but `static
// thread_local` scratch is NOT safe here: ThreadPool lets a thread
// waiting in parallel_for help-drain the queue, so a nested task can run
// on the same OS thread while an outer frame still holds spans into the
// thread-local buffers (resize would dangle them). A pooled lease is
// owned by exactly one task frame for its lifetime, so reentrancy and
// work-stealing are both safe.
//
// Lock cost: one mutex acquire on lease and one on release — nanoseconds
// against the milliseconds of a detrend pass, and never held while the
// scratch is in use.

#include <cstddef>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace medsen::util {

/// Pool of default-constructed T instances handed out via RAII leases.
/// Thread-safe; leases may be acquired and released concurrently from
/// any thread. Objects are never shrunk or cleared by the pool — a
/// returned object keeps its internal buffers, which is the point:
/// capacity warms up to the workload's high-water mark and stays there.
template <typename T>
class ScratchPool {
 public:
  /// RAII handle to one pooled object. Movable, not copyable; returns
  /// the object to the pool on destruction. A moved-from lease is empty.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          obj_(std::move(other.obj_)) {}
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = std::exchange(other.pool_, nullptr);
        obj_ = std::move(other.obj_);
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    T& operator*() const { return *obj_; }
    T* operator->() const { return obj_.get(); }
    explicit operator bool() const { return obj_ != nullptr; }

   private:
    friend class ScratchPool;
    Lease(ScratchPool* pool, std::unique_ptr<T> obj)
        : pool_(pool), obj_(std::move(obj)) {}

    void release() {
      if (pool_ != nullptr && obj_ != nullptr)
        pool_->put_back(std::move(obj_));
      pool_ = nullptr;
      obj_ = nullptr;
    }

    ScratchPool* pool_ = nullptr;
    std::unique_ptr<T> obj_;
  };

  ScratchPool() = default;
  ScratchPool(const ScratchPool&) = delete;
  ScratchPool& operator=(const ScratchPool&) = delete;

  /// Lease an object: reuses a pooled one if available, otherwise
  /// default-constructs a new one. The pool must outlive every lease.
  [[nodiscard]] Lease acquire() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!free_.empty()) {
        std::unique_ptr<T> obj = std::move(free_.back());
        free_.pop_back();
        return Lease(this, std::move(obj));
      }
      ++created_;
    }
    return Lease(this, std::make_unique<T>());
  }

  /// Total objects ever constructed (pooled + currently leased).
  [[nodiscard]] std::size_t created() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return created_;
  }

  /// Objects currently sitting in the freelist.
  [[nodiscard]] std::size_t available() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return free_.size();
  }

 private:
  void put_back(std::unique_ptr<T> obj) {
    const std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(std::move(obj));
  }

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<T>> free_;
  std::size_t created_ = 0;
};

}  // namespace medsen::util
