#pragma once
// util::SecretBytes — the tree's container for key material. A byte
// buffer with wipe-on-free semantics:
//
//   - the destructor zeroes the live bytes (secure_zero, barrier-pinned)
//     before storage is released;
//   - moving *out* wipes the source, so no stale copy of a key survives
//     an ownership transfer;
//   - assignment wipes the previous contents before taking new ones;
//   - keys up to kInlineCapacity (64) bytes — every key in this codebase
//     is 16 or 32 — live in inline storage, so the TCB holds them
//     without touching the heap and a destructed object leaves zeroed
//     stack/struct memory the zeroization test can pin byte-for-byte.
//
// Equality is constant-time (XOR-accumulate over every byte), so a
// SecretBytes comparison can never become the timing oracle the
// ct-compare lint rule exists to prevent. The medsen-analyze
// secret-flow pass treats SecretBytes as intrinsically secret: it needs
// no per-field wipe in its owners' destructors, and letting one reach a
// log stream or plaintext serializer is a finding.

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace medsen::util {

class SecretBytes {  // medsen: secret
 public:
  /// Keys at or under this size never touch the heap.
  static constexpr std::size_t kInlineCapacity = 64;

  SecretBytes() = default;
  explicit SecretBytes(std::span<const std::uint8_t> bytes);
  /// Take a key that was born in a plain vector (the crypto KDFs return
  /// std::vector): copies the bytes, then wipes the source so the
  /// caller's buffer does not keep a live copy.
  explicit SecretBytes(std::vector<std::uint8_t>&& bytes);

  SecretBytes(const SecretBytes& other);
  SecretBytes& operator=(const SecretBytes& other);
  SecretBytes(SecretBytes&& other) noexcept;
  SecretBytes& operator=(SecretBytes&& other) noexcept;
  ~SecretBytes();

  /// Replace the contents (previous contents are wiped first).
  void assign(std::span<const std::uint8_t> bytes);
  /// assign() from a vector, wiping the source afterwards.
  void adopt(std::vector<std::uint8_t>&& bytes);
  /// Zero the contents and become empty. Idempotent.
  void wipe() noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] const std::uint8_t* data() const noexcept {
    return spill_ ? spill_.get() : inline_.data();
  }
  [[nodiscard]] std::span<const std::uint8_t> span() const noexcept {
    return {data(), size_};
  }
  // NOLINTNEXTLINE(google-explicit-constructor): span-taking crypto and
  // wire APIs must accept a SecretBytes wherever they accept key bytes.
  operator std::span<const std::uint8_t>() const noexcept { return span(); }

 private:
  void take_from(SecretBytes& other) noexcept;

  std::array<std::uint8_t, kInlineCapacity> inline_{};
  std::unique_ptr<std::uint8_t[]> spill_;  ///< engaged when size_ > inline
  std::size_t size_ = 0;
  std::size_t spill_capacity_ = 0;
};

/// Constant-time equality (length mismatch returns false; lengths are
/// public). The canonical crypto::constant_time_equal delegates to the
/// same XOR-accumulate shape; this lives in util so SecretBytes does not
/// invert the crypto -> util layering.
[[nodiscard]] bool constant_time_equal_bytes(
    std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) noexcept;

[[nodiscard]] inline bool operator==(const SecretBytes& a,
                                     const SecretBytes& b) noexcept {
  return constant_time_equal_bytes(a.span(), b.span());
}
[[nodiscard]] inline bool operator==(const SecretBytes& a,
                                     std::span<const std::uint8_t> b) noexcept {
  return constant_time_equal_bytes(a.span(), b);
}

}  // namespace medsen::util
