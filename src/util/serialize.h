#pragma once
// Endian-safe binary serialization used by the MedSen wire protocol
// (sensor -> phone -> cloud messages) and by key/identifier storage.
// All multi-byte integers are encoded little-endian; doubles are encoded
// via their IEEE-754 bit pattern.

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace medsen::util {

/// Appends primitive values to a growing byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void bytes(std::span<const std::uint8_t> data);
  /// Length-prefixed (u32) byte string.
  void blob(std::span<const std::uint8_t> data);
  /// Length-prefixed (u32) UTF-8 string.
  void str(const std::string& s);
  /// Length-prefixed (u32) vector of doubles.
  void f64_vec(std::span<const double> v);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Reads primitives back from a byte buffer; throws std::out_of_range on
/// truncated input so malformed network frames surface as errors rather
/// than garbage values.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::vector<std::uint8_t> blob();
  std::string str();
  std::vector<double> f64_vec();

  /// Reads a u32 element count and validates it against the bytes left:
  /// each element needs at least `min_elem_bytes`, so a count the buffer
  /// cannot possibly satisfy is rejected *before* any allocation — a
  /// 20-byte frame must not be able to demand a multi-gigabyte reserve.
  std::uint32_t count_u32(std::size_t min_elem_bytes);

  /// Throws std::runtime_error("<what>: trailing bytes") unless the
  /// buffer is fully consumed. Strict decoders call this last so that
  /// appended garbage is rejected instead of silently ignored.
  void expect_done(const char* what) const;

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > data_.size())
      throw std::out_of_range("ByteReader: truncated buffer");
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace medsen::util
