#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace medsen::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  if (n % 2 == 1) return v[n / 2];
  return 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double min_value(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  LinearFit fit;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) {
    fit.intercept = n == 1 ? ys[0] : 0.0;
    return fit;
  }
  const double mx = mean(xs.subspan(0, n));
  const double my = mean(ys.subspan(0, n));
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) {
    fit.intercept = my;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy > 0.0) ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  const double mx = mean(xs.subspan(0, n));
  const double my = mean(ys.subspan(0, n));
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t bins) {
  std::vector<std::size_t> out(bins, 0);
  if (bins == 0 || hi <= lo) return out;
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    auto idx = static_cast<long>((x - lo) / width);
    idx = std::clamp<long>(idx, 0, static_cast<long>(bins) - 1);
    ++out[static_cast<std::size_t>(idx)];
  }
  return out;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace medsen::util
