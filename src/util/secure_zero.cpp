#include "util/secure_zero.h"

#include <cstring>

namespace medsen::util {

void secure_zero(void* p, std::size_t n) noexcept {
  if (p == nullptr || n == 0) return;
  std::memset(p, 0, n);
  // The barrier tells the compiler the zeroed bytes are observed, so the
  // memset cannot be treated as a dead store even when `p` is freed (or
  // goes out of scope) immediately afterwards.
#if defined(__GNUC__) || defined(__clang__)
  __asm__ __volatile__("" : : "r"(p) : "memory");
#else
  // Fallback: a volatile byte-walk the optimizer must preserve.
  volatile unsigned char* bytes = static_cast<volatile unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) bytes[i] = 0;
#endif
}

}  // namespace medsen::util
