#pragma once
// util::Sharded<T>: N independently-locked copies of a state type, with
// deterministic FNV-1a routing from a 64-bit key to a shard. This is the
// building block the cloud service layer uses to stop serializing every
// request on process-wide singleton locks: each (device, session) only
// ever touches the shard its key routes to, so requests for different
// devices proceed on different mutexes, and a snapshot walks the shards
// one at a time (readers see a per-shard-consistent, eventually-
// consistent view — never a torn entry).
//
// Routing is deterministic: the same key maps to the same shard for a
// given shard count, across runs, hosts, and processes (FNV-1a is fixed,
// no per-process hash seeding). Shard counts are rounded up to a power
// of two so routing is a mask, and default to a small multiple of the
// hardware concurrency.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <utility>

namespace medsen::util {

inline constexpr std::uint64_t kFnv1aOffset = 14695981039346656037ull;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ull;

/// FNV-1a over the 8 little-endian bytes of `key`. Used as the shard
/// router: std::hash<uint64_t> is identity on common implementations,
/// which would route sequential device ids to sequential shards of a
/// power-of-two table — fine — but is not pinned by the standard, and
/// routing must be deterministic across toolchains.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::uint64_t key) {
  std::uint64_t hash = kFnv1aOffset;
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (key >> (8 * byte)) & 0xFFu;
    hash *= kFnv1aPrime;
  }
  return hash;
}

/// FNV-1a over a byte string (record-store keys are identifier text).
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = kFnv1aOffset;
  for (const char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= kFnv1aPrime;
  }
  return hash;
}

/// Smallest power of two >= n (n = 0 or 1 gives 1).
[[nodiscard]] constexpr std::size_t round_up_pow2(std::size_t n) {
  std::size_t pow2 = 1;
  while (pow2 < n) pow2 <<= 1;
  return pow2;
}

/// Default shard count: enough shards that threads rarely collide
/// (4x the core count, rounded to a power of two), bounded so a
/// million-device deployment on a big box doesn't allocate absurdly.
[[nodiscard]] inline std::size_t default_shard_count() {
  const std::size_t cores = std::thread::hardware_concurrency();
  const std::size_t shards = round_up_pow2(cores == 0 ? 4 : 4 * cores);
  return shards > 256 ? 256 : shards;
}

template <typename T>
class Sharded {
 public:
  /// `shard_count` 0 picks the hardware default; anything else is
  /// rounded up to a power of two (1 = the old single-lock behavior,
  /// useful as a baseline and in tests).
  explicit Sharded(std::size_t shard_count = 0)
      : count_(shard_count == 0 ? default_shard_count()
                                : round_up_pow2(shard_count)),
        shards_(std::make_unique<Shard[]>(count_)) {}

  Sharded(Sharded&&) noexcept = default;
  Sharded& operator=(Sharded&&) noexcept = default;

  [[nodiscard]] std::size_t shard_count() const { return count_; }

  /// Deterministic key -> shard routing (same key, same shard, always).
  [[nodiscard]] std::size_t shard_index(std::uint64_t route_key) const {
    return static_cast<std::size_t>(fnv1a64(route_key)) & (count_ - 1);
  }

  /// Run `fn(T&)` holding only the routed shard's lock. No other shard
  /// is touched, so two keys on different shards never contend.
  template <typename Fn>
  decltype(auto) with(std::uint64_t route_key, Fn&& fn) {
    Shard& shard = shards_[shard_index(route_key)];
    const std::lock_guard<std::mutex> lock(shard.mutex);
    return std::forward<Fn>(fn)(shard.state);
  }

  template <typename Fn>
  decltype(auto) with(std::uint64_t route_key, Fn&& fn) const {
    const Shard& shard = shards_[shard_index(route_key)];
    const std::lock_guard<std::mutex> lock(shard.mutex);
    return std::forward<Fn>(fn)(shard.state);
  }

  /// Visit every shard in index order, locking one at a time. The view
  /// is consistent per shard, eventually consistent across shards: a
  /// concurrent writer to an already-visited shard is not seen.
  template <typename Fn>
  void for_each_shard(Fn&& fn) const {
    for (std::size_t i = 0; i < count_; ++i) {
      const std::lock_guard<std::mutex> lock(shards_[i].mutex);
      fn(static_cast<const T&>(shards_[i].state));
    }
  }

  template <typename Fn>
  void for_each_shard(Fn&& fn) {
    for (std::size_t i = 0; i < count_; ++i) {
      const std::lock_guard<std::mutex> lock(shards_[i].mutex);
      fn(shards_[i].state);
    }
  }

 private:
  // One cache line per shard: the mutex and the head of the state never
  // false-share with a neighboring shard.
  struct alignas(64) Shard {
    mutable std::mutex mutex;
    T state{};
  };

  std::size_t count_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace medsen::util
