#include "util/crash_point.h"

namespace medsen::util {

namespace {

/// SplitMix64: the project's standard deterministic mixer (same shape as
/// the bench harnesses). Good enough to schedule crashes, stateless
/// beyond one u64, and free of the banned OS entropy sources.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

CrashPoints& CrashPoints::instance() {
  static CrashPoints registry;
  return registry;
}

void CrashPoints::hit(const char* site) {
  if (!active_.load(std::memory_order_relaxed)) return;
  hit_slow(site);
}

void CrashPoints::hit_slow(const char* site) {
  std::uint64_t nth = 0;
  bool crash = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    nth = ++counts_[site];
    if (armed_ && armed_site_ == site && nth == armed_nth_) crash = true;
    if (!crash && random_armed_) {
      const double draw =
          static_cast<double>(splitmix64(rng_state_) >> 11) * 0x1.0p-53;
      if (draw < threshold_) crash = true;
    }
  }
  // Throw outside the lock: the harness catches this far up-stack and
  // must be free to re-enter the registry while unwinding.
  if (crash) throw SimulatedCrash{site};
}

void CrashPoints::arm(std::string site, std::uint64_t nth_hit) {
  const std::lock_guard<std::mutex> lock(mu_);
  armed_ = true;
  armed_site_ = std::move(site);
  armed_nth_ = nth_hit == 0 ? 1 : nth_hit;
  active_.store(true, std::memory_order_relaxed);
}

void CrashPoints::arm_random(double probability, std::uint64_t seed) {
  const std::lock_guard<std::mutex> lock(mu_);
  random_armed_ = true;
  threshold_ = probability;
  rng_state_ = seed;
  active_.store(true, std::memory_order_relaxed);
}

void CrashPoints::disarm() {
  const std::lock_guard<std::mutex> lock(mu_);
  armed_ = false;
  armed_site_.clear();
  armed_nth_ = 0;
  random_armed_ = false;
  threshold_ = 0.0;
  active_.store(tracking_, std::memory_order_relaxed);
}

void CrashPoints::set_tracking(bool enabled) {
  const std::lock_guard<std::mutex> lock(mu_);
  tracking_ = enabled;
  active_.store(tracking_ || armed_ || random_armed_,
                std::memory_order_relaxed);
}

std::vector<std::pair<std::string, std::uint64_t>> CrashPoints::discovered()
    const {
  const std::lock_guard<std::mutex> lock(mu_);
  return {counts_.begin(), counts_.end()};
}

std::uint64_t CrashPoints::hits(const std::string& site) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counts_.find(site);
  return it == counts_.end() ? 0 : it->second;
}

void CrashPoints::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  counts_.clear();
  armed_ = false;
  armed_site_.clear();
  armed_nth_ = 0;
  random_armed_ = false;
  threshold_ = 0.0;
  active_.store(tracking_, std::memory_order_relaxed);
}

}  // namespace medsen::util
