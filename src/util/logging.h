#pragma once
// Lightweight leveled logger. Kept deliberately tiny: the MedSen controller
// is modeled as a resource-constrained trusted computing base, and the rest
// of the pipeline only needs coarse progress reporting.

#include <sstream>
#include <string>

namespace medsen::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are discarded. Default: kWarn
/// (quiet for tests and benches).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line to stderr if `level` passes the global threshold.
void log_message(LogLevel level, const std::string& component,
                 const std::string& message);

/// Stream-style helper: LogLine(kInfo, "cloud") << "peaks=" << n;
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogLine() { log_message(level_, component_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace medsen::util
