#pragma once
// Guaranteed-to-happen zeroization for key material. A plain memset
// before free() is a dead store the optimizer is entitled to delete —
// the canonical "key left in freed heap" bug — so secure_zero() pins the
// store with a compiler barrier. Everything that holds secrets
// (crypto scratch, session keys, the sensor key schedule) wipes through
// these helpers; the medsen-analyze secret-flow pass checks that every
// `// medsen: secret` field either lives in a self-wiping type
// (util::SecretBytes) or is wiped here from its owner's destructor.

#include <array>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace medsen::util {

/// Zero `n` bytes at `p` with a store the compiler cannot elide.
/// Null/zero-length calls are no-ops.
void secure_zero(void* p, std::size_t n) noexcept;

/// Wipe a vector's live contents, then clear it. The heap buffer is
/// zeroed up to size() — the only region we may legally write — so a
/// later deallocation releases zeroed memory. Capacity is retained
/// (clear() does not shrink); reuse after a wipe is fine.
template <typename T, typename Alloc>
void secure_wipe(std::vector<T, Alloc>& v) noexcept {
  static_assert(std::is_trivially_copyable_v<T>,
                "secure_wipe: element type must be trivially copyable");
  if (!v.empty()) secure_zero(v.data(), v.size() * sizeof(T));
  v.clear();
}

/// Wipe a fixed-size array in place (sizes stay valid; contents zero).
template <typename T, std::size_t N>
void secure_wipe(std::array<T, N>& a) noexcept {
  static_assert(std::is_trivially_copyable_v<T>,
                "secure_wipe: element type must be trivially copyable");
  secure_zero(a.data(), N * sizeof(T));
}

}  // namespace medsen::util
