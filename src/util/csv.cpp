#include "util/csv.h"

#include <charconv>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace medsen::util {

namespace {

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

std::string to_csv(const MultiChannelSeries& series) {
  std::string out;
  out += "time";
  for (double f : series.carrier_frequencies_hz) {
    out += ",ch";
    append_double(out, f);
  }
  out += '\n';
  if (series.channels.empty()) return out;

  const std::size_t n = series.channels.front().size();
  out.reserve(out.size() + n * (series.channels.size() + 1) * 14);
  for (std::size_t i = 0; i < n; ++i) {
    append_double(out, series.channels.front().time_at(i));
    for (const auto& ch : series.channels) {
      out += ',';
      append_double(out, i < ch.size() ? ch[i] : 0.0);
    }
    out += '\n';
  }
  return out;
}

MultiChannelSeries from_csv(const std::string& text, double sample_rate_hz) {
  MultiChannelSeries series;
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line))
    throw std::runtime_error("from_csv: empty input");

  // Header: "time,ch<freq>,..."
  {
    std::istringstream hdr(line);
    std::string field;
    bool first = true;
    while (std::getline(hdr, field, ',')) {
      if (first) {
        first = false;
        continue;
      }
      if (field.rfind("ch", 0) != 0)
        throw std::runtime_error("from_csv: bad header field: " + field);
      series.carrier_frequencies_hz.push_back(std::stod(field.substr(2)));
    }
  }
  series.channels.assign(series.carrier_frequencies_hz.size(),
                         TimeSeries(sample_rate_hz));

  bool first_row = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::size_t pos = 0;
    std::size_t col = 0;
    while (pos <= line.size()) {
      std::size_t comma = line.find(',', pos);
      if (comma == std::string::npos) comma = line.size();
      const std::string field = line.substr(pos, comma - pos);
      const double v = std::stod(field);
      if (col == 0) {
        if (first_row) {
          for (auto& ch : series.channels)
            ch = TimeSeries(sample_rate_hz, v);
          first_row = false;
        }
      } else {
        if (col - 1 >= series.channels.size())
          throw std::runtime_error("from_csv: too many columns");
        series.channels[col - 1].push_back(v);
      }
      ++col;
      pos = comma + 1;
      if (comma == line.size()) break;
    }
    if (col != series.channels.size() + 1)
      throw std::runtime_error("from_csv: ragged row");
  }
  return series;
}

std::string table_to_csv(const CsvTable& table) {
  std::string out;
  for (std::size_t i = 0; i < table.header.size(); ++i) {
    if (i) out += ',';
    out += table.header[i];
  }
  out += '\n';
  for (const auto& row : table.rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out += ',';
      append_double(out, row[i]);
    }
    out += '\n';
  }
  return out;
}

}  // namespace medsen::util
