#pragma once
// Basic descriptive statistics and regression helpers used throughout the
// MedSen codebase (bead-count calibration, classifier margins, benchmarks).

#include <cstddef>
#include <span>
#include <vector>

namespace medsen::util {

/// Arithmetic mean of a sample. Returns 0 for an empty span.
double mean(std::span<const double> xs);

/// Unbiased (n-1) sample variance. Returns 0 for spans of size < 2.
double variance(std::span<const double> xs);

/// Unbiased sample standard deviation.
double stddev(std::span<const double> xs);

/// Median (averages the two central elements for even sizes).
/// Returns 0 for an empty span.
double median(std::span<const double> xs);

/// Linear interpolated percentile, p in [0,100]. Returns 0 for empty input.
double percentile(std::span<const double> xs, double p);

/// Minimum / maximum of a sample. Return 0 for empty input.
double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

/// Result of an ordinary-least-squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
};

/// Ordinary least squares over paired samples. Requires xs.size() ==
/// ys.size(); degenerate inputs (size < 2 or zero x-variance) yield a
/// zero-slope fit through the mean.
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Pearson correlation coefficient; 0 for degenerate inputs.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Fixed-width histogram over [lo, hi) with `bins` equal-width buckets.
/// Values outside the range are clamped into the first/last bucket.
std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t bins);

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const;  ///< unbiased; 0 when n < 2
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace medsen::util
