#include "util/serialize.h"

namespace medsen::util {

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::blob(std::span<const std::uint8_t> data) {
  u32(static_cast<std::uint32_t>(data.size()));
  bytes(data);
}

void ByteWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::f64_vec(std::span<const double> v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (double x : v) f64(x);
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i)
    v = static_cast<std::uint16_t>(v | (static_cast<std::uint16_t>(data_[pos_++]) << (8 * i)));
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::vector<std::uint8_t> ByteReader::blob() {
  const std::uint32_t n = u32();
  need(n);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<long>(pos_),
                                data_.begin() + static_cast<long>(pos_ + n));
  pos_ += n;
  return out;
}

std::string ByteReader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

std::vector<double> ByteReader::f64_vec() {
  const std::uint32_t n = count_u32(sizeof(double));
  std::vector<double> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(f64());
  return out;
}

std::uint32_t ByteReader::count_u32(std::size_t min_elem_bytes) {
  const std::uint32_t n = u32();
  if (min_elem_bytes > 0 &&
      static_cast<std::uint64_t>(n) * min_elem_bytes > remaining())
    throw std::out_of_range("ByteReader: element count exceeds buffer");
  return n;
}

void ByteReader::expect_done(const char* what) const {
  if (!done())
    throw std::runtime_error(std::string(what) + ": trailing bytes");
}

}  // namespace medsen::util
