#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <exception>

namespace medsen::util {

namespace {

unsigned default_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? hw - 1 : 1;
}

}  // namespace

ThreadPool::ThreadPool(unsigned workers) {
  const unsigned count = workers == 0 ? default_workers() : workers;
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

bool ThreadPool::run_one() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;

  // Over-decompose ~4x relative to the thread count so uneven chunks
  // load-balance, but never below the caller's grain.
  const std::size_t target_chunks = static_cast<std::size_t>(concurrency()) * 4;
  std::size_t chunk = (n + target_chunks - 1) / target_chunks;
  if (chunk < grain) chunk = grain;
  const std::size_t chunks = (n + chunk - 1) / chunk;
  if (chunks <= 1) {
    body(0, n);
    return;
  }

  struct Batch {
    std::atomic<std::size_t> remaining;
    std::mutex mutex;
    std::condition_variable done;
    std::exception_ptr error;
  };
  auto batch = std::make_shared<Batch>();
  batch->remaining.store(chunks, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * chunk;
      const std::size_t end = std::min(begin + chunk, n);
      // `body` is captured by reference: the caller blocks below until
      // every chunk has decremented `remaining`, which happens after the
      // last use of `body`.
      queue_.emplace_back([batch, &body, begin, end] {
        try {
          body(begin, end);
        } catch (...) {
          std::lock_guard<std::mutex> guard(batch->mutex);
          if (!batch->error) batch->error = std::current_exception();
        }
        if (batch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> guard(batch->mutex);
          batch->done.notify_all();
        }
      });
    }
  }
  work_ready_.notify_all();

  // Help: run queued tasks (ours or anyone's — nested batches included)
  // until this batch completes. Never sleep while work is available.
  while (batch->remaining.load(std::memory_order_acquire) > 0) {
    if (!run_one()) {
      std::unique_lock<std::mutex> lock(batch->mutex);
      batch->done.wait_for(lock, std::chrono::milliseconds(1), [&] {
        return batch->remaining.load(std::memory_order_acquire) == 0;
      });
    }
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace medsen::util
