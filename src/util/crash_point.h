#pragma once
// util::CrashPoints — deterministic, seeded crash injection for the
// persistence layer. Every durability-critical boundary (journal append,
// fsync, rename, truncate, snapshot write) names a *crash site* by
// calling util::crash_point("name"). In production nothing is armed and
// a site costs one relaxed atomic load. A test or chaos harness arms the
// registry — "crash at the 3rd hit of journal.append.partial", or "crash
// anywhere with probability p under seed s" — and the armed site throws
// SimulatedCrash, which the harness treats as process death: it destroys
// the server and reconstructs it from disk.
//
// SimulatedCrash is deliberately NOT derived from std::exception. The
// service boundary converts std::exception into a polite kMalformed
// error envelope; a simulated power cut must rip through that handler
// exactly like a real one, caught only by the harness that armed it.
//
// The registry also *discovers* sites: with tracking enabled, every site
// a workload touches is counted, so an exhaustive sweep ("crash once at
// every reachable site") enumerates its targets instead of hardcoding
// them and silently going stale as sites are added.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace medsen::util {

/// Thrown at an armed crash site. Not a std::exception on purpose — see
/// the header comment.
struct SimulatedCrash {
  std::string site;
};

class CrashPoints {
 public:
  /// The process-wide registry (crash sites are free functions deep in
  /// the IO layer; threading an injection handle through every call
  /// would make the fast path pay for the slow one).
  static CrashPoints& instance();

  /// Record a hit at `site`; throws SimulatedCrash when armed for it.
  /// The disarmed fast path is one relaxed atomic load.
  void hit(const char* site);

  /// Arm a deterministic crash: the `nth_hit`-th hit (1-based, counted
  /// from the last reset()) of `site` throws. Enables tracking.
  void arm(std::string site, std::uint64_t nth_hit = 1);

  /// Arm a probabilistic crash: every hit of every site throws with
  /// probability `probability`, drawn from a SplitMix64 stream seeded
  /// with `seed` — the same seed replays the same crash schedule.
  void arm_random(double probability, std::uint64_t seed);

  /// Disarm both triggers (tracking keeps running if it was enabled).
  void disarm();

  /// Count hits without arming anything (site discovery).
  void set_tracking(bool enabled);

  /// Hit counts per site since the last reset(), in site-name order.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  discovered() const;
  [[nodiscard]] std::uint64_t hits(const std::string& site) const;

  /// Forget counts and disarm (tracking state is kept).
  void reset();

 private:
  CrashPoints() = default;
  void hit_slow(const char* site);

  /// True iff a trigger is armed or tracking is on — the only thing the
  /// fast path reads.
  std::atomic<bool> active_{false};

  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> counts_;
  bool tracking_ = false;
  // Deterministic trigger.
  bool armed_ = false;
  std::string armed_site_;
  std::uint64_t armed_nth_ = 0;
  // Probabilistic trigger: crash when the next SplitMix64 draw, scaled
  // to [0, 1), lands below threshold_.
  bool random_armed_ = false;
  double threshold_ = 0.0;
  std::uint64_t rng_state_ = 0;
};

/// The site marker the IO layer calls. Inline so the disarmed cost is
/// the atomic load and nothing else.
inline void crash_point(const char* site) { CrashPoints::instance().hit(site); }

/// RAII arming for tests: arms in the constructor, disarms (and clears
/// counts) in the destructor so a throwing test never leaves the
/// process-wide registry armed for the next test.
class ScopedCrashArm {
 public:
  explicit ScopedCrashArm(std::string site, std::uint64_t nth_hit = 1) {
    CrashPoints::instance().reset();
    CrashPoints::instance().arm(std::move(site), nth_hit);
  }
  ~ScopedCrashArm() { CrashPoints::instance().reset(); }
  ScopedCrashArm(const ScopedCrashArm&) = delete;
  ScopedCrashArm& operator=(const ScopedCrashArm&) = delete;
};

}  // namespace medsen::util
