#include "crypto/keymath.h"

#include <cmath>

namespace medsen::crypto {

std::uint64_t key_bits_per_cell(const KeySizeParams& p) {
  return static_cast<std::uint64_t>(p.electrodes) +
         static_cast<std::uint64_t>(p.electrodes / 2) * p.gain_bits +
         p.flow_bits;
}

std::uint64_t total_key_bits(const KeySizeParams& p) {
  return p.cells * key_bits_per_cell(p);
}

std::uint64_t total_key_bytes(const KeySizeParams& p) {
  return (total_key_bits(p) + 7) / 8;
}

std::uint64_t periodic_key_bits(const KeySizeParams& p, double duration_s,
                                double period_s) {
  if (duration_s <= 0.0 || period_s <= 0.0) return 0;
  const auto periods =
      static_cast<std::uint64_t>(std::ceil(duration_s / period_s));
  return periods * key_bits_per_cell(p);
}

}  // namespace medsen::crypto
