#pragma once
// ChaCha20 stream cipher (RFC 8439) and a deterministic random bit
// generator built on it. The paper's prototype draws its electrode-keying
// entropy from the Raspberry Pi's /dev/random; this DRBG is the
// software-simulation substitute: cryptographically structured, seedable,
// and reproducible for tests.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace medsen::crypto {

/// Raw ChaCha20 block function and stream cipher.
class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;
  static constexpr std::size_t kBlockSize = 64;

  ChaCha20(std::span<const std::uint8_t, kKeySize> key,
           std::span<const std::uint8_t, kNonceSize> nonce,
           std::uint32_t initial_counter = 0);
  /// Cipher state embeds the key; unconsumed keystream is
  /// key-equivalent. Both are wiped on the way out.
  ~ChaCha20();
  ChaCha20(const ChaCha20&) = default;
  ChaCha20& operator=(const ChaCha20&) = default;

  /// XOR the keystream into `data` in place (encrypt == decrypt).
  void apply(std::span<std::uint8_t> data);

  /// Produce `out.size()` keystream bytes.
  void keystream(std::span<std::uint8_t> out);

  /// One 64-byte block for block counter `counter` (stateless helper,
  /// exposed for test vectors).
  static std::array<std::uint8_t, kBlockSize> block(
      std::span<const std::uint8_t, kKeySize> key,
      std::span<const std::uint8_t, kNonceSize> nonce, std::uint32_t counter);

 private:
  std::array<std::uint32_t, 16> state_;       // medsen: secret
  std::array<std::uint8_t, kBlockSize> buffer_{};  // medsen: secret
  std::size_t buffer_pos_ = kBlockSize;  // exhausted

  void refill();
};

/// Deterministic random bit generator over ChaCha20. Models the sensor
/// controller's entropy source. A given seed yields a reproducible stream,
/// which the tests rely on; production use would seed from an OS RNG.
class ChaChaRng {
 public:
  /// Seed with arbitrary bytes (hashed into the 32-byte key internally).
  explicit ChaChaRng(std::uint64_t seed);
  explicit ChaChaRng(std::span<const std::uint8_t> seed_bytes);
  /// The DRBG key and buffered output model the controller's entropy
  /// source — key material under the threat model; wiped on the way out.
  ~ChaChaRng();
  ChaChaRng(const ChaChaRng&) = default;
  ChaChaRng& operator=(const ChaChaRng&) = default;

  std::uint32_t next_u32();
  std::uint64_t next_u64();
  /// Uniform in [0, bound) without modulo bias. bound must be > 0.
  std::uint32_t uniform(std::uint32_t bound);
  /// Uniform double in [0, 1).
  double uniform_double();
  /// Standard normal via Box-Muller.
  double normal(double mean = 0.0, double stddev = 1.0);
  /// Poisson-distributed count (Knuth for small lambda, normal approx above
  /// 64) — used for particle arrival processes.
  std::uint64_t poisson(double lambda);
  /// Bernoulli trial with probability p.
  bool bernoulli(double p);
  /// Fill a byte span with random bytes.
  void fill(std::span<std::uint8_t> out);

  // UniformRandomBitGenerator interface so <random> adaptors also work.
  using result_type = std::uint32_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xFFFFFFFFu; }
  result_type operator()() { return next_u32(); }

 private:
  std::array<std::uint8_t, ChaCha20::kKeySize> key_{};  // medsen: secret
  std::uint64_t stream_ = 0;   // nonce hi: stream id, bumped on rekey
  std::uint64_t counter_ = 0;  // consumed blocks
  std::array<std::uint8_t, ChaCha20::kBlockSize> buf_{};  // medsen: secret
  std::size_t pos_ = ChaCha20::kBlockSize;
  bool cached_normal_valid_ = false;
  double cached_normal_ = 0.0;

  void refill();
};

}  // namespace medsen::crypto
