#include "crypto/cmac.h"

#include <stdexcept>

#include "crypto/sha256.h"
#include "util/secure_zero.h"
#include "util/serialize.h"

namespace medsen::crypto {

namespace {

constexpr std::size_t kBlock = Aes128::kBlockSize;

/// GF(2^128) doubling with the RFC 4493 reduction constant: shift left
/// one bit, XOR 0x87 into the last byte when the carried-out bit was
/// set. Branch-free on the carry so subkey generation leaks nothing.
std::array<std::uint8_t, kBlock> gf_double(
    const std::array<std::uint8_t, kBlock>& in) {
  std::array<std::uint8_t, kBlock> out{};
  std::uint8_t carry = 0;
  for (std::size_t i = kBlock; i-- > 0;) {
    out[i] = static_cast<std::uint8_t>((in[i] << 1) | carry);
    carry = static_cast<std::uint8_t>(in[i] >> 7);
  }
  out[kBlock - 1] ^= static_cast<std::uint8_t>(0x87 & (0u - carry));
  return out;
}

}  // namespace

CmacTag aes_cmac(std::span<const std::uint8_t> key,
                 std::span<const std::uint8_t> data) {
  if (key.size() != Aes128::kKeySize)
    throw std::invalid_argument("aes_cmac: key must be 16 bytes");
  const Aes128 cipher(
      std::span<const std::uint8_t, Aes128::kKeySize>(key.data(),
                                                      Aes128::kKeySize));

  // Subkeys K1/K2 from L = AES(key, 0^128). All three are key-equivalent
  // (an attacker holding K1 can forge single-block tags), so they are
  // wiped before returning.
  std::array<std::uint8_t, kBlock> l{};  // medsen: secret
  cipher.encrypt_block(l);
  auto k1 = gf_double(l);  // medsen: secret
  auto k2 = gf_double(k1);  // medsen: secret
  util::secure_wipe(l);

  const std::size_t n = data.size();
  // Number of full blocks before the final (possibly padded) one.
  const std::size_t full =
      n == 0 ? 0 : (n % kBlock == 0 ? n / kBlock - 1 : n / kBlock);

  std::array<std::uint8_t, kBlock> x{};
  for (std::size_t b = 0; b < full; ++b) {
    for (std::size_t i = 0; i < kBlock; ++i) x[i] ^= data[b * kBlock + i];
    cipher.encrypt_block(x);
  }

  // Final block: complete -> XOR K1; partial/empty -> 10* pad, XOR K2.
  std::array<std::uint8_t, kBlock> last{};
  const std::size_t tail = n - full * kBlock;
  if (n != 0 && tail == kBlock) {
    for (std::size_t i = 0; i < kBlock; ++i)
      last[i] = static_cast<std::uint8_t>(data[full * kBlock + i] ^ k1[i]);
  } else {
    for (std::size_t i = 0; i < tail; ++i) last[i] = data[full * kBlock + i];
    last[tail] = 0x80;
    for (std::size_t i = 0; i < kBlock; ++i)
      last[i] = static_cast<std::uint8_t>(last[i] ^ k2[i]);
  }

  for (std::size_t i = 0; i < kBlock; ++i) x[i] ^= last[i];
  cipher.encrypt_block(x);
  // `last` carries a subkey XOR; the subkeys themselves come next.
  util::secure_wipe(last);
  util::secure_wipe(k1);
  util::secure_wipe(k2);
  return x;
}

std::vector<std::uint8_t> kdf_cmac(
    std::span<const std::uint8_t> key,
    const std::string& label, std::span<const std::uint8_t> context,
    std::size_t length) {
  if (length == 0 || length > 255 * kBlock)
    throw std::invalid_argument("kdf_cmac: length out of range");
  const std::size_t blocks = (length + kBlock - 1) / kBlock;

  std::vector<std::uint8_t> out;
  out.reserve(blocks * kBlock);
  for (std::size_t i = 1; i <= blocks; ++i) {
    util::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(i));
    w.bytes(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(label.data()), label.size()));
    w.u8(0x00);
    w.bytes(context);
    w.u16(static_cast<std::uint16_t>(8 * length));
    auto block = aes_cmac(key, w.data());  // medsen: secret
    out.insert(out.end(), block.begin(), block.end());
    util::secure_wipe(block);
  }
  out.resize(length);
  return out;
}

std::vector<std::uint8_t> normalize_cmac_key(
    std::span<const std::uint8_t> key) {
  if (key.size() == Aes128::kKeySize)
    return std::vector<std::uint8_t>(key.begin(), key.end());
  auto digest = sha256(key);  // medsen: secret
  std::vector<std::uint8_t> normalized(digest.begin(),
                                       digest.begin() + Aes128::kKeySize);
  util::secure_wipe(digest);
  return normalized;
}

std::vector<std::uint8_t> diversify_device_key(
    std::span<const std::uint8_t> master_key,
    std::uint64_t device_id, std::uint32_t key_epoch) {
  util::ByteWriter context;
  context.u64(device_id);
  context.u32(key_epoch);
  return kdf_cmac(master_key, "medsen-div", context.data(),
                  Aes128::kKeySize);
}

std::vector<std::uint8_t> derive_session_mac_key(
    std::span<const std::uint8_t> device_key,
    std::span<const std::uint8_t> rnd_a,
    std::span<const std::uint8_t> rnd_b) {
  if (rnd_a.size() != kBlock || rnd_b.size() != kBlock)
    throw std::invalid_argument("derive_session_mac_key: 16-byte nonces");
  util::ByteWriter context;
  context.bytes(rnd_a);
  context.bytes(rnd_b);
  auto normalized = normalize_cmac_key(device_key);  // medsen: secret
  auto session_key = kdf_cmac(normalized, "medsen-ses-mac",
                              context.data(), 32);
  util::secure_wipe(normalized);
  return session_key;
}

CmacTag session_proof(
    std::span<const std::uint8_t> device_key,
    std::span<const std::uint8_t> rnd_a,
    std::span<const std::uint8_t> rnd_b) {
  if (rnd_a.size() != kBlock || rnd_b.size() != kBlock)
    throw std::invalid_argument("session_proof: 16-byte nonces");
  util::ByteWriter data;
  data.bytes(rnd_b);
  data.bytes(rnd_a);
  auto normalized = normalize_cmac_key(device_key);  // medsen: secret
  const auto proof = aes_cmac(normalized, data.data());
  util::secure_wipe(normalized);
  return proof;
}

}  // namespace medsen::crypto
