#include "crypto/hmac.h"

#include <array>
#include <cstring>

#include "crypto/constant_time.h"
#include "util/secure_zero.h"

namespace medsen::crypto {

Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                         std::span<const std::uint8_t> data) {
  constexpr std::size_t kBlock = 64;
  std::array<std::uint8_t, kBlock> k{};  // medsen: secret
  if (key.size() > kBlock) {
    auto digest = sha256(key);  // medsen: secret
    std::memcpy(k.data(), digest.data(), digest.size());
    util::secure_wipe(digest);
  } else if (!key.empty()) {
    // An empty span carries a null data() pointer, and memcpy's
    // arguments must never be null even for zero sizes — the empty key
    // (used to sign unknown-device errors) hits that edge.
    std::memcpy(k.data(), key.data(), key.size());
  }

  // The padded-key blocks are trivially invertible back to the key
  // (XOR with a public constant), so they get the same wipe treatment.
  std::array<std::uint8_t, kBlock> ipad;  // medsen: secret
  std::array<std::uint8_t, kBlock> opad;  // medsen: secret
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
  util::secure_wipe(k);

  Sha256 inner;
  inner.update(ipad);
  inner.update(data);
  const auto inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  util::secure_wipe(ipad);
  util::secure_wipe(opad);
  return outer.finish();
}

bool digest_equal(const Sha256Digest& a, const Sha256Digest& b) {
  return constant_time_equal(a, b);
}

}  // namespace medsen::crypto
