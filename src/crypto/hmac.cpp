#include "crypto/hmac.h"

#include <array>
#include <cstring>

#include "crypto/constant_time.h"

namespace medsen::crypto {

Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                         std::span<const std::uint8_t> data) {
  constexpr std::size_t kBlock = 64;
  std::array<std::uint8_t, kBlock> k{};
  if (key.size() > kBlock) {
    const auto digest = sha256(key);
    std::memcpy(k.data(), digest.data(), digest.size());
  } else if (!key.empty()) {
    // An empty span carries a null data() pointer, and memcpy's
    // arguments must never be null even for zero sizes — the empty key
    // (used to sign unknown-device errors) hits that edge.
    std::memcpy(k.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, kBlock> ipad;
  std::array<std::uint8_t, kBlock> opad;
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(data);
  const auto inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

bool digest_equal(const Sha256Digest& a, const Sha256Digest& b) {
  return constant_time_equal(a, b);
}

}  // namespace medsen::crypto
