#pragma once
// Key-length accounting from the paper (Section VI-B, Eq. 2):
//
//   L = N_cells * (N_elec + N_elec/2 * R_gain + R_flow)     [bits]
//
// for the ideal per-cell-key scheme, where N_elec is the number of
// activated output electrodes, R_gain the per-electrode-pair gain
// resolution in bits, and R_flow the flow-speed resolution in bits.
// The paper's worked example: 20 K cells, 16 electrodes, 16 gain levels
// (4 bits) and 16 flow speeds (4 bits) -> 20K * (16 + 8*4 + 4) = 1.04 Mbit
// = 0.13 MB (reported as ~1 Mbit / 0.12 MB).

#include <cstdint>

namespace medsen::crypto {

/// Parameters of the ideal (one key per cell) encryption scheme.
struct KeySizeParams {
  std::uint64_t cells = 0;        ///< N_cells in the blood sample
  std::uint32_t electrodes = 0;   ///< N_elec activated output electrodes
  std::uint32_t gain_bits = 0;    ///< R_gain, bits per electrode-pair gain
  std::uint32_t flow_bits = 0;    ///< R_flow, bits of flow-speed resolution
};

/// Per-cell key size in bits: N_elec + (N_elec/2)*R_gain + R_flow.
std::uint64_t key_bits_per_cell(const KeySizeParams& p);

/// Total ideal key length L in bits (Eq. 2).
std::uint64_t total_key_bits(const KeySizeParams& p);

/// Total key length in bytes (rounded up).
std::uint64_t total_key_bytes(const KeySizeParams& p);

/// Key length for the *practical* scheme MedSen actually deploys, where the
/// key is rotated every `period_s` seconds over an acquisition lasting
/// `duration_s` seconds instead of per cell.
std::uint64_t periodic_key_bits(const KeySizeParams& p, double duration_s,
                                double period_s);

}  // namespace medsen::crypto
