#pragma once
// HMAC-SHA256 (RFC 2104). The cyto-coded identifier doubles as an integrity
// check in the paper (Section V); the protocol layer additionally MACs
// frames so tampering by the untrusted phone/cloud is detectable.

#include <cstdint>
#include <span>

#include "crypto/sha256.h"

namespace medsen::crypto {

/// HMAC-SHA256 over `data` with `key` (any length).
Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                         std::span<const std::uint8_t> data);

/// Constant-time digest comparison (delegates to
/// crypto::constant_time_equal, the tree-wide verifier primitive).
bool digest_equal(const Sha256Digest& a, const Sha256Digest& b);

}  // namespace medsen::crypto
