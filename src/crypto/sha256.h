#pragma once
// SHA-256 (FIPS 180-4). Used to hash RNG seeds, derive session keys, and
// (with HMAC) integrity-protect MedSen protocol frames.

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace medsen::crypto {

using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  /// Finalizes and returns the digest; the object must be reset() before
  /// further use.
  Sha256Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// One-shot convenience.
Sha256Digest sha256(std::span<const std::uint8_t> data);
Sha256Digest sha256(const std::string& data);

/// Lowercase hex rendering of a digest.
std::string to_hex(const Sha256Digest& digest);

}  // namespace medsen::crypto
