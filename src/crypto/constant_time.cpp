#include "crypto/constant_time.h"

namespace medsen::crypto {

bool constant_time_equal(std::span<const std::uint8_t> a,
                         std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace medsen::crypto
