#pragma once
// Constant-time byte comparison — the single primitive every MAC/key
// verifier in the tree goes through. A data-dependent early exit in a
// tag comparison leaks the position of the first mismatching byte
// through timing, which is exactly the oracle a byte-at-a-time MAC
// forgery needs; accumulating the XOR of every byte pair costs the same
// handful of cycles regardless of where (or whether) the inputs differ.
//
// medsen_lint's `ct-compare` rule bans memcmp and operator== on
// MAC/key/digest material in the crypto/net/cloud layers; this is the
// sanctioned replacement.

#include <cstdint>
#include <span>

namespace medsen::crypto {

/// True when `a` and `b` hold identical bytes. Runs in time dependent
/// only on the lengths (a length mismatch returns false, but lengths
/// are public — both sides of every comparison in this codebase are
/// fixed-size tags or keys whose sizes the protocol already reveals).
[[nodiscard]] bool constant_time_equal(std::span<const std::uint8_t> a,
                                       std::span<const std::uint8_t> b);

}  // namespace medsen::crypto
