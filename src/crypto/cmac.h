#pragma once
// AES-CMAC (RFC 4493) and the EV2-style key machinery built on it:
//
//  - aes_cmac():            the raw OMAC1 tag over arbitrary bytes
//  - kdf_cmac():            a counter-mode KDF (NIST SP 800-108 shape,
//                           CMAC-AES128 as the PRF) used for every key
//                           derivation in the session protocol
//  - diversify_device_key():per-device key = KDF(master, device_id ||
//                           epoch). The cloud registry stores one master
//                           key per epoch and derives device keys on
//                           demand, so a million-device fleet holds zero
//                           per-device secrets (NTAG 424 AN10922-style
//                           diversification).
//  - derive_session_mac_key(): per-session envelope-MAC key from the
//                           AuthChallenge/AuthResponse handshake's two
//                           nonces (AuthenticateEV2 session-key shape).
//  - session_proof():       the server's CMAC proof-of-key-possession
//                           returned in AuthResponse, verified by the
//                           device with constant_time_equal before any
//                           session key is derived.
//
// The complementary HKDF-SHA256 (hkdf.h) stays the escrow-path KDF; the
// session plane is deliberately all-AES so its cost model matches the
// smart-card literature the design is borrowed from.

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "crypto/aes.h"

namespace medsen::crypto {

/// A 128-bit CMAC tag.
using CmacTag = std::array<std::uint8_t, Aes128::kBlockSize>;

/// AES-CMAC (RFC 4493) over `data`. The key must be exactly 16 bytes
/// (throws std::invalid_argument otherwise — key lengths are a
/// provisioning invariant, not attacker-controlled input).
CmacTag aes_cmac(std::span<const std::uint8_t> key,
                 std::span<const std::uint8_t> data);

/// Counter-mode KDF over CMAC-AES128 (NIST SP 800-108 shape): block i is
/// CMAC(key, u8(i) || label || 0x00 || context || u16(8*length)).
/// `length` must be in (0, 255 * 16]; throws std::invalid_argument
/// otherwise.
std::vector<std::uint8_t> kdf_cmac(
    std::span<const std::uint8_t> key,
    const std::string& label, std::span<const std::uint8_t> context,
    std::size_t length);

/// A CMAC-ready 16-byte key from an arbitrary-length transport key:
/// identity for 16-byte keys, SHA-256-truncate otherwise. Diversified
/// keys are born 16 bytes; legacy provisioned keys are free-form, and
/// the handshake must still be able to run over them.
std::vector<std::uint8_t> normalize_cmac_key(
    std::span<const std::uint8_t> key);

/// The per-device long-term key for a master-key epoch:
/// KDF(master, "medsen-div", device_id || epoch), 16 bytes. Computed by
/// the cloud registry on demand and burned into the device at
/// personalization — no per-device secret is ever stored server-side.
std::vector<std::uint8_t> diversify_device_key(
    std::span<const std::uint8_t> master_key,
    std::uint64_t device_id, std::uint32_t key_epoch);

/// The session envelope-MAC key (32 bytes, feeding HMAC-SHA256):
/// KDF(device_key, "medsen-ses-mac", rnd_a || rnd_b). Both sides derive
/// it independently after the handshake; it never travels on the wire.
std::vector<std::uint8_t> derive_session_mac_key(
    std::span<const std::uint8_t> device_key,
    std::span<const std::uint8_t> rnd_a,
    std::span<const std::uint8_t> rnd_b);

/// The AuthResponse proof: CMAC(device_key, rnd_b || rnd_a). Ordering is
/// reversed relative to the session-key context so the proof can never
/// double as key material.
CmacTag session_proof(
    std::span<const std::uint8_t> device_key,
    std::span<const std::uint8_t> rnd_a,
    std::span<const std::uint8_t> rnd_b);

}  // namespace medsen::crypto
