#pragma once
// AES-128 block cipher (FIPS 197) with CTR mode. This is NOT used by the
// MedSen sensing path — the paper's point is that in-sensor analog
// encryption makes a software cipher unnecessary. AES is implemented here
// as the "general-purpose symmetric encryption" comparator from the related
// work discussion, powering the ablation benchmark that contrasts software
// encryption cost against MedSen's zero-overhead hardware keying.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace medsen::crypto {

/// AES-128 with a precomputed key schedule.
class Aes128 {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;

  explicit Aes128(std::span<const std::uint8_t, kKeySize> key);
  /// The expanded schedule is key material: wipe it on the way out.
  ~Aes128();
  Aes128(const Aes128&) = default;
  Aes128& operator=(const Aes128&) = default;

  /// Encrypt one 16-byte block in place.
  void encrypt_block(std::span<std::uint8_t, kBlockSize> block) const;
  /// Decrypt one 16-byte block in place.
  void decrypt_block(std::span<std::uint8_t, kBlockSize> block) const;

 private:
  std::array<std::uint8_t, 176> round_keys_{};  // 11 round keys  // medsen: secret
};

/// AES-128-CTR stream transform (encrypt == decrypt). The 16-byte counter
/// block is nonce (first 8 bytes) || big-endian 64-bit block counter.
class Aes128Ctr {
 public:
  Aes128Ctr(std::span<const std::uint8_t, Aes128::kKeySize> key,
            std::uint64_t nonce);
  /// Unconsumed keystream is key-equivalent: wipe it on the way out.
  ~Aes128Ctr();
  Aes128Ctr(const Aes128Ctr&) = default;
  Aes128Ctr& operator=(const Aes128Ctr&) = default;

  /// XOR the keystream into data in place.
  void apply(std::span<std::uint8_t> data);

 private:
  Aes128 cipher_;
  std::uint64_t nonce_;
  std::uint64_t counter_ = 0;
  std::array<std::uint8_t, Aes128::kBlockSize> buf_{};  // medsen: secret
  std::size_t pos_ = Aes128::kBlockSize;

  void refill();
};

}  // namespace medsen::crypto
