#include "crypto/chacha20.h"

#include <cmath>
#include <cstring>

#include "crypto/sha256.h"
#include "util/secure_zero.h"

namespace medsen::crypto {

namespace {

inline std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

inline std::uint32_t load32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline void store32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void chacha_block(const std::array<std::uint32_t, 16>& input,
                  std::array<std::uint8_t, 64>& out) {
  std::array<std::uint32_t, 16> x = input;
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    store32(out.data() + 4 * i, x[static_cast<std::size_t>(i)] +
                                    input[static_cast<std::size_t>(i)]);
  }
}

constexpr std::uint32_t kSigma[4] = {0x61707865, 0x3320646e, 0x79622d32,
                                     0x6b206574};

}  // namespace

ChaCha20::ChaCha20(std::span<const std::uint8_t, kKeySize> key,
                   std::span<const std::uint8_t, kNonceSize> nonce,
                   std::uint32_t initial_counter) {
  state_[0] = kSigma[0];
  state_[1] = kSigma[1];
  state_[2] = kSigma[2];
  state_[3] = kSigma[3];
  for (int i = 0; i < 8; ++i) state_[4 + static_cast<std::size_t>(i)] = load32(key.data() + 4 * i);
  state_[12] = initial_counter;
  for (int i = 0; i < 3; ++i) state_[13 + static_cast<std::size_t>(i)] = load32(nonce.data() + 4 * i);
}

ChaCha20::~ChaCha20() {
  util::secure_wipe(state_);
  util::secure_wipe(buffer_);
}

void ChaCha20::refill() {
  chacha_block(state_, buffer_);
  ++state_[12];
  buffer_pos_ = 0;
}

void ChaCha20::apply(std::span<std::uint8_t> data) {
  for (auto& byte : data) {
    if (buffer_pos_ == kBlockSize) refill();
    byte ^= buffer_[buffer_pos_++];
  }
}

void ChaCha20::keystream(std::span<std::uint8_t> out) {
  for (auto& byte : out) {
    if (buffer_pos_ == kBlockSize) refill();
    byte = buffer_[buffer_pos_++];
  }
}

std::array<std::uint8_t, ChaCha20::kBlockSize> ChaCha20::block(
    std::span<const std::uint8_t, kKeySize> key,
    std::span<const std::uint8_t, kNonceSize> nonce, std::uint32_t counter) {
  ChaCha20 c(key, nonce, counter);
  std::array<std::uint8_t, kBlockSize> out;
  chacha_block(c.state_, out);
  return out;
}

ChaChaRng::ChaChaRng(std::uint64_t seed) {
  std::array<std::uint8_t, 8> bytes;
  for (int i = 0; i < 8; ++i)
    bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(seed >> (8 * i));
  const auto digest = sha256(bytes);
  std::memcpy(key_.data(), digest.data(), key_.size());
}

ChaChaRng::ChaChaRng(std::span<const std::uint8_t> seed_bytes) {
  const auto digest = sha256(seed_bytes);
  std::memcpy(key_.data(), digest.data(), key_.size());
}

ChaChaRng::~ChaChaRng() {
  util::secure_wipe(key_);
  util::secure_wipe(buf_);
}

void ChaChaRng::refill() {
  std::array<std::uint8_t, ChaCha20::kNonceSize> nonce{};
  // nonce = stream id (hi 8 bytes of counter space unused; block counter is
  // 32-bit so we roll the nonce every 2^32 blocks).
  const std::uint64_t block_index = counter_;
  const std::uint64_t nonce_word = stream_ ^ (block_index >> 32);
  for (int i = 0; i < 8; ++i)
    nonce[static_cast<std::size_t>(i) + 4] =
        static_cast<std::uint8_t>(nonce_word >> (8 * i));
  buf_ = ChaCha20::block(std::span<const std::uint8_t, 32>(key_),
                         std::span<const std::uint8_t, 12>(nonce),
                         static_cast<std::uint32_t>(block_index));
  ++counter_;
  pos_ = 0;
}

void ChaChaRng::fill(std::span<std::uint8_t> out) {
  for (auto& byte : out) {
    if (pos_ == buf_.size()) refill();
    byte = buf_[pos_++];
  }
}

std::uint32_t ChaChaRng::next_u32() {
  std::array<std::uint8_t, 4> b;
  fill(b);
  return load32(b.data());
}

std::uint64_t ChaChaRng::next_u64() {
  return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
}

std::uint32_t ChaChaRng::uniform(std::uint32_t bound) {
  // Lemire-style rejection sampling to avoid modulo bias.
  if (bound == 0) return 0;
  const std::uint32_t threshold = (0u - bound) % bound;
  for (;;) {
    const std::uint64_t m =
        static_cast<std::uint64_t>(next_u32()) * static_cast<std::uint64_t>(bound);
    if (static_cast<std::uint32_t>(m) >= threshold)
      return static_cast<std::uint32_t>(m >> 32);
  }
}

double ChaChaRng::uniform_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double ChaChaRng::normal(double mean, double stddev) {
  if (cached_normal_valid_) {
    cached_normal_valid_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = uniform_double();
  while (u1 <= 0.0) u1 = uniform_double();
  const double u2 = uniform_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  cached_normal_valid_ = true;
  return mean + stddev * r * std::cos(theta);
}

std::uint64_t ChaChaRng::poisson(double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda < 64.0) {
    const double limit = std::exp(-lambda);
    double p = 1.0;
    std::uint64_t k = 0;
    do {
      ++k;
      p *= uniform_double();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction for large lambda.
  const double v = normal(lambda, std::sqrt(lambda));
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

bool ChaChaRng::bernoulli(double p) { return uniform_double() < p; }

}  // namespace medsen::crypto
