#include "crypto/hkdf.h"

#include <stdexcept>

#include "crypto/hmac.h"
#include "util/secure_zero.h"

namespace medsen::crypto {

Sha256Digest hkdf_extract(std::span<const std::uint8_t> salt,
                          std::span<const std::uint8_t> ikm) {
  if (salt.empty()) {
    const std::vector<std::uint8_t> zero_salt(32, 0);
    return hmac_sha256(zero_salt, ikm);
  }
  return hmac_sha256(salt, ikm);
}

std::vector<std::uint8_t> hkdf_expand(const Sha256Digest& prk,
                                      std::span<const std::uint8_t> info,
                                      std::size_t length) {
  if (length == 0 || length > 255 * 32)
    throw std::invalid_argument("hkdf_expand: length out of range");
  std::vector<std::uint8_t> okm;
  okm.reserve(length);
  std::vector<std::uint8_t> block;  // medsen: secret
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    // `input` chains the previous output block T(i-1), which is OKM
    // material — wipe it each round along with the digest scratch.
    std::vector<std::uint8_t> input = block;  // medsen: secret
    input.insert(input.end(), info.begin(), info.end());
    input.push_back(counter++);
    auto t = hmac_sha256(prk, input);  // medsen: secret
    block.assign(t.begin(), t.end());
    util::secure_wipe(t);
    util::secure_wipe(input);
    const std::size_t take = std::min(block.size(), length - okm.size());
    okm.insert(okm.end(), block.begin(),
               block.begin() + static_cast<long>(take));
  }
  util::secure_wipe(block);
  return okm;
}

std::vector<std::uint8_t> hkdf(std::span<const std::uint8_t> salt,
                               std::span<const std::uint8_t> ikm,
                               std::span<const std::uint8_t> info,
                               std::size_t length) {
  auto prk = hkdf_extract(salt, ikm);  // medsen: secret
  auto okm = hkdf_expand(prk, info, length);
  util::secure_wipe(prk);
  return okm;
}

std::vector<std::uint8_t> hkdf_label(std::span<const std::uint8_t> ikm,
                                     const std::string& label,
                                     std::size_t length) {
  const std::span<const std::uint8_t> info(
      reinterpret_cast<const std::uint8_t*>(label.data()), label.size());
  return hkdf({}, ikm, info, length);
}

}  // namespace medsen::crypto
