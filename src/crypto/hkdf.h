#pragma once
// HKDF-SHA256 (RFC 5869): extract-and-expand key derivation. Used by the
// key-escrow module to derive independent encryption and MAC keys from
// the practitioner-shared secret.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "crypto/sha256.h"

namespace medsen::crypto {

/// HKDF-Extract: PRK = HMAC(salt, ikm). Empty salt means a zero salt of
/// hash length, per the RFC.
Sha256Digest hkdf_extract(std::span<const std::uint8_t> salt,
                          std::span<const std::uint8_t> ikm);

/// HKDF-Expand: derive `length` bytes (<= 255 * 32) from a PRK and an
/// application-specific info string. Throws std::invalid_argument when
/// length is out of range.
std::vector<std::uint8_t> hkdf_expand(const Sha256Digest& prk,
                                      std::span<const std::uint8_t> info,
                                      std::size_t length);

/// One-shot extract+expand.
std::vector<std::uint8_t> hkdf(std::span<const std::uint8_t> salt,
                               std::span<const std::uint8_t> ikm,
                               std::span<const std::uint8_t> info,
                               std::size_t length);

/// Convenience: derive with a string label as info.
std::vector<std::uint8_t> hkdf_label(std::span<const std::uint8_t> ikm,
                                     const std::string& label,
                                     std::size_t length);

}  // namespace medsen::crypto
