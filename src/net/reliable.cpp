#include "net/reliable.h"

#include <algorithm>
#include <utility>

#include "net/frame.h"
#include "util/serialize.h"

namespace medsen::net {

namespace {

constexpr std::uint8_t kData = 1;
constexpr std::uint8_t kAck = 2;

struct Packet {
  std::uint8_t type = 0;
  std::uint64_t transfer_id = 0;
  std::uint32_t chunk_index = 0;
  std::uint32_t chunk_count = 0;
  std::vector<std::uint8_t> payload;  ///< empty for ACKs
};

std::vector<std::uint8_t> encode_packet(const Packet& p) {
  util::ByteWriter out;
  out.u8(p.type);
  out.u64(p.transfer_id);
  out.u32(p.chunk_index);
  out.u32(p.chunk_count);
  out.blob(p.payload);
  return frame_encode(out.take());
}

/// Unframe + parse; nullopt on CRC mismatch, truncation, trailing bytes,
/// or an unknown packet type — all treated as channel noise by the ARQ
/// loop (no ACK, sender retransmits).
std::optional<Packet> decode_packet(std::span<const std::uint8_t> datagram) {
  try {
    const auto bytes = frame_decode(datagram);
    util::ByteReader in(bytes);
    Packet p;
    p.type = in.u8();
    p.transfer_id = in.u64();
    p.chunk_index = in.u32();
    p.chunk_count = in.u32();
    p.payload = in.blob();
    if (!in.done()) return std::nullopt;
    if (p.type != kData && p.type != kAck) return std::nullopt;
    return p;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

ReliableChannel::ReliableChannel(FaultyLink& forward, FaultyLink& backward,
                                 SimulatedClock& clock, ReliableConfig config)
    : forward_(forward), backward_(backward), clock_(clock), config_(config) {}

TransferStats ReliableChannel::run_transfer(FaultyLink& data_link,
                                            FaultyLink& ack_link,
                                            std::span<const std::uint8_t> data,
                                            std::vector<std::uint8_t>& out) {
  TransferStats stats;
  const double start_s = clock_.elapsed_s();
  const std::uint64_t transfer_id = next_transfer_id_++;

  const std::size_t chunk_bytes = std::max<std::size_t>(1, config_.chunk_bytes);
  const std::size_t chunk_count =
      data.empty() ? 1 : (data.size() + chunk_bytes - 1) / chunk_bytes;
  stats.chunks = chunk_count;

  // Receiver state, pumped in-process between sends.
  std::vector<std::vector<std::uint8_t>> received(chunk_count);
  std::vector<bool> stored(chunk_count, false);
  std::vector<bool> acked(chunk_count, false);

  const auto pump_receiver = [&] {
    while (auto datagram = data_link.try_receive()) {
      auto packet = decode_packet(*datagram);
      if (!packet.has_value()) {
        ++stats.rejected_frames;
        continue;
      }
      if (packet->type != kData || packet->transfer_id != transfer_id ||
          packet->chunk_index >= chunk_count)
        continue;  // stale traffic from an earlier transfer
      if (stored[packet->chunk_index]) {
        ++stats.duplicate_chunks;
      } else {
        stored[packet->chunk_index] = true;
        received[packet->chunk_index] = std::move(packet->payload);
      }
      Packet ack;  // always re-ACK so a lost ACK cannot wedge the sender
      ack.type = kAck;
      ack.transfer_id = transfer_id;
      ack.chunk_index = packet->chunk_index;
      ack.chunk_count = static_cast<std::uint32_t>(chunk_count);
      ack_link.send(encode_packet(ack));
    }
  };

  const auto pump_sender = [&] {
    while (auto datagram = ack_link.try_receive()) {
      const auto packet = decode_packet(*datagram);
      if (!packet.has_value()) {
        ++stats.rejected_frames;
        continue;
      }
      if (packet->type != kAck || packet->transfer_id != transfer_id ||
          packet->chunk_index >= chunk_count)
        continue;
      acked[packet->chunk_index] = true;
    }
  };

  std::uint32_t budget = config_.retry_budget;
  for (std::size_t i = 0; i < chunk_count; ++i) {
    Packet chunk;
    chunk.type = kData;
    chunk.transfer_id = transfer_id;
    chunk.chunk_index = static_cast<std::uint32_t>(i);
    chunk.chunk_count = static_cast<std::uint32_t>(chunk_count);
    if (!data.empty()) {
      const std::size_t begin = i * chunk_bytes;
      const std::size_t end = std::min(begin + chunk_bytes, data.size());
      chunk.payload.assign(data.begin() + static_cast<std::ptrdiff_t>(begin),
                           data.begin() + static_cast<std::ptrdiff_t>(end));
    }
    const auto wire = encode_packet(chunk);

    double timeout_s = config_.initial_timeout_s;
    for (;;) {
      data_link.send(wire);  // copy; retransmissions reuse the encoding
      pump_receiver();
      pump_sender();
      if (acked[i]) break;
      // No ACK this round: a drop, corruption, or a reorder hold ate the
      // chunk or its ACK. Charge the timeout and retransmit with backoff.
      ++stats.timeouts;
      clock_.advance(timeout_s);
      timeout_s = std::min(timeout_s * config_.backoff_factor,
                           config_.max_timeout_s);
      // A reordered datagram is only released behind a later send; flush
      // both directions so a held chunk/ACK is not mistaken for loss
      // twice in a row.
      data_link.flush();
      ack_link.flush();
      pump_receiver();
      pump_sender();
      if (acked[i]) break;
      if (budget == 0) {
        stats.elapsed_s = clock_.elapsed_s() - start_s;
        return stats;  // succeeded stays false
      }
      --budget;
      ++stats.retransmissions;
    }
  }

  out.clear();
  for (std::size_t i = 0; i < chunk_count; ++i)
    out.insert(out.end(), received[i].begin(), received[i].end());
  stats.succeeded = true;
  stats.elapsed_s = clock_.elapsed_s() - start_s;
  return stats;
}

std::vector<std::uint8_t> ReliableChannel::transfer(
    std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> out;
  stats_ = ExchangeStats{};
  stats_.request = run_transfer(forward_, backward_, data, out);
  if (!stats_.request.succeeded)
    throw TransportError("ReliableChannel: retry budget exhausted after " +
                         std::to_string(stats_.request.retransmissions) +
                         " retransmissions");
  return out;
}

std::optional<std::vector<std::uint8_t>> ReliableChannel::request(
    std::span<const std::uint8_t> request_bytes,
    const std::function<std::vector<std::uint8_t>(
        std::span<const std::uint8_t>)>& handler) {
  stats_ = ExchangeStats{};
  std::vector<std::uint8_t> delivered;
  stats_.request = run_transfer(forward_, backward_, request_bytes, delivered);
  if (!stats_.request.succeeded) return std::nullopt;

  const auto response = handler(delivered);

  std::vector<std::uint8_t> out;
  stats_.response = run_transfer(backward_, forward_, response, out);
  if (!stats_.response.succeeded) return std::nullopt;
  return out;
}

}  // namespace medsen::net
