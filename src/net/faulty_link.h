#pragma once
// Deterministic fault injection for the simulated radio link. Wraps the
// LinkModel timing and a MessageQueue delivery path with seeded
// drop/corrupt/duplicate/reorder/delay faults, so the reliable transport
// (net/reliable.h) and its consumers can be exercised under realistic
// channel conditions without any nondeterminism: the same seed and send
// sequence always produce the same fault pattern and the same simulated
// elapsed time.

#include <cstdint>
#include <optional>
#include <random>
#include <vector>

#include "net/channel.h"
#include "net/link.h"

namespace medsen::net {

/// Per-datagram fault probabilities. All rates are in [0, 1] and are
/// drawn independently per send from a seeded generator.
struct FaultConfig {
  double drop_rate = 0.0;       ///< datagram vanishes entirely
  double corrupt_rate = 0.0;    ///< one random bit flips in transit
  double duplicate_rate = 0.0;  ///< datagram delivered twice
  double reorder_rate = 0.0;    ///< datagram held back behind the next one
  double delay_jitter_s = 0.0;  ///< extra uniform [0, jitter) delay per send
  std::uint64_t seed = 0x4D45444C494E4Bu;  ///< "MEDLINK"
};

/// Counters accumulated across the link's lifetime.
struct LinkCounters {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
};

/// A lossy one-way datagram link. Each send charges the LinkModel
/// transfer time (plus jitter) to the attached SimulatedClock, then
/// applies faults in a fixed order (drop, corrupt, duplicate, reorder).
/// Reordering holds a datagram in a one-slot buffer and releases it
/// behind the next delivered datagram (or on flush()).
///
/// Fault decisions are made on the sending side, so sends must come from
/// one thread at a time; receiving via try_receive() is thread-safe.
class FaultyLink {
 public:
  FaultyLink(LinkModel model, FaultConfig faults,
             SimulatedClock* clock = nullptr);

  /// Transmit one datagram through the fault model.
  void send(std::vector<std::uint8_t> datagram);

  /// Non-blocking receive of the next delivered datagram.
  std::optional<std::vector<std::uint8_t>> try_receive();

  /// Release any datagram held back for reordering.
  void flush();

  /// Test hook: force exactly the next send to be bit-corrupted,
  /// regardless of corrupt_rate. Makes "one retransmission" assertions
  /// deterministic.
  void corrupt_next() { force_corrupt_next_ = true; }

  [[nodiscard]] const LinkCounters& counters() const { return counters_; }
  [[nodiscard]] const LinkModel& model() const { return model_; }
  [[nodiscard]] const FaultConfig& faults() const { return faults_; }

 private:
  [[nodiscard]] double uniform();
  void deliver(std::vector<std::uint8_t> datagram);

  LinkModel model_;
  FaultConfig faults_;
  SimulatedClock* clock_;
  std::mt19937_64 rng_;
  MessageQueue queue_;
  std::optional<std::vector<std::uint8_t>> held_;
  LinkCounters counters_;
  bool force_corrupt_next_ = false;
};

}  // namespace medsen::net
