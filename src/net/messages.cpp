#include "net/messages.h"

#include <stdexcept>

#include "util/serialize.h"

namespace medsen::net {

namespace {

std::vector<std::uint8_t> mac_input(MessageType type, std::uint64_t session,
                                    std::uint64_t device,
                                    std::uint32_t counter,
                                    std::span<const std::uint8_t> payload) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(session);
  w.u64(device);
  w.u32(counter);
  w.bytes(payload);
  return w.take();
}

}  // namespace

std::vector<std::uint8_t> Envelope::serialize() const {
  util::ByteWriter out;
  out.u8(static_cast<std::uint8_t>(type));
  out.u64(session_id);
  out.u64(device_id);
  out.u32(counter);
  out.blob(payload);
  out.bytes(mac);
  return out.take();
}

Envelope Envelope::deserialize(std::span<const std::uint8_t> bytes) {
  util::ByteReader in(bytes);
  Envelope e;
  e.type = static_cast<MessageType>(in.u8());
  e.session_id = in.u64();
  e.device_id = in.u64();
  e.counter = in.u32();
  e.payload = in.blob();
  if (in.remaining() < e.mac.size())
    throw std::runtime_error("Envelope: truncated MAC");
  for (auto& b : e.mac) b = in.u8();
  if (!in.done())
    throw std::runtime_error("Envelope: trailing bytes after MAC");
  return e;
}

Envelope make_envelope(MessageType type, std::uint64_t session_id,
                       std::uint64_t device_id,
                       std::vector<std::uint8_t> payload,
                       std::span<const std::uint8_t> mac_key,
                       std::uint32_t counter) {
  Envelope e;
  e.type = type;
  e.session_id = session_id;
  e.device_id = device_id;
  e.counter = counter;
  e.payload = std::move(payload);
  e.mac = crypto::hmac_sha256(
      mac_key, mac_input(type, session_id, device_id, counter, e.payload));
  return e;
}

bool verify_envelope(const Envelope& envelope,
                     std::span<const std::uint8_t> mac_key) {
  const auto expected = crypto::hmac_sha256(
      mac_key, mac_input(envelope.type, envelope.session_id,
                         envelope.device_id, envelope.counter,
                         envelope.payload));
  return crypto::digest_equal(expected, envelope.mac);
}

std::vector<std::uint8_t> SignalUploadPayload::serialize() const {
  util::ByteWriter out;
  out.u8(compressed ? 1 : 0);
  out.u8(static_cast<std::uint8_t>(format));
  out.f64(sample_rate_hz);
  out.blob(data);
  return out.take();
}

SignalUploadPayload SignalUploadPayload::deserialize(
    std::span<const std::uint8_t> bytes) {
  util::ByteReader in(bytes);
  SignalUploadPayload p;
  p.compressed = in.u8() != 0;
  p.format = static_cast<UploadFormat>(in.u8());
  p.sample_rate_hz = in.f64();
  p.data = in.blob();
  in.expect_done("SignalUploadPayload");
  return p;
}

std::vector<std::uint8_t> AuthPassPayload::serialize() const {
  util::ByteWriter out;
  out.f64(volume_ul);
  out.f64(duration_s);
  out.blob(upload.serialize());
  return out.take();
}

AuthPassPayload AuthPassPayload::deserialize(
    std::span<const std::uint8_t> bytes) {
  util::ByteReader in(bytes);
  AuthPassPayload p;
  p.volume_ul = in.f64();
  p.duration_s = in.f64();
  const auto upload_bytes = in.blob();
  in.expect_done("AuthPassPayload");
  p.upload = SignalUploadPayload::deserialize(upload_bytes);
  return p;
}

std::vector<std::uint8_t> AuthChallengePayload::serialize() const {
  util::ByteWriter out;
  out.u32(key_epoch);
  out.bytes(challenge);
  return out.take();
}

AuthChallengePayload AuthChallengePayload::deserialize(
    std::span<const std::uint8_t> bytes) {
  util::ByteReader in(bytes);
  AuthChallengePayload p;
  p.key_epoch = in.u32();
  if (in.remaining() < p.challenge.size())
    throw std::runtime_error("AuthChallengePayload: truncated challenge");
  for (auto& b : p.challenge) b = in.u8();
  in.expect_done("AuthChallengePayload");
  return p;
}

std::vector<std::uint8_t> AuthResponsePayload::serialize() const {
  util::ByteWriter out;
  out.bytes(challenge);
  out.bytes(proof);
  return out.take();
}

AuthResponsePayload AuthResponsePayload::deserialize(
    std::span<const std::uint8_t> bytes) {
  util::ByteReader in(bytes);
  AuthResponsePayload p;
  if (in.remaining() < p.challenge.size() + p.proof.size())
    throw std::runtime_error("AuthResponsePayload: truncated");
  for (auto& b : p.challenge) b = in.u8();
  for (auto& b : p.proof) b = in.u8();
  in.expect_done("AuthResponsePayload");
  return p;
}

std::vector<std::uint8_t> serialize_series(
    const util::MultiChannelSeries& series) {
  util::ByteWriter out;
  out.u32(static_cast<std::uint32_t>(series.channels.size()));
  for (std::size_t i = 0; i < series.channels.size(); ++i) {
    out.f64(series.carrier_frequencies_hz.at(i));
    const auto& ch = series.channels[i];
    out.f64(ch.sample_rate());
    out.f64(ch.start_time());
    out.f64_vec(ch.samples());
  }
  return out.take();
}

util::MultiChannelSeries deserialize_series(
    std::span<const std::uint8_t> bytes) {
  util::ByteReader in(bytes);
  util::MultiChannelSeries series;
  // Each channel needs at least carrier + rate + start + count.
  const std::uint32_t n = in.count_u32(3 * sizeof(double) + 4);
  for (std::uint32_t i = 0; i < n; ++i) {
    series.carrier_frequencies_hz.push_back(in.f64());
    const double rate = in.f64();
    const double start = in.f64();
    series.channels.emplace_back(rate, in.f64_vec(), start);
  }
  in.expect_done("deserialize_series");
  return series;
}

std::vector<std::uint8_t> AuthDecisionPayload::serialize() const {
  util::ByteWriter out;
  out.u8(authenticated ? 1 : 0);
  out.str(user_id);
  out.f64(distance);
  return out.take();
}

AuthDecisionPayload AuthDecisionPayload::deserialize(
    std::span<const std::uint8_t> bytes) {
  util::ByteReader in(bytes);
  AuthDecisionPayload p;
  p.authenticated = in.u8() != 0;
  p.user_id = in.str();
  p.distance = in.f64();
  in.expect_done("AuthDecisionPayload");
  return p;
}

const char* to_string(QualityReason reason) {
  switch (reason) {
    case QualityReason::kNone: return "acceptable";
    case QualityReason::kNoChannels: return "no channels";
    case QualityReason::kEmptyChannel: return "empty channel";
    case QualityReason::kSaturated: return "saturated";
    case QualityReason::kDropout: return "dropout";
    case QualityReason::kNoiseFloor: return "noise floor";
    case QualityReason::kDrift: return "drift";
  }
  return "unknown";
}

bool more_severe(QualityReason a, QualityReason b) {
  if (a == QualityReason::kNone) return false;
  if (b == QualityReason::kNone) return true;
  return static_cast<std::uint8_t>(a) < static_cast<std::uint8_t>(b);
}

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadMac: return "bad MAC";
    case ErrorCode::kQualityRejected: return "quality rejected";
    case ErrorCode::kUnknownDevice: return "unknown device";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kMalformed: return "malformed request";
    case ErrorCode::kSessionConflict: return "session conflict";
    case ErrorCode::kStaleCounter: return "stale counter";
    case ErrorCode::kAuthRequired: return "authentication required";
    case ErrorCode::kRevoked: return "device revoked";
    case ErrorCode::kBadEpoch: return "bad key epoch";
  }
  return "unknown error";
}

std::vector<std::uint8_t> ErrorPayload::serialize() const {
  util::ByteWriter out;
  out.u8(static_cast<std::uint8_t>(code));
  out.u8(subcode);
  out.str(detail);
  out.blob(channel_reasons);
  return out.take();
}

ErrorPayload ErrorPayload::deserialize(std::span<const std::uint8_t> bytes) {
  util::ByteReader in(bytes);
  ErrorPayload p;
  p.code = static_cast<ErrorCode>(in.u8());
  p.subcode = in.u8();
  p.detail = in.str();
  p.channel_reasons = in.blob();
  in.expect_done("ErrorPayload");
  return p;
}

}  // namespace medsen::net
