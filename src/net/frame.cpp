#include "net/frame.h"

#include <stdexcept>

#include "compress/crc32.h"
#include "util/serialize.h"

namespace medsen::net {

namespace {
constexpr std::uint32_t kFrameMagic = 0x4D444E46;  // "MDNF"
}

std::vector<std::uint8_t> frame_encode(std::span<const std::uint8_t> payload) {
  util::ByteWriter out;
  out.u32(kFrameMagic);
  out.u32(static_cast<std::uint32_t>(payload.size()));
  out.bytes(payload);
  out.u32(compress::crc32(payload));
  return out.take();
}

std::vector<std::uint8_t> frame_decode(std::span<const std::uint8_t> frame) {
  util::ByteReader in(frame);
  if (in.u32() != kFrameMagic)
    throw std::runtime_error("frame_decode: bad magic");
  const std::uint32_t length = in.u32();
  if (in.remaining() < static_cast<std::size_t>(length) + 4)
    throw std::runtime_error("frame_decode: truncated frame");
  if (in.remaining() > static_cast<std::size_t>(length) + 4)
    throw std::runtime_error("frame_decode: trailing bytes after frame");
  std::vector<std::uint8_t> payload(frame.begin() + 8,
                                    frame.begin() + 8 + length);
  util::ByteReader tail(frame.subspan(8 + length));
  if (tail.u32() != compress::crc32(payload))
    throw std::runtime_error("frame_decode: CRC mismatch");
  return payload;
}

std::size_t frame_overhead() { return 12; }

}  // namespace medsen::net
