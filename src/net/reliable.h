#pragma once
// Reliable transfer over a lossy simulated link: stop-and-wait ARQ with
// chunked payloads, per-chunk CRC framing, ACKs on the reverse link,
// exponential backoff, and a total retransmission budget. Large uploads
// are split into chunks so a single corrupted chunk retransmits alone
// instead of the whole acquisition. All waiting (transfer times and ACK
// timeouts) is charged to the shared SimulatedClock, so latency-vs-loss
// sweeps are deterministic.

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "net/faulty_link.h"

namespace medsen::net {

/// Thrown by transfer() when the retransmission budget is exhausted.
class TransportError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct ReliableConfig {
  std::size_t chunk_bytes = 16 * 1024;  ///< max payload bytes per chunk
  double initial_timeout_s = 0.08;      ///< first ACK wait
  double backoff_factor = 2.0;          ///< timeout growth per retry
  double max_timeout_s = 1.0;           ///< backoff ceiling
  /// Total retransmissions allowed across one transfer (all chunks).
  /// When spent, the transfer fails and the caller degrades gracefully.
  std::uint32_t retry_budget = 24;
};

/// Outcome of one directional transfer.
struct TransferStats {
  std::size_t chunks = 0;
  std::size_t retransmissions = 0;    ///< chunk re-sends after a timeout
  std::size_t timeouts = 0;           ///< ACK waits that expired
  std::size_t rejected_frames = 0;    ///< receiver-side CRC/parse failures
  std::size_t duplicate_chunks = 0;   ///< already-stored chunks re-ACKed
  double elapsed_s = 0.0;             ///< simulated time for this transfer
  bool succeeded = false;
};

/// Request half + response half of one exchange.
struct ExchangeStats {
  TransferStats request;
  TransferStats response;
};

/// A reliable duplex channel built from two lossy one-way links. The
/// "forward" link carries requester->responder data (responder->requester
/// ACKs travel on "backward"); the response flows the other way with the
/// roles swapped. Both endpoints are pumped in-process, which keeps the
/// ARQ loop deterministic under the simulated clock.
class ReliableChannel {
 public:
  ReliableChannel(FaultyLink& forward, FaultyLink& backward,
                  SimulatedClock& clock, ReliableConfig config = {});

  /// Reliably move `data` across the forward link. Returns the
  /// receiver's reassembled copy (bit-identical to `data` — corrupted
  /// chunks are rejected by CRC and retransmitted). Throws
  /// TransportError when the retry budget is exhausted.
  std::vector<std::uint8_t> transfer(std::span<const std::uint8_t> data);

  /// Full request/response exchange: the request travels forward, the
  /// handler runs at the far end, and its return value travels backward.
  /// Returns nullopt (instead of throwing) when either direction
  /// exhausts its retry budget, so callers can degrade gracefully.
  std::optional<std::vector<std::uint8_t>> request(
      std::span<const std::uint8_t> request_bytes,
      const std::function<std::vector<std::uint8_t>(
          std::span<const std::uint8_t>)>& handler);

  [[nodiscard]] const ExchangeStats& stats() const { return stats_; }
  [[nodiscard]] const ReliableConfig& config() const { return config_; }

 private:
  TransferStats run_transfer(FaultyLink& data_link, FaultyLink& ack_link,
                             std::span<const std::uint8_t> data,
                             std::vector<std::uint8_t>& out);

  FaultyLink& forward_;
  FaultyLink& backward_;
  SimulatedClock& clock_;
  ReliableConfig config_;
  ExchangeStats stats_;
  std::uint64_t next_transfer_id_ = 1;
};

}  // namespace medsen::net
