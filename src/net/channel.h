#pragma once
// In-process duplex message channel: a thread-safe queue pair used by the
// threaded integration tests to run controller, phone and cloud as
// concurrent components the way the prototype's USB daemon and Android
// app exchange messages.

#include <condition_variable>
#include <mutex>
#include <optional>
#include <queue>
#include <vector>

namespace medsen::net {

/// Unbounded MPMC byte-message queue with blocking receive and shutdown.
class MessageQueue {
 public:
  void send(std::vector<std::uint8_t> message);

  /// Blocks until a message or shutdown; nullopt after shutdown drains.
  std::optional<std::vector<std::uint8_t>> receive();

  /// Non-blocking receive.
  std::optional<std::vector<std::uint8_t>> try_receive();

  /// Wake all receivers; subsequent receives return nullopt once empty.
  void shutdown();

  [[nodiscard]] bool closed() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::vector<std::uint8_t>> queue_;
  bool shutdown_ = false;
};

/// A pair of queues forming a duplex link between two endpoints.
struct DuplexChannel {
  MessageQueue a_to_b;
  MessageQueue b_to_a;
};

}  // namespace medsen::net
