#pragma once
// Simulated network link. The prototype uploads via the phone's 4G
// connection; no radio exists here, so transfer durations are computed
// from a bandwidth/latency model and accumulated on a simulated clock.
// The end-to-end latency benchmark (the paper's ~0.2 s claim) runs on top
// of this.

#include <cstdint>

namespace medsen::net {

struct LinkModel {
  double bandwidth_bps = 20.0e6;  ///< uplink throughput (LTE-class)
  double rtt_s = 0.045;           ///< round-trip latency
  double per_message_overhead_s = 0.002;

  /// One-way transfer time for a payload of `bytes`.
  [[nodiscard]] double transfer_time_s(std::uint64_t bytes) const {
    return rtt_s / 2.0 + per_message_overhead_s +
           static_cast<double>(bytes) * 8.0 / bandwidth_bps;
  }
};

/// Canonical profiles.
LinkModel lte_uplink();    ///< phone -> cloud (paper's 4G)
LinkModel lte_downlink();  ///< cloud -> phone
LinkModel usb_accessory(); ///< sensor controller -> phone (USB 2.0 AOA)

/// Accumulates simulated elapsed time across pipeline stages.
class SimulatedClock {
 public:
  void advance(double seconds) { elapsed_s_ += seconds; }
  [[nodiscard]] double elapsed_s() const { return elapsed_s_; }
  void reset() { elapsed_s_ = 0.0; }

 private:
  double elapsed_s_ = 0.0;
};

}  // namespace medsen::net
