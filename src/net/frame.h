#pragma once
// Wire framing: every protocol message travels as a length-prefixed frame
// with a CRC-32 trailer, so truncation and corruption by the untrusted
// transport are detected before deserialization.

#include <cstdint>
#include <span>
#include <vector>

namespace medsen::net {

/// Wrap a payload in a frame: u32 magic | u32 length | payload | u32 crc.
std::vector<std::uint8_t> frame_encode(std::span<const std::uint8_t> payload);

/// Unwrap a frame; throws std::runtime_error on bad magic, truncated
/// input, or CRC mismatch. Returns the payload.
std::vector<std::uint8_t> frame_decode(std::span<const std::uint8_t> frame);

/// Total frame size for a payload of n bytes.
std::size_t frame_overhead();

}  // namespace medsen::net
