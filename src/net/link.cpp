#include "net/link.h"

namespace medsen::net {

LinkModel lte_uplink() { return {12.0e6, 0.050, 0.002}; }

LinkModel lte_downlink() { return {30.0e6, 0.050, 0.002}; }

LinkModel usb_accessory() { return {280.0e6, 0.002, 0.0005}; }

}  // namespace medsen::net
