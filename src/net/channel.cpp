#include "net/channel.h"

namespace medsen::net {

void MessageQueue::send(std::vector<std::uint8_t> message) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return;  // messages after shutdown are dropped
    queue_.push(std::move(message));
  }
  cv_.notify_one();
}

std::optional<std::vector<std::uint8_t>> MessageQueue::receive() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return !queue_.empty() || shutdown_; });
  if (queue_.empty()) return std::nullopt;
  auto msg = std::move(queue_.front());
  queue_.pop();
  return msg;
}

std::optional<std::vector<std::uint8_t>> MessageQueue::try_receive() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.empty()) return std::nullopt;
  auto msg = std::move(queue_.front());
  queue_.pop();
  return msg;
}

void MessageQueue::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

bool MessageQueue::closed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return shutdown_;
}

}  // namespace medsen::net
