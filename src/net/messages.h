#pragma once
// Protocol messages exchanged between the MedSen controller, the phone
// relay, and the cloud server. Payloads are opaque to the phone (it only
// relays); message envelopes carry an HMAC-SHA256 tag keyed by a
// per-device transport key so the untrusted relay cannot tamper
// undetected. (Confidentiality needs no transport cipher: the signal is
// already encrypted in the analog domain.)
//
// The cloud is multi-tenant: every envelope names the sending device
// (`device_id`, covered by the MAC) and the server resolves the MAC key
// from its device registry. Server-side failures travel back as kError
// envelopes carrying a structured ErrorPayload — never as exceptions.

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "crypto/hmac.h"
#include "util/time_series.h"

namespace medsen::net {

enum class MessageType : std::uint8_t {
  kSignalUpload = 1,   ///< sensor -> cloud: encrypted acquisition
  kAnalysisResult = 2, ///< cloud -> sensor: serialized PeakReport
  kAuthDecision = 3,   ///< cloud -> sensor: authentication outcome
  kProgress = 4,       ///< cloud/phone -> app UI
  kError = 5,          ///< cloud -> sensor: structured ErrorPayload
  kAuthPass = 6,       ///< sensor -> cloud: plaintext pass (AuthPassPayload)
  kAuthChallenge = 7,  ///< sensor -> cloud: EV2 handshake opener
  kAuthResponse = 8,   ///< cloud -> sensor: handshake nonce + key proof
};

struct Envelope {
  MessageType type = MessageType::kError;
  std::uint64_t session_id = 0;
  std::uint64_t device_id = 0;  ///< sending/addressed device, MAC-covered
  /// Monotonic command counter, MAC-covered. 0 marks the legacy
  /// static-key plane (and the handshake itself); session-keyed
  /// commands count from 1 and the server validates them against a
  /// sliding anti-replay window (see cloud::SessionAuthTable).
  std::uint32_t counter = 0;
  std::vector<std::uint8_t> payload;
  crypto::Sha256Digest mac{};  ///< HMAC over type|session|device|ctr|payload

  /// Serialize (without framing; see net/frame.h).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static Envelope deserialize(std::span<const std::uint8_t> bytes);
};

/// Build an authenticated envelope. `counter` stays 0 on the legacy
/// static-key plane; session-keyed traffic stamps the device's next
/// command counter.
Envelope make_envelope(MessageType type, std::uint64_t session_id,
                       std::uint64_t device_id,
                       std::vector<std::uint8_t> payload,
                       std::span<const std::uint8_t> mac_key,
                       std::uint32_t counter = 0);

/// Verify the envelope's MAC.
bool verify_envelope(const Envelope& envelope,
                     std::span<const std::uint8_t> mac_key);

/// Serialization format of an uploaded acquisition. The prototype
/// records CSV files; binary is the compact default.
enum class UploadFormat : std::uint8_t { kBinary = 0, kCsv = 1 };

/// SignalUpload payload: the acquisition, optionally compressed.
struct SignalUploadPayload {
  bool compressed = false;
  UploadFormat format = UploadFormat::kBinary;
  double sample_rate_hz = 450.0;
  std::vector<std::uint8_t> data;  ///< serialized (maybe compressed) series

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static SignalUploadPayload deserialize(std::span<const std::uint8_t> bytes);
};

/// AuthPass payload: a plaintext (encryption-off) acquisition plus the
/// side-channel parameters the verifier needs. `volume_ul` and
/// `duration_s` used to be announced as bare function arguments; carrying
/// them inside the MAC'd envelope means a tampering relay cannot skew the
/// census concentration or the dead-time correction undetected.
struct AuthPassPayload {
  SignalUploadPayload upload;
  double volume_ul = 0.0;
  double duration_s = 0.0;  ///< 0 disables the dead-time correction

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static AuthPassPayload deserialize(std::span<const std::uint8_t> bytes);
};

/// AuthChallenge payload (sensor -> cloud, opens the EV2-style
/// handshake): the device's fresh 16-byte nonce plus the master-key
/// epoch its diversified key was personalized under, so the server
/// derives with the matching master during a rotation grace window.
/// The envelope carrying it is MAC'd with the device's *long-term*
/// key and counter 0; everything after the handshake runs on derived
/// session keys.
struct AuthChallengePayload {
  static constexpr std::size_t kNonceSize = 16;
  std::uint32_t key_epoch = 0;
  std::array<std::uint8_t, kNonceSize> challenge{};  ///< RndA

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static AuthChallengePayload deserialize(std::span<const std::uint8_t> bytes);
};

/// AuthResponse payload (cloud -> sensor, closes the handshake): the
/// server's 16-byte nonce and CMAC(device_key, RndB || RndA) — proof the
/// server actually holds (or can derive) the device key. The device
/// verifies the proof in constant time before deriving session keys.
struct AuthResponsePayload {
  static constexpr std::size_t kNonceSize = 16;
  std::array<std::uint8_t, kNonceSize> challenge{};  ///< RndB
  std::array<std::uint8_t, 16> proof{};

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static AuthResponsePayload deserialize(std::span<const std::uint8_t> bytes);
};

/// Binary serialization of a multi-channel acquisition.
std::vector<std::uint8_t> serialize_series(
    const util::MultiChannelSeries& series);
util::MultiChannelSeries deserialize_series(
    std::span<const std::uint8_t> bytes);

/// AuthDecision payload.
struct AuthDecisionPayload {
  bool authenticated = false;
  std::string user_id;
  double distance = 0.0;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static AuthDecisionPayload deserialize(std::span<const std::uint8_t> bytes);
};

/// Machine-readable quality-failure category. The numeric values travel
/// on the wire (the ErrorPayload subcode carries the worst reason, and
/// the per-channel vector carries `1u << reason` bitmasks), so they are
/// part of the protocol. Lower
/// nonzero values are more severe: a saturated channel says more about
/// the hardware than a drifting one, and the highest-severity failure is
/// the one reported as the summary `subcode`.
enum class QualityReason : std::uint8_t {
  kNone = 0,          ///< acceptable
  kNoChannels = 1,    ///< acquisition carries no channels at all
  kEmptyChannel = 2,  ///< a channel has zero samples
  kSaturated = 3,     ///< implausible/clipped samples
  kDropout = 4,       ///< pinned (stuck-ADC) samples
  kNoiseFloor = 5,    ///< broadband noise above threshold
  kDrift = 6,         ///< baseline wander out of range
};

[[nodiscard]] const char* to_string(QualityReason reason);

/// True when `a` outranks `b` in severity (kNone never outranks).
[[nodiscard]] bool more_severe(QualityReason a, QualityReason b);

/// Why the server refused a request (kError envelopes).
enum class ErrorCode : std::uint8_t {
  kBadMac = 1,           ///< envelope MAC verification failed
  kQualityRejected = 2,  ///< acquisition failed the quality gate
  kUnknownDevice = 3,    ///< device_id not in the registry
  kOverloaded = 4,       ///< admission gate shed the request
  kMalformed = 5,        ///< undecodable payload / unroutable type
  kSessionConflict = 6,  ///< session_id replayed with different bytes
  kStaleCounter = 7,     ///< command counter outside the anti-replay window
  kAuthRequired = 8,     ///< no session for this (device, session_id)
  kRevoked = 9,          ///< device on the revocation list
  kBadEpoch = 10,        ///< handshake named a retired/unknown key epoch
};

[[nodiscard]] const char* to_string(ErrorCode code);

/// Error payload: the machine-readable reason a request was refused.
/// `subcode` refines kQualityRejected with a QualityReason value (0
/// otherwise); `detail` is a human-readable elaboration.
///
/// `channel_reasons[c]` is a failure bitmask for carrier channel c: bit
/// `1u << r` is set for every QualityReason r that channel failed (0 for
/// a clean channel); the vector is empty for non-quality errors. The
/// full bitmask matters — a channel whose most severe failure is
/// saturation may simultaneously carry the systemic drift of a bubble,
/// and recovery planning must see both to blame the right component.
/// Carrier channels are anonymous to the relay and the cloud — only the
/// controller, holding the secret key schedule, can map them back to
/// physical electrodes, so publishing the vector leaks nothing about
/// E(t).
struct ErrorPayload {
  ErrorCode code = ErrorCode::kMalformed;
  std::uint8_t subcode = 0;
  std::string detail;
  std::vector<std::uint8_t> channel_reasons;  ///< failure bits per channel

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static ErrorPayload deserialize(std::span<const std::uint8_t> bytes);
};

}  // namespace medsen::net
