#pragma once
// Protocol messages exchanged between the MedSen controller, the phone
// relay, and the cloud server. Payloads are opaque to the phone (it only
// relays); message envelopes carry an HMAC-SHA256 tag keyed by a
// per-device transport key so the untrusted relay cannot tamper
// undetected. (Confidentiality needs no transport cipher: the signal is
// already encrypted in the analog domain.)
//
// The cloud is multi-tenant: every envelope names the sending device
// (`device_id`, covered by the MAC) and the server resolves the MAC key
// from its device registry. Server-side failures travel back as kError
// envelopes carrying a structured ErrorPayload — never as exceptions.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "crypto/hmac.h"
#include "util/time_series.h"

namespace medsen::net {

enum class MessageType : std::uint8_t {
  kSignalUpload = 1,   ///< sensor -> cloud: encrypted acquisition
  kAnalysisResult = 2, ///< cloud -> sensor: serialized PeakReport
  kAuthDecision = 3,   ///< cloud -> sensor: authentication outcome
  kProgress = 4,       ///< cloud/phone -> app UI
  kError = 5,          ///< cloud -> sensor: structured ErrorPayload
  kAuthPass = 6,       ///< sensor -> cloud: plaintext pass (AuthPassPayload)
};

struct Envelope {
  MessageType type = MessageType::kError;
  std::uint64_t session_id = 0;
  std::uint64_t device_id = 0;  ///< sending/addressed device, MAC-covered
  std::vector<std::uint8_t> payload;
  crypto::Sha256Digest mac{};  ///< HMAC over type|session|device|payload

  /// Serialize (without framing; see net/frame.h).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static Envelope deserialize(std::span<const std::uint8_t> bytes);
};

/// Build an authenticated envelope.
Envelope make_envelope(MessageType type, std::uint64_t session_id,
                       std::uint64_t device_id,
                       std::vector<std::uint8_t> payload,
                       std::span<const std::uint8_t> mac_key);

/// Verify the envelope's MAC.
bool verify_envelope(const Envelope& envelope,
                     std::span<const std::uint8_t> mac_key);

/// Serialization format of an uploaded acquisition. The prototype
/// records CSV files; binary is the compact default.
enum class UploadFormat : std::uint8_t { kBinary = 0, kCsv = 1 };

/// SignalUpload payload: the acquisition, optionally compressed.
struct SignalUploadPayload {
  bool compressed = false;
  UploadFormat format = UploadFormat::kBinary;
  double sample_rate_hz = 450.0;
  std::vector<std::uint8_t> data;  ///< serialized (maybe compressed) series

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static SignalUploadPayload deserialize(std::span<const std::uint8_t> bytes);
};

/// AuthPass payload: a plaintext (encryption-off) acquisition plus the
/// side-channel parameters the verifier needs. `volume_ul` and
/// `duration_s` used to be announced as bare function arguments; carrying
/// them inside the MAC'd envelope means a tampering relay cannot skew the
/// census concentration or the dead-time correction undetected.
struct AuthPassPayload {
  SignalUploadPayload upload;
  double volume_ul = 0.0;
  double duration_s = 0.0;  ///< 0 disables the dead-time correction

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static AuthPassPayload deserialize(std::span<const std::uint8_t> bytes);
};

/// Binary serialization of a multi-channel acquisition.
std::vector<std::uint8_t> serialize_series(
    const util::MultiChannelSeries& series);
util::MultiChannelSeries deserialize_series(
    std::span<const std::uint8_t> bytes);

/// AuthDecision payload.
struct AuthDecisionPayload {
  bool authenticated = false;
  std::string user_id;
  double distance = 0.0;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static AuthDecisionPayload deserialize(std::span<const std::uint8_t> bytes);
};

/// Why the server refused a request (kError envelopes).
enum class ErrorCode : std::uint8_t {
  kBadMac = 1,           ///< envelope MAC verification failed
  kQualityRejected = 2,  ///< acquisition failed the quality gate
  kUnknownDevice = 3,    ///< device_id not in the registry
  kOverloaded = 4,       ///< admission gate shed the request
  kMalformed = 5,        ///< undecodable payload / unroutable type
  kSessionConflict = 6,  ///< session_id replayed with different bytes
};

[[nodiscard]] const char* to_string(ErrorCode code);

/// Error payload: the machine-readable reason a request was refused.
/// `subcode` refines kQualityRejected with a cloud::QualityReason value
/// (0 otherwise); `detail` is a human-readable elaboration.
struct ErrorPayload {
  ErrorCode code = ErrorCode::kMalformed;
  std::uint8_t subcode = 0;
  std::string detail;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static ErrorPayload deserialize(std::span<const std::uint8_t> bytes);
};

}  // namespace medsen::net
