#pragma once
// Protocol messages exchanged between the MedSen controller, the phone
// relay, and the cloud server. Payloads are opaque to the phone (it only
// relays); message envelopes carry an HMAC-SHA256 tag keyed by a
// per-session transport key so the untrusted relay cannot tamper
// undetected. (Confidentiality needs no transport cipher: the signal is
// already encrypted in the analog domain.)

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "crypto/hmac.h"
#include "util/time_series.h"

namespace medsen::net {

enum class MessageType : std::uint8_t {
  kSignalUpload = 1,   ///< sensor -> cloud: encrypted acquisition
  kAnalysisResult = 2, ///< cloud -> sensor: serialized PeakReport
  kAuthDecision = 3,   ///< cloud -> sensor: authentication outcome
  kProgress = 4,       ///< cloud/phone -> app UI
  kError = 5,
};

struct Envelope {
  MessageType type = MessageType::kError;
  std::uint64_t session_id = 0;
  std::vector<std::uint8_t> payload;
  crypto::Sha256Digest mac{};  ///< HMAC over type|session|payload

  /// Serialize (without framing; see net/frame.h).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static Envelope deserialize(std::span<const std::uint8_t> bytes);
};

/// Build an authenticated envelope.
Envelope make_envelope(MessageType type, std::uint64_t session_id,
                       std::vector<std::uint8_t> payload,
                       std::span<const std::uint8_t> mac_key);

/// Verify the envelope's MAC.
bool verify_envelope(const Envelope& envelope,
                     std::span<const std::uint8_t> mac_key);

/// Serialization format of an uploaded acquisition. The prototype
/// records CSV files; binary is the compact default.
enum class UploadFormat : std::uint8_t { kBinary = 0, kCsv = 1 };

/// SignalUpload payload: the acquisition, optionally compressed.
struct SignalUploadPayload {
  bool compressed = false;
  UploadFormat format = UploadFormat::kBinary;
  double sample_rate_hz = 450.0;
  std::vector<std::uint8_t> data;  ///< serialized (maybe compressed) series

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static SignalUploadPayload deserialize(std::span<const std::uint8_t> bytes);
};

/// Binary serialization of a multi-channel acquisition.
std::vector<std::uint8_t> serialize_series(
    const util::MultiChannelSeries& series);
util::MultiChannelSeries deserialize_series(
    std::span<const std::uint8_t> bytes);

/// AuthDecision payload.
struct AuthDecisionPayload {
  bool authenticated = false;
  std::string user_id;
  double distance = 0.0;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static AuthDecisionPayload deserialize(std::span<const std::uint8_t> bytes);
};

}  // namespace medsen::net
