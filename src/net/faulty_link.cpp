#include "net/faulty_link.h"

#include <utility>

namespace medsen::net {

FaultyLink::FaultyLink(LinkModel model, FaultConfig faults,
                       SimulatedClock* clock)
    : model_(model), faults_(faults), clock_(clock), rng_(faults.seed) {}

double FaultyLink::uniform() {
  // 53-bit mantissa draw; bit-stable across standard libraries, unlike
  // std::uniform_real_distribution.
  return static_cast<double>(rng_() >> 11) * 0x1.0p-53;
}

void FaultyLink::deliver(std::vector<std::uint8_t> datagram) {
  ++counters_.delivered;
  queue_.send(std::move(datagram));
}

void FaultyLink::send(std::vector<std::uint8_t> datagram) {
  ++counters_.sent;
  if (clock_ != nullptr) {
    double elapsed = model_.transfer_time_s(datagram.size());
    if (faults_.delay_jitter_s > 0.0)
      elapsed += faults_.delay_jitter_s * uniform();
    clock_->advance(elapsed);
  }

  if (uniform() < faults_.drop_rate) {
    ++counters_.dropped;
    return;  // held datagrams stay held until a later delivery or flush()
  }

  if (force_corrupt_next_ || uniform() < faults_.corrupt_rate) {
    force_corrupt_next_ = false;
    if (!datagram.empty()) {
      const std::size_t byte = static_cast<std::size_t>(
          rng_() % static_cast<std::uint64_t>(datagram.size()));
      datagram[byte] ^= static_cast<std::uint8_t>(1u << (rng_() % 8));
      ++counters_.corrupted;
    }
  }

  const bool duplicate = uniform() < faults_.duplicate_rate;
  const bool hold = uniform() < faults_.reorder_rate && !held_.has_value();

  if (hold) {
    ++counters_.reordered;
    held_ = std::move(datagram);
    return;
  }

  if (duplicate) {
    ++counters_.duplicated;
    deliver(datagram);  // copy
  }
  deliver(std::move(datagram));

  if (held_.has_value()) {  // release behind the datagram just delivered
    deliver(std::move(*held_));
    held_.reset();
  }
}

std::optional<std::vector<std::uint8_t>> FaultyLink::try_receive() {
  return queue_.try_receive();
}

void FaultyLink::flush() {
  if (held_.has_value()) {
    deliver(std::move(*held_));
    held_.reset();
  }
}

}  // namespace medsen::net
