#pragma once
// Supervised particle-type classifiers. After peak detection the cloud
// (or, for auth, the verifier) maps each peak's multi-frequency amplitude
// feature vector to a particle class: blood cell, 3.58 um bead, 7.8 um
// bead, ... (paper Fig. 15/16). Nearest-centroid is the paper-faithful
// method (clear margins between clusters); kNN is provided as a
// cross-check.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "dsp/kmeans.h"

namespace medsen::dsp {

/// A labeled training example.
struct LabeledPoint {
  FeatureVector features;
  std::size_t label = 0;
};

/// Nearest-centroid classifier with per-class centroids.
class NearestCentroidClassifier {
 public:
  /// Fit centroids from labeled data; labels must be 0..num_classes-1.
  void fit(std::span<const LabeledPoint> data, std::size_t num_classes);

  /// Predict the class of a feature vector. Requires a prior fit().
  [[nodiscard]] std::size_t predict(const FeatureVector& x) const;

  /// Margin of the prediction: (d2 - d1) / d2 where d1/d2 are the nearest
  /// and second-nearest centroid distances. 1.0 = unambiguous.
  [[nodiscard]] double margin(const FeatureVector& x) const;

  [[nodiscard]] const std::vector<FeatureVector>& centroids() const {
    return centroids_;
  }

 private:
  std::vector<FeatureVector> centroids_;
};

/// k-nearest-neighbour classifier (stores the training set).
class KnnClassifier {
 public:
  explicit KnnClassifier(std::size_t k = 5) : k_(k) {}

  void fit(std::span<const LabeledPoint> data, std::size_t num_classes);
  [[nodiscard]] std::size_t predict(const FeatureVector& x) const;

 private:
  std::size_t k_;
  std::size_t num_classes_ = 0;
  std::vector<LabeledPoint> train_;
};

/// Row-major confusion matrix: counts[actual][predicted].
struct ConfusionMatrix {
  std::vector<std::vector<std::size_t>> counts;

  explicit ConfusionMatrix(std::size_t num_classes)
      : counts(num_classes, std::vector<std::size_t>(num_classes, 0)) {}

  void add(std::size_t actual, std::size_t predicted) {
    ++counts.at(actual).at(predicted);
  }
  [[nodiscard]] std::size_t total() const;
  [[nodiscard]] double accuracy() const;
  [[nodiscard]] std::string to_string() const;
};

}  // namespace medsen::dsp
