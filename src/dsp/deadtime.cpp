#include "dsp/deadtime.h"

#include <algorithm>

namespace medsen::dsp {

double busy_fraction(double observed, double duration_s,
                     double dead_time_s) {
  if (observed <= 0.0 || duration_s <= 0.0 || dead_time_s <= 0.0) return 0.0;
  return std::clamp(observed * dead_time_s / duration_s, 0.0, 1.0);
}

double dead_time_corrected_count(double observed, double duration_s,
                                 double dead_time_s) {
  const double busy = busy_fraction(observed, duration_s, dead_time_s);
  if (busy <= 0.0) return observed;
  const double factor = std::min(1.0 / std::max(1.0 - busy, 1e-9), 5.0);
  return observed * factor;
}

}  // namespace medsen::dsp
