#pragma once
// Quadrature (lock-in) demodulation. The main simulator synthesizes the
// demodulated baseband directly for speed; this module implements the
// actual instrument operation — mixing the raw modulated electrode
// current with in-phase/quadrature references and low-pass filtering —
// so the shortcut can be validated against the real signal chain
// (tests/dsp/demod_test.cpp, tests/sim/modulated_chain_test.cpp).
//
// Hot-path layout (DESIGN.md "DSP kernel layout"): the reference
// carriers come from a phase-wrapped recurrence oscillator instead of a
// per-sample std::sin/std::cos, and the batch kernels (demod_into, the
// SoA MultiCarrierDemodulator) run the mix/magnitude passes over
// contiguous buffers so they auto-vectorize. The per-sample step() is
// the scalar reference: every batch kernel is bit-identical to it (see
// the golden-identity tests).

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/filters.h"
#include "dsp/oscillator.h"

namespace medsen::dsp {

/// Streaming I/Q demodulator locked to one carrier.
class QuadratureDemodulator {
 public:
  /// `carrier_hz` must satisfy Nyquist at `sample_rate_hz`; the low-pass
  /// cutoff bounds the recovered envelope bandwidth. A Nyquist violation
  /// throws std::invalid_argument("...carrier violates Nyquist") — the
  /// carrier is validated before the filter members are constructed, so
  /// that is the error callers see even when the cutoff is also bad.
  QuadratureDemodulator(double carrier_hz, double sample_rate_hz,
                        double lowpass_cutoff_hz);

  /// Feed one raw sample; returns the current envelope (amplitude)
  /// estimate: 2 * |LPF(x * e^{-jwt})|. Scalar reference kernel.
  double step(double x);

  /// Batch kernel: demodulate xs into out (out.size() == xs.size());
  /// state persists across calls, and the output is bit-identical to
  /// feeding the same samples through step() one at a time.
  void demod_into(std::span<const double> xs, std::span<double> out);

  /// Demodulate a whole buffer (allocating convenience over demod_into).
  std::vector<double> apply(std::span<const double> xs);

  void reset();

 private:
  double carrier_hz_;
  double sample_rate_hz_;
  PhaseOscillator osc_;
  ButterworthLowPass2 lpf_i_;
  ButterworthLowPass2 lpf_q_;
  std::vector<double> mix_i_, mix_q_;  ///< per-block mix scratch
};

/// SoA multi-carrier demodulator: the instrument drives all 8 carriers
/// over one wire and demodulates them in parallel. State is laid out as
/// structure-of-arrays across carriers (phase increments, oscillator
/// sin/cos, biquad delay lines), so the per-sample inner loop over
/// carriers is contiguous, branch-free, and auto-vectorizes. Each
/// carrier's output is bit-identical to a standalone
/// QuadratureDemodulator with the same parameters.
class MultiCarrierDemodulator {
 public:
  /// All carriers share the sample rate and low-pass cutoff; every
  /// carrier must satisfy Nyquist.
  MultiCarrierDemodulator(std::span<const double> carriers_hz,
                          double sample_rate_hz, double lowpass_cutoff_hz);

  /// Demodulate the shared input against every carrier at once.
  /// `out` is carrier-major: out[c * xs.size() + i] is carrier c's
  /// envelope at sample i (out.size() == carriers() * xs.size()).
  /// State persists across calls.
  void demod_into(std::span<const double> xs, std::span<double> out);

  [[nodiscard]] std::size_t carriers() const { return dphi_.size(); }
  void reset();

 private:
  void resync();

  double sample_rate_hz_;
  BiquadCoeffs lpf_;                   ///< shared biquad design
  std::vector<double> carriers_hz_;
  std::vector<double> dphi_, sd_, cd_;  ///< per-carrier rotation
  std::vector<double> phase_, s_, c_;   ///< per-carrier oscillator state
  std::vector<double> z1i_, z2i_, z1q_, z2q_;  ///< per-carrier delay lines
  std::vector<double> row_i_, row_q_;  ///< per-sample I/Q rows (SoA scratch)
  std::size_t since_resync_ = 0;
};

/// Amplitude-modulate an envelope onto a carrier (test/validation aid):
/// y[n] = envelope[n] * sin(2 pi f n / rate + phase). Uses the same
/// recurrence oscillator as demodulation — no per-sample trig.
std::vector<double> modulate(std::span<const double> envelope,
                             double carrier_hz, double sample_rate_hz,
                             double phase = 0.0);

}  // namespace medsen::dsp
