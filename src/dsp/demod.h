#pragma once
// Quadrature (lock-in) demodulation. The main simulator synthesizes the
// demodulated baseband directly for speed; this module implements the
// actual instrument operation — mixing the raw modulated electrode
// current with in-phase/quadrature references and low-pass filtering —
// so the shortcut can be validated against the real signal chain
// (tests/dsp/demod_test.cpp, tests/sim/modulated_chain_test.cpp).

#include <cstddef>
#include <vector>

#include "dsp/filters.h"

namespace medsen::dsp {

/// Streaming I/Q demodulator locked to one carrier.
class QuadratureDemodulator {
 public:
  /// `carrier_hz` must satisfy Nyquist at `sample_rate_hz`; the low-pass
  /// cutoff bounds the recovered envelope bandwidth.
  QuadratureDemodulator(double carrier_hz, double sample_rate_hz,
                        double lowpass_cutoff_hz);

  /// Feed one raw sample; returns the current envelope (amplitude)
  /// estimate: 2 * |LPF(x * e^{-jwt})|.
  double step(double x);

  /// Demodulate a whole buffer.
  std::vector<double> apply(std::span<const double> xs);

  void reset();

 private:
  double carrier_hz_;
  double sample_rate_hz_;
  std::size_t n_ = 0;
  ButterworthLowPass2 lpf_i_;
  ButterworthLowPass2 lpf_q_;
};

/// Amplitude-modulate an envelope onto a carrier (test/validation aid):
/// y[n] = envelope[n] * sin(2 pi f n / rate).
std::vector<double> modulate(std::span<const double> envelope,
                             double carrier_hz, double sample_rate_hz,
                             double phase = 0.0);

}  // namespace medsen::dsp
