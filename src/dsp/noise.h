#pragma once
// Robust noise-floor estimation for adaptive peak thresholds. The fixed
// detection threshold works for the calibrated instrument; a deployed
// cloud service sees many sensors with different noise floors, so the
// analysis service can derive the threshold from the signal itself.

#include <span>

namespace medsen::dsp {

/// Robust RMS noise estimate of a (possibly peak-bearing, possibly
/// drifting) signal: the median absolute first difference scaled to the
/// equivalent Gaussian sigma. Peaks and slow drift barely move the
/// median, so the estimate tracks only the broadband noise.
double estimate_noise_rms(std::span<const double> xs);

/// Detection threshold derived from the noise floor:
/// clamp(k_sigma * noise_rms, min_threshold, max_threshold).
double adaptive_threshold(std::span<const double> xs, double k_sigma = 6.0,
                          double min_threshold = 5e-4,
                          double max_threshold = 5e-3);

}  // namespace medsen::dsp
