#pragma once
// Threshold peak detection on detrended signals (paper Section VI-C):
// peaks are downward excursions below the unit baseline; a peak is the
// contiguous region where (1 - signal) exceeds the minimum threshold.
// Each peak is reported with timestamp, depth (amplitude) and width — the
// three features the cipher deliberately scrambles and the decryptor
// recovers.

#include <cstddef>
#include <span>
#include <vector>

#include "util/time_series.h"

namespace medsen::dsp {

/// One detected peak.
struct Peak {
  double time_s = 0.0;       ///< timestamp of the extremum
  double amplitude = 0.0;    ///< depth below baseline (positive)
  double width_s = 0.0;      ///< full width at the detection threshold
  std::size_t index = 0;     ///< sample index of the extremum
};

struct PeakDetectConfig {
  double threshold = 0.0015;     ///< minimum depth below baseline (1 - x)
  std::size_t min_width = 2;     ///< minimum samples above threshold
  std::size_t merge_gap = 1;     ///< merge regions separated by <= gap
  /// A contiguous above-threshold region is split into several peaks at
  /// interior valleys whose depth falls below this fraction of the
  /// smaller neighbouring peak. Multi-electrode trains (paper Fig. 11d)
  /// stay countable even when the signal never returns to baseline
  /// between electrodes.
  double valley_split_ratio = 0.6;
};

/// Reusable buffers for detect_peaks: the signal-length depth array
/// (the 1 - x pass over the full acquisition — the only O(n) allocation)
/// plus the threshold-region lists. Thread one instance through repeated
/// calls to detect with no per-call heap traffic for those passes.
/// Contents are scratch: overwritten each call, never read.
struct PeakDetectScratch {
  struct Region {
    std::size_t begin, end;  // [begin, end)
  };
  std::vector<double> depth;
  std::vector<Region> regions, merged;
};

/// Detect peaks in an already detrended signal (baseline ~= 1.0).
std::vector<Peak> detect_peaks(std::span<const double> detrended,
                               double sample_rate_hz, double start_time_s,
                               const PeakDetectConfig& config = {});

/// Scratch-reusing overload; identical output to the plain overload.
std::vector<Peak> detect_peaks(std::span<const double> detrended,
                               double sample_rate_hz, double start_time_s,
                               const PeakDetectConfig& config,
                               PeakDetectScratch& scratch);

/// Convenience overload for a detrended TimeSeries.
std::vector<Peak> detect_peaks(const util::TimeSeries& detrended,
                               const PeakDetectConfig& config = {});

}  // namespace medsen::dsp
