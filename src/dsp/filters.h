#pragma once
// Filtering primitives for the simulated lock-in amplifier chain:
// single-pole IIR low-pass (the HF2IS output filter, 120 Hz cutoff),
// moving average, and integer decimation (down to the 450 Hz output rate).

#include <cstddef>
#include <span>
#include <vector>

namespace medsen::dsp {

/// First-order IIR low-pass: y[n] = y[n-1] + alpha * (x[n] - y[n-1]).
class SinglePoleLowPass {
 public:
  /// cutoff_hz must be < sample_rate_hz / 2.
  SinglePoleLowPass(double cutoff_hz, double sample_rate_hz);

  double step(double x);
  /// Return to the unprimed state: the next step() adopts its input as
  /// the filter state (transient-free start on an unknown signal).
  void reset();
  /// Prime the filter at `initial`: the next step() filters normally from
  /// that state instead of adopting its input.
  void reset(double initial);
  [[nodiscard]] double alpha() const { return alpha_; }

  /// Filter a whole buffer (state persists across calls).
  std::vector<double> apply(std::span<const double> xs);

 private:
  double alpha_;
  double state_ = 0.0;
  bool primed_ = false;
};

/// Second-order Butterworth low-pass (bilinear transform), closer to the
/// instrument's real roll-off than the single-pole stage.
class ButterworthLowPass2 {
 public:
  ButterworthLowPass2(double cutoff_hz, double sample_rate_hz);

  double step(double x) {
    // Transposed direct form II.
    const double y = b0_ * x + z1_;
    z1_ = b1_ * x - a1_ * y + z2_;
    z2_ = b2_ * x - a2_ * y;
    return y;
  }
  /// Filter a buffer in place (batch form of step(); bit-identical). The
  /// delay line is copied to locals for the loop so the recurrence stays
  /// in registers instead of round-tripping through memory each sample.
  void step_buffer(std::span<double> xs) {
    double z1 = z1_, z2 = z2_;
    for (double& x : xs) {
      const double y = b0_ * x + z1;
      z1 = b1_ * x - a1_ * y + z2;
      z2 = b2_ * x - a2_ * y;
      x = y;
    }
    z1_ = z1;
    z2_ = z2;
  }
  /// Zero the delay line (start-up transient on a non-zero signal).
  void reset();
  /// Prime the delay line at the exact DC steady state for input `dc`:
  /// a constant input `dc` then passes through unchanged from the very
  /// first sample (replaces approximate warm-up priming loops).
  void reset(double dc);
  std::vector<double> apply(std::span<const double> xs);

 private:
  double b0_, b1_, b2_, a1_, a2_;
  double z1_ = 0.0, z2_ = 0.0;
};

/// Second-order Butterworth low-pass coefficients (bilinear transform),
/// shared by ButterworthLowPass2 and the SoA multi-carrier demodulator so
/// the two paths are bit-identical. Throws on cutoff outside (0, rate/2).
struct BiquadCoeffs {
  double b0, b1, b2, a1, a2;
};
BiquadCoeffs butterworth2_design(double cutoff_hz, double sample_rate_hz);

/// Centered moving average with the given window (edges truncated). The
/// window must be odd — a centered even kernel does not exist, and the
/// old silent acceptance produced an asymmetric (phase-shifting) filter.
/// Throws std::invalid_argument on even (including zero) windows.
std::vector<double> moving_average(std::span<const double> xs,
                                   std::size_t window);

/// Keep every `factor`-th sample (no anti-alias filter; callers low-pass
/// first, as the lock-in chain does).
std::vector<double> decimate(std::span<const double> xs, std::size_t factor);

}  // namespace medsen::dsp
