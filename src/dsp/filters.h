#pragma once
// Filtering primitives for the simulated lock-in amplifier chain:
// single-pole IIR low-pass (the HF2IS output filter, 120 Hz cutoff),
// moving average, and integer decimation (down to the 450 Hz output rate).

#include <cstddef>
#include <span>
#include <vector>

namespace medsen::dsp {

/// First-order IIR low-pass: y[n] = y[n-1] + alpha * (x[n] - y[n-1]).
class SinglePoleLowPass {
 public:
  /// cutoff_hz must be < sample_rate_hz / 2.
  SinglePoleLowPass(double cutoff_hz, double sample_rate_hz);

  double step(double x);
  void reset(double initial = 0.0);
  [[nodiscard]] double alpha() const { return alpha_; }

  /// Filter a whole buffer (state persists across calls).
  std::vector<double> apply(std::span<const double> xs);

 private:
  double alpha_;
  double state_ = 0.0;
  bool primed_ = false;
};

/// Second-order Butterworth low-pass (bilinear transform), closer to the
/// instrument's real roll-off than the single-pole stage.
class ButterworthLowPass2 {
 public:
  ButterworthLowPass2(double cutoff_hz, double sample_rate_hz);

  double step(double x);
  void reset();
  std::vector<double> apply(std::span<const double> xs);

 private:
  double b0_, b1_, b2_, a1_, a2_;
  double z1_ = 0.0, z2_ = 0.0;
};

/// Centered moving average with the given odd window (edges truncated).
std::vector<double> moving_average(std::span<const double> xs,
                                   std::size_t window);

/// Keep every `factor`-th sample (no anti-alias filter; callers low-pass
/// first, as the lock-in chain does).
std::vector<double> decimate(std::span<const double> xs, std::size_t factor);

}  // namespace medsen::dsp
