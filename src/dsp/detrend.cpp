#include "dsp/detrend.h"

#include <algorithm>
#include <cmath>

#include "dsp/polyfit.h"
#include "util/stats.h"

namespace medsen::dsp {

std::vector<double> detrend(std::span<const double> signal,
                            const DetrendConfig& config) {
  const std::size_t n = signal.size();
  std::vector<double> out(n, 1.0);
  if (n == 0) return out;

  const std::size_t window = std::max<std::size_t>(config.window, 8);
  const std::size_t overlap = std::min(config.overlap, window / 2);
  const std::size_t stride = window - overlap;

  // Accumulate weighted contributions; weight ramps linearly inside the
  // overlap so adjacent windows cross-fade (minimizes polynomial edge
  // error, as the paper prescribes).
  std::vector<double> acc(n, 0.0);
  std::vector<double> weight_sum(n, 0.0);

  for (std::size_t start = 0; start < n; start += stride) {
    const std::size_t end = std::min(start + window, n);
    const std::size_t len = end - start;
    std::span<const double> chunk = signal.subspan(start, len);

    std::vector<double> fitted;
    if (len >= static_cast<std::size_t>(config.poly_degree) + 1) {
      const Polynomial poly = polyfit(chunk, config.poly_degree);
      fitted = polyval_indices(poly, len);
    } else {
      fitted.assign(len, util::mean(chunk));
    }

    for (std::size_t i = 0; i < len; ++i) {
      const double base = fitted[i];
      const double normalized =
          std::fabs(base) > 1e-12 ? chunk[i] / base : 1.0;
      // Triangular weight: full in the window interior, ramping across
      // the overlap margins.
      double w = 1.0;
      if (overlap > 0) {
        const double ramp = static_cast<double>(overlap);
        if (i < overlap && start > 0)
          w = (static_cast<double>(i) + 1.0) / ramp;
        const std::size_t from_end = len - 1 - i;
        if (from_end < overlap && end < n)
          w = std::min(w, (static_cast<double>(from_end) + 1.0) / ramp);
      }
      acc[start + i] += w * normalized;
      weight_sum[start + i] += w;
    }
    if (end == n) break;
  }

  for (std::size_t i = 0; i < n; ++i)
    out[i] = weight_sum[i] > 0.0 ? acc[i] / weight_sum[i] : 1.0;
  return out;
}

void detrend_in_place(util::TimeSeries& series, const DetrendConfig& config) {
  auto result = detrend(series.samples(), config);
  std::copy(result.begin(), result.end(), series.samples_mut().begin());
}

}  // namespace medsen::dsp
