#include "dsp/detrend.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/polyfit.h"
#include "util/stats.h"

namespace medsen::dsp {

namespace {

/// Per-task workspace: the fitted-baseline buffer plus the polyfit
/// scratch, reused across every window the task processes.
struct DetrendScratch {
  std::vector<double> fitted;
  PolyfitScratch poly;
};

/// Fit one window and accumulate its weighted contribution into
/// acc/weight_sum, which are offset so index `base` maps to element 0
/// (base = 0 for the global arrays, base = slab start for task slabs).
void process_window(std::span<const double> signal, std::size_t start,
                    std::size_t window, std::size_t overlap, unsigned degree,
                    DetrendScratch& scratch, double* acc, double* weight_sum,
                    std::size_t base) {
  const std::size_t n = signal.size();
  const std::size_t end = std::min(start + window, n);
  const std::size_t len = end - start;
  const std::span<const double> chunk = signal.subspan(start, len);

  scratch.fitted.resize(len);
  if (len >= static_cast<std::size_t>(degree) + 1) {
    const auto coeffs = polyfit_indices(chunk, degree, scratch.poly);
    polyval_indices_into(coeffs, scratch.fitted);
  } else {
    std::fill(scratch.fitted.begin(), scratch.fitted.end(),
              util::mean(chunk));
  }

  for (std::size_t i = 0; i < len; ++i) {
    const double baseline = scratch.fitted[i];
    const double normalized =
        std::fabs(baseline) > 1e-12 ? chunk[i] / baseline : 1.0;
    // Triangular weight: full in the window interior, ramping across
    // the overlap margins so adjacent windows cross-fade (minimizes
    // polynomial edge error, as the paper prescribes).
    double w = 1.0;
    if (overlap > 0) {
      const double ramp = static_cast<double>(overlap);
      if (i < overlap && start > 0)
        w = (static_cast<double>(i) + 1.0) / ramp;
      const std::size_t from_end = len - 1 - i;
      if (from_end < overlap && end < n)
        w = std::min(w, (static_cast<double>(from_end) + 1.0) / ramp);
    }
    acc[start + i - base] += w * normalized;
    weight_sum[start + i - base] += w;
  }
}

}  // namespace

void detrend_into(std::span<const double> signal, const DetrendConfig& config,
                  std::span<double> out, util::ThreadPool* pool) {
  const std::size_t n = signal.size();
  if (out.size() != n)
    throw std::invalid_argument("detrend_into: output size mismatch");
  if (n == 0) return;

  const std::size_t window = std::max<std::size_t>(config.window, 8);
  const std::size_t overlap = std::min(config.overlap, window / 2);
  const std::size_t stride = window - overlap;

  std::vector<std::size_t> starts;
  for (std::size_t s = 0; s < n; s += stride) {
    starts.push_back(s);
    if (std::min(s + window, n) == n) break;
  }
  const std::size_t num_windows = starts.size();

  std::vector<double> acc(n, 0.0);
  std::vector<double> weight_sum(n, 0.0);

  std::size_t tasks = 1;
  if (pool != nullptr && num_windows > 1)
    tasks = std::min(num_windows,
                     static_cast<std::size_t>(pool->concurrency()) * 2);

  if (tasks <= 1) {
    DetrendScratch scratch;
    for (const std::size_t s : starts)
      process_window(signal, s, window, overlap, config.poly_degree, scratch,
                     acc.data(), weight_sum.data(), 0);
  } else {
    // Each task owns a contiguous run of windows and accumulates into a
    // private slab covering exactly the samples those windows touch.
    // Slabs start at 0.0 and are added to the global arrays serially in
    // window order below, so every sample receives its contributions in
    // the same order as the serial loop — bit-identical output.
    struct Slab {
      std::size_t lo = 0;
      std::vector<double> acc, weight_sum;
    };
    std::vector<Slab> slabs(tasks);
    pool->parallel_for(
        tasks, 1, [&](std::size_t task_begin, std::size_t task_end) {
          DetrendScratch scratch;
          for (std::size_t t = task_begin; t < task_end; ++t) {
            const std::size_t wb = t * num_windows / tasks;
            const std::size_t we = (t + 1) * num_windows / tasks;
            if (wb >= we) continue;
            Slab& slab = slabs[t];
            slab.lo = starts[wb];
            const std::size_t hi = std::min(starts[we - 1] + window, n);
            slab.acc.assign(hi - slab.lo, 0.0);
            slab.weight_sum.assign(hi - slab.lo, 0.0);
            for (std::size_t w = wb; w < we; ++w)
              process_window(signal, starts[w], window, overlap,
                             config.poly_degree, scratch, slab.acc.data(),
                             slab.weight_sum.data(), slab.lo);
          }
        });
    for (const Slab& slab : slabs) {
      for (std::size_t i = 0; i < slab.acc.size(); ++i) {
        acc[slab.lo + i] += slab.acc[i];
        weight_sum[slab.lo + i] += slab.weight_sum[i];
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i)
    out[i] = weight_sum[i] > 0.0 ? acc[i] / weight_sum[i] : 1.0;
}

std::vector<double> detrend(std::span<const double> signal,
                            const DetrendConfig& config,
                            util::ThreadPool* pool) {
  std::vector<double> out(signal.size(), 1.0);
  detrend_into(signal, config, out, pool);
  return out;
}

void detrend_in_place(util::TimeSeries& series, const DetrendConfig& config,
                      util::ThreadPool* pool) {
  detrend_into(series.samples(), config, series.samples_mut(), pool);
}

}  // namespace medsen::dsp
