#include "dsp/detrend.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/polyfit.h"
#include "util/stats.h"

namespace medsen::dsp {

namespace {

/// Normalize one sample against its fitted baseline (guarding a
/// near-zero fit) and accumulate the weighted contribution.
inline void accumulate_sample(std::span<const double> chunk,
                              const double* fitted, std::size_t i, double w,
                              std::size_t offset, double* acc,
                              double* weight_sum) {
  const double baseline = fitted[i];
  const double normalized =
      std::fabs(baseline) > 1e-12 ? chunk[i] / baseline : 1.0;
  acc[offset + i] += w * normalized;
  weight_sum[offset + i] += w;
}

/// Fit one window and accumulate its weighted contribution into
/// acc/weight_sum, which are offset so index `base` maps to element 0
/// (base = 0 for the global arrays, base = slab start for task slabs).
void process_window(std::span<const double> signal, std::size_t start,
                    std::size_t window, std::size_t overlap, unsigned degree,
                    DetrendWorkspace::FitScratch& scratch, double* acc,
                    double* weight_sum, std::size_t base) {
  const std::size_t n = signal.size();
  const std::size_t end = std::min(start + window, n);
  const std::size_t len = end - start;
  const std::span<const double> chunk = signal.subspan(start, len);

  scratch.fitted.resize(len);
  if (len >= static_cast<std::size_t>(degree) + 1) {
    const auto coeffs = polyfit_indices(chunk, degree, scratch.poly);
    polyval_indices_into(coeffs, scratch.fitted);
  } else {
    std::fill(scratch.fitted.begin(), scratch.fitted.end(),
              util::mean(chunk));
  }

  // Triangular weight: full in the window interior, ramping across the
  // overlap margins so adjacent windows cross-fade (minimizes polynomial
  // edge error, as the paper prescribes). The common case — ramps that
  // do not meet — splits into three branch-free segments so each inner
  // loop vectorizes; the weights are exactly those of the per-sample
  // min() formulation, which remains below as the short-window fallback.
  const double* const fitted = scratch.fitted.data();
  const std::size_t offset = start - base;
  const std::size_t left = (overlap > 0 && start > 0) ? overlap : 0;
  const std::size_t right = (overlap > 0 && end < n) ? overlap : 0;
  if (left + right <= len) {
    const double ramp = static_cast<double>(overlap);
    for (std::size_t i = 0; i < left; ++i)
      accumulate_sample(chunk, fitted, i, (static_cast<double>(i) + 1.0) / ramp,
                        offset, acc, weight_sum);
    for (std::size_t i = left; i < len - right; ++i)
      accumulate_sample(chunk, fitted, i, 1.0, offset, acc, weight_sum);
    for (std::size_t i = len - right; i < len; ++i)
      accumulate_sample(chunk, fitted, i,
                        (static_cast<double>(len - 1 - i) + 1.0) / ramp,
                        offset, acc, weight_sum);
    return;
  }
  for (std::size_t i = 0; i < len; ++i) {
    double w = 1.0;
    const double ramp = static_cast<double>(overlap);
    if (i < overlap && start > 0)
      w = (static_cast<double>(i) + 1.0) / ramp;
    const std::size_t from_end = len - 1 - i;
    if (from_end < overlap && end < n)
      w = std::min(w, (static_cast<double>(from_end) + 1.0) / ramp);
    accumulate_sample(chunk, fitted, i, w, offset, acc, weight_sum);
  }
}

}  // namespace

void detrend_into(std::span<const double> signal, const DetrendConfig& config,
                  std::span<double> out, util::ThreadPool* pool,
                  DetrendWorkspace& workspace) {
  const std::size_t n = signal.size();
  if (out.size() != n)
    throw std::invalid_argument("detrend_into: output size mismatch");
  if (n == 0) return;

  const std::size_t window = std::max<std::size_t>(config.window, 8);
  const std::size_t overlap = std::min(config.overlap, window / 2);
  const std::size_t stride = window - overlap;

  std::vector<std::size_t>& starts = workspace.starts;
  starts.clear();
  for (std::size_t s = 0; s < n; s += stride) {
    starts.push_back(s);
    if (std::min(s + window, n) == n) break;
  }
  const std::size_t num_windows = starts.size();

  workspace.acc.assign(n, 0.0);
  workspace.weight_sum.assign(n, 0.0);
  std::vector<double>& acc = workspace.acc;
  std::vector<double>& weight_sum = workspace.weight_sum;

  std::size_t tasks = 1;
  if (pool != nullptr && num_windows > 1)
    tasks = std::min(num_windows,
                     static_cast<std::size_t>(pool->concurrency()) * 2);
  if (workspace.tasks.size() < tasks) workspace.tasks.resize(tasks);

  if (tasks <= 1) {
    for (const std::size_t s : starts)
      process_window(signal, s, window, overlap, config.poly_degree,
                     workspace.tasks[0], acc.data(), weight_sum.data(), 0);
  } else {
    // Each task owns a contiguous run of windows and accumulates into a
    // private slab covering exactly the samples those windows touch.
    // Slabs start at 0.0 and are added to the global arrays serially in
    // window order below, so every sample receives its contributions in
    // the same order as the serial loop — bit-identical output.
    if (workspace.slabs.size() < tasks) workspace.slabs.resize(tasks);
    std::vector<DetrendWorkspace::Slab>& slabs = workspace.slabs;
    pool->parallel_for(
        tasks, 1, [&](std::size_t task_begin, std::size_t task_end) {
          for (std::size_t t = task_begin; t < task_end; ++t) {
            const std::size_t wb = t * num_windows / tasks;
            const std::size_t we = (t + 1) * num_windows / tasks;
            DetrendWorkspace::Slab& slab = slabs[t];
            if (wb >= we) {
              slab.acc.clear();
              slab.weight_sum.clear();
              continue;
            }
            slab.lo = starts[wb];
            const std::size_t hi = std::min(starts[we - 1] + window, n);
            slab.acc.assign(hi - slab.lo, 0.0);
            slab.weight_sum.assign(hi - slab.lo, 0.0);
            for (std::size_t w = wb; w < we; ++w)
              process_window(signal, starts[w], window, overlap,
                             config.poly_degree, workspace.tasks[t],
                             slab.acc.data(), slab.weight_sum.data(),
                             slab.lo);
          }
        });
    for (std::size_t t = 0; t < tasks; ++t) {
      const DetrendWorkspace::Slab& slab = slabs[t];
      for (std::size_t i = 0; i < slab.acc.size(); ++i) {
        acc[slab.lo + i] += slab.acc[i];
        weight_sum[slab.lo + i] += slab.weight_sum[i];
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i)
    out[i] = weight_sum[i] > 0.0 ? acc[i] / weight_sum[i] : 1.0;
}

void detrend_into(std::span<const double> signal, const DetrendConfig& config,
                  std::span<double> out, util::ThreadPool* pool) {
  DetrendWorkspace workspace;
  detrend_into(signal, config, out, pool, workspace);
}

std::vector<double> detrend(std::span<const double> signal,
                            const DetrendConfig& config,
                            util::ThreadPool* pool) {
  std::vector<double> out(signal.size(), 1.0);
  detrend_into(signal, config, out, pool);
  return out;
}

void detrend_in_place(util::TimeSeries& series, const DetrendConfig& config,
                      util::ThreadPool* pool) {
  detrend_into(series.samples(), config, series.samples_mut(), pool);
}

}  // namespace medsen::dsp
