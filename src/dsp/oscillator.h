#pragma once
// Phase-wrapped recurrence oscillator: generates sin/cos(2*pi*f*n/fs + p0)
// without a per-sample std::sin/std::cos call. The per-sample step is one
// 2x2 rotation (4 multiplies, 2 adds); accumulated rounding drift is
// bounded by re-synchronizing from the wrapped phase accumulator every
// kResyncInterval samples (see DESIGN.md "DSP kernel layout" for the
// drift bound). The phase accumulator itself is kept in [0, 2*pi), so —
// unlike the old `2*pi*f*n/fs` formula — precision does not degrade as
// the stream index grows without bound.

#include <cstddef>
#include <span>

namespace medsen::dsp {

class PhaseOscillator {
 public:
  /// Samples between exact trig re-synchronizations. Between resyncs the
  /// rotation recurrence drifts by at most ~kResyncInterval ulps
  /// (~6e-14), far below every envelope tolerance in the pipeline.
  static constexpr std::size_t kResyncInterval = 256;

  /// `freq_hz` may be any non-negative frequency below `sample_rate_hz`
  /// (callers own their Nyquist policy); `initial_phase` in radians.
  PhaseOscillator(double freq_hz, double sample_rate_hz,
                  double initial_phase = 0.0);

  /// sin/cos of the *current* sample's phase.
  [[nodiscard]] double sin_value() const { return s_; }
  [[nodiscard]] double cos_value() const { return c_; }

  /// Advance to the next sample (rotation step + wrapped phase update,
  /// with an exact resync every kResyncInterval advances).
  void advance();

  /// Batch kernel: write sin/cos of the next sin_out.size() samples into
  /// the two buffers (cos_out.size() must match) and leave the oscillator
  /// advanced past them. Bit-identical to calling sin_value()/cos_value()
  /// + advance() in a loop; the contiguous outputs exist so downstream
  /// mix loops vectorize.
  void fill(std::span<double> sin_out, std::span<double> cos_out);

  /// Restart at sample 0 with a (possibly new) initial phase.
  void reset(double initial_phase = 0.0);

 private:
  double dphi_;  ///< per-sample phase increment
  double sd_, cd_;  ///< sin/cos of dphi_ (the rotation)
  double phase_;    ///< wrapped accumulator in [0, 2*pi)
  double s_, c_;    ///< current sample's sin/cos
  std::size_t since_resync_ = 0;
};

}  // namespace medsen::dsp
