#include "dsp/fft.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace medsen::dsp {

namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

void transform(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_pow2(n)) throw std::invalid_argument("fft: size must be 2^k");
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        2.0 * std::numbers::pi / static_cast<double>(len) *
        (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

}  // namespace

void fft(std::vector<std::complex<double>>& data) { transform(data, false); }

void ifft(std::vector<std::complex<double>>& data) { transform(data, true); }

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::vector<std::complex<double>> fft_real(std::span<const double> xs) {
  std::vector<std::complex<double>> data(next_pow2(std::max<std::size_t>(
      xs.size(), 1)));
  for (std::size_t i = 0; i < xs.size(); ++i) data[i] = xs[i];
  fft(data);
  return data;
}

std::vector<double> power_spectrum(std::span<const double> xs) {
  const auto spectrum = fft_real(xs);
  const std::size_t n = spectrum.size();
  std::vector<double> power(n / 2 + 1);
  for (std::size_t k = 0; k < power.size(); ++k)
    power[k] = std::norm(spectrum[k]) / static_cast<double>(n);
  return power;
}

double bin_frequency(std::size_t k, std::size_t fft_size,
                     double sample_rate_hz) {
  return static_cast<double>(k) * sample_rate_hz /
         static_cast<double>(fft_size);
}

double spectral_flatness(std::span<const double> xs) {
  const auto power = power_spectrum(xs);
  if (power.size() < 3) return 1.0;
  double log_sum = 0.0;
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t k = 1; k < power.size(); ++k) {  // skip DC
    const double p = std::max(power[k], 1e-300);
    log_sum += std::log(p);
    sum += p;
    ++count;
  }
  if (sum <= 0.0) return 1.0;
  const double geometric = std::exp(log_sum / static_cast<double>(count));
  const double arithmetic = sum / static_cast<double>(count);
  return geometric / arithmetic;
}

}  // namespace medsen::dsp
