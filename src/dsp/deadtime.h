#pragma once
// Coincidence (dead-time) correction for single-file particle counters.
// When two particles transit within one peak width they merge into a
// single detected peak, biasing counts low at high concentration — one of
// the effects behind the paper's observation that high bead
// concentrations have worse resolution (Section VII-C). The standard
// non-paralyzable detector model inverts the bias:
//
//     n_true ~= n_obs / (1 - n_obs * tau / T)
//
// with tau the dead time (mean peak width) and T the acquisition time.

#include <cstddef>

namespace medsen::dsp {

/// Corrected count for `observed` peaks over `duration_s` seconds with
/// dead time `dead_time_s` per peak. Returns `observed` unchanged for
/// degenerate inputs; the correction is clamped at 5x to keep pathological
/// busy fractions from exploding.
double dead_time_corrected_count(double observed, double duration_s,
                                 double dead_time_s);

/// Fraction of the acquisition the detector was busy (n * tau / T),
/// clamped to [0, 1].
double busy_fraction(double observed, double duration_s, double dead_time_s);

}  // namespace medsen::dsp
