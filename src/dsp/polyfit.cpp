#include "dsp/polyfit.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace medsen::dsp {

namespace {

/// Solve the dense linear system A x = b in place (partial pivoting).
std::vector<double> solve(std::vector<std::vector<double>> a,
                          std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    // Pivot
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row)
      if (std::fabs(a[row][col]) > std::fabs(a[pivot][col])) pivot = row;
    if (std::fabs(a[pivot][col]) < 1e-12)
      throw std::runtime_error("polyfit: singular normal equations");
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    // Eliminate
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row][col] / a[col][col];
      for (std::size_t k = col; k < n; ++k) a[row][k] -= factor * a[col][k];
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t k = i + 1; k < n; ++k) acc -= a[i][k] * x[k];
    x[i] = acc / a[i][i];
  }
  return x;
}

}  // namespace

Polynomial polyfit(std::span<const double> xs, std::span<const double> ys,
                   unsigned degree) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("polyfit: xs/ys size mismatch");
  const std::size_t n = xs.size();
  const std::size_t m = degree + 1;
  if (n < m) throw std::invalid_argument("polyfit: too few points");

  // Normal equations: (V^T V) c = V^T y with Vandermonde V.
  // Accumulate power sums S_k = sum x^k for k in [0, 2*degree].
  std::vector<double> power_sums(2 * degree + 1, 0.0);
  std::vector<double> rhs(m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double xp = 1.0;
    for (std::size_t k = 0; k < power_sums.size(); ++k) {
      power_sums[k] += xp;
      if (k < m) rhs[k] += xp * ys[i];
      xp *= xs[i];
    }
  }
  std::vector<std::vector<double>> a(m, std::vector<double>(m));
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t c = 0; c < m; ++c) a[r][c] = power_sums[r + c];
  return solve(std::move(a), std::move(rhs));
}

Polynomial polyfit(std::span<const double> ys, unsigned degree) {
  std::vector<double> xs(ys.size());
  std::iota(xs.begin(), xs.end(), 0.0);
  return polyfit(xs, ys, degree);
}

double polyval(const Polynomial& coeffs, double x) {
  double acc = 0.0;
  for (std::size_t i = coeffs.size(); i-- > 0;) acc = acc * x + coeffs[i];
  return acc;
}

std::vector<double> polyval_indices(const Polynomial& coeffs, std::size_t n) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = polyval(coeffs, static_cast<double>(i));
  return out;
}

}  // namespace medsen::dsp
