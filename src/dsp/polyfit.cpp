#include "dsp/polyfit.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace medsen::dsp {

namespace {

/// Solve the dense m-by-m system A x = b in place (partial pivoting).
/// `a` is row-major m*m; `b` and `x` hold m values. `x` may alias `b`.
void solve_inplace(double* a, double* b, std::size_t m, double* x) {
  for (std::size_t col = 0; col < m; ++col) {
    // Pivot
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < m; ++row)
      if (std::fabs(a[row * m + col]) > std::fabs(a[pivot * m + col]))
        pivot = row;
    if (std::fabs(a[pivot * m + col]) < 1e-12)
      throw std::runtime_error("polyfit: singular normal equations");
    if (pivot != col) {
      std::swap_ranges(a + col * m, a + (col + 1) * m, a + pivot * m);
      std::swap(b[col], b[pivot]);
    }
    // Eliminate
    for (std::size_t row = col + 1; row < m; ++row) {
      const double factor = a[row * m + col] / a[col * m + col];
      for (std::size_t k = col; k < m; ++k)
        a[row * m + k] -= factor * a[col * m + k];
      b[row] -= factor * b[col];
    }
  }
  for (std::size_t i = m; i-- > 0;) {
    double acc = b[i];
    for (std::size_t k = i + 1; k < m; ++k) acc -= a[i * m + k] * x[k];
    x[i] = acc / a[i * m + i];
  }
}

}  // namespace

Polynomial polyfit(std::span<const double> xs, std::span<const double> ys,
                   unsigned degree) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("polyfit: xs/ys size mismatch");
  const std::size_t n = xs.size();
  const std::size_t m = degree + 1;
  if (n < m) throw std::invalid_argument("polyfit: too few points");

  // Normal equations: (V^T V) c = V^T y with Vandermonde V.
  // Accumulate power sums S_k = sum x^k for k in [0, 2*degree].
  std::vector<double> power_sums(2 * degree + 1, 0.0);
  std::vector<double> rhs(m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double xp = 1.0;
    for (std::size_t k = 0; k < power_sums.size(); ++k) {
      power_sums[k] += xp;
      if (k < m) rhs[k] += xp * ys[i];
      xp *= xs[i];
    }
  }
  std::vector<double> a(m * m);
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t c = 0; c < m; ++c) a[r * m + c] = power_sums[r + c];
  Polynomial coeffs(m);
  solve_inplace(a.data(), rhs.data(), m, coeffs.data());
  return coeffs;
}

namespace {

/// Generic power-sum accumulation (any degree): rolling xp = x^k with the
/// per-k `k < m` branch. The degree-2 fast path below reproduces exactly
/// this operation order.
void accumulate_power_sums(std::span<const double> ys, std::size_t m,
                           PolyfitScratch& scratch) {
  for (std::size_t i = 0; i < ys.size(); ++i) {
    const double x = static_cast<double>(i);
    double xp = 1.0;
    for (std::size_t k = 0; k < scratch.power_sums.size(); ++k) {
      scratch.power_sums[k] += xp;
      if (k < m) scratch.rhs[k] += xp * ys[i];
      xp *= x;
    }
  }
}

/// Degree-2 hot-path accumulator: the detrend loop fits one quadratic
/// per 2048-sample window over million-sample acquisitions, so the five
/// power sums and three right-hand sides live in registers and the body
/// carries no per-iteration branch or indexed store. Each x^k is built
/// by the same successive multiplications as the rolling-xp loop
/// (x2 = x*x, x3 = x2*x, ...), so the sums are bit-identical to
/// accumulate_power_sums.
void accumulate_power_sums_deg2(std::span<const double> ys,
                                PolyfitScratch& scratch) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0, s4 = 0.0;
  double r0 = 0.0, r1 = 0.0, r2 = 0.0;
  for (std::size_t i = 0; i < ys.size(); ++i) {
    const double x = static_cast<double>(i);
    const double y = ys[i];
    const double x2 = x * x;
    const double x3 = x2 * x;
    const double x4 = x3 * x;
    s0 += 1.0;
    s1 += x;
    s2 += x2;
    s3 += x3;
    s4 += x4;
    r0 += y;
    r1 += x * y;
    r2 += x2 * y;
  }
  scratch.power_sums[0] = s0;
  scratch.power_sums[1] = s1;
  scratch.power_sums[2] = s2;
  scratch.power_sums[3] = s3;
  scratch.power_sums[4] = s4;
  scratch.rhs[0] = r0;
  scratch.rhs[1] = r1;
  scratch.rhs[2] = r2;
}

std::span<const double> solve_normal_equations(std::size_t m,
                                               PolyfitScratch& scratch) {
  scratch.matrix.resize(m * m);
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t c = 0; c < m; ++c)
      scratch.matrix[r * m + c] = scratch.power_sums[r + c];
  scratch.coeffs.resize(m);
  solve_inplace(scratch.matrix.data(), scratch.rhs.data(), m,
                scratch.coeffs.data());
  return {scratch.coeffs.data(), m};
}

}  // namespace

std::span<const double> polyfit_indices(std::span<const double> ys,
                                        unsigned degree,
                                        PolyfitScratch& scratch) {
  const std::size_t n = ys.size();
  const std::size_t m = degree + 1;
  if (n < m) throw std::invalid_argument("polyfit: too few points");

  scratch.power_sums.assign(2 * degree + 1, 0.0);
  scratch.rhs.assign(m, 0.0);
  if (degree == 2)
    accumulate_power_sums_deg2(ys, scratch);
  else
    accumulate_power_sums(ys, m, scratch);
  return solve_normal_equations(m, scratch);
}

std::span<const double> polyfit_indices_reference(std::span<const double> ys,
                                                  unsigned degree,
                                                  PolyfitScratch& scratch) {
  const std::size_t n = ys.size();
  const std::size_t m = degree + 1;
  if (n < m) throw std::invalid_argument("polyfit: too few points");

  scratch.power_sums.assign(2 * degree + 1, 0.0);
  scratch.rhs.assign(m, 0.0);
  accumulate_power_sums(ys, m, scratch);
  return solve_normal_equations(m, scratch);
}

Polynomial polyfit(std::span<const double> ys, unsigned degree) {
  PolyfitScratch scratch;
  const auto coeffs = polyfit_indices(ys, degree, scratch);
  return Polynomial(coeffs.begin(), coeffs.end());
}

double polyval(std::span<const double> coeffs, double x) {
  double acc = 0.0;
  for (std::size_t i = coeffs.size(); i-- > 0;) acc = acc * x + coeffs[i];
  return acc;
}

std::vector<double> polyval_indices(std::span<const double> coeffs,
                                    std::size_t n) {
  std::vector<double> out(n);
  polyval_indices_into(coeffs, out);
  return out;
}

void polyval_indices_into(std::span<const double> coeffs,
                          std::span<double> out) {
  if (coeffs.size() == 3) {
    // Quadratic fast path (the detrend baseline evaluation): indices are
    // independent, the coefficients live in registers, and the loop body
    // is the same Horner order as polyval — bit-identical, but the
    // branch-free form auto-vectorizes across i.
    const double c0 = coeffs[0], c1 = coeffs[1], c2 = coeffs[2];
    for (std::size_t i = 0; i < out.size(); ++i) {
      const double x = static_cast<double>(i);
      out[i] = (c2 * x + c1) * x + c0;
    }
    return;
  }
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = polyval(coeffs, static_cast<double>(i));
}

}  // namespace medsen::dsp
