#include "dsp/peak_detect.h"

#include <algorithm>

namespace medsen::dsp {

namespace {

using Region = PeakDetectScratch::Region;

/// Local maxima of depth within [begin, end), plateau-tolerant.
std::vector<std::size_t> local_maxima(std::span<const double> depth,
                                      std::size_t begin, std::size_t end) {
  std::vector<std::size_t> maxima;
  for (std::size_t i = begin; i < end; ++i) {
    const bool rising = (i == begin) || depth[i] > depth[i - 1];
    const bool falling = (i + 1 == end) || depth[i] >= depth[i + 1];
    if (rising && falling) maxima.push_back(i);
  }
  if (maxima.empty()) {
    // Monotone region (can happen at signal edges): keep the deepest.
    std::size_t best = begin;
    for (std::size_t i = begin; i < end; ++i)
      if (depth[i] > depth[best]) best = i;
    maxima.push_back(best);
  }
  return maxima;
}

/// Valley (minimum depth) position between two indices.
std::size_t valley_between(std::span<const double> depth, std::size_t a,
                           std::size_t b) {
  std::size_t v = a;
  for (std::size_t i = a; i <= b; ++i)
    if (depth[i] < depth[v]) v = i;
  return v;
}

/// Sub-sample valley position via parabolic interpolation around the
/// discrete minimum — keeps interior peak widths from being quantized to
/// whole samples.
double valley_position(std::span<const double> depth, std::size_t v) {
  if (v == 0 || v + 1 >= depth.size()) return static_cast<double>(v);
  const double a = depth[v - 1], b = depth[v], c = depth[v + 1];
  const double denom = a - 2.0 * b + c;
  if (denom <= 1e-15) return static_cast<double>(v);
  const double shift = 0.5 * (a - c) / denom;
  return static_cast<double>(v) + std::clamp(shift, -0.5, 0.5);
}

/// Merge maxima whose separating valley is too shallow (noise-born
/// double-maxima on one physical peak).
std::vector<std::size_t> prune_maxima(std::span<const double> depth,
                                      std::vector<std::size_t> maxima,
                                      double split_ratio) {
  bool changed = true;
  while (changed && maxima.size() > 1) {
    changed = false;
    double worst_ratio = split_ratio;
    std::size_t worst_pair = maxima.size();
    for (std::size_t k = 0; k + 1 < maxima.size(); ++k) {
      const std::size_t v = valley_between(depth, maxima[k], maxima[k + 1]);
      const double smaller = std::min(depth[maxima[k]], depth[maxima[k + 1]]);
      if (smaller <= 0.0) {
        worst_pair = k;
        worst_ratio = 1.0;
        break;
      }
      const double ratio = depth[v] / smaller;
      if (ratio >= worst_ratio) {
        worst_ratio = ratio;
        worst_pair = k;
      }
    }
    if (worst_pair < maxima.size()) {
      // Merge: drop the smaller of the two maxima.
      if (depth[maxima[worst_pair]] < depth[maxima[worst_pair + 1]])
        maxima.erase(maxima.begin() + static_cast<long>(worst_pair));
      else
        maxima.erase(maxima.begin() + static_cast<long>(worst_pair) + 1);
      changed = true;
    }
  }
  return maxima;
}

}  // namespace

std::vector<Peak> detect_peaks(std::span<const double> detrended,
                               double sample_rate_hz, double start_time_s,
                               const PeakDetectConfig& config) {
  PeakDetectScratch scratch;
  return detect_peaks(detrended, sample_rate_hz, start_time_s, config,
                      scratch);
}

std::vector<Peak> detect_peaks(std::span<const double> detrended,
                               double sample_rate_hz, double start_time_s,
                               const PeakDetectConfig& config,
                               PeakDetectScratch& scratch) {
  std::vector<Peak> peaks;
  const std::size_t n = detrended.size();
  if (n == 0) return peaks;

  // Depth pass: contiguous, branch-free, vectorizes. Reuses the scratch
  // buffer so a repeated analysis loop pays no O(n) allocation here.
  scratch.depth.resize(n);
  std::span<const double> depth(scratch.depth.data(), n);
  for (std::size_t i = 0; i < n; ++i)
    scratch.depth[i] = 1.0 - detrended[i];

  // Contiguous regions where the depth exceeds the threshold.
  std::vector<Region>& regions = scratch.regions;
  regions.clear();
  bool in_region = false;
  std::size_t region_start = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool above = depth[i] >= config.threshold;
    if (above && !in_region) {
      in_region = true;
      region_start = i;
    } else if (!above && in_region) {
      in_region = false;
      regions.push_back({region_start, i});
    }
  }
  if (in_region) regions.push_back({region_start, n});

  // Merge regions separated by small gaps (single noisy samples splitting
  // one physical transit into two).
  std::vector<Region>& merged = scratch.merged;
  merged.clear();
  for (const Region& r : regions) {
    if (!merged.empty() && r.begin - merged.back().end <= config.merge_gap) {
      merged.back().end = r.end;
    } else {
      merged.push_back(r);
    }
  }

  for (const Region& r : merged) {
    if (r.end - r.begin < config.min_width) continue;

    // Split multi-electrode trains at significant interior valleys.
    auto maxima = prune_maxima(
        depth, local_maxima(depth, r.begin, r.end), config.valley_split_ratio);

    // Interior boundaries at the valleys between surviving maxima.
    std::vector<double> bounds;  // fractional sample positions
    // Left outer boundary: interpolated threshold crossing.
    double left = static_cast<double>(r.begin);
    if (r.begin > 0 && depth[r.begin] > depth[r.begin - 1]) {
      left -= 1.0 - (config.threshold - depth[r.begin - 1]) /
                        (depth[r.begin] - depth[r.begin - 1]);
    }
    bounds.push_back(left);
    for (std::size_t k = 0; k + 1 < maxima.size(); ++k)
      bounds.push_back(valley_position(
          depth, valley_between(depth, maxima[k], maxima[k + 1])));
    double right = static_cast<double>(r.end - 1);
    if (r.end < n && depth[r.end - 1] > depth[r.end]) {
      right += 1.0 - (config.threshold - depth[r.end]) /
                         (depth[r.end - 1] - depth[r.end]);
    } else {
      right = static_cast<double>(r.end);
    }
    bounds.push_back(right);

    for (std::size_t k = 0; k < maxima.size(); ++k) {
      Peak p;
      p.index = maxima[k];
      p.time_s =
          start_time_s + static_cast<double>(maxima[k]) / sample_rate_hz;
      p.amplitude = depth[maxima[k]];
      p.width_s = std::max(bounds[k + 1] - bounds[k], 1.0) / sample_rate_hz;
      peaks.push_back(p);
    }
  }
  return peaks;
}

std::vector<Peak> detect_peaks(const util::TimeSeries& detrended,
                               const PeakDetectConfig& config) {
  return detect_peaks(detrended.samples(), detrended.sample_rate(),
                      detrended.start_time(), config);
}

}  // namespace medsen::dsp
