#include "dsp/filters.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace medsen::dsp {

SinglePoleLowPass::SinglePoleLowPass(double cutoff_hz, double sample_rate_hz) {
  if (cutoff_hz <= 0.0 || cutoff_hz >= sample_rate_hz / 2.0)
    throw std::invalid_argument("SinglePoleLowPass: bad cutoff");
  const double rc = 1.0 / (2.0 * std::numbers::pi * cutoff_hz);
  const double dt = 1.0 / sample_rate_hz;
  alpha_ = dt / (rc + dt);
}

double SinglePoleLowPass::step(double x) {
  if (!primed_) {
    state_ = x;
    primed_ = true;
  } else {
    state_ += alpha_ * (x - state_);
  }
  return state_;
}

void SinglePoleLowPass::reset(double initial) {
  state_ = initial;
  primed_ = false;
}

std::vector<double> SinglePoleLowPass::apply(std::span<const double> xs) {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(step(x));
  return out;
}

ButterworthLowPass2::ButterworthLowPass2(double cutoff_hz,
                                         double sample_rate_hz) {
  if (cutoff_hz <= 0.0 || cutoff_hz >= sample_rate_hz / 2.0)
    throw std::invalid_argument("ButterworthLowPass2: bad cutoff");
  const double k = std::tan(std::numbers::pi * cutoff_hz / sample_rate_hz);
  const double sqrt2 = std::numbers::sqrt2;
  const double norm = 1.0 / (1.0 + sqrt2 * k + k * k);
  b0_ = k * k * norm;
  b1_ = 2.0 * b0_;
  b2_ = b0_;
  a1_ = 2.0 * (k * k - 1.0) * norm;
  a2_ = (1.0 - sqrt2 * k + k * k) * norm;
}

double ButterworthLowPass2::step(double x) {
  // Transposed direct form II.
  const double y = b0_ * x + z1_;
  z1_ = b1_ * x - a1_ * y + z2_;
  z2_ = b2_ * x - a2_ * y;
  return y;
}

void ButterworthLowPass2::reset() { z1_ = z2_ = 0.0; }

std::vector<double> ButterworthLowPass2::apply(std::span<const double> xs) {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(step(x));
  return out;
}

std::vector<double> moving_average(std::span<const double> xs,
                                   std::size_t window) {
  const std::size_t n = xs.size();
  std::vector<double> out(n, 0.0);
  if (n == 0 || window == 0) return out;
  const std::size_t half = window / 2;
  // Prefix sums for O(n).
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + xs[i];
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(i + half + 1, n);
    out[i] = (prefix[hi] - prefix[lo]) / static_cast<double>(hi - lo);
  }
  return out;
}

std::vector<double> decimate(std::span<const double> xs, std::size_t factor) {
  if (factor == 0) throw std::invalid_argument("decimate: factor must be > 0");
  std::vector<double> out;
  out.reserve(xs.size() / factor + 1);
  for (std::size_t i = 0; i < xs.size(); i += factor) out.push_back(xs[i]);
  return out;
}

}  // namespace medsen::dsp
