#include "dsp/filters.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace medsen::dsp {

SinglePoleLowPass::SinglePoleLowPass(double cutoff_hz, double sample_rate_hz) {
  if (cutoff_hz <= 0.0 || cutoff_hz >= sample_rate_hz / 2.0)
    throw std::invalid_argument("SinglePoleLowPass: bad cutoff");
  const double rc = 1.0 / (2.0 * std::numbers::pi * cutoff_hz);
  const double dt = 1.0 / sample_rate_hz;
  alpha_ = dt / (rc + dt);
}

double SinglePoleLowPass::step(double x) {
  if (!primed_) {
    state_ = x;
    primed_ = true;
  } else {
    state_ += alpha_ * (x - state_);
  }
  return state_;
}

void SinglePoleLowPass::reset() {
  state_ = 0.0;
  primed_ = false;
}

void SinglePoleLowPass::reset(double initial) {
  state_ = initial;
  primed_ = true;
}

std::vector<double> SinglePoleLowPass::apply(std::span<const double> xs) {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(step(x));
  return out;
}

BiquadCoeffs butterworth2_design(double cutoff_hz, double sample_rate_hz) {
  if (cutoff_hz <= 0.0 || cutoff_hz >= sample_rate_hz / 2.0)
    throw std::invalid_argument("ButterworthLowPass2: bad cutoff");
  const double k = std::tan(std::numbers::pi * cutoff_hz / sample_rate_hz);
  const double sqrt2 = std::numbers::sqrt2;
  const double norm = 1.0 / (1.0 + sqrt2 * k + k * k);
  BiquadCoeffs coeffs{};
  coeffs.b0 = k * k * norm;
  coeffs.b1 = 2.0 * coeffs.b0;
  coeffs.b2 = coeffs.b0;
  coeffs.a1 = 2.0 * (k * k - 1.0) * norm;
  coeffs.a2 = (1.0 - sqrt2 * k + k * k) * norm;
  return coeffs;
}

ButterworthLowPass2::ButterworthLowPass2(double cutoff_hz,
                                         double sample_rate_hz) {
  const BiquadCoeffs coeffs = butterworth2_design(cutoff_hz, sample_rate_hz);
  b0_ = coeffs.b0;
  b1_ = coeffs.b1;
  b2_ = coeffs.b2;
  a1_ = coeffs.a1;
  a2_ = coeffs.a2;
}

void ButterworthLowPass2::reset() { z1_ = z2_ = 0.0; }

void ButterworthLowPass2::reset(double dc) {
  // Exact DC steady state: with constant input dc the transposed DF-II
  // delay line settles at z1 = (1 - b0)*dc, z2 = (b2 - a2)*dc, so the
  // next step(dc) returns dc (up to one rounding) instead of ramping
  // through the start-up transient.
  z1_ = (1.0 - b0_) * dc;
  z2_ = (b2_ - a2_) * dc;
}

std::vector<double> ButterworthLowPass2::apply(std::span<const double> xs) {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(step(x));
  return out;
}

std::vector<double> moving_average(std::span<const double> xs,
                                   std::size_t window) {
  if (window % 2 == 0)
    throw std::invalid_argument(
        "moving_average: window must be odd (centered kernel)");
  const std::size_t n = xs.size();
  std::vector<double> out(n, 0.0);
  if (n == 0) return out;
  const std::size_t half = window / 2;
  // Prefix sums for O(n).
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + xs[i];
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(i + half + 1, n);
    out[i] = (prefix[hi] - prefix[lo]) / static_cast<double>(hi - lo);
  }
  return out;
}

std::vector<double> decimate(std::span<const double> xs, std::size_t factor) {
  if (factor == 0) throw std::invalid_argument("decimate: factor must be > 0");
  std::vector<double> out;
  out.reserve(xs.size() / factor + 1);
  for (std::size_t i = 0; i < xs.size(); i += factor) out.push_back(xs[i]);
  return out;
}

}  // namespace medsen::dsp
