#include "dsp/oscillator.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace medsen::dsp {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}  // namespace

PhaseOscillator::PhaseOscillator(double freq_hz, double sample_rate_hz,
                                 double initial_phase) {
  if (sample_rate_hz <= 0.0 || freq_hz < 0.0 || freq_hz >= sample_rate_hz)
    throw std::invalid_argument("PhaseOscillator: bad frequency/rate");
  dphi_ = kTwoPi * freq_hz / sample_rate_hz;
  sd_ = std::sin(dphi_);
  cd_ = std::cos(dphi_);
  reset(initial_phase);
}

void PhaseOscillator::reset(double initial_phase) {
  phase_ = std::fmod(initial_phase, kTwoPi);
  if (phase_ < 0.0) phase_ += kTwoPi;
  s_ = std::sin(phase_);
  c_ = std::cos(phase_);
  since_resync_ = 0;
}

void PhaseOscillator::advance() {
  const double s = s_, c = c_;
  s_ = s * cd_ + c * sd_;
  c_ = c * cd_ - s * sd_;
  phase_ += dphi_;
  if (phase_ >= kTwoPi) phase_ -= kTwoPi;
  if (++since_resync_ == kResyncInterval) {
    s_ = std::sin(phase_);
    c_ = std::cos(phase_);
    since_resync_ = 0;
  }
}

void PhaseOscillator::fill(std::span<double> sin_out,
                           std::span<double> cos_out) {
  if (sin_out.size() != cos_out.size())
    throw std::invalid_argument("PhaseOscillator::fill: size mismatch");
  for (std::size_t i = 0; i < sin_out.size(); ++i) {
    sin_out[i] = s_;
    cos_out[i] = c_;
    advance();
  }
}

}  // namespace medsen::dsp
