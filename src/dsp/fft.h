#pragma once
// Radix-2 FFT and spectral helpers. Used for signal-quality diagnostics
// (noise-floor estimation after detrending) and by the spectral
// periodicity check that quantifies how strongly an electrode-key pattern
// leaks a periodic train signature.

#include <complex>
#include <span>
#include <vector>

namespace medsen::dsp {

/// In-place iterative radix-2 FFT. Size must be a power of two.
void fft(std::vector<std::complex<double>>& data);

/// Inverse FFT (normalized by 1/N).
void ifft(std::vector<std::complex<double>>& data);

/// Forward FFT of a real signal, zero-padded to the next power of two.
std::vector<std::complex<double>> fft_real(std::span<const double> xs);

/// One-sided power spectrum |X_k|^2 / N for k = 0..N/2 of a real signal
/// (zero-padded to a power of two).
std::vector<double> power_spectrum(std::span<const double> xs);

/// Frequency (Hz) of spectrum bin k for a given transform size and rate.
double bin_frequency(std::size_t k, std::size_t fft_size,
                     double sample_rate_hz);

/// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// Spectral flatness of the non-DC half spectrum: geometric mean /
/// arithmetic mean, in (0, 1]. White noise -> ~1; a strong periodicity
/// (e.g. a flat peak train) -> near 0.
double spectral_flatness(std::span<const double> xs);

}  // namespace medsen::dsp
