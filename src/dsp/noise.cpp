#include "dsp/noise.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace medsen::dsp {

double estimate_noise_rms(std::span<const double> xs) {
  if (xs.size() < 3) return 0.0;
  std::vector<double> diffs;
  diffs.reserve(xs.size() - 1);
  for (std::size_t i = 1; i < xs.size(); ++i)
    diffs.push_back(std::fabs(xs[i] - xs[i - 1]));
  const std::size_t mid = diffs.size() / 2;
  std::nth_element(diffs.begin(), diffs.begin() + static_cast<long>(mid),
                   diffs.end());
  const double median_abs_diff = diffs[mid];
  // For white Gaussian noise, |x[i]-x[i-1]| has median
  // sigma * sqrt(2) * Phi^-1(0.75) ~= sigma * 0.9539... * sqrt(2).
  constexpr double kMedianToSigma = 1.0 / (0.6744897501960817 * 1.4142135623730951);
  return median_abs_diff * kMedianToSigma;
}

double adaptive_threshold(std::span<const double> xs, double k_sigma,
                          double min_threshold, double max_threshold) {
  const double sigma = estimate_noise_rms(xs);
  return std::clamp(k_sigma * sigma, min_threshold, max_threshold);
}

}  // namespace medsen::dsp
