#include "dsp/classify.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace medsen::dsp {

void NearestCentroidClassifier::fit(std::span<const LabeledPoint> data,
                                    std::size_t num_classes) {
  if (data.empty()) throw std::invalid_argument("fit: empty training data");
  const std::size_t dim = data.front().features.size();
  centroids_.assign(num_classes, FeatureVector(dim, 0.0));
  std::vector<std::size_t> counts(num_classes, 0);
  for (const auto& p : data) {
    if (p.label >= num_classes)
      throw std::invalid_argument("fit: label out of range");
    if (p.features.size() != dim)
      throw std::invalid_argument("fit: inconsistent dimensionality");
    for (std::size_t d = 0; d < dim; ++d)
      centroids_[p.label][d] += p.features[d];
    ++counts[p.label];
  }
  for (std::size_t c = 0; c < num_classes; ++c) {
    if (counts[c] == 0)
      throw std::invalid_argument("fit: class with no examples");
    for (double& v : centroids_[c]) v /= static_cast<double>(counts[c]);
  }
}

std::size_t NearestCentroidClassifier::predict(const FeatureVector& x) const {
  if (centroids_.empty()) throw std::logic_error("predict before fit");
  double best = std::numeric_limits<double>::max();
  std::size_t best_c = 0;
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    const double d = squared_distance(x, centroids_[c]);
    if (d < best) {
      best = d;
      best_c = c;
    }
  }
  return best_c;
}

double NearestCentroidClassifier::margin(const FeatureVector& x) const {
  if (centroids_.size() < 2) return 1.0;
  double d1 = std::numeric_limits<double>::max();
  double d2 = std::numeric_limits<double>::max();
  for (const auto& c : centroids_) {
    const double d = squared_distance(x, c);
    if (d < d1) {
      d2 = d1;
      d1 = d;
    } else if (d < d2) {
      d2 = d;
    }
  }
  if (d2 <= 0.0) return 0.0;
  return (std::sqrt(d2) - std::sqrt(d1)) / std::sqrt(d2);
}

void KnnClassifier::fit(std::span<const LabeledPoint> data,
                        std::size_t num_classes) {
  if (data.empty()) throw std::invalid_argument("fit: empty training data");
  train_.assign(data.begin(), data.end());
  num_classes_ = num_classes;
}

std::size_t KnnClassifier::predict(const FeatureVector& x) const {
  if (train_.empty()) throw std::logic_error("predict before fit");
  const std::size_t k = std::min(k_, train_.size());
  // Partial sort of distances.
  std::vector<std::pair<double, std::size_t>> dist;
  dist.reserve(train_.size());
  for (const auto& p : train_)
    dist.emplace_back(squared_distance(x, p.features), p.label);
  std::partial_sort(dist.begin(), dist.begin() + static_cast<long>(k),
                    dist.end());
  std::vector<std::size_t> votes(num_classes_, 0);
  for (std::size_t i = 0; i < k; ++i) ++votes[dist[i].second];
  return static_cast<std::size_t>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

std::size_t ConfusionMatrix::total() const {
  std::size_t n = 0;
  for (const auto& row : counts)
    for (std::size_t v : row) n += v;
  return n;
}

double ConfusionMatrix::accuracy() const {
  const std::size_t n = total();
  if (n == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) correct += counts[i][i];
  return static_cast<double>(correct) / static_cast<double>(n);
}

std::string ConfusionMatrix::to_string() const {
  std::ostringstream out;
  for (const auto& row : counts) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << '\t';
      out << row[i];
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace medsen::dsp
