#pragma once
// k-means clustering (Lloyd's algorithm with k-means++ seeding). The cloud
// service clusters peak feature vectors (multi-frequency amplitudes, Fig. 16)
// to separate synthetic password beads from blood cells.

#include <cstdint>
#include <span>
#include <vector>

namespace medsen::dsp {

/// A point in feature space.
using FeatureVector = std::vector<double>;

struct KMeansResult {
  std::vector<FeatureVector> centroids;
  std::vector<std::size_t> assignment;  ///< cluster index per input point
  double inertia = 0.0;                 ///< sum of squared distances
  unsigned iterations = 0;
};

struct KMeansConfig {
  unsigned max_iterations = 100;
  double tolerance = 1e-8;   ///< stop when centroid movement is below this
  std::uint64_t seed = 42;   ///< k-means++ seeding RNG
};

/// Cluster `points` into k groups. Requires k >= 1 and points.size() >= k;
/// all points must share the same dimensionality.
KMeansResult kmeans(std::span<const FeatureVector> points, std::size_t k,
                    const KMeansConfig& config = {});

/// Squared Euclidean distance between equal-length vectors.
double squared_distance(const FeatureVector& a, const FeatureVector& b);

}  // namespace medsen::dsp
