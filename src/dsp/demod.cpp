#include "dsp/demod.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace medsen::dsp {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Samples per batch block: long enough that the vector passes amortize
/// the loop bookkeeping, short enough that the mix scratch stays in L1.
constexpr std::size_t kBlock = 2048;

/// Validate the carrier before any member construction so the thrown
/// error is the documented Nyquist one even when the cutoff is also bad.
double checked_carrier(double carrier_hz, double sample_rate_hz) {
  if (carrier_hz <= 0.0 || carrier_hz >= sample_rate_hz / 2.0)
    throw std::invalid_argument(
        "QuadratureDemodulator: carrier violates Nyquist");
  return carrier_hz;
}

}  // namespace

QuadratureDemodulator::QuadratureDemodulator(double carrier_hz,
                                             double sample_rate_hz,
                                             double lowpass_cutoff_hz)
    : carrier_hz_(checked_carrier(carrier_hz, sample_rate_hz)),
      sample_rate_hz_(sample_rate_hz),
      osc_(carrier_hz, sample_rate_hz),
      lpf_i_(lowpass_cutoff_hz, sample_rate_hz),
      lpf_q_(lowpass_cutoff_hz, sample_rate_hz) {}

double QuadratureDemodulator::step(double x) {
  const double s = osc_.sin_value();
  const double c = osc_.cos_value();
  osc_.advance();
  const double i = lpf_i_.step(x * s);
  const double q = lpf_q_.step(x * c);
  // Mixing halves the envelope; restore with the factor 2.
  return 2.0 * std::sqrt(i * i + q * q);
}

void QuadratureDemodulator::demod_into(std::span<const double> xs,
                                       std::span<double> out) {
  if (out.size() != xs.size())
    throw std::invalid_argument("demod_into: output size mismatch");
  mix_i_.resize(kBlock);
  mix_q_.resize(kBlock);
  for (std::size_t base = 0; base < xs.size(); base += kBlock) {
    const std::size_t len = std::min(kBlock, xs.size() - base);
    const std::span<double> ib(mix_i_.data(), len);
    const std::span<double> qb(mix_q_.data(), len);
    // Reference carriers for the block — recurrence, no per-sample trig.
    osc_.fill(ib, qb);
    // Mix (vectorizes: contiguous, no branches).
    for (std::size_t j = 0; j < len; ++j) ib[j] *= xs[base + j];
    for (std::size_t j = 0; j < len; ++j) qb[j] *= xs[base + j];
    // The two low-pass recurrences are serial but register-resident.
    lpf_i_.step_buffer(ib);
    lpf_q_.step_buffer(qb);
    // Magnitude (vectorizes).
    for (std::size_t j = 0; j < len; ++j)
      out[base + j] = 2.0 * std::sqrt(ib[j] * ib[j] + qb[j] * qb[j]);
  }
}

std::vector<double> QuadratureDemodulator::apply(std::span<const double> xs) {
  std::vector<double> out(xs.size());
  demod_into(xs, out);
  return out;
}

void QuadratureDemodulator::reset() {
  osc_.reset();
  lpf_i_.reset();
  lpf_q_.reset();
}

MultiCarrierDemodulator::MultiCarrierDemodulator(
    std::span<const double> carriers_hz, double sample_rate_hz,
    double lowpass_cutoff_hz)
    : sample_rate_hz_(sample_rate_hz),
      lpf_(butterworth2_design(lowpass_cutoff_hz, sample_rate_hz)),
      carriers_hz_(carriers_hz.begin(), carriers_hz.end()) {
  if (carriers_hz_.empty())
    throw std::invalid_argument("MultiCarrierDemodulator: no carriers");
  const std::size_t n = carriers_hz_.size();
  dphi_.resize(n);
  sd_.resize(n);
  cd_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    checked_carrier(carriers_hz_[k], sample_rate_hz);
    dphi_[k] = kTwoPi * carriers_hz_[k] / sample_rate_hz;
    // Construction-time only, once per carrier — not per sample.
    sd_[k] = std::sin(dphi_[k]);  // medsen-lint: allow(dsp-transcendental)
    cd_[k] = std::cos(dphi_[k]);  // medsen-lint: allow(dsp-transcendental)
  }
  phase_.resize(n);
  s_.resize(n);
  c_.resize(n);
  z1i_.resize(n);
  z2i_.resize(n);
  z1q_.resize(n);
  z2q_.resize(n);
  row_i_.resize(n);
  row_q_.resize(n);
  reset();
}

void MultiCarrierDemodulator::reset() {
  for (std::size_t k = 0; k < carriers(); ++k) {
    phase_[k] = 0.0;
    s_[k] = 0.0;
    c_[k] = 1.0;
    z1i_[k] = z2i_[k] = z1q_[k] = z2q_[k] = 0.0;
  }
  since_resync_ = 0;
}

void MultiCarrierDemodulator::resync() {
  // Block-cadence trig (every kResyncInterval samples), matching
  // PhaseOscillator so each carrier stays bit-identical to a standalone
  // QuadratureDemodulator.
  for (std::size_t k = 0; k < carriers(); ++k) {
    s_[k] = std::sin(phase_[k]);  // medsen-lint: allow(dsp-transcendental)
    c_[k] = std::cos(phase_[k]);  // medsen-lint: allow(dsp-transcendental)
  }
}

void MultiCarrierDemodulator::demod_into(std::span<const double> xs,
                                         std::span<double> out) {
  const std::size_t n = xs.size();
  const std::size_t nc = carriers();
  if (out.size() != n * nc)
    throw std::invalid_argument(
        "MultiCarrierDemodulator::demod_into: output size mismatch");
  const double b0 = lpf_.b0, b1 = lpf_.b1, b2 = lpf_.b2;
  const double a1 = lpf_.a1, a2 = lpf_.a2;
  double* const s = s_.data();
  double* const c = c_.data();
  double* const phase = phase_.data();
  const double* const sd = sd_.data();
  const double* const cd = cd_.data();
  const double* const dphi = dphi_.data();
  double* const z1i = z1i_.data();
  double* const z2i = z2i_.data();
  double* const z1q = z1q_.data();
  double* const z2q = z2q_.data();
  double* const row_i = row_i_.data();
  double* const row_q = row_q_.data();

  for (std::size_t i = 0; i < n; ++i) {
    const double x = xs[i];
    // One pass over the carrier lanes: mix, filter, rotate. Contiguous
    // SoA arrays, no branches — the whole body vectorizes across lanes.
    for (std::size_t k = 0; k < nc; ++k) {
      const double sv = s[k], cv = c[k];
      const double xi = x * sv;
      const double xq = x * cv;
      const double yi = b0 * xi + z1i[k];
      z1i[k] = b1 * xi - a1 * yi + z2i[k];
      z2i[k] = b2 * xi - a2 * yi;
      const double yq = b0 * xq + z1q[k];
      z1q[k] = b1 * xq - a1 * yq + z2q[k];
      z2q[k] = b2 * xq - a2 * yq;
      row_i[k] = yi;
      row_q[k] = yq;
      s[k] = sv * cd[k] + cv * sd[k];
      c[k] = cv * cd[k] - sv * sd[k];
      const double p = phase[k] + dphi[k];
      phase[k] = p >= kTwoPi ? p - kTwoPi : p;
    }
    // Magnitude into the carrier-major output planes.
    for (std::size_t k = 0; k < nc; ++k)
      out[k * n + i] =
          2.0 * std::sqrt(row_i[k] * row_i[k] + row_q[k] * row_q[k]);
    if (++since_resync_ == PhaseOscillator::kResyncInterval) {
      resync();
      since_resync_ = 0;
    }
  }
}

std::vector<double> modulate(std::span<const double> envelope,
                             double carrier_hz, double sample_rate_hz,
                             double phase) {
  PhaseOscillator osc(carrier_hz, sample_rate_hz, phase);
  std::vector<double> out;
  out.reserve(envelope.size());
  for (const double e : envelope) {
    out.push_back(e * osc.sin_value());
    osc.advance();
  }
  return out;
}

}  // namespace medsen::dsp
