#include "dsp/demod.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace medsen::dsp {

QuadratureDemodulator::QuadratureDemodulator(double carrier_hz,
                                             double sample_rate_hz,
                                             double lowpass_cutoff_hz)
    : carrier_hz_(carrier_hz),
      sample_rate_hz_(sample_rate_hz),
      lpf_i_(lowpass_cutoff_hz, sample_rate_hz),
      lpf_q_(lowpass_cutoff_hz, sample_rate_hz) {
  if (carrier_hz <= 0.0 || carrier_hz >= sample_rate_hz / 2.0)
    throw std::invalid_argument(
        "QuadratureDemodulator: carrier violates Nyquist");
}

double QuadratureDemodulator::step(double x) {
  const double phase = 2.0 * std::numbers::pi * carrier_hz_ *
                       static_cast<double>(n_) / sample_rate_hz_;
  ++n_;
  const double i = lpf_i_.step(x * std::sin(phase));
  const double q = lpf_q_.step(x * std::cos(phase));
  // Mixing halves the envelope; restore with the factor 2.
  return 2.0 * std::sqrt(i * i + q * q);
}

std::vector<double> QuadratureDemodulator::apply(std::span<const double> xs) {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(step(x));
  return out;
}

void QuadratureDemodulator::reset() {
  n_ = 0;
  lpf_i_.reset();
  lpf_q_.reset();
}

std::vector<double> modulate(std::span<const double> envelope,
                             double carrier_hz, double sample_rate_hz,
                             double phase) {
  std::vector<double> out;
  out.reserve(envelope.size());
  for (std::size_t n = 0; n < envelope.size(); ++n) {
    const double arg = 2.0 * std::numbers::pi * carrier_hz *
                           static_cast<double>(n) / sample_rate_hz +
                       phase;
    out.push_back(envelope[n] * std::sin(arg));
  }
  return out;
}

}  // namespace medsen::dsp
