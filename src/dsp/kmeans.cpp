#include "dsp/kmeans.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace medsen::dsp {

namespace {

/// SplitMix64 (Steele et al., "Fast splittable pseudorandom number
/// generators"). Seeding k-means++ needs statistical spread and
/// determinism, not cryptographic strength — the previous ChaCha-based
/// RNG made dsp depend on the crypto module, inverting the layering
/// (dsp may only see util). Same seed still yields the same clustering.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound) via Lemire rejection sampling (no modulo bias).
  std::uint32_t uniform(std::uint32_t bound) {
    if (bound == 0) return 0;
    const std::uint32_t threshold = (0u - bound) % bound;
    for (;;) {
      const std::uint64_t m =
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(next_u64())) *
          static_cast<std::uint64_t>(bound);
      if (static_cast<std::uint32_t>(m) >= threshold)
        return static_cast<std::uint32_t>(m >> 32);
    }
  }

  /// Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace

double squared_distance(const FeatureVector& a, const FeatureVector& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

KMeansResult kmeans(std::span<const FeatureVector> points, std::size_t k,
                    const KMeansConfig& config) {
  if (k == 0) throw std::invalid_argument("kmeans: k must be >= 1");
  if (points.size() < k)
    throw std::invalid_argument("kmeans: fewer points than clusters");
  const std::size_t dim = points.front().size();
  for (const auto& p : points)
    if (p.size() != dim)
      throw std::invalid_argument("kmeans: inconsistent dimensionality");

  SplitMix64 rng(config.seed);
  KMeansResult result;
  result.centroids.reserve(k);

  // k-means++ seeding.
  result.centroids.push_back(
      points[rng.uniform(static_cast<std::uint32_t>(points.size()))]);
  std::vector<double> dist2(points.size(),
                            std::numeric_limits<double>::max());
  while (result.centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      dist2[i] = std::min(dist2[i],
                          squared_distance(points[i], result.centroids.back()));
      total += dist2[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with a centroid; duplicate one.
      result.centroids.push_back(points.front());
      continue;
    }
    double target = rng.uniform_double() * total;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      target -= dist2[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    result.centroids.push_back(points[chosen]);
  }

  result.assignment.assign(points.size(), 0);
  for (unsigned iter = 0; iter < config.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::max();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d = squared_distance(points[i], result.centroids[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      result.assignment[i] = best_c;
    }
    // Update step.
    std::vector<FeatureVector> sums(k, FeatureVector(dim, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const std::size_t c = result.assignment[i];
      for (std::size_t d = 0; d < dim; ++d) sums[c][d] += points[i][d];
      ++counts[c];
    }
    double movement = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // keep empty cluster's old centroid
      FeatureVector next(dim);
      for (std::size_t d = 0; d < dim; ++d)
        next[d] = sums[c][d] / static_cast<double>(counts[c]);
      movement += squared_distance(next, result.centroids[c]);
      result.centroids[c] = std::move(next);
    }
    if (movement < config.tolerance) break;
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i)
    result.inertia +=
        squared_distance(points[i], result.centroids[result.assignment[i]]);
  return result;
}

}  // namespace medsen::dsp
