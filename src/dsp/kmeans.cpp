#include "dsp/kmeans.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "crypto/chacha20.h"

namespace medsen::dsp {

double squared_distance(const FeatureVector& a, const FeatureVector& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

KMeansResult kmeans(std::span<const FeatureVector> points, std::size_t k,
                    const KMeansConfig& config) {
  if (k == 0) throw std::invalid_argument("kmeans: k must be >= 1");
  if (points.size() < k)
    throw std::invalid_argument("kmeans: fewer points than clusters");
  const std::size_t dim = points.front().size();
  for (const auto& p : points)
    if (p.size() != dim)
      throw std::invalid_argument("kmeans: inconsistent dimensionality");

  crypto::ChaChaRng rng(config.seed);
  KMeansResult result;
  result.centroids.reserve(k);

  // k-means++ seeding.
  result.centroids.push_back(
      points[rng.uniform(static_cast<std::uint32_t>(points.size()))]);
  std::vector<double> dist2(points.size(),
                            std::numeric_limits<double>::max());
  while (result.centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      dist2[i] = std::min(dist2[i],
                          squared_distance(points[i], result.centroids.back()));
      total += dist2[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with a centroid; duplicate one.
      result.centroids.push_back(points.front());
      continue;
    }
    double target = rng.uniform_double() * total;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      target -= dist2[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    result.centroids.push_back(points[chosen]);
  }

  result.assignment.assign(points.size(), 0);
  for (unsigned iter = 0; iter < config.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::max();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d = squared_distance(points[i], result.centroids[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      result.assignment[i] = best_c;
    }
    // Update step.
    std::vector<FeatureVector> sums(k, FeatureVector(dim, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const std::size_t c = result.assignment[i];
      for (std::size_t d = 0; d < dim; ++d) sums[c][d] += points[i][d];
      ++counts[c];
    }
    double movement = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // keep empty cluster's old centroid
      FeatureVector next(dim);
      for (std::size_t d = 0; d < dim; ++d)
        next[d] = sums[c][d] / static_cast<double>(counts[c]);
      movement += squared_distance(next, result.centroids[c]);
      result.centroids[c] = std::move(next);
    }
    if (movement < config.tolerance) break;
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i)
    result.inertia +=
        squared_distance(points[i], result.centroids[result.assignment[i]]);
  return result;
}

}  // namespace medsen::dsp
