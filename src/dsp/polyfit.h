#pragma once
// Least-squares polynomial fitting. The cloud analysis service fits a
// second-order polynomial per signal window to track baseline drift
// (paper Section VI-C) before peak detection. The detrend hot path calls
// this once per 2048-sample window over million-sample acquisitions, so
// a scratch-buffer overload avoids per-window allocation entirely.

#include <span>
#include <vector>

namespace medsen::dsp {

/// Coefficients c[0] + c[1]*x + c[2]*x^2 + ... of a fitted polynomial.
using Polynomial = std::vector<double>;

/// Reusable workspace for polyfit_indices: power sums, the flattened
/// (degree+1)^2 row-major normal-equation matrix, right-hand side, and
/// the output coefficients. One instance per thread/task; reused across
/// windows without reallocating.
struct PolyfitScratch {
  std::vector<double> power_sums;
  std::vector<double> matrix;
  std::vector<double> rhs;
  std::vector<double> coeffs;
};

/// Fit a polynomial of the given degree to (xs, ys) by ordinary least
/// squares (normal equations + Gaussian elimination with partial
/// pivoting). Requires xs.size() == ys.size() and at least degree+1
/// points; throws std::invalid_argument otherwise.
Polynomial polyfit(std::span<const double> xs, std::span<const double> ys,
                   unsigned degree);

/// Convenience overload using x = 0, 1, 2, ... (sample index domain).
Polynomial polyfit(std::span<const double> ys, unsigned degree);

/// Allocation-free fit over the implicit index domain x = 0..ys.size()-1.
/// Returns a view of scratch.coeffs (degree+1 values), valid until the
/// scratch is next used. Identical arithmetic to polyfit(ys, degree).
/// Degree 2 — the paper's detrend order and the only degree on the hot
/// path — dispatches to an unrolled register-resident accumulator whose
/// operation order matches the generic loop exactly (bit-identical; see
/// polyfit_indices_reference and its golden test).
std::span<const double> polyfit_indices(std::span<const double> ys,
                                        unsigned degree,
                                        PolyfitScratch& scratch);

/// Scalar reference kernel: the generic power-sum loop for any degree,
/// with no fast-path dispatch. Kept so tests can pin the optimized
/// kernels bit-for-bit against it.
std::span<const double> polyfit_indices_reference(std::span<const double> ys,
                                                  unsigned degree,
                                                  PolyfitScratch& scratch);

/// Evaluate a polynomial at x (Horner's method).
double polyval(std::span<const double> coeffs, double x);

/// Evaluate at x = 0..n-1 into a vector.
std::vector<double> polyval_indices(std::span<const double> coeffs,
                                    std::size_t n);

/// Evaluate at x = 0..out.size()-1 into a caller-provided buffer
/// (Horner per index, no allocation).
void polyval_indices_into(std::span<const double> coeffs,
                          std::span<double> out);

}  // namespace medsen::dsp
