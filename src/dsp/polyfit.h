#pragma once
// Least-squares polynomial fitting. The cloud analysis service fits a
// second-order polynomial per signal window to track baseline drift
// (paper Section VI-C) before peak detection.

#include <span>
#include <vector>

namespace medsen::dsp {

/// Coefficients c[0] + c[1]*x + c[2]*x^2 + ... of a fitted polynomial.
using Polynomial = std::vector<double>;

/// Fit a polynomial of the given degree to (xs, ys) by ordinary least
/// squares (normal equations + Gaussian elimination with partial
/// pivoting). Requires xs.size() == ys.size() and at least degree+1
/// points; throws std::invalid_argument otherwise.
Polynomial polyfit(std::span<const double> xs, std::span<const double> ys,
                   unsigned degree);

/// Convenience overload using x = 0, 1, 2, ... (sample index domain).
Polynomial polyfit(std::span<const double> ys, unsigned degree);

/// Evaluate a polynomial at x (Horner's method).
double polyval(const Polynomial& coeffs, double x);

/// Evaluate at x = 0..n-1 into a vector.
std::vector<double> polyval_indices(const Polynomial& coeffs, std::size_t n);

}  // namespace medsen::dsp
