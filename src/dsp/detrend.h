#pragma once
// Baseline-drift removal, reproducing the paper's cloud-side procedure
// (Section VI-C): partition the signal into overlapping sub-sequences, fit
// a second-order polynomial to each, divide the data by the fitted line
// (normalizing the baseline to 1.0), and stitch the sections back together
// with cross-fade in the overlap regions.

#include <cstddef>
#include <vector>

#include "util/time_series.h"

namespace medsen::dsp {

struct DetrendConfig {
  unsigned poly_degree = 2;       ///< paper: second order found optimal
  std::size_t window = 2048;      ///< sub-sequence length in samples
  std::size_t overlap = 256;      ///< overlap between adjacent windows
};

/// Detrend a raw signal; the result has baseline ~= 1.0 with peaks as
/// downward excursions (impedance increases cause voltage drops).
/// Windows shorter than poly_degree+1 samples fall back to mean division.
std::vector<double> detrend(std::span<const double> signal,
                            const DetrendConfig& config = {});

/// Detrend a TimeSeries in place (preserves rate/start metadata).
void detrend_in_place(util::TimeSeries& series,
                      const DetrendConfig& config = {});

}  // namespace medsen::dsp
