#pragma once
// Baseline-drift removal, reproducing the paper's cloud-side procedure
// (Section VI-C): partition the signal into overlapping sub-sequences, fit
// a second-order polynomial to each, divide the data by the fitted line
// (normalizing the baseline to 1.0), and stitch the sections back together
// with cross-fade in the overlap regions.
//
// Each window's fit is independent, so the window loop parallelizes on a
// util::ThreadPool. Determinism contract: the parallel path accumulates
// each task's windows into a private slab and reduces the slabs serially
// in window order, so the output is bit-identical to the serial path for
// any thread count (IEEE additions happen in the same order; see
// DESIGN.md "Threading model").

#include <cstddef>
#include <span>
#include <vector>

#include "util/thread_pool.h"
#include "util/time_series.h"

namespace medsen::dsp {

struct DetrendConfig {
  unsigned poly_degree = 2;       ///< paper: second order found optimal
  std::size_t window = 2048;      ///< sub-sequence length in samples
  std::size_t overlap = 256;      ///< overlap between adjacent windows
};

/// Detrend a raw signal; the result has baseline ~= 1.0 with peaks as
/// downward excursions (impedance increases cause voltage drops).
/// Windows shorter than poly_degree+1 samples fall back to mean division.
/// With a pool, windows are fitted concurrently (bit-identical output).
std::vector<double> detrend(std::span<const double> signal,
                            const DetrendConfig& config = {},
                            util::ThreadPool* pool = nullptr);

/// Detrend into a caller-provided buffer (out.size() == signal.size();
/// out may alias signal — it is written only after all fits complete).
void detrend_into(std::span<const double> signal, const DetrendConfig& config,
                  std::span<double> out, util::ThreadPool* pool = nullptr);

/// Detrend a TimeSeries in place (preserves rate/start metadata); computes
/// directly into the series' sample buffer, no copy-back.
void detrend_in_place(util::TimeSeries& series,
                      const DetrendConfig& config = {},
                      util::ThreadPool* pool = nullptr);

}  // namespace medsen::dsp
