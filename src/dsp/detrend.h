#pragma once
// Baseline-drift removal, reproducing the paper's cloud-side procedure
// (Section VI-C): partition the signal into overlapping sub-sequences, fit
// a second-order polynomial to each, divide the data by the fitted line
// (normalizing the baseline to 1.0), and stitch the sections back together
// with cross-fade in the overlap regions.
//
// Each window's fit is independent, so the window loop parallelizes on a
// util::ThreadPool. Determinism contract: the parallel path accumulates
// each task's windows into a private slab and reduces the slabs serially
// in window order, so the output is bit-identical to the serial path for
// any thread count (IEEE additions happen in the same order; see
// DESIGN.md "Threading model").

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/polyfit.h"
#include "util/thread_pool.h"
#include "util/time_series.h"

namespace medsen::dsp {

struct DetrendConfig {
  unsigned poly_degree = 2;       ///< paper: second order found optimal
  std::size_t window = 2048;      ///< sub-sequence length in samples
  std::size_t overlap = 256;      ///< overlap between adjacent windows
};

/// Reusable cross-call arena for detrend_into: owns every buffer the
/// window loop needs (window starts, the two accumulation arrays, per-task
/// fit scratch and per-task reduction slabs). A caller that threads one
/// workspace through repeated calls — AnalysisService per channel task,
/// StreamingAnalyzer per block — detrends with zero per-call allocation
/// once the buffers have grown to the workload's high-water mark.
/// Contents are scratch: any state left by a previous call is
/// overwritten, never read. Not safe for concurrent calls; use one
/// workspace per in-flight detrend (the internal window fan-out of a
/// single call is fine — tasks use disjoint slots).
struct DetrendWorkspace {
  /// Per-task fit scratch: the fitted-baseline buffer plus polyfit sums.
  struct FitScratch {
    std::vector<double> fitted;
    PolyfitScratch poly;
  };
  /// Per-task private accumulation slab (parallel path reduction).
  struct Slab {
    std::size_t lo = 0;
    std::vector<double> acc, weight_sum;
  };

  std::vector<std::size_t> starts;
  std::vector<double> acc, weight_sum;
  std::vector<FitScratch> tasks;
  std::vector<Slab> slabs;
};

/// Detrend a raw signal; the result has baseline ~= 1.0 with peaks as
/// downward excursions (impedance increases cause voltage drops).
/// Windows shorter than poly_degree+1 samples fall back to mean division.
/// With a pool, windows are fitted concurrently (bit-identical output).
std::vector<double> detrend(std::span<const double> signal,
                            const DetrendConfig& config = {},
                            util::ThreadPool* pool = nullptr);

/// Detrend into a caller-provided buffer (out.size() == signal.size();
/// out may alias signal — it is written only after all fits complete).
void detrend_into(std::span<const double> signal, const DetrendConfig& config,
                  std::span<double> out, util::ThreadPool* pool = nullptr);

/// Allocation-free overload: all working memory comes from (and stays
/// in) the caller's workspace. Bit-identical to the plain overload.
void detrend_into(std::span<const double> signal, const DetrendConfig& config,
                  std::span<double> out, util::ThreadPool* pool,
                  DetrendWorkspace& workspace);

/// Detrend a TimeSeries in place (preserves rate/start metadata); computes
/// directly into the series' sample buffer, no copy-back.
void detrend_in_place(util::TimeSeries& series,
                      const DetrendConfig& config = {},
                      util::ThreadPool* pool = nullptr);

}  // namespace medsen::dsp
