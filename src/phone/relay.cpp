#include "phone/relay.h"

#include <algorithm>
#include <chrono>

#include "compress/codec.h"
#include "util/csv.h"

namespace medsen::phone {

namespace {

double measure(const std::function<void()>& work) {
  const auto start = std::chrono::steady_clock::now();
  work();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

PhoneRelay::PhoneRelay(RelayConfig config) : config_(std::move(config)) {}

void PhoneRelay::report(const std::string& message) {
  if (progress_) progress_(message);
}

net::SignalUploadPayload PhoneRelay::build_payload(
    const util::MultiChannelSeries& series) {
  timing_ = RelayTiming{};
  report("receiving measurement from sensor");
  std::vector<std::uint8_t> raw;
  if (config_.csv_format) {
    const std::string csv = util::to_csv(series);
    raw.assign(csv.begin(), csv.end());
  } else {
    raw = net::serialize_series(series);
  }
  timing_.usb_in_s = config_.usb.transfer_time_s(raw.size());

  net::SignalUploadPayload payload;
  payload.format = config_.csv_format ? net::UploadFormat::kCsv
                                      : net::UploadFormat::kBinary;
  payload.sample_rate_hz = series.channels.empty()
                               ? 450.0
                               : series.channels.front().sample_rate();
  if (config_.compress_uploads &&
      raw.size() >= config_.compression_threshold_bytes) {
    report("compressing upload");
    std::vector<std::uint8_t> packed;
    const double t = measure([&] { packed = compress::compress(raw); });
    timing_.compression_s = config_.profile.scale(t);
    payload.compressed = true;
    payload.data = std::move(packed);
  } else {
    payload.compressed = false;
    payload.data = std::move(raw);
  }
  last_upload_bytes_ = payload.data.size();
  return payload;
}

std::optional<net::Envelope> PhoneRelay::reliable_exchange(
    const net::Envelope& upload,
    const std::function<net::Envelope(const net::Envelope&)>& handler) {
  net::SimulatedClock clock;
  net::FaultyLink up(config_.uplink, config_.uplink_faults, &clock);
  net::FaultyLink down(config_.downlink, config_.downlink_faults, &clock);
  net::ReliableChannel channel(up, down, clock, config_.reliable);

  const auto wire = upload.serialize();
  const auto result = channel.request(
      wire, [&](std::span<const std::uint8_t> delivered) {
        // The reliable channel reassembles the exact bytes the phone
        // sent; the strict decoder would throw on anything else.
        const auto request = net::Envelope::deserialize(delivered);
        net::Envelope response;
        const double t = measure([&] { response = handler(request); });
        timing_.analysis_s = t;
        return response.serialize();
      });

  const auto& stats = channel.stats();
  timing_.uplink_s = stats.request.elapsed_s;
  timing_.downlink_s = stats.response.elapsed_s;
  timing_.retransmissions =
      stats.request.retransmissions + stats.response.retransmissions;
  timing_.timeouts = stats.request.timeouts + stats.response.timeouts;
  if (!result.has_value()) return std::nullopt;
  return net::Envelope::deserialize(*result);
}

bool PhoneRelay::establish_session(core::Controller& controller,
                                   std::uint64_t session_id,
                                   cloud::CloudServer& server) {
  auto* crypto = controller.session_crypto();
  if (crypto == nullptr) return false;
  report("negotiating session keys");
  const auto challenge = crypto->make_challenge(session_id);

  net::Envelope response;
  if (config_.reliable_transport) {
    auto exchanged = reliable_exchange(
        challenge,
        [&](const net::Envelope& req) { return server.handle(req); });
    if (!exchanged.has_value()) {
      report("session negotiation failed: cloud unreachable");
      return false;
    }
    response = std::move(*exchanged);
  } else {
    response = server.handle(challenge);
  }

  const bool ok = crypto->complete(response);
  report(ok ? "session keys established"
            : "session negotiation failed: proof rejected");
  return ok;
}

core::PeakReport PhoneRelay::run_local_analysis(
    const util::MultiChannelSeries& series,
    const cloud::AnalysisConfig& config) {
  cloud::AnalysisService service(config);
  core::PeakReport report_out;
  const double t = measure([&] { report_out = service.analyze(series); });
  timing_.analysis_s = config_.profile.scale(t);
  return report_out;
}

net::Envelope PhoneRelay::relay_analysis(
    const util::MultiChannelSeries& series, std::uint64_t session_id,
    cloud::CloudServer& server, std::span<const std::uint8_t> mac_key,
    core::SessionCrypto* crypto) {
  const auto payload = build_payload(series);
  std::uint32_t counter = 0;
  if (crypto != nullptr && crypto->active()) {
    session_id = crypto->session_id();
    counter = crypto->next_counter();
    // Borrow the session key in place — a local copy would outlive its
    // wipe; the SessionCrypto outlives this call.
    mac_key = crypto->session_mac_key();
  }
  const auto upload = net::make_envelope(
      net::MessageType::kSignalUpload, session_id, config_.device_id,
      payload.serialize(), mac_key, counter);
  report("uploading to cloud");

  net::Envelope response;
  if (config_.reliable_transport) {
    auto exchanged = reliable_exchange(
        upload, [&](const net::Envelope& req) { return server.handle(req); });
    if (!exchanged.has_value()) {
      // Retry budget exhausted: the cloud is unreachable. Degrade
      // gracefully to the on-phone analysis path (paper Fig. 14
      // discussion) instead of failing the test session.
      report("cloud unreachable; analyzing locally on phone");
      timing_.local_fallback = true;
      const auto local = run_local_analysis(series, config_.local_analysis);
      report("local analysis complete");
      return net::make_envelope(net::MessageType::kAnalysisResult, session_id,
                                config_.device_id, local.serialize(), mac_key);
    }
    response = std::move(*exchanged);
  } else {
    timing_.uplink_s =
        config_.uplink.transfer_time_s(upload.payload.size());
    const double t = measure([&] { response = server.handle(upload); });
    timing_.analysis_s = t;
    timing_.downlink_s =
        config_.downlink.transfer_time_s(response.payload.size());
  }

  report("downloading analysis result");
  timing_.usb_out_s = config_.usb.transfer_time_s(response.payload.size());
  report("analysis complete");
  return response;
}

net::Envelope PhoneRelay::relay_auth(const util::MultiChannelSeries& series,
                                     std::uint64_t session_id,
                                     double volume_ul,
                                     cloud::CloudServer& server,
                                     std::span<const std::uint8_t> mac_key,
                                     double duration_s,
                                     core::SessionCrypto* crypto) {
  net::AuthPassPayload pass;
  pass.upload = build_payload(series);
  pass.volume_ul = volume_ul;
  pass.duration_s = duration_s;
  std::uint32_t counter = 0;
  if (crypto != nullptr && crypto->active()) {
    session_id = crypto->session_id();
    counter = crypto->next_counter();
    // Borrow the session key in place — a local copy would outlive its
    // wipe; the SessionCrypto outlives this call.
    mac_key = crypto->session_mac_key();
  }
  const auto upload =
      net::make_envelope(net::MessageType::kAuthPass, session_id,
                         config_.device_id, pass.serialize(), mac_key, counter);
  report("uploading authentication pass");

  net::Envelope response;
  if (config_.reliable_transport) {
    auto exchanged = reliable_exchange(
        upload, [&](const net::Envelope& req) { return server.handle(req); });
    if (!exchanged.has_value())
      // Unlike diagnostics, authentication cannot fall back to the
      // phone: the enrollment database lives in the cloud.
      throw net::TransportError(
          "PhoneRelay: auth upload failed, retry budget exhausted");
    response = std::move(*exchanged);
  } else {
    timing_.uplink_s =
        config_.uplink.transfer_time_s(upload.payload.size());
    const double t = measure([&] { response = server.handle(upload); });
    timing_.analysis_s = t;
    timing_.downlink_s =
        config_.downlink.transfer_time_s(response.payload.size());
  }

  report("downloading auth decision");
  timing_.usb_out_s = config_.usb.transfer_time_s(response.payload.size());
  report("authentication complete");
  return response;
}

SessionOutcome PhoneRelay::run_diagnostic_session(
    core::Controller& controller, double duration_s, const AcquireFn& acquire,
    std::uint64_t session_base_id, cloud::CloudServer& server,
    std::span<const std::uint8_t> mac_key) {
  SessionOutcome outcome;
  const std::size_t max_attempts =
      std::max<std::size_t>(1, controller.retry_policy().max_attempts);
  util::MultiChannelSeries last_series;

  // Session-crypto plane: handshake once up front; all attempts then
  // share the negotiated session, distinguished by command counter. The
  // handshake (and each re-handshake) consumes its own id above
  // session_base_id so the server's idempotency cache never sees two
  // different challenges under one key.
  core::SessionCrypto* crypto = controller.session_crypto();
  std::uint64_t handshakes = 0;
  if (crypto != nullptr && !crypto->active()) {
    if (!establish_session(controller, session_base_id + handshakes, server))
      report("continuing on the legacy static-key plane");
    ++handshakes;
  }

  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    const auto control = attempt == 0
                             ? controller.begin_session(duration_s)
                             : controller.begin_retry_session(duration_s);
    report("acquiring (attempt " + std::to_string(attempt + 1) + ")");
    last_series = acquire(control, duration_s, attempt);
    ++outcome.attempts;

    // Each attempt gets its own session id (legacy plane) or its own
    // command counter (session plane): the server's idempotency cache
    // would flag a re-acquisition under the old key as a replay with a
    // different payload (kSessionConflict).
    outcome.last_response = relay_analysis(
        last_series, session_base_id + attempt, server, mac_key, crypto);
    outcome.retransmissions += timing_.retransmissions;
    outcome.timeouts += timing_.timeouts;

    // kAuthRequired means the server no longer holds our session — it
    // restarted or the fleet was re-keyed. Re-handshake under a fresh
    // id (counters restart under the new key) and resend this attempt.
    if (crypto != nullptr && crypto->active() &&
        outcome.last_response.type == net::MessageType::kError) {
      const auto probe =
          net::ErrorPayload::deserialize(outcome.last_response.payload);
      if (probe.code == net::ErrorCode::kAuthRequired) {
        report("server dropped the session; re-keying");
        crypto->invalidate();
        if (establish_session(controller, session_base_id + handshakes,
                              server)) {
          outcome.last_response = relay_analysis(
              last_series, session_base_id + attempt, server, mac_key,
              crypto);
          outcome.retransmissions += timing_.retransmissions;
          outcome.timeouts += timing_.timeouts;
        }
        ++handshakes;
      }
    }

    if (outcome.last_response.type == net::MessageType::kAnalysisResult) {
      const auto peaks =
          core::PeakReport::deserialize(outcome.last_response.payload);
      outcome.diagnosis = controller.conclude(peaks);
      outcome.recovered = outcome.quality_rejections > 0;
      report("session complete (attempt " + std::to_string(attempt + 1) +
             ")");
      return outcome;
    }

    const auto error =
        net::ErrorPayload::deserialize(outcome.last_response.payload);
    if (error.code == net::ErrorCode::kQualityRejected)
      ++outcome.quality_rejections;
    if (attempt + 1 >= max_attempts) break;  // no budget left to plan for

    const core::RecoveryPlan plan = controller.plan_recovery(error);
    outcome.actions.push_back(plan.action);
    report("attempt " + std::to_string(attempt + 1) + " rejected (" +
           error.detail + "); recovery: " + core::to_string(plan.action));
  }

  // Retry budget exhausted: degrade to a best-effort on-phone analysis
  // of the last acquisition rather than throwing the session away. The
  // local service has no quality gate, so it always yields a report.
  outcome.actions.push_back(core::RecoveryAction::kGiveUp);
  outcome.degraded = true;
  report("retries exhausted; degrading to on-phone analysis");
  timing_.local_fallback = true;
  const auto local = run_local_analysis(last_series, config_.local_analysis);
  outcome.last_response = net::make_envelope(
      net::MessageType::kAnalysisResult, session_base_id + outcome.attempts,
      config_.device_id, local.serialize(), mac_key);
  outcome.diagnosis = controller.conclude_degraded(local);
  return outcome;
}

core::PeakReport PhoneRelay::analyze_locally(
    const util::MultiChannelSeries& series,
    const cloud::AnalysisConfig& config) {
  timing_ = RelayTiming{};
  report("analyzing locally on phone");
  const auto report_out = run_local_analysis(series, config);
  report("local analysis complete");
  return report_out;
}

}  // namespace medsen::phone
