#pragma once
// The smartphone relay: the Android app of the prototype. It is NOT in
// the trusted computing base — it only (a) relays envelopes between the
// USB-attached controller and the cloud, (b) compresses bulk uploads to
// save data-plan bytes, (c) reports progress to the user, and (d) can run
// the peak analysis locally for small samples (paper Fig. 14 discussion).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cloud/server.h"
#include "core/controller.h"
#include "core/recovery.h"
#include "net/link.h"
#include "net/messages.h"
#include "net/reliable.h"
#include "phone/profile.h"
#include "sim/acquisition.h"

namespace medsen::phone {

/// Timing breakdown of one relayed round trip (simulated link times plus
/// measured compute times).
struct RelayTiming {
  double usb_in_s = 0.0;       ///< controller -> phone
  double compression_s = 0.0;  ///< measured on the phone profile
  double uplink_s = 0.0;       ///< phone -> cloud (incl. retransmissions)
  double analysis_s = 0.0;     ///< cloud compute (measured)
  double downlink_s = 0.0;     ///< cloud -> phone (incl. retransmissions)
  double usb_out_s = 0.0;      ///< phone -> controller

  // Reliable-transport counters (zero on the idealized direct path).
  std::size_t retransmissions = 0;  ///< chunk re-sends across both legs
  std::size_t timeouts = 0;         ///< expired ACK waits across both legs
  bool local_fallback = false;      ///< retry budget spent; analyzed on phone

  [[nodiscard]] double total_s() const {
    return usb_in_s + compression_s + uplink_s + analysis_s + downlink_s +
           usb_out_s;
  }
};

struct RelayConfig {
  /// Tenant identity stamped on every envelope; the server only accepts
  /// devices provisioned in its DeviceRegistry under this id.
  std::uint64_t device_id = 1;
  bool compress_uploads = true;
  /// Upload in the prototype's CSV format instead of compact binary
  /// (larger, but matches the recorded-file workflow of the paper).
  bool csv_format = false;
  /// Uploads smaller than this skip compression (not worth the cycles).
  std::size_t compression_threshold_bytes = 4096;
  ExecutionProfile profile = nexus5_profile();
  net::LinkModel usb = net::usb_accessory();
  net::LinkModel uplink = net::lte_uplink();
  net::LinkModel downlink = net::lte_downlink();
  /// When true, uploads travel over seeded lossy links through
  /// net::ReliableChannel (chunked ARQ with backoff) instead of the
  /// idealized direct call; exhausting the retry budget degrades to
  /// on-phone analysis instead of failing the session.
  bool reliable_transport = false;
  net::FaultConfig uplink_faults;
  net::FaultConfig downlink_faults;
  net::ReliableConfig reliable;
  /// Analysis settings for the on-phone fallback path.
  cloud::AnalysisConfig local_analysis;
};

using ProgressCallback = std::function<void(const std::string&)>;

/// Outcome and counters of one self-healing diagnostic session (the
/// RelayTiming-style bookkeeping for the retry loop).
struct SessionOutcome {
  core::Diagnosis diagnosis;
  std::size_t attempts = 0;            ///< acquisitions performed
  std::size_t quality_rejections = 0;  ///< structured quality errors seen
  bool recovered = false;   ///< succeeded after at least one rejection
  bool degraded = false;    ///< retry budget exhausted, best-effort result
  /// The controller's recovery action after each failed attempt (ends
  /// with kGiveUp when the session degraded).
  std::vector<core::RecoveryAction> actions;
  std::size_t retransmissions = 0;  ///< summed across all attempts
  std::size_t timeouts = 0;         ///< summed across all attempts
  net::Envelope last_response;      ///< final analysis (or local) envelope
};

/// How the relay asks the sensor for an acquisition attempt: given the
/// control trace of the (re-keyed) schedule, the session duration and
/// the 0-based attempt index, return the lock-in output. Tests and
/// benches back this with sim::acquire(); `attempt` feeds
/// sim::FaultConfig::attempt so transient faults can clear on retry.
using AcquireFn = std::function<util::MultiChannelSeries(
    std::span<const sim::ControlSegment> control, double duration_s,
    std::size_t attempt)>;

class PhoneRelay {
 public:
  explicit PhoneRelay(RelayConfig config = {});

  /// Run the controller's AuthChallenge/AuthResponse handshake against
  /// the cloud (over the reliable links when configured) and leave its
  /// SessionCrypto holding derived session keys. Returns false — with
  /// no session active — when the controller has no session crypto
  /// armed, the exchange could not be delivered, or the server's
  /// key-possession proof failed verification.
  bool establish_session(core::Controller& controller,
                         std::uint64_t session_id,
                         cloud::CloudServer& server);

  /// Relay an encrypted acquisition to the cloud for analysis and return
  /// the cloud's analysis-result envelope. Populates timing().
  /// With an *active* `crypto`, the envelope rides the session plane:
  /// MAC'd with the derived session key, stamped with the next command
  /// counter, and addressed to the negotiated session id (the
  /// `session_id` argument is ignored then).
  net::Envelope relay_analysis(const util::MultiChannelSeries& series,
                               std::uint64_t session_id,
                               cloud::CloudServer& server,
                               std::span<const std::uint8_t> mac_key,
                               core::SessionCrypto* crypto = nullptr);

  /// Relay a plaintext auth pass; returns the auth-decision envelope.
  /// `duration_s` (when nonzero) lets the server correct coincidence
  /// losses in the bead census. `crypto` works as in relay_analysis().
  net::Envelope relay_auth(const util::MultiChannelSeries& series,
                           std::uint64_t session_id, double volume_ul,
                           cloud::CloudServer& server,
                           std::span<const std::uint8_t> mac_key,
                           double duration_s = 0.0,
                           core::SessionCrypto* crypto = nullptr);

  /// Run the peak analysis locally on the phone (small-sample mode).
  /// Returns the report and records the profile-scaled analysis time.
  core::PeakReport analyze_locally(const util::MultiChannelSeries& series,
                                   const cloud::AnalysisConfig& config);

  /// Drive one complete self-healing diagnostic session end to end:
  /// acquire under the controller's control trace, upload, and on a
  /// structured quality rejection let the controller plan recovery
  /// (re-key with suspects masked, derate flow, flush) and re-acquire,
  /// up to RetryPolicy::max_attempts. Distinct attempts use session ids
  /// `session_base_id + attempt` so the server's idempotency cache never
  /// conflates them. When the budget is exhausted the session degrades
  /// to an on-phone best-effort analysis with the policy's confidence
  /// downgrade — it does not throw.
  ///
  /// When the controller has session crypto armed, the loop handshakes
  /// once up front and every attempt rides the *same* negotiated
  /// session with incrementing command counters (the cache keys on the
  /// counter, so attempts never conflate). A kAuthRequired error —
  /// the server lost the session to a restart or key rotation —
  /// triggers one re-handshake under a fresh session id and a resend,
  /// with counters restarting under the new key. A handshake that
  /// cannot complete at all degrades to the legacy static-key plane.
  SessionOutcome run_diagnostic_session(
      core::Controller& controller, double duration_s,
      const AcquireFn& acquire, std::uint64_t session_base_id,
      cloud::CloudServer& server, std::span<const std::uint8_t> mac_key);

  void set_progress_callback(ProgressCallback cb) { progress_ = std::move(cb); }

  [[nodiscard]] const RelayTiming& timing() const { return timing_; }
  [[nodiscard]] const RelayConfig& config() const { return config_; }
  /// Bytes sent over the uplink by the last relay (after compression).
  [[nodiscard]] std::size_t last_upload_bytes() const {
    return last_upload_bytes_;
  }

 private:
  /// Serialize (and maybe compress) the acquisition; resets and fills
  /// the USB/compression timing fields.
  net::SignalUploadPayload build_payload(
      const util::MultiChannelSeries& series);
  /// Run one request/response exchange over the lossy reliable links.
  /// Returns the response envelope, or nullopt when the retry budget was
  /// exhausted in either direction; fills the transport timing fields.
  std::optional<net::Envelope> reliable_exchange(
      const net::Envelope& upload,
      const std::function<net::Envelope(const net::Envelope&)>& handler);
  /// Measure a profile-scaled local analysis without resetting timing_.
  core::PeakReport run_local_analysis(const util::MultiChannelSeries& series,
                                      const cloud::AnalysisConfig& config);
  void report(const std::string& message);

  RelayConfig config_;
  RelayTiming timing_;
  ProgressCallback progress_;
  std::size_t last_upload_bytes_ = 0;
};

}  // namespace medsen::phone
