#pragma once
// The Android app's session state machine (paper Section VI-D): the app
// detects the dongle over the USB accessory protocol, walks the user
// through the test, relays data, and surfaces progress/errors. This
// models that control flow so integration tests can assert on legal
// transitions and user-visible states.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace medsen::phone {

enum class AppState : std::uint8_t {
  kIdle = 0,          ///< app launched, no dongle
  kConnected,         ///< USB accessory handshake done
  kAcquiring,         ///< blood test running on the sensor
  kUploading,         ///< relaying measurement to the cloud
  kAwaitingResult,    ///< cloud processing
  kComplete,          ///< diagnosis delivered
  kError,             ///< any failure; recoverable via reset()
};

const char* to_string(AppState state);

/// Events that drive the state machine.
enum class AppEvent : std::uint8_t {
  kDongleAttached,
  kTestStarted,
  kAcquisitionDone,
  kUploadDone,
  kResultReceived,
  kFailure,
  kDongleDetached,
};

const char* to_string(AppEvent event);

/// Deterministic session state machine. Illegal transitions go to kError
/// (a real app must never crash on an out-of-order USB event).
class AppSession {
 public:
  using Listener = std::function<void(AppState, const std::string&)>;

  [[nodiscard]] AppState state() const { return state_; }
  [[nodiscard]] const std::vector<std::string>& log() const { return log_; }

  /// Feed an event; returns the new state.
  AppState handle(AppEvent event);

  /// Back to kIdle from any state (user dismisses the error / restarts).
  void reset();

  void set_listener(Listener listener) { listener_ = std::move(listener); }

 private:
  void enter(AppState next, const std::string& note);

  AppState state_ = AppState::kIdle;
  std::vector<std::string> log_;
  Listener listener_;
};

}  // namespace medsen::phone
