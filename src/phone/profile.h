#pragma once
// Execution profiles modeling where the peak analysis runs. The paper's
// Fig. 14 compares an Intel i7-4710MQ workstation against a Nexus 5
// (Snapdragon 800); no ARM hardware exists here, so the phone is modeled
// as a deterministic slowdown factor calibrated to the paper's measured
// ratio at the largest sample size (~3.4x).

#include <string>

namespace medsen::phone {

struct ExecutionProfile {
  std::string name;
  double slowdown = 1.0;  ///< multiplier on measured compute time

  /// Scale a measured duration to this profile.
  [[nodiscard]] double scale(double measured_s) const {
    return measured_s * slowdown;
  }
};

/// Reference workstation (Intel i7-4710MQ, 16 GB): unit speed.
ExecutionProfile computer_profile();

/// Nexus 5 (Qualcomm MSM8974 Snapdragon 800, 2 GB): paper-calibrated.
ExecutionProfile nexus5_profile();

}  // namespace medsen::phone
