#include "phone/app.h"

namespace medsen::phone {

const char* to_string(AppState state) {
  switch (state) {
    case AppState::kIdle: return "idle";
    case AppState::kConnected: return "connected";
    case AppState::kAcquiring: return "acquiring";
    case AppState::kUploading: return "uploading";
    case AppState::kAwaitingResult: return "awaiting-result";
    case AppState::kComplete: return "complete";
    case AppState::kError: return "error";
  }
  return "?";
}

const char* to_string(AppEvent event) {
  switch (event) {
    case AppEvent::kDongleAttached: return "dongle-attached";
    case AppEvent::kTestStarted: return "test-started";
    case AppEvent::kAcquisitionDone: return "acquisition-done";
    case AppEvent::kUploadDone: return "upload-done";
    case AppEvent::kResultReceived: return "result-received";
    case AppEvent::kFailure: return "failure";
    case AppEvent::kDongleDetached: return "dongle-detached";
  }
  return "?";
}

void AppSession::enter(AppState next, const std::string& note) {
  state_ = next;
  log_.push_back(std::string(to_string(next)) +
                 (note.empty() ? "" : ": " + note));
  if (listener_) listener_(next, note);
}

AppState AppSession::handle(AppEvent event) {
  // Failures and detachment are legal from anywhere.
  if (event == AppEvent::kFailure) {
    enter(AppState::kError, "reported failure");
    return state_;
  }
  if (event == AppEvent::kDongleDetached) {
    if (state_ == AppState::kIdle || state_ == AppState::kComplete) {
      enter(AppState::kIdle, "dongle detached");
    } else {
      enter(AppState::kError, "dongle detached mid-session");
    }
    return state_;
  }

  switch (state_) {
    case AppState::kIdle:
      if (event == AppEvent::kDongleAttached) {
        enter(AppState::kConnected, "USB accessory handshake");
        return state_;
      }
      break;
    case AppState::kConnected:
      if (event == AppEvent::kTestStarted) {
        enter(AppState::kAcquiring, "user started the blood test");
        return state_;
      }
      break;
    case AppState::kAcquiring:
      if (event == AppEvent::kAcquisitionDone) {
        enter(AppState::kUploading, "measurement window finished");
        return state_;
      }
      break;
    case AppState::kUploading:
      if (event == AppEvent::kUploadDone) {
        enter(AppState::kAwaitingResult, "upload acknowledged");
        return state_;
      }
      break;
    case AppState::kAwaitingResult:
      if (event == AppEvent::kResultReceived) {
        enter(AppState::kComplete, "analysis result delivered");
        return state_;
      }
      break;
    case AppState::kComplete:
    case AppState::kError:
      break;
  }
  enter(AppState::kError, std::string("illegal event ") + to_string(event) +
                              " in state " + to_string(state_));
  return state_;
}

void AppSession::reset() {
  enter(AppState::kIdle, "session reset");
}

}  // namespace medsen::phone
