#include "phone/profile.h"

namespace medsen::phone {

ExecutionProfile computer_profile() { return {"computer-i7-4710MQ", 1.0}; }

ExecutionProfile nexus5_profile() {
  // Fig. 14: 1.554 s vs 0.452 s at 962,428 samples -> 3.44x.
  return {"nexus5-snapdragon800", 3.44};
}

}  // namespace medsen::phone
