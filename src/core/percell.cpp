#include "core/percell.h"

#include <algorithm>
#include <cmath>

namespace medsen::core {

namespace {

std::uint8_t nominal_flow_code(const KeyParams& params) {
  std::uint8_t best = 0;
  double best_err = 1e18;
  for (std::uint32_t c = 0; c < params.flow_levels(); ++c) {
    const double err =
        std::fabs(flow_value(params, static_cast<std::uint8_t>(c)) - 0.08);
    if (err < best_err) {
      best_err = err;
      best = static_cast<std::uint8_t>(c);
    }
  }
  return best;
}

}  // namespace

PerCellAcquisition acquire_per_cell_keyed(
    const sim::SampleSpec& sample, const sim::ChannelConfig& channel,
    const sim::ElectrodeArrayDesign& design,
    const sim::AcquisitionConfig& config, const KeyParams& params,
    double duration_s, crypto::ChaChaRng& key_rng, std::uint64_t sim_seed) {
  const std::uint8_t flow_code = nominal_flow_code(params);
  const double flow = flow_value(params, flow_code);

  // Phase 1: the arrival stream (the per-cell trigger the prototype
  // lacks; the microscope camera provided it for ground truth).
  crypto::ChaChaRng transit_rng(sim_seed);
  auto transits = sim::simulate_transits(
      sample, channel, {{0.0, flow}}, duration_s, transit_rng);

  // Phase 2: one key per cell, switched just before each arrival.
  std::vector<TimedKey> keys;
  keys.reserve(transits.size() + 1);
  auto fresh_key = [&] {
    SensorKey key = random_key(params, key_rng);
    key.flow_code = flow_code;
    return key;
  };
  keys.push_back({0.0, fresh_key()});
  double last_start = 0.0;
  constexpr double kSwitchLead = 1e-3;  // re-key 1 ms before the transit
  for (const auto& transit : transits) {
    const double t =
        std::max(last_start + 1e-6, transit.enter_time_s - kSwitchLead);
    keys.push_back({t, fresh_key()});
    last_start = t;
  }
  KeySchedule schedule(params, std::move(keys));

  // Phase 3: render the acquisition under the per-cell control trace.
  const auto trace = schedule.control_trace();
  auto result = sim::render_acquisition(std::move(transits), design, config,
                                        trace, duration_s, sim_seed + 1);
  return {{std::move(result.signals), std::move(result.truth)},
          std::move(schedule)};
}

std::uint64_t per_cell_key_bits(const KeyParams& params,
                                std::uint64_t cells) {
  const std::uint64_t per_key =
      params.num_electrodes +
      static_cast<std::uint64_t>(params.num_electrodes) * params.gain_bits +
      params.flow_bits;
  return per_key * (cells + 1);  // +1 for the initial pre-arrival key
}

}  // namespace medsen::core
