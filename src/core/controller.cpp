#include "core/controller.h"

#include <stdexcept>

#include "sim/channel.h"

namespace medsen::core {

Controller::Controller(KeyParams key_params,
                       sim::ElectrodeArrayDesign design,
                       DiagnosticProfile profile, std::uint64_t entropy_seed,
                       RetryPolicy retry_policy)
    : key_params_(key_params),
      design_(design),
      profile_(std::move(profile)),
      rng_(entropy_seed),
      retry_policy_(retry_policy),
      ledger_(key_params.num_electrodes, retry_policy.quarantine_strikes),
      entropy_seed_(entropy_seed) {
  if (key_params_.num_electrodes != design_.num_outputs)
    throw std::invalid_argument(
        "Controller: key electrode count must match the array design");
}

void Controller::enable_session_crypto(std::uint64_t device_id,
                                       std::vector<std::uint8_t> device_key,
                                       std::uint32_t key_epoch) {
  session_crypto_ = std::make_unique<SessionCrypto>(
      device_id, std::move(device_key), key_epoch, entropy_seed_);
}

void Controller::apply_recovery_state() {
  // Both calls are no-ops for a clean ledger at nominal flow, so a
  // healthy session's schedule is bit-identical to one generated before
  // recovery existed.
  schedule_->mask_electrodes(ledger_.excluded());
  schedule_->derate_flow(flow_scale_);
}

sim::ElectrodeMask Controller::session_active_union() const {
  if (!schedule_) return 0;
  sim::ElectrodeMask mask = 0;
  for (const auto& tk : schedule_->keys()) mask |= tk.key.electrodes;
  return mask;
}

std::vector<sim::ControlSegment> Controller::begin_session(
    double duration_s) {
  ledger_.begin_loop();
  flow_scale_ = 1.0;
  schedule_ = KeySchedule::generate(key_params_, duration_s, rng_);
  session_duration_s_ = duration_s;
  apply_recovery_state();
  return schedule_->control_trace();
}

std::vector<sim::ControlSegment> Controller::begin_retry_session(
    double duration_s) {
  schedule_ = KeySchedule::generate(key_params_, duration_s, rng_);
  session_duration_s_ = duration_s;
  apply_recovery_state();
  return schedule_->control_trace();
}

RecoveryPlan Controller::plan_recovery(const net::ErrorPayload& error) {
  if (!schedule_) throw std::logic_error("Controller: no active session");
  RecoveryContext context;
  context.num_electrodes = key_params_.num_electrodes;
  context.session_active_union = session_active_union();
  context.flow_scale = flow_scale_;
  RecoveryPlan plan =
      core::plan_recovery(error, context, ledger_, retry_policy_);
  flow_scale_ = plan.flow_scale;
  return plan;
}

std::vector<sim::ControlSegment> Controller::begin_plaintext_session(
    double duration_s) {
  schedule_ = KeySchedule::plaintext(key_params_, duration_s);
  session_duration_s_ = duration_s;
  return schedule_->control_trace();
}

double Controller::session_volume_ul() const {
  if (!schedule_) throw std::logic_error("Controller: no active session");
  std::vector<sim::FlowSegment> flow;
  for (const auto& seg : schedule_->control_trace())
    flow.push_back({seg.t_start_s, seg.flow_ul_min});
  return sim::pumped_volume_ul(flow, session_duration_s_);
}

DecryptionResult Controller::decrypt(const PeakReport& report) const {
  if (!schedule_) throw std::logic_error("Controller: no active session");
  return decrypt_report(report, *schedule_, design_, session_duration_s_);
}

Diagnosis Controller::conclude(const PeakReport& report) {
  const DecryptionResult decoded = decrypt(report);
  return diagnose(profile_, decoded.estimated_count, session_volume_ul());
}

Diagnosis Controller::conclude_degraded(const PeakReport& report) {
  Diagnosis diagnosis = conclude(report);
  diagnosis.confidence = retry_policy_.degraded_confidence;
  return diagnosis;
}

std::uint64_t Controller::session_key_bits() const {
  if (!schedule_) throw std::logic_error("Controller: no active session");
  return schedule_->size_bits();
}

const KeySchedule& Controller::session_key_schedule_for_testing() const {
  if (!schedule_) throw std::logic_error("Controller: no active session");
  return *schedule_;
}

}  // namespace medsen::core
