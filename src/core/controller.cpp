#include "core/controller.h"

#include <stdexcept>

#include "sim/channel.h"

namespace medsen::core {

Controller::Controller(KeyParams key_params,
                       sim::ElectrodeArrayDesign design,
                       DiagnosticProfile profile, std::uint64_t entropy_seed)
    : key_params_(key_params),
      design_(design),
      profile_(std::move(profile)),
      rng_(entropy_seed) {
  if (key_params_.num_electrodes != design_.num_outputs)
    throw std::invalid_argument(
        "Controller: key electrode count must match the array design");
}

std::vector<sim::ControlSegment> Controller::begin_session(
    double duration_s) {
  schedule_ = KeySchedule::generate(key_params_, duration_s, rng_);
  session_duration_s_ = duration_s;
  return schedule_->control_trace();
}

std::vector<sim::ControlSegment> Controller::begin_plaintext_session(
    double duration_s) {
  schedule_ = KeySchedule::plaintext(key_params_, duration_s);
  session_duration_s_ = duration_s;
  return schedule_->control_trace();
}

double Controller::session_volume_ul() const {
  if (!schedule_) throw std::logic_error("Controller: no active session");
  std::vector<sim::FlowSegment> flow;
  for (const auto& seg : schedule_->control_trace())
    flow.push_back({seg.t_start_s, seg.flow_ul_min});
  return sim::pumped_volume_ul(flow, session_duration_s_);
}

DecryptionResult Controller::decrypt(const PeakReport& report) const {
  if (!schedule_) throw std::logic_error("Controller: no active session");
  return decrypt_report(report, *schedule_, design_, session_duration_s_);
}

Diagnosis Controller::conclude(const PeakReport& report) {
  const DecryptionResult decoded = decrypt(report);
  return diagnose(profile_, decoded.estimated_count, session_volume_ul());
}

std::uint64_t Controller::session_key_bits() const {
  if (!schedule_) throw std::logic_error("Controller: no active session");
  return schedule_->size_bits();
}

const KeySchedule& Controller::session_key_schedule_for_testing() const {
  if (!schedule_) throw std::logic_error("Controller: no active session");
  return *schedule_;
}

}  // namespace medsen::core
