#pragma once
// The ideal per-cell keying scheme of Section IV-A: "every signal peak is
// encrypted with its own randomly generated key", giving the one-time-pad
// comparison the paper draws, at the cost of a key whose length grows
// linearly with the cell count (crypto::keymath, Eq. 2) and of requiring
// the sensor to know when each cell enters the channel.
//
// The fabricated prototype could not trigger on cell arrivals, so it
// deployed the periodic-rotation scheme instead. The simulator CAN — it
// knows every transit — so this module implements the ideal scheme for
// comparison: simulate the arrival stream first, assign one fresh
// (E, G) key per cell (flow is held fixed: re-keying the pump per cell is
// physically meaningless mid-transit, one of the complications the paper
// cites), then render the acquisition under that key schedule.

#include <cstdint>

#include "core/encryptor.h"
#include "core/key.h"
#include "sim/acquisition.h"

namespace medsen::core {

struct PerCellAcquisition {
  EncryptedAcquisition acquisition;
  KeySchedule schedule;  ///< one key per cell (lives in the TCB)
};

/// Run an acquisition under the ideal per-cell scheme. The flow code is
/// pinned to the value nearest 0.08 uL/min; electrodes and gains re-key
/// on every cell arrival.
PerCellAcquisition acquire_per_cell_keyed(
    const sim::SampleSpec& sample, const sim::ChannelConfig& channel,
    const sim::ElectrodeArrayDesign& design,
    const sim::AcquisitionConfig& config, const KeyParams& params,
    double duration_s, crypto::ChaChaRng& key_rng, std::uint64_t sim_seed);

/// Key length (bits) the ideal scheme spent for `cells` cells under
/// `params` — per-electrode-gain variant of Eq. 2:
///   bits/cell = N_elec + N_elec * R_gain + R_flow.
std::uint64_t per_cell_key_bits(const KeyParams& params,
                                std::uint64_t cells);

}  // namespace medsen::core
