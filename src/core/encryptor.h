#pragma once
// The in-sensor encryption stage: binds a key schedule to the physical
// acquisition. "Encrypting" is nothing more than programming the
// multiplexer, gain DACs and pump from the key — the measured analog
// signal leaves the sensor already encrypted, with zero computational
// overhead (paper Section IV). This class is the software twin of that
// hardware path.

#include <cstdint>

#include "core/key.h"
#include "core/mux.h"
#include "sim/acquisition.h"

namespace medsen::core {

/// Result of an encrypted acquisition. `truth` is simulator-only ground
/// truth (the fabricated prototype observed it via microscope video); it
/// never travels with the signal.
struct EncryptedAcquisition {
  util::MultiChannelSeries signals;
  sim::GroundTruth truth;
};

class SensorEncryptor {
 public:
  SensorEncryptor(sim::ElectrodeArrayDesign design,
                  sim::ChannelConfig channel_config,
                  sim::AcquisitionConfig acquisition_config);

  /// Run an acquisition of `duration_s` seconds with the sensor keyed by
  /// `schedule`. Each key period reconfigures the multiplexer.
  EncryptedAcquisition acquire(const sim::SampleSpec& sample,
                               const KeySchedule& schedule,
                               double duration_s, std::uint64_t seed);

  [[nodiscard]] const sim::ElectrodeArrayDesign& design() const {
    return design_;
  }
  [[nodiscard]] const Multiplexer& mux() const { return mux_; }

 private:
  sim::ElectrodeArrayDesign design_;
  sim::ChannelConfig channel_config_;
  sim::AcquisitionConfig acquisition_config_;
  Multiplexer mux_;
};

}  // namespace medsen::core
