#include "core/diagnostic.h"

#include <algorithm>
#include <stdexcept>

namespace medsen::core {

DiagnosticProfile::DiagnosticProfile(std::string name,
                                     std::vector<DiagnosticBand> bands)
    : name_(std::move(name)), bands_(std::move(bands)) {
  if (bands_.empty())
    throw std::invalid_argument("DiagnosticProfile: needs at least one band");
  std::sort(bands_.begin(), bands_.end(),
            [](const DiagnosticBand& a, const DiagnosticBand& b) {
              return a.min_per_ul < b.min_per_ul;
            });
  if (bands_.front().min_per_ul != 0.0)
    throw std::invalid_argument(
        "DiagnosticProfile: lowest band must start at 0");
}

DiagnosticProfile DiagnosticProfile::cd4_staging() {
  return DiagnosticProfile(
      "CD4 staging",
      {{0.0, "severe immunosuppression (<200 cells/uL)", true},
       {200.0, "immunosuppressed, monitor (200-500 cells/uL)", true},
       {500.0, "normal (>=500 cells/uL)", false}});
}

const DiagnosticBand& DiagnosticProfile::classify(
    double concentration_per_ul) const {
  const DiagnosticBand* chosen = &bands_.front();
  for (const auto& band : bands_)
    if (band.min_per_ul <= concentration_per_ul) chosen = &band;
  return *chosen;
}

Diagnosis diagnose(const DiagnosticProfile& profile, double estimated_count,
                   double volume_ul) {
  Diagnosis d;
  d.estimated_count = estimated_count;
  d.volume_ul = volume_ul;
  d.concentration_per_ul =
      volume_ul > 0.0 ? estimated_count / volume_ul : 0.0;
  const DiagnosticBand& band = profile.classify(d.concentration_per_ul);
  d.condition = band.label;
  d.alert = band.alert;
  return d;
}

}  // namespace medsen::core
