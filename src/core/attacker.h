#pragma once
// Eavesdropper models from the paper's security analysis (Section IV-A):
// a curious-but-honest cloud (or a network eavesdropper) sees the
// ciphertext peak report and tries to recover the true particle count.
// Each attacker implements one of the strategies the paper discusses, and
// the cipher feature that defeats it:
//
//  * NaiveCountAttacker      — assumes one peak per cell; defeated by the
//                              multi-electrode peak multiplication.
//  * DivisionAttacker        — knows the array design and guesses a fixed
//                              multiplication factor; defeated by the
//                              random per-period electrode subsets.
//  * AmplitudeSignatureAttacker — groups consecutive same-amplitude peaks
//                              as one cell; defeated by random gains.
//  * WidthSignatureAttacker  — groups same-width peaks; defeated by flow
//                              speed modulation.
//
// The attack-resistance bench sweeps cipher features on/off and reports
// each attacker's count-recovery error.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/peak_report.h"
#include "sim/electrode_array.h"

namespace medsen::core {

/// Interface: estimate the true particle count from ciphertext peaks only.
class Attacker {
 public:
  virtual ~Attacker() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Estimated particle count from the reference channel's peaks.
  virtual double estimate_count(const PeakReport& report) = 0;
};

/// One peak = one cell.
class NaiveCountAttacker : public Attacker {
 public:
  [[nodiscard]] std::string name() const override { return "naive-count"; }
  double estimate_count(const PeakReport& report) override;
};

/// Divides the total peak count by an assumed constant multiplication
/// factor (the attacker knows the array design but not the key).
class DivisionAttacker : public Attacker {
 public:
  explicit DivisionAttacker(const sim::ElectrodeArrayDesign& design);
  [[nodiscard]] std::string name() const override { return "division"; }
  double estimate_count(const PeakReport& report) override;

 private:
  double assumed_factor_;
};

/// Clusters consecutive peaks of (nearly) equal amplitude as echoes of one
/// cell crossing several electrodes.
class AmplitudeSignatureAttacker : public Attacker {
 public:
  explicit AmplitudeSignatureAttacker(double relative_tolerance = 0.12)
      : tolerance_(relative_tolerance) {}
  [[nodiscard]] std::string name() const override {
    return "amplitude-signature";
  }
  double estimate_count(const PeakReport& report) override;

 private:
  double tolerance_;
};

/// Exploits the train signature the paper flags in Section VII-A: when
/// successive electrodes are selected, one cell's peaks arrive as a
/// tight, regular train followed by a long silence until the next cell.
/// Clustering peaks separated by gaps well above the median inter-peak
/// interval then recovers the cell count. The paper's countermeasure —
/// never selecting successive electrodes (KeyParams::
/// avoid_successive_electrodes) — blurs the intra/inter-cell gap
/// distinction and defeats this attacker.
class GapClusterAttacker : public Attacker {
 public:
  /// A gap larger than `gap_factor` x the median interval starts a new
  /// cluster (= presumed new cell).
  explicit GapClusterAttacker(double gap_factor = 3.0)
      : gap_factor_(gap_factor) {}
  [[nodiscard]] std::string name() const override { return "gap-cluster"; }
  double estimate_count(const PeakReport& report) override;

 private:
  double gap_factor_;
};

/// The sharper form of the Section VII-A train attack: a cell crossing
/// successively-selected electrodes emits peaks at one fixed interval, so
/// the attacker finds the dominant inter-peak interval and chains
/// consecutive peaks spaced by it into one cell. Non-successive electrode
/// keys (the countermeasure) make intra-train intervals heterogeneous,
/// breaking the chains and the count estimate with them.
class PeriodicTrainAttacker : public Attacker {
 public:
  /// Intervals within `tolerance` (relative) of the dominant interval
  /// extend the current chain.
  explicit PeriodicTrainAttacker(double tolerance = 0.3)
      : tolerance_(tolerance) {}
  [[nodiscard]] std::string name() const override {
    return "periodic-train";
  }
  double estimate_count(const PeakReport& report) override;

 private:
  double tolerance_;
};

/// Clusters consecutive peaks of (nearly) equal width as one cell.
class WidthSignatureAttacker : public Attacker {
 public:
  explicit WidthSignatureAttacker(double relative_tolerance = 0.15)
      : tolerance_(relative_tolerance) {}
  [[nodiscard]] std::string name() const override {
    return "width-signature";
  }
  double estimate_count(const PeakReport& report) override;

 private:
  double tolerance_;
};

/// All four standard attackers.
std::vector<std::unique_ptr<Attacker>> standard_attackers(
    const sim::ElectrodeArrayDesign& design);

/// Relative count-recovery error |estimate - truth| / truth.
double recovery_error(double estimate, double true_count);

}  // namespace medsen::core
