#include "core/attacker.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace medsen::core {

namespace {
constexpr double kReferenceHz = 5.0e5;

/// Count clusters of consecutive peaks whose `value` stays within
/// `tolerance` (relative) of the cluster's first member.
double cluster_count(const std::vector<dsp::Peak>& peaks, double tolerance,
                     double (*value)(const dsp::Peak&)) {
  if (peaks.empty()) return 0.0;
  std::size_t clusters = 1;
  double anchor = value(peaks.front());
  for (std::size_t i = 1; i < peaks.size(); ++i) {
    const double v = value(peaks[i]);
    const double scale = std::max(std::fabs(anchor), 1e-12);
    if (std::fabs(v - anchor) / scale > tolerance) {
      ++clusters;
      anchor = v;
    }
  }
  return static_cast<double>(clusters);
}
}  // namespace

double NaiveCountAttacker::estimate_count(const PeakReport& report) {
  return static_cast<double>(report.reference_peak_count(kReferenceHz));
}

DivisionAttacker::DivisionAttacker(const sim::ElectrodeArrayDesign& design) {
  // Best static guess: assume all electrodes were always on.
  assumed_factor_ =
      static_cast<double>(design.peaks_per_particle(design.all_mask()));
}

double DivisionAttacker::estimate_count(const PeakReport& report) {
  const auto peaks = report.reference_peak_count(kReferenceHz);
  return assumed_factor_ > 0.0
             ? static_cast<double>(peaks) / assumed_factor_
             : static_cast<double>(peaks);
}

double GapClusterAttacker::estimate_count(const PeakReport& report) {
  const auto& peaks = report.nearest_channel(kReferenceHz).peaks;
  if (peaks.size() < 2) return static_cast<double>(peaks.size());
  std::vector<double> intervals;
  intervals.reserve(peaks.size() - 1);
  for (std::size_t i = 1; i < peaks.size(); ++i)
    intervals.push_back(peaks[i].time_s - peaks[i - 1].time_s);
  std::vector<double> sorted = intervals;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  std::size_t clusters = 1;
  for (double gap : intervals)
    if (gap > gap_factor_ * median) ++clusters;
  return static_cast<double>(clusters);
}

double PeriodicTrainAttacker::estimate_count(const PeakReport& report) {
  const auto& peaks = report.nearest_channel(kReferenceHz).peaks;
  if (peaks.size() < 3) return static_cast<double>(peaks.size());
  std::vector<double> intervals;
  intervals.reserve(peaks.size() - 1);
  for (std::size_t i = 1; i < peaks.size(); ++i)
    intervals.push_back(peaks[i].time_s - peaks[i - 1].time_s);

  // Dominant interval: the one with the most relative-tolerance matches.
  double best_interval = intervals.front();
  std::size_t best_support = 0;
  for (double candidate : intervals) {
    std::size_t support = 0;
    for (double v : intervals)
      if (std::fabs(v - candidate) <= tolerance_ * candidate) ++support;
    if (support > best_support) {
      best_support = support;
      best_interval = candidate;
    }
  }

  // Chain peaks connected by ~dominant intervals; each chain (or isolated
  // peak) is presumed to be one cell.
  std::size_t cells = 1;
  for (double v : intervals)
    if (std::fabs(v - best_interval) > tolerance_ * best_interval) ++cells;
  // Chains are separated by non-matching intervals; consecutive
  // non-matching intervals each start a new presumed cell, which is
  // exactly how the heterogeneous-interval countermeasure inflates the
  // estimate.
  return static_cast<double>(cells);
}

double AmplitudeSignatureAttacker::estimate_count(const PeakReport& report) {
  const auto& peaks = report.nearest_channel(kReferenceHz).peaks;
  return cluster_count(peaks, tolerance_,
                       [](const dsp::Peak& p) { return p.amplitude; });
}

double WidthSignatureAttacker::estimate_count(const PeakReport& report) {
  const auto& peaks = report.nearest_channel(kReferenceHz).peaks;
  return cluster_count(peaks, tolerance_,
                       [](const dsp::Peak& p) { return p.width_s; });
}

std::vector<std::unique_ptr<Attacker>> standard_attackers(
    const sim::ElectrodeArrayDesign& design) {
  std::vector<std::unique_ptr<Attacker>> out;
  out.push_back(std::make_unique<NaiveCountAttacker>());
  out.push_back(std::make_unique<DivisionAttacker>(design));
  out.push_back(std::make_unique<AmplitudeSignatureAttacker>());
  out.push_back(std::make_unique<WidthSignatureAttacker>());
  out.push_back(std::make_unique<GapClusterAttacker>());
  out.push_back(std::make_unique<PeriodicTrainAttacker>());
  return out;
}

double recovery_error(double estimate, double true_count) {
  if (true_count <= 0.0) return estimate > 0.0 ? 1.0 : 0.0;
  return std::fabs(estimate - true_count) / true_count;
}

}  // namespace medsen::core
