#pragma once
// The analysis result the untrusted cloud returns to the sensor: detected
// peaks (timestamps, amplitudes, widths) per carrier channel of the
// *encrypted* signal. Contains no plaintext cytometry information — the
// controller decodes it with the key schedule.

#include <cstdint>
#include <span>
#include <vector>

#include "dsp/peak_detect.h"

namespace medsen::core {

/// Peak list for one carrier channel.
struct ChannelPeaks {
  double carrier_hz = 0.0;
  std::vector<dsp::Peak> peaks;
};

/// The full ciphertext-domain analysis report.
struct PeakReport {
  std::vector<ChannelPeaks> channels;

  /// Channel whose carrier is closest to `hz` (the 500 kHz reference for
  /// counting; classification uses several). Throws if empty.
  [[nodiscard]] const ChannelPeaks& nearest_channel(double hz) const;

  /// Total encrypted peak count on the reference channel.
  [[nodiscard]] std::size_t reference_peak_count(double hz = 5.0e5) const;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static PeakReport deserialize(std::span<const std::uint8_t> bytes);
};

}  // namespace medsen::core
