#pragma once
// Controller-side decryption of the cloud's peak report (paper Section
// IV-A): light arithmetic only — per key period, divide the observed peak
// count by that key's peak-multiplication factor, undo the gain scaling on
// amplitudes, and undo the flow-speed scaling on widths. Runs comfortably
// on the resource-constrained trusted computing base.

#include <cstddef>
#include <vector>

#include "core/key.h"
#include "core/peak_report.h"
#include "sim/electrode_array.h"

namespace medsen::core {

/// One decoded (decrypted) peak with key effects removed.
struct DecodedPeak {
  double time_s = 0.0;
  double width_s = 0.0;  ///< corrected to the reference flow speed
  /// Gain-corrected amplitude per report channel (aligned with
  /// PeakReport::channels order; 0 where no matching peak was found).
  std::vector<double> amplitudes;
};

/// Per-key-period accounting, useful for diagnostics and tests.
struct PeriodCount {
  double t_start_s = 0.0;
  double t_end_s = 0.0;
  std::size_t encrypted_peaks = 0;   ///< peaks observed in the period
  std::size_t multiplication = 0;    ///< key-derived factor
  double decoded = 0.0;              ///< encrypted_peaks / multiplication
};

struct DecryptionResult {
  /// Estimated true particle count (sum of per-period decoded counts).
  double estimated_count = 0.0;
  std::vector<PeriodCount> periods;
  std::vector<DecodedPeak> peaks;
};

struct DecryptorConfig {
  double reference_hz = 5.0e5;       ///< counting/alignment channel
  double reference_flow_ul_min = 0.08;
  /// Max |dt| when matching the same peak across carrier channels.
  double channel_match_tolerance_s = 0.03;
};

/// Decrypt a ciphertext-domain peak report using the key schedule that
/// produced it. `duration_s` bounds the last key period.
DecryptionResult decrypt_report(const PeakReport& report,
                                const KeySchedule& schedule,
                                const sim::ElectrodeArrayDesign& design,
                                double duration_s,
                                const DecryptorConfig& config = {});

/// Expected gain correction for a key: mean gain over active electrodes,
/// weighted by how many peaks each contributes (lead = 1, others = 2).
double expected_gain(const SensorKey& key, const KeyParams& params,
                     const sim::ElectrodeArrayDesign& design);

}  // namespace medsen::core
