#include "core/decryptor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace medsen::core {

double expected_gain(const SensorKey& key, const KeyParams& params,
                     const sim::ElectrodeArrayDesign& design) {
  double weighted = 0.0;
  double weight = 0.0;
  for (std::size_t i = 0; i < params.num_electrodes; ++i) {
    if (((key.electrodes >> i) & 1u) == 0) continue;
    const bool is_lead =
        (i == design.lead_index) && !design.fixed_lead_electrode;
    const double w = is_lead ? 1.0 : 2.0;
    const std::uint8_t code =
        i < key.gain_codes.size() ? key.gain_codes[i] : 0;
    weighted += w * gain_value(params, code);
    weight += w;
  }
  return weight > 0.0 ? weighted / weight : 1.0;
}

DecryptionResult decrypt_report(const PeakReport& report,
                                const KeySchedule& schedule,
                                const sim::ElectrodeArrayDesign& design,
                                double duration_s,
                                const DecryptorConfig& config) {
  if (schedule.empty())
    throw std::invalid_argument("decrypt_report: empty key schedule");
  DecryptionResult result;
  const ChannelPeaks& ref = report.nearest_channel(config.reference_hz);
  const auto& keys = schedule.keys();

  // Per-period peak counting and division by the multiplication factor.
  for (std::size_t k = 0; k < keys.size(); ++k) {
    PeriodCount period;
    period.t_start_s = keys[k].t_start_s;
    period.t_end_s =
        (k + 1 < keys.size()) ? keys[k + 1].t_start_s : duration_s;
    period.multiplication =
        design.peaks_per_particle(keys[k].key.electrodes);
    for (const auto& p : ref.peaks)
      if (p.time_s >= period.t_start_s && p.time_s < period.t_end_s)
        ++period.encrypted_peaks;
    period.decoded =
        period.multiplication > 0
            ? static_cast<double>(period.encrypted_peaks) /
                  static_cast<double>(period.multiplication)
            : 0.0;
    result.estimated_count += period.decoded;
    result.periods.push_back(period);
  }

  // Per-peak amplitude / width correction.
  result.peaks.reserve(ref.peaks.size());
  for (const auto& p : ref.peaks) {
    const SensorKey& key = schedule.key_at(p.time_s);
    const double gain = expected_gain(key, schedule.params(), design);
    const double flow = flow_value(schedule.params(), key.flow_code);
    DecodedPeak decoded;
    decoded.time_s = p.time_s;
    // Peak width scales inversely with flow speed; normalize to the
    // reference flow.
    decoded.width_s = p.width_s * flow / config.reference_flow_ul_min;
    decoded.amplitudes.reserve(report.channels.size());
    for (const auto& ch : report.channels) {
      // Match by time across channels (same physical transit).
      double amplitude = 0.0;
      double best_dt = config.channel_match_tolerance_s;
      for (const auto& q : ch.peaks) {
        const double dt = std::fabs(q.time_s - p.time_s);
        if (dt <= best_dt) {
          best_dt = dt;
          amplitude = q.amplitude;
        }
      }
      decoded.amplitudes.push_back(gain > 0.0 ? amplitude / gain : 0.0);
    }
    result.peaks.push_back(std::move(decoded));
  }
  return result;
}

}  // namespace medsen::core
