#pragma once
// The MedSen sensor key (paper Section IV-A):
//
//   K(t) = (E(t), G(t), S(t))
//
// E — binary vector of on/off output electrodes (the multiplexer routing),
// G — per-electrode output gains (quantized to gain_bits levels),
// S — fluid flow speed in the channel (quantized to flow_bits levels).
//
// The deployed scheme rotates the key every `period_s` seconds; the ideal
// per-cell variant's key length is computed by crypto::keymath (Eq. 2).
// Keys are generated on, and never leave, the sensor controller (the TCB).

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/chacha20.h"
#include "sim/acquisition.h"
#include "sim/electrode_array.h"

namespace medsen::core {

/// One key period's sensor configuration.
struct SensorKey {
  sim::ElectrodeMask electrodes = 0;     ///< E: output electrodes  // medsen: secret
  std::vector<std::uint8_t> gain_codes;  ///< G: per-output gains  // medsen: secret
  std::uint8_t flow_code = 0;            ///< S: quantized flow  // medsen: secret
};

/// Key-space parameters (resolution choices from Section VI-B).
struct KeyParams {
  std::size_t num_electrodes = 9;
  unsigned gain_bits = 4;     ///< 16 gain levels
  unsigned flow_bits = 4;     ///< 16 flow speeds
  double gain_min = 0.5;      ///< linear gain range the front-end spans
  double gain_max = 2.0;
  double flow_min_ul_min = 0.05;
  double flow_max_ul_min = 0.16;
  double period_s = 2.0;      ///< key renewal interval
  std::size_t min_active_electrodes = 1;
  /// Countermeasure from Section VII-A: never select runs of successive
  /// electrodes, which produce recognizable periodic peak trains.
  bool avoid_successive_electrodes = false;

  [[nodiscard]] std::uint32_t gain_levels() const { return 1u << gain_bits; }
  [[nodiscard]] std::uint32_t flow_levels() const { return 1u << flow_bits; }
};

/// Map a gain code to its linear gain (log-spaced across the range so the
/// multiplicative concealment is uniform in dB).
double gain_value(const KeyParams& params, std::uint8_t code);

/// Map a flow code to uL/min (linear across the range).
double flow_value(const KeyParams& params, std::uint8_t code);

/// A key with its activation time.
struct TimedKey {
  double t_start_s = 0.0;
  SensorKey key;
};

/// The full key sequence for one acquisition. Produced by the controller;
/// convertible to the hardware control trace the simulator executes.
class KeySchedule {
 public:
  KeySchedule() = default;
  KeySchedule(KeyParams params, std::vector<TimedKey> keys);
  /// The schedule IS the session's symmetric key (Section IV-A): wipe
  /// every electrode mask, gain code, and flow code on the way out so a
  /// controller teardown leaves no keying material behind.
  ~KeySchedule();
  KeySchedule(const KeySchedule&) = default;
  KeySchedule& operator=(const KeySchedule&) = default;
  KeySchedule(KeySchedule&&) noexcept = default;
  KeySchedule& operator=(KeySchedule&&) noexcept = default;

  /// Generate a fresh random schedule covering [0, duration_s).
  static KeySchedule generate(const KeyParams& params, double duration_s,
                              crypto::ChaChaRng& rng);

  /// Fixed "encryption off" schedule: one electrode, unit gain, nominal
  /// flow — the mode used when submitting the bare cyto-code for
  /// server-side authentication (Section V).
  static KeySchedule plaintext(const KeyParams& params, double duration_s);

  [[nodiscard]] const KeyParams& params() const { return params_; }
  [[nodiscard]] const std::vector<TimedKey>& keys() const { return keys_; }
  [[nodiscard]] bool empty() const { return keys_.empty(); }

  /// Key in effect at time t.
  [[nodiscard]] const SensorKey& key_at(double t) const;

  /// Convert to the hardware control trace (multiplexer masks, gains,
  /// pump speeds) that the sensor executes.
  [[nodiscard]] std::vector<sim::ControlSegment> control_trace() const;

  /// Peak multiplication factor of the key active at time t for `design`.
  [[nodiscard]] std::size_t multiplication_factor(
      const sim::ElectrodeArrayDesign& design, double t) const;

  /// Serialized size in bits (the deployed-scheme key length; compare with
  /// crypto::total_key_bits for the ideal scheme).
  [[nodiscard]] std::uint64_t size_bits() const;

  /// Remove `excluded` electrodes from every key's E(t) — the recovery
  /// path's re-key after electrodes are implicated in a fault. A key
  /// whose mask would become empty falls back to the lowest admissible
  /// electrode outside the exclusion (an all-dark sensor counts
  /// nothing). No-op when `excluded` is 0. Returns the electrodes that
  /// were actually cleared somewhere in the schedule.
  sim::ElectrodeMask mask_electrodes(sim::ElectrodeMask excluded);

  /// Scale every key's flow speed down to at most `scale` times its
  /// original value (snapped to the quantized flow codes, floored at
  /// code 0) — the recovery response to clog/saturation signatures.
  /// No-op when scale >= 1.
  void derate_flow(double scale);

  /// Binary serialization (stored only on the controller).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static KeySchedule deserialize(std::span<const std::uint8_t> bytes);

 private:
  KeyParams params_;
  std::vector<TimedKey> keys_;  // SensorKey fields are the secrets; the
                                // destructor wipes each entry in place
};

/// Generate one random key (used by KeySchedule::generate and tests).
SensorKey random_key(const KeyParams& params, crypto::ChaChaRng& rng);

}  // namespace medsen::core
