#pragma once
// Threshold-based diagnosis on the decoded cell count (paper Section II:
// "MedSen simply decodes the number and determines the user's disease
// condition through a simple threshold comparison"). The canonical
// workload is CD4+ T-cell counting for HIV staging, the strongest
// progression predictor cited by the paper.

#include <string>
#include <vector>

namespace medsen::core {

/// A diagnostic rule: concentration band -> condition label.
struct DiagnosticBand {
  double min_per_ul = 0.0;  ///< inclusive lower bound, cells/uL
  std::string label;
  bool alert = false;       ///< should the app flag this to the user
};

/// An ordered set of bands (ascending min_per_ul); classify() picks the
/// highest band whose lower bound is <= the measured concentration.
class DiagnosticProfile {
 public:
  DiagnosticProfile(std::string name, std::vector<DiagnosticBand> bands);

  /// Standard CD4 staging: <200 severe immunosuppression (alert),
  /// 200-500 monitor (alert), >=500 normal.
  static DiagnosticProfile cd4_staging();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<DiagnosticBand>& bands() const {
    return bands_;
  }
  [[nodiscard]] const DiagnosticBand& classify(
      double concentration_per_ul) const;

 private:
  std::string name_;
  std::vector<DiagnosticBand> bands_;
};

/// Final outcome delivered to the user.
struct Diagnosis {
  double estimated_count = 0.0;
  double volume_ul = 0.0;
  double concentration_per_ul = 0.0;
  std::string condition;
  bool alert = false;
  /// 1.0 for a clean session; the recovery orchestrator downgrades it
  /// when it had to give up on a fully healthy acquisition and deliver a
  /// best-effort result (see core/recovery.h).
  double confidence = 1.0;
};

/// Build a diagnosis from a decoded count and pumped volume.
Diagnosis diagnose(const DiagnosticProfile& profile, double estimated_count,
                   double volume_ul);

}  // namespace medsen::core
