#include "core/recovery.h"

#include <algorithm>
#include <array>

namespace medsen::core {

const char* to_string(RecoveryAction action) {
  switch (action) {
    case RecoveryAction::kNone: return "none";
    case RecoveryAction::kRetry: return "retry";
    case RecoveryAction::kFlush: return "flush";
    case RecoveryAction::kReduceFlow: return "reduce flow";
    case RecoveryAction::kMaskElectrodes: return "mask electrodes";
    case RecoveryAction::kGiveUp: return "give up";
  }
  return "unknown";
}

ElectrodeHealthLedger::ElectrodeHealthLedger(std::size_t num_electrodes,
                                             std::size_t quarantine_strikes)
    : quarantine_strikes_(std::max<std::size_t>(1, quarantine_strikes)),
      strikes_(num_electrodes, 0) {}

void ElectrodeHealthLedger::begin_loop() { suspects_ = 0; }

void ElectrodeHealthLedger::strike(sim::ElectrodeMask electrodes) {
  for (std::size_t e = 0; e < strikes_.size(); ++e) {
    if (((electrodes >> e) & 1u) == 0) continue;
    suspects_ |= sim::ElectrodeMask{1} << e;
    if (++strikes_[e] >= quarantine_strikes_)
      quarantined_ |= sim::ElectrodeMask{1} << e;
  }
}

std::size_t ElectrodeHealthLedger::strikes(std::size_t electrode) const {
  return electrode < strikes_.size() ? strikes_[electrode] : 0;
}

namespace {

using net::QualityReason;

constexpr std::size_t kReasonCount = 7;  // kNone..kDrift

constexpr std::uint8_t reason_bit(QualityReason reason) {
  return static_cast<std::uint8_t>(1u << static_cast<std::uint8_t>(reason));
}

/// Reasons that can implicate an electrode when they fail in isolation.
/// Empty-channel / no-channel verdicts are transport or server problems;
/// blaming hardware for them would quarantine innocents.
constexpr std::uint8_t kStrikeableBits =
    reason_bit(QualityReason::kSaturated) |
    reason_bit(QualityReason::kDropout) |
    reason_bit(QualityReason::kNoiseFloor) |
    reason_bit(QualityReason::kDrift);

}  // namespace

RecoveryPlan plan_recovery(const net::ErrorPayload& error,
                           const RecoveryContext& context,
                           ElectrodeHealthLedger& ledger,
                           const RetryPolicy& policy) {
  RecoveryPlan plan;
  plan.flow_scale = context.flow_scale;

  if (error.code != net::ErrorCode::kQualityRejected) {
    plan.action = RecoveryAction::kRetry;
    plan.rationale = std::string("non-quality error (") +
                     net::to_string(error.code) + "), plain retry";
    return plan;
  }

  const auto& reasons = error.channel_reasons;
  const std::size_t n_channels = reasons.size();
  if (n_channels == 0) {
    // Legacy verdict with only a summary subcode: no channel to blame.
    plan.action = RecoveryAction::kFlush;
    plan.rationale = "quality rejection without channel detail, flushing";
    return plan;
  }

  // A reason failing on most channels is systemic — the fluidics or the
  // sample, not any one electrode. On a single-channel upload every
  // failure is systemic (one channel can never isolate an electrode).
  const std::size_t systemic_threshold =
      n_channels < 2
          ? 1
          : std::max<std::size_t>(2, (n_channels + 1) / 2);
  // Each byte is a failure bitmask; count per-reason failing channels.
  std::array<std::size_t, kReasonCount> failing_per_reason{};
  for (std::uint8_t raw : reasons)
    for (std::size_t r = 1; r < kReasonCount; ++r)
      if ((raw & (1u << r)) != 0) ++failing_per_reason[r];

  bool systemic_clog_signature = false;   // saturation / dropout
  bool systemic_flush_signature = false;  // noise / drift
  std::uint8_t systemic_bits = 0;
  for (std::size_t r = 1; r < kReasonCount; ++r) {
    if (failing_per_reason[r] < systemic_threshold) continue;
    systemic_bits |= static_cast<std::uint8_t>(1u << r);
    const auto reason = static_cast<QualityReason>(r);
    if (reason == QualityReason::kSaturated ||
        reason == QualityReason::kDropout)
      systemic_clog_signature = true;
    else if (reason == QualityReason::kNoiseFloor ||
             reason == QualityReason::kDrift)
      systemic_flush_signature = true;
  }

  // A failure that is NOT systemic points at the channel's bound
  // electrodes: strike every active, not-yet-excluded electrode wired to
  // it. A bubble's systemic drift on a channel does not exonerate the
  // same channel's isolated saturation — the bitmask keeps both visible.
  // Only the key holder knows `session_active_union`, so this inversion
  // is possible nowhere but the TCB.
  sim::ElectrodeMask suspects = 0;
  for (std::size_t c = 0; c < n_channels; ++c) {
    const std::uint8_t isolated =
        static_cast<std::uint8_t>(reasons[c] & kStrikeableBits &
                                  ~systemic_bits);
    if (isolated == 0) continue;
    for (std::size_t e = 0; e < context.num_electrodes; ++e) {
      if (sim::carrier_channel_of_electrode(e, n_channels) != c) continue;
      const auto bit = sim::ElectrodeMask{1} << e;
      const bool active = (context.session_active_union & bit) != 0;
      // A previously masked suspect whose channel STILL fails is the
      // prime stuck-ON candidate: the mux cannot actually disconnect
      // it. Re-striking it is the path into quarantine.
      const bool prior_suspect = (ledger.suspects() & bit) != 0;
      if (!active && !prior_suspect) continue;
      if ((ledger.quarantined() & bit) != 0) continue;
      suspects |= bit;
    }
  }
  if (suspects != 0) {
    ledger.strike(suspects);
    plan.newly_suspect = suspects;
  }

  if (systemic_clog_signature) {
    plan.action = RecoveryAction::kReduceFlow;
    plan.flow_scale = std::max(policy.min_flow_scale,
                               context.flow_scale * policy.flow_derate);
    plan.rationale = "systemic saturation/dropout (clog or stall), "
                     "derating flow";
    if (suspects != 0)
      plan.rationale += " and masking isolated-channel suspects";
  } else if (suspects != 0) {
    plan.action = RecoveryAction::kMaskElectrodes;
    plan.rationale =
        "isolated channel failure, masking suspect electrodes";
  } else if (systemic_flush_signature) {
    plan.action = RecoveryAction::kFlush;
    plan.rationale = "systemic noise/drift (bubbles or debris), flushing";
  } else {
    plan.action = RecoveryAction::kRetry;
    plan.rationale = "no actionable channel signature, plain retry";
  }
  return plan;
}

}  // namespace medsen::core
