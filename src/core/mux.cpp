#include "core/mux.h"

#include <stdexcept>

namespace medsen::core {

std::size_t MuxState::measured_count() const {
  std::size_t n = 0;
  for (auto r : routes)
    if (r == MuxRoute::kMeasurement) ++n;
  return n;
}

sim::ElectrodeMask MuxState::measurement_mask() const {
  sim::ElectrodeMask mask = 0;
  for (std::size_t i = 0; i < routes.size() && i < 32; ++i)
    if (routes[i] == MuxRoute::kMeasurement)
      mask |= sim::ElectrodeMask{1} << i;
  return mask;
}

Multiplexer::Multiplexer(std::size_t num_inputs) : num_inputs_(num_inputs) {
  if (num_inputs == 0 || num_inputs > 32)
    throw std::invalid_argument("Multiplexer: inputs must be in [1,32]");
  state_.routes.assign(num_inputs, MuxRoute::kGround);
}

const MuxState& Multiplexer::select(sim::ElectrodeMask mask) {
  for (std::size_t i = 0; i < num_inputs_; ++i)
    state_.routes[i] = ((mask >> i) & 1u) ? MuxRoute::kMeasurement
                                          : MuxRoute::kGround;
  ++switch_count_;
  return state_;
}

}  // namespace medsen::core
