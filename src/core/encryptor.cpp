#include "core/encryptor.h"

#include <stdexcept>

namespace medsen::core {

SensorEncryptor::SensorEncryptor(sim::ElectrodeArrayDesign design,
                                 sim::ChannelConfig channel_config,
                                 sim::AcquisitionConfig acquisition_config)
    : design_(design),
      channel_config_(channel_config),
      acquisition_config_(std::move(acquisition_config)),
      mux_(design.num_outputs >= 16 ? design.num_outputs : 16) {}

EncryptedAcquisition SensorEncryptor::acquire(const sim::SampleSpec& sample,
                                              const KeySchedule& schedule,
                                              double duration_s,
                                              std::uint64_t seed) {
  if (schedule.empty())
    throw std::invalid_argument("SensorEncryptor: empty key schedule");
  if (schedule.params().num_electrodes != design_.num_outputs)
    throw std::invalid_argument(
        "SensorEncryptor: key electrode count does not match the array");

  const auto trace = schedule.control_trace();
  for (const auto& seg : trace) mux_.select(seg.active_mask);

  const auto result = sim::acquire(sample, channel_config_, design_,
                                   acquisition_config_, trace, duration_s,
                                   seed);
  return {result.signals, result.truth};
}

}  // namespace medsen::core
