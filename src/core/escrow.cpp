#include "core/escrow.h"

#include <stdexcept>

#include "crypto/chacha20.h"
#include "crypto/hkdf.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "util/serialize.h"

namespace medsen::core {

namespace {

std::array<std::uint8_t, 32> derive(std::span<const std::uint8_t> secret,
                                    const char* label) {
  const auto okm = crypto::hkdf_label(secret, label, 32);
  std::array<std::uint8_t, 32> key{};
  std::copy(okm.begin(), okm.end(), key.begin());
  return key;
}

std::vector<std::uint8_t> mac_input(const EscrowPackage& package) {
  std::vector<std::uint8_t> input(package.nonce.begin(),
                                  package.nonce.end());
  input.insert(input.end(), package.ciphertext.begin(),
               package.ciphertext.end());
  return input;
}

}  // namespace

std::vector<std::uint8_t> EscrowPackage::serialize() const {
  util::ByteWriter out;
  out.bytes(nonce);
  out.blob(ciphertext);
  out.bytes(mac);
  return out.take();
}

EscrowPackage EscrowPackage::deserialize(
    std::span<const std::uint8_t> bytes) {
  util::ByteReader in(bytes);
  EscrowPackage package;
  for (auto& b : package.nonce) b = in.u8();
  package.ciphertext = in.blob();
  for (auto& b : package.mac) b = in.u8();
  in.expect_done("EscrowPackage");
  return package;
}

EscrowPackage escrow_key_schedule(const KeySchedule& schedule,
                                  std::span<const std::uint8_t> shared_secret,
                                  std::uint64_t entropy) {
  EscrowPackage package;
  crypto::ChaChaRng nonce_rng(entropy);
  nonce_rng.fill(package.nonce);

  const auto enc_key = derive(shared_secret, "medsen-escrow-enc");
  package.ciphertext = schedule.serialize();
  crypto::ChaCha20 cipher(enc_key,
                          std::span<const std::uint8_t, 12>(package.nonce),
                          1);
  cipher.apply(package.ciphertext);

  const auto mac_key = derive(shared_secret, "medsen-escrow-mac");
  package.mac = crypto::hmac_sha256(mac_key, mac_input(package));
  return package;
}

KeySchedule recover_key_schedule(
    const EscrowPackage& package,
    std::span<const std::uint8_t> shared_secret) {
  const auto mac_key = derive(shared_secret, "medsen-escrow-mac");
  const auto expected = crypto::hmac_sha256(mac_key, mac_input(package));
  if (!crypto::digest_equal(expected, package.mac))
    throw std::runtime_error(
        "recover_key_schedule: MAC verification failed");

  const auto enc_key = derive(shared_secret, "medsen-escrow-enc");
  std::vector<std::uint8_t> plaintext = package.ciphertext;
  crypto::ChaCha20 cipher(enc_key,
                          std::span<const std::uint8_t, 12>(package.nonce),
                          1);
  cipher.apply(plaintext);
  return KeySchedule::deserialize(plaintext);
}

DecryptionResult practitioner_decrypt(
    const EscrowPackage& package, std::span<const std::uint8_t> shared_secret,
    const PeakReport& report, const sim::ElectrodeArrayDesign& design,
    double duration_s) {
  const KeySchedule schedule =
      recover_key_schedule(package, shared_secret);
  return decrypt_report(report, schedule, design, duration_s);
}

}  // namespace medsen::core
