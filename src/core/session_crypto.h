#pragma once
// core::SessionCrypto: the controller's half of the EV2-style session
// plane. It holds the device's long-term (diversified) transport key,
// runs the AuthChallenge/AuthResponse handshake against the cloud, and
// afterwards stamps every envelope with the derived session MAC key and
// a monotonic command counter:
//
//   device                               cloud
//     | -- AuthChallenge(epoch, RndA) ---> |   (MAC: long-term key, ctr 0)
//     | <-- AuthResponse(RndB, proof) ---- |   (MAC: long-term key, ctr 0)
//     |  verify proof == CMAC(K, RndB||RndA)  [constant time]
//     |  K_ses = KDF(K, "medsen-ses-mac", RndA||RndB)
//     | -- command, ctr=1, MAC: K_ses ---> |
//     | -- command, ctr=2, MAC: K_ses ---> |  ...
//
// RndA comes from the controller's deterministic ChaCha stream (seeded
// from the session-crypto lane of the entropy seed, so enabling the
// session plane never perturbs the acquisition RNG and golden traces
// stay bit-identical). Counters only ever move forward — a re-handshake
// resets them, which is safe because it also replaces the key.

#include <cstdint>
#include <vector>

#include "crypto/chacha20.h"
#include "net/messages.h"
#include "util/secret_bytes.h"

namespace medsen::core {

class SessionCrypto {
 public:
  /// `device_key` is the long-term transport key burned in at
  /// personalization (16 bytes when diversified; any length in legacy
  /// deployments); `key_epoch` names the master-key epoch it was derived
  /// under. `entropy_seed` feeds the challenge RNG — same seed, same
  /// handshake, by design.
  SessionCrypto(std::uint64_t device_id, std::vector<std::uint8_t> device_key,
                std::uint32_t key_epoch, std::uint64_t entropy_seed);

  /// Open a handshake: a fresh RndA inside an AuthChallenge envelope
  /// MAC'd with the long-term key (counter 0). Invalidates any active
  /// session — commands race a re-key at their peril.
  net::Envelope make_challenge(std::uint64_t session_id);

  /// Close the handshake with the server's AuthResponse envelope.
  /// Verifies the envelope MAC (long-term key) and the key-possession
  /// proof in constant time, then derives the session MAC key. Returns
  /// false — leaving no session active — on any mismatch.
  bool complete(const net::Envelope& response);

  /// Whether a session is established (complete() succeeded).
  [[nodiscard]] bool active() const { return !session_mac_key_.empty(); }
  /// The session id given to make_challenge() (valid while active).
  [[nodiscard]] std::uint64_t session_id() const { return session_id_; }
  /// Next command counter (first command after a handshake is 1).
  [[nodiscard]] std::uint32_t next_counter() { return ++counter_; }
  /// The counter most recently handed out (0 right after a handshake).
  [[nodiscard]] std::uint32_t last_counter() const { return counter_; }

  [[nodiscard]] const util::SecretBytes& session_mac_key() const {
    return session_mac_key_;
  }
  [[nodiscard]] const util::SecretBytes& device_key() const {
    return device_key_;
  }
  [[nodiscard]] std::uint64_t device_id() const { return device_id_; }
  [[nodiscard]] std::uint32_t key_epoch() const { return key_epoch_; }

  /// Drop the session (server said kAuthRequired, or the caller is
  /// re-keying). The next make_challenge() starts fresh.
  void invalidate();

 private:
  std::uint64_t device_id_;
  util::SecretBytes device_key_;
  std::uint32_t key_epoch_;
  crypto::ChaChaRng rng_;
  std::uint64_t session_id_ = 0;
  /// RndA is key-input material mid-handshake; SecretBytes wipes it on
  /// replacement and on teardown just like the keys proper.
  util::SecretBytes pending_rnd_a_;
  util::SecretBytes session_mac_key_;
  std::uint32_t counter_ = 0;
};

}  // namespace medsen::core
