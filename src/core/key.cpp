#include "core/key.h"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "util/secure_zero.h"
#include "util/serialize.h"

namespace medsen::core {

double gain_value(const KeyParams& params, std::uint8_t code) {
  const std::uint32_t levels = params.gain_levels();
  const double frac = levels > 1
                          ? static_cast<double>(code % levels) /
                                static_cast<double>(levels - 1)
                          : 0.0;
  // Log spacing: gain = gmin * (gmax/gmin)^frac.
  return params.gain_min *
         std::pow(params.gain_max / params.gain_min, frac);
}

double flow_value(const KeyParams& params, std::uint8_t code) {
  const std::uint32_t levels = params.flow_levels();
  const double frac = levels > 1
                          ? static_cast<double>(code % levels) /
                                static_cast<double>(levels - 1)
                          : 0.0;
  return params.flow_min_ul_min +
         frac * (params.flow_max_ul_min - params.flow_min_ul_min);
}

namespace {

bool has_successive_pair(sim::ElectrodeMask mask) {
  return (mask & (mask >> 1)) != 0;
}

}  // namespace

SensorKey random_key(const KeyParams& params, crypto::ChaChaRng& rng) {
  if (params.num_electrodes == 0 || params.num_electrodes > 31)
    throw std::invalid_argument("random_key: electrodes must be in [1,31]");
  const auto full =
      static_cast<sim::ElectrodeMask>((1u << params.num_electrodes) - 1);

  SensorKey key;
  for (int attempt = 0; attempt < 4096; ++attempt) {
    const auto mask = static_cast<sim::ElectrodeMask>(rng.next_u32()) & full;
    if (static_cast<std::size_t>(std::popcount(mask)) <
        params.min_active_electrodes)
      continue;
    if (params.avoid_successive_electrodes && has_successive_pair(mask))
      continue;
    key.electrodes = mask;
    break;
  }
  if (key.electrodes == 0) {
    // Pathological parameters (e.g. avoid_successive with tiny arrays):
    // fall back to the lowest admissible single electrode.
    key.electrodes = 1;
  }
  key.gain_codes.resize(params.num_electrodes);
  for (auto& code : key.gain_codes)
    code = static_cast<std::uint8_t>(rng.uniform(params.gain_levels()));
  key.flow_code = static_cast<std::uint8_t>(rng.uniform(params.flow_levels()));
  return key;
}

KeySchedule::KeySchedule(KeyParams params, std::vector<TimedKey> keys)
    : params_(params), keys_(std::move(keys)) {
  if (keys_.empty())
    throw std::invalid_argument("KeySchedule: needs at least one key");
}

KeySchedule::~KeySchedule() {
  for (auto& timed : keys_) {
    util::secure_wipe(timed.key.gain_codes);
    util::secure_zero(&timed.key.electrodes, sizeof(timed.key.electrodes));
    util::secure_zero(&timed.key.flow_code, sizeof(timed.key.flow_code));
  }
}

KeySchedule KeySchedule::generate(const KeyParams& params, double duration_s,
                                  crypto::ChaChaRng& rng) {
  if (duration_s <= 0.0 || params.period_s <= 0.0)
    throw std::invalid_argument("KeySchedule::generate: bad durations");
  std::vector<TimedKey> keys;
  for (double t = 0.0; t < duration_s; t += params.period_s)
    keys.push_back({t, random_key(params, rng)});
  return KeySchedule(params, std::move(keys));
}

KeySchedule KeySchedule::plaintext(const KeyParams& params,
                                   double duration_s) {
  (void)duration_s;
  SensorKey key;
  key.electrodes = 1;  // single output electrode
  key.gain_codes.assign(params.num_electrodes,
                        static_cast<std::uint8_t>(params.gain_levels() - 1));
  // Highest gain code maps to gain_max; pick the code whose value is
  // closest to 1.0 instead so plaintext amplitudes are unscaled.
  std::uint8_t best = 0;
  double best_err = 1e9;
  for (std::uint32_t c = 0; c < params.gain_levels(); ++c) {
    const double err =
        std::fabs(gain_value(params, static_cast<std::uint8_t>(c)) - 1.0);
    if (err < best_err) {
      best_err = err;
      best = static_cast<std::uint8_t>(c);
    }
  }
  key.gain_codes.assign(params.num_electrodes, best);
  // Nominal flow: the code nearest 0.08 uL/min (the evaluation's rate).
  std::uint8_t best_flow = 0;
  double best_flow_err = 1e9;
  for (std::uint32_t c = 0; c < params.flow_levels(); ++c) {
    const double err =
        std::fabs(flow_value(params, static_cast<std::uint8_t>(c)) - 0.08);
    if (err < best_flow_err) {
      best_flow_err = err;
      best_flow = static_cast<std::uint8_t>(c);
    }
  }
  key.flow_code = best_flow;
  return KeySchedule(params, {{0.0, key}});
}

const SensorKey& KeySchedule::key_at(double t) const {
  if (keys_.empty()) throw std::logic_error("key_at: empty schedule");
  const TimedKey* current = &keys_.front();
  for (const auto& tk : keys_) {
    if (tk.t_start_s <= t)
      current = &tk;
    else
      break;
  }
  return current->key;
}

std::vector<sim::ControlSegment> KeySchedule::control_trace() const {
  std::vector<sim::ControlSegment> trace;
  trace.reserve(keys_.size());
  for (const auto& tk : keys_) {
    sim::ControlSegment seg;
    seg.t_start_s = tk.t_start_s;
    seg.active_mask = tk.key.electrodes;
    seg.gains.reserve(tk.key.gain_codes.size());
    for (auto code : tk.key.gain_codes)
      seg.gains.push_back(gain_value(params_, code));
    seg.flow_ul_min = flow_value(params_, tk.key.flow_code);
    trace.push_back(std::move(seg));
  }
  return trace;
}

std::size_t KeySchedule::multiplication_factor(
    const sim::ElectrodeArrayDesign& design, double t) const {
  return design.peaks_per_particle(key_at(t).electrodes);
}

sim::ElectrodeMask KeySchedule::mask_electrodes(sim::ElectrodeMask excluded) {
  if (excluded == 0) return 0;
  const auto full =
      params_.num_electrodes >= 32
          ? ~sim::ElectrodeMask{0}
          : ((sim::ElectrodeMask{1} << params_.num_electrodes) - 1);
  sim::ElectrodeMask cleared = 0;
  for (auto& tk : keys_) {
    const sim::ElectrodeMask before = tk.key.electrodes & full;
    sim::ElectrodeMask after = before & ~excluded;
    if (after == 0) {
      // Never go fully dark: fall back to the lowest electrode outside
      // the exclusion so the attempt still counts particles.
      const sim::ElectrodeMask candidates = full & ~excluded;
      after = candidates & (~candidates + 1);  // lowest set bit (or 0)
      if (after == 0) after = before;          // everything excluded: keep
    }
    cleared |= before & ~after;
    tk.key.electrodes = after;
  }
  return cleared;
}

void KeySchedule::derate_flow(double scale) {
  if (scale >= 1.0) return;
  for (auto& tk : keys_) {
    const double target = scale * flow_value(params_, tk.key.flow_code);
    std::uint8_t best = 0;
    for (std::uint32_t c = 0; c < params_.flow_levels(); ++c) {
      const auto code = static_cast<std::uint8_t>(c);
      if (flow_value(params_, code) <= target &&
          flow_value(params_, code) >= flow_value(params_, best))
        best = code;
    }
    tk.key.flow_code = best;
  }
}

std::uint64_t KeySchedule::size_bits() const {
  const std::uint64_t per_key =
      params_.num_electrodes +
      static_cast<std::uint64_t>(params_.num_electrodes) * params_.gain_bits +
      params_.flow_bits;
  return per_key * keys_.size();
}

std::vector<std::uint8_t> KeySchedule::serialize() const {
  util::ByteWriter out;
  out.u32(static_cast<std::uint32_t>(params_.num_electrodes));
  out.u8(static_cast<std::uint8_t>(params_.gain_bits));
  out.u8(static_cast<std::uint8_t>(params_.flow_bits));
  out.f64(params_.gain_min);
  out.f64(params_.gain_max);
  out.f64(params_.flow_min_ul_min);
  out.f64(params_.flow_max_ul_min);
  out.f64(params_.period_s);
  out.u32(static_cast<std::uint32_t>(params_.min_active_electrodes));
  out.u8(params_.avoid_successive_electrodes ? 1 : 0);
  out.u32(static_cast<std::uint32_t>(keys_.size()));
  // Sanctioned serialization: this buffer is stored only on the
  // controller (inside the TCB) and never crosses the wire — see the
  // header contract. The waived lines are the key fields themselves.
  for (const auto& tk : keys_) {
    out.f64(tk.t_start_s);
    out.u32(tk.key.electrodes);  // medsen: allow(secret-serialize)
    out.u32(static_cast<std::uint32_t>(
        tk.key.gain_codes.size()));  // medsen: allow(secret-serialize)
    for (auto code : tk.key.gain_codes) out.u8(code);
    out.u8(tk.key.flow_code);  // medsen: allow(secret-serialize)
  }
  return out.take();
}

KeySchedule KeySchedule::deserialize(std::span<const std::uint8_t> bytes) {
  util::ByteReader in(bytes);
  KeyParams params;
  params.num_electrodes = in.u32();
  params.gain_bits = in.u8();
  params.flow_bits = in.u8();
  params.gain_min = in.f64();
  params.gain_max = in.f64();
  params.flow_min_ul_min = in.f64();
  params.flow_max_ul_min = in.f64();
  params.period_s = in.f64();
  params.min_active_electrodes = in.u32();
  params.avoid_successive_electrodes = in.u8() != 0;
  // Minimum wire size per key: t_start (8) + electrodes (4) + gain
  // count (4) + flow code (1); per gain code: one byte.
  const std::uint32_t count = in.count_u32(17);
  std::vector<TimedKey> keys;
  keys.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    TimedKey tk;
    tk.t_start_s = in.f64();
    tk.key.electrodes = in.u32();
    const std::uint32_t gains = in.count_u32(1);
    tk.key.gain_codes.resize(gains);
    for (auto& code : tk.key.gain_codes) code = in.u8();
    tk.key.flow_code = in.u8();
    keys.push_back(std::move(tk));
  }
  in.expect_done("KeySchedule");
  return KeySchedule(params, std::move(keys));
}

}  // namespace medsen::core
