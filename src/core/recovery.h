#pragma once
// Self-healing session recovery — the TCB side of the fault loop. The
// cloud's quality gate reports *which carrier channels* failed and why
// (net::ErrorPayload::channel_reasons); only the controller, holding the
// secret key schedule, can map a failing channel back to the physical
// electrodes that were active on it. This module turns that verdict into
// a bounded recovery plan:
//
//   reason (per channel)            action
//   ------------------------------  --------------------------------------
//   systemic saturation / dropout   kReduceFlow — clog/stall signature:
//   (>= half the channels)          derate the pump on the next attempt
//                                   (lower flow packs a clog more slowly)
//   systemic noise / drift          kFlush — bubbles or debris: flush and
//                                   re-acquire, nothing to re-key
//   isolated channel failure        kMaskElectrodes — strike every active
//                                   electrode bound to the channel and
//                                   re-key the next attempt without them
//   non-quality error               kRetry — transport/service transient
//
// Strikes accumulate in a persistent ElectrodeHealthLedger: after
// `quarantine_strikes` an electrode is quarantined and never re-enabled
// within the session (suspects are re-tried across session loops;
// quarantine is not). When RetryPolicy::max_attempts is exhausted the
// orchestrator degrades to a best-effort diagnosis with an explicit
// confidence downgrade instead of throwing.

#include <cstdint>
#include <string>
#include <vector>

#include "net/messages.h"
#include "sim/electrode_array.h"

namespace medsen::core {

/// Bounds on the self-healing retry loop.
struct RetryPolicy {
  std::size_t max_attempts = 3;        ///< acquisition attempts per session
  std::size_t quarantine_strikes = 2;  ///< strikes before quarantine
  double flow_derate = 0.75;           ///< pump scale per clog/sat retry
  double min_flow_scale = 0.5;         ///< floor on the cumulative derate
  double degraded_confidence = 0.4;    ///< confidence once retries exhaust
};

/// What the controller decided to do about a failed attempt.
enum class RecoveryAction : std::uint8_t {
  kNone = 0,
  kRetry = 1,           ///< plain retry (transient / non-quality error)
  kFlush = 2,           ///< systemic drift/noise: flush and re-acquire
  kReduceFlow = 3,      ///< clog/stall signature: derate the pump
  kMaskElectrodes = 4,  ///< isolated channel fault: re-key without suspects
  kGiveUp = 5,          ///< retries exhausted: degrade to best effort
};

[[nodiscard]] const char* to_string(RecoveryAction action);

/// One recovery decision. Besides the primary action, a plan may both
/// strike electrodes and derate flow (a clogged channel and a dead
/// electrode can fail the same attempt).
struct RecoveryPlan {
  RecoveryAction action = RecoveryAction::kNone;
  sim::ElectrodeMask newly_suspect = 0;  ///< electrodes struck this time
  double flow_scale = 1.0;  ///< cumulative derate after this plan
  std::string rationale;    ///< human-readable trace of the decision
};

/// Persistent per-electrode health. Strikes accumulate across attempts
/// and session loops; `suspects` are the electrodes masked for the rest
/// of the *current* session loop (cleared by begin_loop), `quarantined`
/// electrodes crossed the strike threshold and are never re-enabled.
class ElectrodeHealthLedger {
 public:
  ElectrodeHealthLedger() = default;
  ElectrodeHealthLedger(std::size_t num_electrodes,
                        std::size_t quarantine_strikes);

  /// Start a new session loop: suspects get another chance, quarantine
  /// and strike counters persist.
  void begin_loop();

  /// Implicate electrodes; each gains a strike and becomes suspect.
  /// Electrodes reaching the threshold move to quarantine.
  void strike(sim::ElectrodeMask electrodes);

  [[nodiscard]] sim::ElectrodeMask suspects() const { return suspects_; }
  [[nodiscard]] sim::ElectrodeMask quarantined() const {
    return quarantined_;
  }
  /// Everything the next re-key must exclude.
  [[nodiscard]] sim::ElectrodeMask excluded() const {
    return suspects_ | quarantined_;
  }
  [[nodiscard]] std::size_t strikes(std::size_t electrode) const;
  [[nodiscard]] std::size_t num_electrodes() const {
    return strikes_.size();
  }

 private:
  std::size_t quarantine_strikes_ = 2;
  std::vector<std::size_t> strikes_;
  sim::ElectrodeMask suspects_ = 0;
  sim::ElectrodeMask quarantined_ = 0;
};

/// Everything the planner needs besides the error itself. The
/// `session_active_union` is secret-derived (the union of E(t) over the
/// schedule) — callers outside the TCB cannot construct it.
struct RecoveryContext {
  std::size_t num_electrodes = 0;
  /// Union of active electrodes across the failed attempt's schedule.
  sim::ElectrodeMask session_active_union = 0;
  double flow_scale = 1.0;  ///< cumulative derate entering this plan
};

/// Map a failed attempt's error to a recovery plan, striking implicated
/// electrodes in `ledger`. `error.channel_reasons[c]` is a failure
/// bitmask (bit `1u << reason` per failing check). Channel c's suspects
/// are the active, not-yet-excluded electrodes with
/// carrier_channel_of_electrode(e, C) == c. A reason failing on at least
/// max(2, ceil(C/2)) channels (or on a single-channel upload) is
/// *systemic* — no electrode can be blamed for it, and an isolated
/// failure is only struck for the non-systemic bits.
RecoveryPlan plan_recovery(const net::ErrorPayload& error,
                           const RecoveryContext& context,
                           ElectrodeHealthLedger& ledger,
                           const RetryPolicy& policy);

}  // namespace medsen::core
