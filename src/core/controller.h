#pragma once
// The sensor micro-controller — MedSen's entire trusted computing base
// (paper Section II, threat model). It generates the key schedule from its
// entropy source, programs the sensor (multiplexer/gains/pump), and later
// decodes the cloud's peak report into the diagnosis. The key never leaves
// this object: the public API only exposes the hardware control trace and
// the decoded outcome, mirroring the Raspberry Pi daemon's isolation in
// the prototype.

#include <cstdint>
#include <memory>
#include <optional>

#include "core/decryptor.h"
#include "core/diagnostic.h"
#include "core/key.h"
#include "core/peak_report.h"
#include "core/recovery.h"
#include "core/session_crypto.h"
#include "net/messages.h"
#include "sim/electrode_array.h"

namespace medsen::core {

class Controller {
 public:
  Controller(KeyParams key_params, sim::ElectrodeArrayDesign design,
             DiagnosticProfile profile, std::uint64_t entropy_seed,
             RetryPolicy retry_policy = {});

  /// Begin a diagnostic session of `duration_s` seconds: generates a fresh
  /// key schedule internally and returns the hardware control trace the
  /// sensor executes. Overwrites any previous session and starts a fresh
  /// recovery loop (suspect electrodes get another chance; quarantined
  /// ones stay out, and the flow derate resets).
  std::vector<sim::ControlSegment> begin_session(double duration_s);

  /// Begin the next attempt of the *current* recovery loop: a fresh key
  /// schedule with every suspect/quarantined electrode masked out of
  /// E(t) and the cumulative flow derate applied. Returns the control
  /// trace exactly like begin_session().
  std::vector<sim::ControlSegment> begin_retry_session(double duration_s);

  /// Map a failed attempt's error verdict to a recovery plan. Strikes
  /// implicated electrodes in the health ledger and records the flow
  /// derate the next begin_retry_session() will apply. Only the
  /// controller can do this mapping: the per-channel reasons name
  /// anonymous carrier channels, and inverting them to electrodes takes
  /// the secret E(t).
  RecoveryPlan plan_recovery(const net::ErrorPayload& error);

  /// Begin a plaintext (encryption-off) session, used when submitting the
  /// bare cyto-code for server-side authentication.
  std::vector<sim::ControlSegment> begin_plaintext_session(double duration_s);

  /// Volume pumped during the active session (uL), integrating the
  /// key-driven flow profile. Needed to turn counts into concentrations.
  [[nodiscard]] double session_volume_ul() const;

  /// Decode the cloud's report with the session key and diagnose.
  Diagnosis conclude(const PeakReport& report);

  /// Best-effort conclusion once the retry budget is exhausted: same
  /// decode path, but the diagnosis carries the policy's degraded
  /// confidence instead of throwing the session away.
  Diagnosis conclude_degraded(const PeakReport& report);

  /// Decrypted peak detail for the active session (auth verification and
  /// richer analyses).
  DecryptionResult decrypt(const PeakReport& report) const;

  /// Key material size of the active session in bits (telemetry only; the
  /// bits themselves are not exposed).
  [[nodiscard]] std::uint64_t session_key_bits() const;

  /// The schedule itself — accessible for white-box tests and the sensor
  /// binding, marked loudly so misuse is visible in call sites.
  [[nodiscard]] const KeySchedule& session_key_schedule_for_testing() const;

  [[nodiscard]] const KeyParams& key_params() const { return key_params_; }
  [[nodiscard]] const sim::ElectrodeArrayDesign& design() const {
    return design_;
  }
  [[nodiscard]] const DiagnosticProfile& profile() const { return profile_; }
  [[nodiscard]] bool session_active() const { return schedule_.has_value(); }

  [[nodiscard]] const RetryPolicy& retry_policy() const {
    return retry_policy_;
  }
  /// Persistent per-electrode health (strike counters, quarantine).
  [[nodiscard]] const ElectrodeHealthLedger& health() const {
    return ledger_;
  }
  /// Cumulative flow derate the next retry will apply (1.0 = nominal).
  [[nodiscard]] double flow_scale() const { return flow_scale_; }

  /// Arm the EV2-style transport-session plane: the controller holds
  /// the device's long-term (diversified) key and will negotiate
  /// derived session keys with the cloud via the phone relay. The
  /// session-crypto RNG draws from its own lane of the entropy seed, so
  /// arming it never perturbs the acquisition key schedule.
  void enable_session_crypto(std::uint64_t device_id,
                             std::vector<std::uint8_t> device_key,
                             std::uint32_t key_epoch = 0);
  /// The session-crypto engine, or nullptr when not armed.
  [[nodiscard]] SessionCrypto* session_crypto() {
    return session_crypto_.get();
  }

 private:
  /// Apply exclusion mask + flow derate to the freshly generated
  /// schedule (no-ops for a healthy ledger at nominal flow, keeping
  /// fault-free sessions bit-identical to the pre-recovery behaviour).
  void apply_recovery_state();
  [[nodiscard]] sim::ElectrodeMask session_active_union() const;

  KeyParams key_params_;
  sim::ElectrodeArrayDesign design_;
  DiagnosticProfile profile_;
  crypto::ChaChaRng rng_;
  std::optional<KeySchedule> schedule_;
  double session_duration_s_ = 0.0;
  RetryPolicy retry_policy_;
  ElectrodeHealthLedger ledger_;
  double flow_scale_ = 1.0;
  std::uint64_t entropy_seed_;
  std::unique_ptr<SessionCrypto> session_crypto_;
};

}  // namespace medsen::core
