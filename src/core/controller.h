#pragma once
// The sensor micro-controller — MedSen's entire trusted computing base
// (paper Section II, threat model). It generates the key schedule from its
// entropy source, programs the sensor (multiplexer/gains/pump), and later
// decodes the cloud's peak report into the diagnosis. The key never leaves
// this object: the public API only exposes the hardware control trace and
// the decoded outcome, mirroring the Raspberry Pi daemon's isolation in
// the prototype.

#include <cstdint>
#include <optional>

#include "core/decryptor.h"
#include "core/diagnostic.h"
#include "core/key.h"
#include "core/peak_report.h"
#include "sim/electrode_array.h"

namespace medsen::core {

class Controller {
 public:
  Controller(KeyParams key_params, sim::ElectrodeArrayDesign design,
             DiagnosticProfile profile, std::uint64_t entropy_seed);

  /// Begin a diagnostic session of `duration_s` seconds: generates a fresh
  /// key schedule internally and returns the hardware control trace the
  /// sensor executes. Overwrites any previous session.
  std::vector<sim::ControlSegment> begin_session(double duration_s);

  /// Begin a plaintext (encryption-off) session, used when submitting the
  /// bare cyto-code for server-side authentication.
  std::vector<sim::ControlSegment> begin_plaintext_session(double duration_s);

  /// Volume pumped during the active session (uL), integrating the
  /// key-driven flow profile. Needed to turn counts into concentrations.
  [[nodiscard]] double session_volume_ul() const;

  /// Decode the cloud's report with the session key and diagnose.
  Diagnosis conclude(const PeakReport& report);

  /// Decrypted peak detail for the active session (auth verification and
  /// richer analyses).
  DecryptionResult decrypt(const PeakReport& report) const;

  /// Key material size of the active session in bits (telemetry only; the
  /// bits themselves are not exposed).
  [[nodiscard]] std::uint64_t session_key_bits() const;

  /// The schedule itself — accessible for white-box tests and the sensor
  /// binding, marked loudly so misuse is visible in call sites.
  [[nodiscard]] const KeySchedule& session_key_schedule_for_testing() const;

  [[nodiscard]] const KeyParams& key_params() const { return key_params_; }
  [[nodiscard]] const sim::ElectrodeArrayDesign& design() const {
    return design_;
  }
  [[nodiscard]] const DiagnosticProfile& profile() const { return profile_; }
  [[nodiscard]] bool session_active() const { return schedule_.has_value(); }

 private:
  KeyParams key_params_;
  sim::ElectrodeArrayDesign design_;
  DiagnosticProfile profile_;
  crypto::ChaChaRng rng_;
  std::optional<KeySchedule> schedule_;
  double session_duration_s_ = 0.0;
};

}  // namespace medsen::core
