#pragma once
// Model of the MAX14661-style 16:2 analog multiplexer (paper Section VI-B,
// Fig. 9 label B): output electrodes selected by the key are routed to
// measurement channel A; all unselected electrodes are routed to channel B
// which is tied to ground, preventing floating-electrode interference
// (Section VII-A).

#include <cstdint>
#include <vector>

#include "sim/electrode_array.h"

namespace medsen::core {

enum class MuxRoute : std::uint8_t { kMeasurement = 0, kGround = 1 };

/// Routing state of every input pin.
struct MuxState {
  std::vector<MuxRoute> routes;  ///< index = electrode/input pin

  [[nodiscard]] std::size_t measured_count() const;
  [[nodiscard]] sim::ElectrodeMask measurement_mask() const;
};

/// 16:2 switch matrix with a fixed number of input pins.
class Multiplexer {
 public:
  explicit Multiplexer(std::size_t num_inputs = 16);

  [[nodiscard]] std::size_t num_inputs() const { return num_inputs_; }

  /// Apply an electrode selection mask: selected pins -> measurement
  /// channel, the rest -> ground. Bits beyond num_inputs are ignored.
  /// Returns the resulting routing state and records a switch event.
  const MuxState& select(sim::ElectrodeMask mask);

  [[nodiscard]] const MuxState& state() const { return state_; }
  /// Number of select() calls (each is one key-period reconfiguration).
  [[nodiscard]] std::uint64_t switch_count() const { return switch_count_; }

 private:
  std::size_t num_inputs_;
  MuxState state_;
  std::uint64_t switch_count_ = 0;
};

}  // namespace medsen::core
