#include "core/session_crypto.h"

#include <utility>

#include "crypto/cmac.h"
#include "crypto/constant_time.h"

namespace medsen::core {

namespace {
// Seed-lane tag: the session-crypto RNG draws from its own ChaCha
// stream so the acquisition/key-schedule RNG sequence is untouched by
// the handshake (golden traces stay bit-identical with crypto on/off).
constexpr std::uint64_t kSessionCryptoSeedTag = 0x5e55'10c4'ab1e'd00dull;
}  // namespace

SessionCrypto::SessionCrypto(std::uint64_t device_id,
                             std::vector<std::uint8_t> device_key,
                             std::uint32_t key_epoch,
                             std::uint64_t entropy_seed)
    : device_id_(device_id),
      device_key_(std::move(device_key)),  // adopts: wipes caller's vector
      key_epoch_(key_epoch),
      rng_(entropy_seed ^ kSessionCryptoSeedTag) {}

net::Envelope SessionCrypto::make_challenge(std::uint64_t session_id) {
  invalidate();
  session_id_ = session_id;

  net::AuthChallengePayload payload;
  payload.key_epoch = key_epoch_;
  rng_.fill(payload.challenge);
  pending_rnd_a_.assign(payload.challenge);

  return net::make_envelope(net::MessageType::kAuthChallenge, session_id_,
                            device_id_, payload.serialize(), device_key_);
}

bool SessionCrypto::complete(const net::Envelope& response) {
  if (pending_rnd_a_.empty()) return false;  // no handshake in flight
  if (response.type != net::MessageType::kAuthResponse ||
      response.session_id != session_id_ ||
      response.device_id != device_id_ || response.counter != 0)
    return false;
  if (!net::verify_envelope(response, device_key_)) return false;

  net::AuthResponsePayload payload;
  try {
    payload = net::AuthResponsePayload::deserialize(response.payload);
  } catch (const std::exception&) {
    return false;
  }

  const auto expected = crypto::session_proof(device_key_, pending_rnd_a_,
                                              payload.challenge);
  if (!crypto::constant_time_equal(expected, payload.proof)) return false;

  session_mac_key_.adopt(crypto::derive_session_mac_key(
      device_key_, pending_rnd_a_, payload.challenge));
  pending_rnd_a_.wipe();
  counter_ = 0;  // first command stamps 1
  return true;
}

void SessionCrypto::invalidate() {
  session_mac_key_.wipe();
  pending_rnd_a_.wipe();
  counter_ = 0;
}

}  // namespace medsen::core
