#include "core/peak_report.h"

#include <cmath>
#include <stdexcept>

#include "util/serialize.h"

namespace medsen::core {

const ChannelPeaks& PeakReport::nearest_channel(double hz) const {
  if (channels.empty())
    throw std::logic_error("PeakReport: no channels");
  const ChannelPeaks* best = &channels.front();
  for (const auto& ch : channels)
    if (std::fabs(ch.carrier_hz - hz) < std::fabs(best->carrier_hz - hz))
      best = &ch;
  return *best;
}

std::size_t PeakReport::reference_peak_count(double hz) const {
  return nearest_channel(hz).peaks.size();
}

std::vector<std::uint8_t> PeakReport::serialize() const {
  util::ByteWriter out;
  out.u32(static_cast<std::uint32_t>(channels.size()));
  for (const auto& ch : channels) {
    out.f64(ch.carrier_hz);
    out.u32(static_cast<std::uint32_t>(ch.peaks.size()));
    for (const auto& p : ch.peaks) {
      out.f64(p.time_s);
      out.f64(p.amplitude);
      out.f64(p.width_s);
      out.u64(p.index);
    }
  }
  return out.take();
}

PeakReport PeakReport::deserialize(std::span<const std::uint8_t> bytes) {
  util::ByteReader in(bytes);
  PeakReport report;
  // Minimum wire size per channel: carrier (8) + peak count (4); per
  // peak: three f64 fields + u64 index (32). count_u32 rejects counts
  // the buffer cannot hold before the reserve below can allocate.
  const std::uint32_t nch = in.count_u32(12);
  report.channels.reserve(nch);
  for (std::uint32_t c = 0; c < nch; ++c) {
    ChannelPeaks ch;
    ch.carrier_hz = in.f64();
    const std::uint32_t np = in.count_u32(32);
    ch.peaks.reserve(np);
    for (std::uint32_t i = 0; i < np; ++i) {
      dsp::Peak p;
      p.time_s = in.f64();
      p.amplitude = in.f64();
      p.width_s = in.f64();
      p.index = in.u64();
      ch.peaks.push_back(p);
    }
    report.channels.push_back(std::move(ch));
  }
  in.expect_done("PeakReport");
  return report;
}

}  // namespace medsen::core
