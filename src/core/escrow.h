#pragma once
// Key escrow for trusted practitioners. The paper (Section VII-B) notes
// that "MedSen's design also allows (not implemented) sharing of the
// generated keys with trusted parties, e.g., the patient's
// practitioners, so that they could also access the cloud-based analysis
// outcomes remotely." This module implements that extension: the
// controller wraps a session's key schedule under a secret shared with
// the practitioner (ChaCha20 encryption + HMAC-SHA256 authentication);
// the practitioner unwraps it and decodes the ciphertext-domain peak
// reports fetched from the cloud, without the sensor in the loop.

#include <cstdint>
#include <span>
#include <vector>

#include "core/decryptor.h"
#include "core/key.h"
#include "core/peak_report.h"

namespace medsen::core {

/// A key schedule wrapped for one recipient.
struct EscrowPackage {
  std::array<std::uint8_t, 12> nonce{};
  std::vector<std::uint8_t> ciphertext;  ///< encrypted KeySchedule bytes
  std::array<std::uint8_t, 32> mac{};    ///< HMAC over nonce || ciphertext

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static EscrowPackage deserialize(std::span<const std::uint8_t> bytes);
};

/// Wrap a key schedule under a shared secret. `entropy` seeds the nonce;
/// reuse a fresh value per package.
EscrowPackage escrow_key_schedule(const KeySchedule& schedule,
                                  std::span<const std::uint8_t> shared_secret,
                                  std::uint64_t entropy);

/// Unwrap; throws std::runtime_error if the MAC does not verify (wrong
/// secret or tampered package).
KeySchedule recover_key_schedule(const EscrowPackage& package,
                                 std::span<const std::uint8_t> shared_secret);

/// Practitioner-side convenience: unwrap the schedule and decode a stored
/// ciphertext peak report in one call.
DecryptionResult practitioner_decrypt(
    const EscrowPackage& package, std::span<const std::uint8_t> shared_secret,
    const PeakReport& report, const sim::ElectrodeArrayDesign& design,
    double duration_s);

}  // namespace medsen::core
