#include "cloud/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "cloud/durability.h"
#include "compress/codec.h"
#include "crypto/cmac.h"
#include "util/csv.h"
#include "util/secure_zero.h"
#include "util/serialize.h"

namespace medsen::cloud {

CloudServer::CloudServer(AnalysisConfig analysis_config,
                         auth::CytoAlphabet alphabet,
                         auth::ParticleClassifier classifier,
                         auth::VerifierConfig verifier_config,
                         std::shared_ptr<util::ThreadPool> pool,
                         ServiceConfig service)
    : analysis_(analysis_config, std::move(pool)),
      db_(alphabet),
      verifier_(std::move(alphabet), std::move(classifier), verifier_config),
      store_(service.shards),
      devices_(service.shards),
      admission_(service.max_inflight),
      quality_gate_(service.quality_gate),
      cache_({service.shards, service.session_cache_capacity}),
      sessions_(service.shards),
      counters_(service.shards),
      challenge_seed_(service.challenge_seed),
      allow_legacy_plane_(service.allow_legacy_plane) {
  dispatch_.add(net::MessageType::kSignalUpload,
                [this](const net::Envelope& request, RequestContext& context) {
                  return serve_upload(request, context);
                });
  dispatch_.add(net::MessageType::kAuthPass,
                [this](const net::Envelope& request, RequestContext& context) {
                  return serve_auth_pass(request, context);
                });
  dispatch_.add(net::MessageType::kAuthChallenge,
                [this](const net::Envelope& request, RequestContext& context) {
                  return serve_handshake(request, context);
                });
}

RecoveryStats CloudServer::attach_durability(DurableState& durable) {
  const RecoveryStats stats = durable.recover_into(*this);
  durable_ = &durable;  // mutations journal from here on
  return stats;
}

DeviceRegistry::ProvisionResult CloudServer::provision_device(
    std::uint64_t device_id, std::vector<std::uint8_t> mac_key) {
  DeviceRegistry::ProvisionResult result{};
  const auto apply = [&] {
    result = devices_.provision(device_id, std::move(mac_key));
    if (result == DeviceRegistry::ProvisionResult::kRotated)
      sessions_.drop(device_id);
  };
  if (durable_) {
    // log_provision copies the key bytes into the journal payload before
    // apply() moves them into the registry.
    durable_->log_provision(device_id, mac_key, apply);
    durable_->maybe_compact(*this);
  } else {
    apply();
  }
  return result;
}

void CloudServer::enroll_device(std::uint64_t device_id) {
  const auto apply = [&] { devices_.enroll(device_id); };
  if (durable_) {
    durable_->log_enroll_device(device_id, apply);
    durable_->maybe_compact(*this);
  } else {
    apply();
  }
}

bool CloudServer::revoke_device(std::uint64_t device_id) {
  bool known = false;
  const auto apply = [&] {
    known = devices_.revoke(device_id);
    sessions_.drop(device_id);
  };
  if (durable_) {
    durable_->log_revoke(device_id, apply);
    durable_->maybe_compact(*this);
  } else {
    apply();
  }
  return known;
}

void CloudServer::rotate_master_key(std::uint32_t epoch,
                                    std::vector<std::uint8_t> master) {
  const auto apply = [&] {
    devices_.set_master_key(epoch, std::move(master));
    sessions_.drop_all();
  };
  if (durable_) {
    durable_->log_master_rotated(epoch, master, apply);
    durable_->maybe_compact(*this);
  } else {
    apply();
  }
}

bool CloudServer::retire_epoch(std::uint32_t epoch) {
  bool known = false;
  const auto apply = [&] { known = devices_.retire_epoch(epoch); };
  if (durable_) {
    durable_->log_epoch_retired(epoch, apply);
    durable_->maybe_compact(*this);
  } else {
    apply();
  }
  return known;
}

void CloudServer::enroll_user(const std::string& user_id,
                              const auth::CytoCode& code) {
  if (!durable_) {
    db_.enroll(user_id, code);
    return;
  }
  // Validate before journaling: a journaled operation must replay
  // cleanly, so an enrollment that would throw never reaches the WAL.
  // The check runs inside the durability gate (not here), so two racing
  // enrollments of one code serialize and the loser is rejected before
  // its record is durable.
  durable_->log_user_enrolled(
      user_id, code, [&] { db_.check_enrollable(user_id, code); },
      [&] { db_.enroll(user_id, code); });
  durable_->maybe_compact(*this);
}

void CloudServer::store_result(const auth::CytoCode& code,
                               StoredRecord record) {
  if (!durable_) {
    store_.store(code, std::move(record));
    return;
  }
  durable_->log_record(code.to_string(), record,
                       [&] { store_.store(code, std::move(record)); });
  durable_->maybe_compact(*this);
}

util::MultiChannelSeries CloudServer::decode_series(
    const net::SignalUploadPayload& payload) const {
  const std::vector<std::uint8_t> raw =
      payload.compressed ? compress::decompress(payload.data) : payload.data;
  if (payload.format == net::UploadFormat::kCsv) {
    return util::from_csv(std::string(raw.begin(), raw.end()),
                          payload.sample_rate_hz);
  }
  return net::deserialize_series(raw);
}

net::Envelope CloudServer::error_response(
    const net::Envelope& request, std::span<const std::uint8_t> mac_key,
    net::ErrorCode code, std::uint8_t subcode, std::string detail,
    std::vector<std::uint8_t> channel_reasons) {
  net::ErrorPayload payload;
  payload.code = code;
  payload.subcode = subcode;
  payload.detail = std::move(detail);
  payload.channel_reasons = std::move(channel_reasons);
  counters_.count_error(request.device_id);
  return net::make_envelope(net::MessageType::kError, request.session_id,
                            request.device_id, payload.serialize(), mac_key,
                            request.counter);
}

ServiceStats CloudServer::stats() const { return counters_.aggregate(); }

std::uint64_t CloudServer::requests_processed() const {
  return counters_.aggregate().requests_processed;
}

std::uint64_t CloudServer::replays_served() const {
  return counters_.aggregate().replays_served;
}

CloudServer::ResolvedKey CloudServer::resolve_mac_key(
    const net::Envelope& request) {
  ResolvedKey resolved;
  // Revocation outranks every keying plane: a revoked device gets the
  // explicit kRevoked (unsigned — the server no longer speaks for it).
  if (devices_.is_revoked(request.device_id)) {
    resolved.error = error_response(
        request, {}, net::ErrorCode::kRevoked, 0,
        "device " + std::to_string(request.device_id) + " is revoked");
    return resolved;
  }

  if (request.type == net::MessageType::kAuthChallenge) {
    // Handshakes verify under the long-term key of the epoch the device
    // was personalized under. The payload is decoded before MAC
    // verification only to learn that epoch; a forgery still dies at
    // the MAC check below.
    std::uint32_t epoch = 0;
    try {
      epoch =
          net::AuthChallengePayload::deserialize(request.payload).key_epoch;
    } catch (const std::exception& e) {
      resolved.error =
          error_response(request, {}, net::ErrorCode::kMalformed, 0, e.what());
      return resolved;
    }
    std::optional<util::SecretBytes> key;
    if (devices_.has_legacy_key(request.device_id)) {
      key = devices_.lookup(request.device_id);  // legacy keys are epoch-less
    } else {
      key = devices_.lookup_epoch(request.device_id, epoch);
      if (!key && devices_.lookup(request.device_id).has_value()) {
        // Enrolled, but the named epoch's master is retired/unknown.
        resolved.error = error_response(
            request, {}, net::ErrorCode::kBadEpoch, 0,
            "key epoch " + std::to_string(epoch) + " is not derivable");
        return resolved;
      }
    }
    if (!key) {
      resolved.error = error_response(
          request, {}, net::ErrorCode::kUnknownDevice, 0,
          "device " + std::to_string(request.device_id) +
              " is not provisioned");
      return resolved;
    }
    resolved.key = std::move(key);
    return resolved;
  }

  if (request.counter != 0) {
    // Session plane: the envelope claims a negotiated session. Its MAC
    // key is the derived session key — never a registry key.
    resolved.session_plane = true;
    auto key = sessions_.session_key(request.device_id, request.session_id);
    if (!key) {
      const auto longterm = devices_.lookup(request.device_id);
      resolved.error = error_response(
          request,
          longterm ? std::span<const std::uint8_t>(*longterm)
                   : std::span<const std::uint8_t>(),
          net::ErrorCode::kAuthRequired, 0,
          "no negotiated session for session_id " +
              std::to_string(request.session_id));
      return resolved;
    }
    resolved.key = std::move(key);
    return resolved;
  }

  // Legacy static-key plane (counter 0): the original scheme, kept as
  // the incremental-upgrade fallback and closable per deployment.
  if (!allow_legacy_plane_) {
    const auto longterm = devices_.lookup(request.device_id);
    resolved.error = error_response(
        request,
        longterm ? std::span<const std::uint8_t>(*longterm)
                 : std::span<const std::uint8_t>(),
        net::ErrorCode::kAuthRequired, 0,
        "legacy static-key plane is disabled; negotiate a session");
    return resolved;
  }
  auto key = devices_.lookup(request.device_id);
  if (!key) {
    resolved.error = error_response(
        request, {}, net::ErrorCode::kUnknownDevice, 0,
        "device " + std::to_string(request.device_id) +
            " is not provisioned");
    return resolved;
  }
  resolved.key = std::move(key);
  return resolved;
}

net::Envelope CloudServer::handle(const net::Envelope& request) {
  // The whole request runs shard-local: admission is a lock-free atomic,
  // and the registry lookup, session-cache traffic, and stats increments
  // below all route on request.device_id — no cross-shard lock is ever
  // taken while a request is in flight.
  //
  // 1. Admission: shed instead of queueing unboundedly on the pool. The
  // error is signed with the device key when the sender is known (an
  // unknown-device envelope would be shed before its key is resolved).
  auto ticket = admission_.try_enter();
  if (!ticket.admitted()) {
    counters_.count_shed(request.device_id);
    const auto key = devices_.lookup(request.device_id);
    return error_response(
        request, key ? std::span<const std::uint8_t>(*key)
                     : std::span<const std::uint8_t>(),
        net::ErrorCode::kOverloaded, 0, "admission limit reached");
  }

  // 2. Key resolution: the MAC key comes from the registry (legacy or
  // epoch-derived) or the negotiated-session table — never from the
  // caller. Errors to unknown devices are unsigned (empty key) — the
  // server has no credential to speak for them.
  auto resolved = resolve_mac_key(request);
  if (resolved.error.has_value()) return *std::move(resolved.error);
  const auto& mac_key = resolved.key;

  // 3. Integrity: a tampering relay is detected here.
  if (!net::verify_envelope(request, *mac_key)) {
    return error_response(request, *mac_key, net::ErrorCode::kBadMac, 0,
                          "envelope MAC verification failed");
  }

  // 4. Idempotency: the reliable transport re-uploads when a response is
  // lost; byte-identical replays are served from the cache without a
  // second analysis. The cache is LRU-bounded; what a miss means differs
  // by plane — see the counter check below.
  const auto cached = cache_.lookup(request);
  if (cached.state == SessionCache::Lookup::kConflict) {
    return error_response(request, *mac_key, net::ErrorCode::kSessionConflict,
                          0,
                          "session " + std::to_string(request.session_id) +
                              " replayed with a different payload");
  }
  if (cached.state == SessionCache::Lookup::kReplay) {
    counters_.count_replay(request.device_id);
    return cached.response;
  }

  // 4b. Anti-replay: on the session plane every command counter is
  // checked against the device's sliding window. A counter the window
  // has already seen whose cached response was LRU-evicted is *not*
  // reprocessed — unlike the legacy plane, replaying an old command is
  // indistinguishable from an attack, so it dies here with
  // kStaleCounter rather than re-running the analysis.
  if (resolved.session_plane) {
    const auto status = sessions_.classify(
        request.device_id, request.session_id, request.counter);
    if (status != CounterStatus::kFresh) {
      counters_.count_counter_rejection(request.device_id);
      return error_response(
          request, *mac_key, net::ErrorCode::kStaleCounter, 0,
          "command counter " + std::to_string(request.counter) +
              " is outside the anti-replay window");
    }
  }

  // 5. Dispatch through the handler registry. Handlers report failures
  // as ServiceResult values; decoder throws on MAC-valid garbage are
  // converted to kMalformed at this boundary.
  RequestContext context;
  context.device_id = request.device_id;
  context.session_id = request.session_id;
  context.mac_key = *mac_key;

  ServiceResult result;
  const auto started = std::chrono::steady_clock::now();
  if (const auto* handler = dispatch_.find(request.type)) {
    try {
      result = (*handler)(request, context);
    } catch (const std::exception& e) {
      result = ServiceResult::failure(net::ErrorCode::kMalformed, e.what());
    }
  } else {
    result = ServiceResult::failure(
        net::ErrorCode::kMalformed,
        "no handler for message type " +
            std::to_string(static_cast<unsigned>(request.type)));
  }
  context.processing_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();

  if (!result.ok) {
    return error_response(request, *mac_key, result.error,
                          result.error_subcode, std::move(result.detail),
                          std::move(result.error_channel_reasons));
  }

  const auto response = net::make_envelope(
      result.response_type, request.session_id, request.device_id,
      std::move(result.response_payload), *mac_key, request.counter);
  cache_.insert(request, response);
  // Burn the counter only now that the exchange is cached: a shed or
  // rejected command keeps its counter retryable, and an ARQ
  // retransmission of this one finds the cached response above.
  if (resolved.session_plane)
    sessions_.commit(request.device_id, request.session_id, request.counter);
  counters_.count_processed(request.device_id, context.processing_time_s);
  return response;
}

ServiceResult CloudServer::serve_upload(const net::Envelope& request,
                                        RequestContext& context) {
  const auto payload = net::SignalUploadPayload::deserialize(request.payload);
  const auto series = decode_series(payload);
  if (quality_gate_.load(std::memory_order_relaxed)) {
    context.quality = assess_quality(series);
    if (!context.quality.acceptable) {
      return ServiceResult::failure(
          net::ErrorCode::kQualityRejected,
          "acquisition rejected (" + context.quality.reason + ")",
          static_cast<std::uint8_t>(context.quality.reason_code),
          context.quality.channel_failure_bytes());
    }
  }
  const core::PeakReport report = analysis_.analyze(series);
  return ServiceResult::success(net::MessageType::kAnalysisResult,
                                report.serialize());
}

ServiceResult CloudServer::serve_auth_pass(const net::Envelope& request,
                                           RequestContext& context) {
  (void)context;
  const auto pass = net::AuthPassPayload::deserialize(request.payload);
  const auto series = decode_series(pass.upload);
  const core::PeakReport report = analysis_.analyze(series);

  // Plaintext pass: amplitudes are unscaled, so decoded peaks can be
  // built directly from the report (unit gain, reference flow).
  std::vector<core::DecodedPeak> peaks;
  const auto& ref = report.nearest_channel(5.0e5);
  peaks.reserve(ref.peaks.size());
  for (const auto& p : ref.peaks) {
    core::DecodedPeak d;
    d.time_s = p.time_s;
    d.width_s = p.width_s;
    d.amplitudes.reserve(report.channels.size());
    for (const auto& ch : report.channels) {
      double amplitude = 0.0;
      double best_dt = 0.03;
      for (const auto& q : ch.peaks) {
        const double dt = std::abs(q.time_s - p.time_s);
        if (dt <= best_dt) {
          best_dt = dt;
          amplitude = q.amplitude;
        }
      }
      d.amplitudes.push_back(amplitude);
    }
    peaks.push_back(std::move(d));
  }

  const auth::AuthResult result = verifier_.authenticate_peaks(
      peaks, pass.volume_ul, db_, pass.duration_s);
  net::AuthDecisionPayload payload;
  payload.authenticated = result.authenticated;
  payload.user_id = result.user_id;
  payload.distance = result.distance;
  return ServiceResult::success(net::MessageType::kAuthDecision,
                                payload.serialize());
}

ServiceResult CloudServer::serve_handshake(const net::Envelope& request,
                                           RequestContext& context) {
  if (request.counter != 0) {
    return ServiceResult::failure(net::ErrorCode::kMalformed,
                                  "handshake envelopes must use counter 0");
  }
  const auto challenge =
      net::AuthChallengePayload::deserialize(request.payload);

  // RndB: KDF'd from the device key so it is unpredictable to anyone
  // off the key, salted with a per-device handshake ordinal so repeated
  // handshakes never reuse a nonce, and free of OS entropy so the whole
  // exchange replays bit-identically in tests.
  const std::uint64_t seq = sessions_.next_handshake_seq(request.device_id);
  // Journal the burned ordinal before RndB is derived or leaves the
  // building: a crash after the fsync but before the response means the
  // ordinal is consumed on replay and the nonce is never re-issued.
  if (durable_) durable_->log_handshake(request.device_id, seq);
  util::ByteWriter nonce_context;
  nonce_context.u64(challenge_seed_);
  nonce_context.u64(request.device_id);
  nonce_context.u64(seq);
  nonce_context.bytes(challenge.challenge);
  auto normalized = crypto::normalize_cmac_key(context.mac_key);  // medsen: secret
  const auto rnd_b_bytes = crypto::kdf_cmac(
      normalized, "medsen-chal",
      nonce_context.data(), net::AuthResponsePayload::kNonceSize);
  util::secure_wipe(normalized);

  net::AuthResponsePayload response;
  std::copy(rnd_b_bytes.begin(), rnd_b_bytes.end(),
            response.challenge.begin());
  response.proof = crypto::session_proof(context.mac_key, challenge.challenge,
                                         response.challenge);

  sessions_.establish(
      request.device_id, request.session_id,
      crypto::derive_session_mac_key(context.mac_key, challenge.challenge,
                                     response.challenge));
  counters_.count_handshake(request.device_id);
  return ServiceResult::success(net::MessageType::kAuthResponse,
                                response.serialize());
}

}  // namespace medsen::cloud
