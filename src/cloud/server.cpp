#include "cloud/server.h"

#include <chrono>
#include <cmath>

#include "compress/codec.h"
#include "util/csv.h"

namespace medsen::cloud {

CloudServer::CloudServer(AnalysisConfig analysis_config,
                         auth::CytoAlphabet alphabet,
                         auth::ParticleClassifier classifier,
                         auth::VerifierConfig verifier_config,
                         std::shared_ptr<util::ThreadPool> pool,
                         ServiceConfig service)
    : analysis_(analysis_config, std::move(pool)),
      db_(alphabet),
      verifier_(std::move(alphabet), std::move(classifier), verifier_config),
      store_(service.shards),
      devices_(service.shards),
      admission_(service.max_inflight),
      quality_gate_(service.quality_gate),
      cache_({service.shards, service.session_cache_capacity}),
      counters_(service.shards) {
  dispatch_.add(net::MessageType::kSignalUpload,
                [this](const net::Envelope& request, RequestContext& context) {
                  return serve_upload(request, context);
                });
  dispatch_.add(net::MessageType::kAuthPass,
                [this](const net::Envelope& request, RequestContext& context) {
                  return serve_auth_pass(request, context);
                });
}

util::MultiChannelSeries CloudServer::decode_series(
    const net::SignalUploadPayload& payload) const {
  const std::vector<std::uint8_t> raw =
      payload.compressed ? compress::decompress(payload.data) : payload.data;
  if (payload.format == net::UploadFormat::kCsv) {
    return util::from_csv(std::string(raw.begin(), raw.end()),
                          payload.sample_rate_hz);
  }
  return net::deserialize_series(raw);
}

net::Envelope CloudServer::error_response(
    const net::Envelope& request, std::span<const std::uint8_t> mac_key,
    net::ErrorCode code, std::uint8_t subcode, std::string detail,
    std::vector<std::uint8_t> channel_reasons) {
  net::ErrorPayload payload;
  payload.code = code;
  payload.subcode = subcode;
  payload.detail = std::move(detail);
  payload.channel_reasons = std::move(channel_reasons);
  counters_.count_error(request.device_id);
  return net::make_envelope(net::MessageType::kError, request.session_id,
                            request.device_id, payload.serialize(), mac_key);
}

ServiceStats CloudServer::stats() const { return counters_.aggregate(); }

std::uint64_t CloudServer::requests_processed() const {
  return counters_.aggregate().requests_processed;
}

std::uint64_t CloudServer::replays_served() const {
  return counters_.aggregate().replays_served;
}

net::Envelope CloudServer::handle(const net::Envelope& request) {
  // The whole request runs shard-local: admission is a lock-free atomic,
  // and the registry lookup, session-cache traffic, and stats increments
  // below all route on request.device_id — no cross-shard lock is ever
  // taken while a request is in flight.
  //
  // 1. Admission: shed instead of queueing unboundedly on the pool. The
  // error is signed with the device key when the sender is known (an
  // unknown-device envelope would be shed before its key is resolved).
  auto ticket = admission_.try_enter();
  if (!ticket.admitted()) {
    counters_.count_shed(request.device_id);
    const auto key = devices_.lookup(request.device_id);
    return error_response(
        request, key ? std::span<const std::uint8_t>(*key)
                     : std::span<const std::uint8_t>(),
        net::ErrorCode::kOverloaded, 0, "admission limit reached");
  }

  // 2. Tenant resolution: the MAC key comes from the registry, never
  // from the caller. Errors to unknown devices are unsigned (empty key)
  // — the server has no credential to speak for them.
  const auto mac_key = devices_.lookup(request.device_id);
  if (!mac_key) {
    return error_response(request, {}, net::ErrorCode::kUnknownDevice, 0,
                          "device " + std::to_string(request.device_id) +
                              " is not provisioned");
  }

  // 3. Integrity: a tampering relay is detected here.
  if (!net::verify_envelope(request, *mac_key)) {
    return error_response(request, *mac_key, net::ErrorCode::kBadMac, 0,
                          "envelope MAC verification failed");
  }

  // 4. Idempotency: the reliable transport re-uploads when a response is
  // lost; byte-identical replays are served from the cache without a
  // second analysis. The cache is LRU-bounded — a replay of an evicted
  // session is simply processed again.
  const auto cached = cache_.lookup(request);
  if (cached.state == SessionCache::Lookup::kConflict) {
    return error_response(request, *mac_key, net::ErrorCode::kSessionConflict,
                          0,
                          "session " + std::to_string(request.session_id) +
                              " replayed with a different payload");
  }
  if (cached.state == SessionCache::Lookup::kReplay) {
    counters_.count_replay(request.device_id);
    return cached.response;
  }

  // 5. Dispatch through the handler registry. Handlers report failures
  // as ServiceResult values; decoder throws on MAC-valid garbage are
  // converted to kMalformed at this boundary.
  RequestContext context;
  context.device_id = request.device_id;
  context.session_id = request.session_id;
  context.mac_key = *mac_key;

  ServiceResult result;
  const auto started = std::chrono::steady_clock::now();
  if (const auto* handler = dispatch_.find(request.type)) {
    try {
      result = (*handler)(request, context);
    } catch (const std::exception& e) {
      result = ServiceResult::failure(net::ErrorCode::kMalformed, e.what());
    }
  } else {
    result = ServiceResult::failure(
        net::ErrorCode::kMalformed,
        "no handler for message type " +
            std::to_string(static_cast<unsigned>(request.type)));
  }
  context.processing_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();

  if (!result.ok) {
    return error_response(request, *mac_key, result.error,
                          result.error_subcode, std::move(result.detail),
                          std::move(result.error_channel_reasons));
  }

  const auto response = net::make_envelope(
      result.response_type, request.session_id, request.device_id,
      std::move(result.response_payload), *mac_key);
  cache_.insert(request, response);
  counters_.count_processed(request.device_id, context.processing_time_s);
  return response;
}

ServiceResult CloudServer::serve_upload(const net::Envelope& request,
                                        RequestContext& context) {
  const auto payload = net::SignalUploadPayload::deserialize(request.payload);
  const auto series = decode_series(payload);
  if (quality_gate_.load(std::memory_order_relaxed)) {
    context.quality = assess_quality(series);
    if (!context.quality.acceptable) {
      return ServiceResult::failure(
          net::ErrorCode::kQualityRejected,
          "acquisition rejected (" + context.quality.reason + ")",
          static_cast<std::uint8_t>(context.quality.reason_code),
          context.quality.channel_failure_bytes());
    }
  }
  const core::PeakReport report = analysis_.analyze(series);
  return ServiceResult::success(net::MessageType::kAnalysisResult,
                                report.serialize());
}

ServiceResult CloudServer::serve_auth_pass(const net::Envelope& request,
                                           RequestContext& context) {
  (void)context;
  const auto pass = net::AuthPassPayload::deserialize(request.payload);
  const auto series = decode_series(pass.upload);
  const core::PeakReport report = analysis_.analyze(series);

  // Plaintext pass: amplitudes are unscaled, so decoded peaks can be
  // built directly from the report (unit gain, reference flow).
  std::vector<core::DecodedPeak> peaks;
  const auto& ref = report.nearest_channel(5.0e5);
  peaks.reserve(ref.peaks.size());
  for (const auto& p : ref.peaks) {
    core::DecodedPeak d;
    d.time_s = p.time_s;
    d.width_s = p.width_s;
    d.amplitudes.reserve(report.channels.size());
    for (const auto& ch : report.channels) {
      double amplitude = 0.0;
      double best_dt = 0.03;
      for (const auto& q : ch.peaks) {
        const double dt = std::abs(q.time_s - p.time_s);
        if (dt <= best_dt) {
          best_dt = dt;
          amplitude = q.amplitude;
        }
      }
      d.amplitudes.push_back(amplitude);
    }
    peaks.push_back(std::move(d));
  }

  const auth::AuthResult result = verifier_.authenticate_peaks(
      peaks, pass.volume_ul, db_, pass.duration_s);
  net::AuthDecisionPayload payload;
  payload.authenticated = result.authenticated;
  payload.user_id = result.user_id;
  payload.distance = result.distance;
  return ServiceResult::success(net::MessageType::kAuthDecision,
                                payload.serialize());
}

}  // namespace medsen::cloud
