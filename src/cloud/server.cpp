#include "cloud/server.h"

#include <stdexcept>

#include "compress/codec.h"
#include "util/csv.h"

namespace medsen::cloud {

CloudServer::CloudServer(AnalysisConfig analysis_config,
                         auth::CytoAlphabet alphabet,
                         auth::ParticleClassifier classifier,
                         auth::VerifierConfig verifier_config,
                         std::shared_ptr<util::ThreadPool> pool)
    : analysis_(analysis_config, std::move(pool)),
      db_(alphabet),
      verifier_(std::move(alphabet), std::move(classifier), verifier_config) {}

util::MultiChannelSeries CloudServer::decode_upload(
    const net::Envelope& request, std::span<const std::uint8_t> mac_key) {
  if (!net::verify_envelope(request, mac_key))
    throw std::runtime_error("CloudServer: envelope MAC verification failed");
  if (request.type != net::MessageType::kSignalUpload)
    throw std::runtime_error("CloudServer: unexpected message type");
  const auto payload =
      net::SignalUploadPayload::deserialize(request.payload);
  const std::vector<std::uint8_t> raw =
      payload.compressed ? compress::decompress(payload.data) : payload.data;
  if (payload.format == net::UploadFormat::kCsv) {
    return util::from_csv(std::string(raw.begin(), raw.end()),
                          payload.sample_rate_hz);
  }
  return net::deserialize_series(raw);
}

std::optional<net::Envelope> CloudServer::cached_response(
    const net::Envelope& request) {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  const auto it = session_cache_.find(request.session_id);
  if (it == session_cache_.end()) return std::nullopt;
  if (!crypto::digest_equal(it->second.request_mac, request.mac))
    throw std::runtime_error(
        "CloudServer: session " + std::to_string(request.session_id) +
        " replayed with a different payload");
  ++replays_served_;
  return it->second.response;
}

void CloudServer::cache_response(const net::Envelope& request,
                                 const net::Envelope& response) {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  ++requests_processed_;
  session_cache_.insert({request.session_id, {request.mac, response}});
}

std::uint64_t CloudServer::requests_processed() const {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  return requests_processed_;
}

std::uint64_t CloudServer::replays_served() const {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  return replays_served_;
}

net::Envelope CloudServer::handle_upload(
    const net::Envelope& request, std::span<const std::uint8_t> mac_key) {
  if (auto cached = cached_response(request)) return *cached;
  const auto series = decode_upload(request, mac_key);
  if (quality_gate_) {
    last_quality_ = assess_quality(series);
    if (!last_quality_.acceptable)
      throw std::runtime_error("CloudServer: acquisition rejected (" +
                               last_quality_.reason + ")");
  }
  const core::PeakReport report = analysis_.analyze(series);
  const auto response =
      net::make_envelope(net::MessageType::kAnalysisResult,
                         request.session_id, report.serialize(), mac_key);
  cache_response(request, response);
  return response;
}

net::Envelope CloudServer::handle_auth(const net::Envelope& request,
                                       double volume_ul,
                                       std::span<const std::uint8_t> mac_key,
                                       double duration_s) {
  if (auto cached = cached_response(request)) return *cached;
  const auto series = decode_upload(request, mac_key);
  const core::PeakReport report = analysis_.analyze(series);

  // Plaintext pass: amplitudes are unscaled, so decoded peaks can be
  // built directly from the report (unit gain, reference flow).
  std::vector<core::DecodedPeak> peaks;
  const auto& ref = report.nearest_channel(5.0e5);
  peaks.reserve(ref.peaks.size());
  for (const auto& p : ref.peaks) {
    core::DecodedPeak d;
    d.time_s = p.time_s;
    d.width_s = p.width_s;
    d.amplitudes.reserve(report.channels.size());
    for (const auto& ch : report.channels) {
      double amplitude = 0.0;
      double best_dt = 0.03;
      for (const auto& q : ch.peaks) {
        const double dt = std::abs(q.time_s - p.time_s);
        if (dt <= best_dt) {
          best_dt = dt;
          amplitude = q.amplitude;
        }
      }
      d.amplitudes.push_back(amplitude);
    }
    peaks.push_back(std::move(d));
  }

  const auth::AuthResult result =
      verifier_.authenticate_peaks(peaks, volume_ul, db_, duration_s);
  net::AuthDecisionPayload payload;
  payload.authenticated = result.authenticated;
  payload.user_id = result.user_id;
  payload.distance = result.distance;
  const auto response =
      net::make_envelope(net::MessageType::kAuthDecision, request.session_id,
                         payload.serialize(), mac_key);
  cache_response(request, response);
  return response;
}

}  // namespace medsen::cloud
