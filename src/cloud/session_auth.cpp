#include "cloud/session_auth.h"

#include <algorithm>
#include <utility>

namespace medsen::cloud {

void SessionAuthTable::establish(std::uint64_t device_id,
                                 std::uint64_t session_id,
                                 std::vector<std::uint8_t> mac_key) {
  shards_.with(device_id, [&](Shard& shard) {
    DeviceSessionState& state = shard.sessions[device_id];
    const std::uint64_t seq = state.handshake_seq;
    state = DeviceSessionState{};  // re-key: the old key wipes here
    state.session_id = session_id;
    state.mac_key = util::SecretBytes(std::move(mac_key));  // wipes source
    state.handshake_seq = seq;
  });
}

std::optional<util::SecretBytes> SessionAuthTable::session_key(
    std::uint64_t device_id, std::uint64_t session_id) const {
  return shards_.with(
      device_id,
      [&](const Shard& shard) -> std::optional<util::SecretBytes> {
        const auto it = shard.sessions.find(device_id);
        if (it == shard.sessions.end() ||
            it->second.session_id != session_id || it->second.mac_key.empty())
          return std::nullopt;
        return it->second.mac_key;
      });
}

CounterStatus SessionAuthTable::classify(std::uint64_t device_id,
                                         std::uint64_t session_id,
                                         std::uint32_t counter) const {
  return shards_.with(device_id, [&](const Shard& shard) {
    const auto it = shard.sessions.find(device_id);
    if (it == shard.sessions.end() || it->second.session_id != session_id ||
        it->second.mac_key.empty())
      return CounterStatus::kNoSession;
    const DeviceSessionState& s = it->second;
    if (counter == 0) return CounterStatus::kStale;  // 0 is the legacy plane
    if (counter > s.highest) return CounterStatus::kFresh;
    const std::uint32_t age = s.highest - counter;
    if (age >= kWindowSize) return CounterStatus::kStale;
    // Bit 0 is `highest` itself, which commit() always sets.
    return ((s.window >> age) & 1u) != 0 ? CounterStatus::kReplay
                                         : CounterStatus::kFresh;
  });
}

void SessionAuthTable::commit(std::uint64_t device_id,
                              std::uint64_t session_id,
                              std::uint32_t counter) {
  shards_.with(device_id, [&](Shard& shard) {
    const auto it = shard.sessions.find(device_id);
    if (it == shard.sessions.end() || it->second.session_id != session_id)
      return;
    DeviceSessionState& s = it->second;
    if (counter > s.highest) {
      const std::uint32_t advance = counter - s.highest;
      s.window = advance >= kWindowSize ? 0 : s.window << advance;
      s.window |= 1u;  // the new highest is seen
      s.highest = counter;
    } else {
      const std::uint32_t age = s.highest - counter;
      if (age < kWindowSize) s.window |= std::uint64_t{1} << age;
    }
  });
}

void SessionAuthTable::drop(std::uint64_t device_id) {
  shards_.with(device_id, [&](Shard& shard) {
    const auto it = shard.sessions.find(device_id);
    if (it == shard.sessions.end()) return;
    // Keep the handshake ordinal across drops: nonce derivation must
    // never rewind even through revoke/rotate churn.
    const std::uint64_t seq = it->second.handshake_seq;
    it->second = DeviceSessionState{};
    it->second.handshake_seq = seq;
  });
}

void SessionAuthTable::drop_all() {
  shards_.for_each_shard([](Shard& shard) {
    for (auto& [id, state] : shard.sessions) {
      const std::uint64_t seq = state.handshake_seq;
      state = DeviceSessionState{};
      state.handshake_seq = seq;
    }
  });
}

std::uint64_t SessionAuthTable::next_handshake_seq(std::uint64_t device_id) {
  return shards_.with(device_id, [&](Shard& shard) {
    return ++shard.sessions[device_id].handshake_seq;
  });
}

void SessionAuthTable::restore_handshake_seq(std::uint64_t device_id,
                                             std::uint64_t seq) {
  shards_.with(device_id, [&](Shard& shard) {
    DeviceSessionState& state = shard.sessions[device_id];
    if (seq > state.handshake_seq) state.handshake_seq = seq;
  });
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
SessionAuthTable::handshake_seqs() const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> seqs;
  shards_.for_each_shard([&](const Shard& shard) {
    for (const auto& [id, state] : shard.sessions)
      if (state.handshake_seq != 0) seqs.emplace_back(id, state.handshake_seq);
  });
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

std::size_t SessionAuthTable::active_sessions() const {
  std::size_t total = 0;
  shards_.for_each_shard([&](const Shard& shard) {
    for (const auto& [id, state] : shard.sessions)
      if (!state.mac_key.empty()) ++total;
  });
  return total;
}

}  // namespace medsen::cloud
