#include "cloud/streaming.h"

#include <span>
#include <stdexcept>
#include <utility>

namespace medsen::cloud {

StreamingAnalyzer::StreamingAnalyzer(double sample_rate_hz,
                                     StreamingConfig config,
                                     util::ThreadPool* pool)
    : rate_(sample_rate_hz), config_(config), pool_(pool) {
  if (sample_rate_hz <= 0.0)
    throw std::invalid_argument("StreamingAnalyzer: bad sample rate");
  if (config_.chunk_samples <= 2 * config_.overlap_samples)
    throw std::invalid_argument(
        "StreamingAnalyzer: chunk must exceed twice the overlap");
}

void StreamingAnalyzer::push(std::span<const double> samples) {
  buffer_.insert(buffer_.end(), samples.begin(), samples.end());
  consumed_ += samples.size();
  while (buffer_.size() >= config_.chunk_samples) {
    if (pool_ != nullptr)
      start_block_async();
    else
      process_block(false);
  }
}

/// Pipelined path for one full-size block: launch its detrend on the
/// pool, then finish the previous block (peak detection) while it runs.
/// Completing old-before-storing-new keeps emission strictly in block
/// order, so results match serial mode exactly.
void StreamingAnalyzer::start_block_async() {
  const std::size_t len = config_.chunk_samples;
  PendingBlock next;
  next.start_index = buffer_start_index_;
  next.len = len;
  // Lease block scratch: input copy, detrend output and workspace all
  // come from the pool, so steady-state streaming allocates nothing per
  // block (the pool holds at most two scratches — one completing, one
  // in flight).
  auto scratch = block_pool_.acquire();
  scratch->block.assign(buffer_.begin(),
                        buffer_.begin() + static_cast<long>(len));
  next.detrended = pool_->submit(
      [scratch = std::move(scratch), config = config_.detrend]() mutable {
        scratch->detrended.resize(scratch->block.size());
        dsp::detrend_into(scratch->block, config,
                          std::span<double>(scratch->detrended), nullptr,
                          scratch->detrend);
        return std::move(scratch);
      });

  // Advance past the block, keeping the overlap margin (same bookkeeping
  // as the serial path).
  const std::size_t advance = len - config_.overlap_samples;
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(advance));
  buffer_start_index_ += advance;

  complete_pending();
  pending_ = std::move(next);
}

void StreamingAnalyzer::complete_pending() {
  if (!pending_) return;
  PendingBlock block = std::move(*pending_);
  pending_.reset();
  const auto scratch = block.detrended.get();  // rethrows task errors
  const std::span<const double> detrended(scratch->detrended.data(),
                                          block.len);
  const double start_time = static_cast<double>(block.start_index) / rate_;
  auto peaks = dsp::detect_peaks(detrended, rate_, start_time,
                                 config_.peak_detect, peak_scratch_);
  for (auto& peak : peaks) peak.index += block.start_index;
  // Pending blocks are never final: defer peaks in the trailing overlap
  // margin to the next block exactly as the serial path does.
  const double limit =
      start_time +
      static_cast<double>(block.len - config_.overlap_samples) / rate_;
  std::erase_if(peaks,
                [&](const dsp::Peak& p) { return p.time_s >= limit; });
  emit(std::move(peaks));
}

void StreamingAnalyzer::process_block(bool final_block) {
  const std::size_t len =
      final_block ? buffer_.size()
                  : std::min(config_.chunk_samples, buffer_.size());
  if (len == 0) return;
  const std::span<const double> block(buffer_.data(), len);
  serial_scratch_.detrended.resize(len);
  const std::span<double> detrended(serial_scratch_.detrended.data(), len);
  dsp::detrend_into(block, config_.detrend, detrended, nullptr,
                    serial_scratch_.detrend);
  const double start_time =
      static_cast<double>(buffer_start_index_) / rate_;
  auto peaks = dsp::detect_peaks(detrended, rate_, start_time,
                                 config_.peak_detect, peak_scratch_);
  // Correct the indices to global sample positions.
  for (auto& peak : peaks) peak.index += buffer_start_index_;
  if (!final_block) {
    // Peaks inside the trailing overlap margin are deferred: the next
    // block sees them whole (possibly with a better extremum), so
    // emitting the truncated detection here would double-count them.
    const double limit =
        start_time +
        static_cast<double>(len - config_.overlap_samples) / rate_;
    std::erase_if(peaks,
                  [&](const dsp::Peak& p) { return p.time_s >= limit; });
  }
  emit(std::move(peaks));

  if (final_block) {
    buffer_.clear();
    buffer_start_index_ += len;
    return;
  }
  // Keep the overlap margin so peaks straddling the boundary are seen
  // whole by the next block.
  const std::size_t advance = len - config_.overlap_samples;
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<long>(advance));
  buffer_start_index_ += advance;
}

void StreamingAnalyzer::emit(std::vector<dsp::Peak> peaks) {
  for (auto& peak : peaks) {
    // Deduplicate overlap re-detections: anything at or before the last
    // emitted timestamp was already reported by the previous block.
    if (peak.time_s <= last_emitted_time_ + 1e-9) continue;
    last_emitted_time_ = peak.time_s;
    results_.push_back(peak);
  }
}

std::vector<dsp::Peak> StreamingAnalyzer::finish() {
  // Drain the in-flight block first: it precedes the buffered remainder
  // on the timeline.
  complete_pending();
  process_block(true);
  auto out = std::move(results_);
  results_.clear();
  last_emitted_time_ = -1.0;
  // buffer_start_index_ keeps counting so a reused analyzer continues the
  // global timeline; reset for a fresh run.
  buffer_start_index_ = 0;
  consumed_ = 0;
  return out;
}

}  // namespace medsen::cloud
