#pragma once
// cloud::DurableState — the crash-consistency layer for one CloudServer.
// It owns a write-ahead journal plus four LSN-stamped compaction
// snapshots (records, enrollments, registry, handshake ordinals), and
// enforces the
// ack ⇒ durable contract: every server-side mutation is appended (and
// fsync'd) to the journal *and applied to memory under the same lock*
// before the caller may acknowledge it, so a compaction snapshot can
// never observe memory ahead of or behind the LSN it stamps.
//
// Recovery = load snapshots, then replay every journal record whose LSN
// is newer than the matching snapshot's applied_lsn. Replay is
// idempotent across mixed-generation snapshots because each store is
// gated on its own applied_lsn.
//
// Secrets at rest: when `storage_key` is set, every journal payload and
// every snapshot body is sealed with AES-128-CTR under a key derived
// once from the storage key. Nonces are epoch-partitioned: a boot
// counter persisted in seal.epoch is durably bumped at every open and
// forms the high 32 bits of each nonce, so every process lifetime seals
// in a disjoint nonce space. Counting only nonces *observed* during
// recovery is not enough — a crash between write_file_atomic's tmp
// fsync and its rename strands a fully sealed <store>.snap.tmp that
// recovery never reads, and a torn final journal record consumes a
// nonce the tail-truncation hides; either way a restart that resumed at
// max(observed)+1 would re-issue a live nonce and two ciphertexts under
// one keystream would coexist on disk (XOR of ciphertexts = XOR of
// plaintexts). Stale .snap.tmp files are also unlinked at open so the
// stranded ciphertext itself cannot linger.
//
// Handshake ordinals are journaled too (kHandshake): the server's
// deterministic RndB derivation must never rewind across a crash, or a
// restarted server would re-issue an old nonce and an observer could
// replay a recorded handshake — the "no duplicated auth decision"
// invariant.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "auth/identifier.h"
#include "cloud/journal.h"
#include "cloud/storage.h"
#include "util/secret_bytes.h"
#include "util/sharded.h"

namespace medsen::cloud {

class CloudServer;

struct DurabilityConfig {
  /// State directory (created if missing). Holds journal.wal,
  /// records.snap, enroll.snap, registry.snap, sessions.snap.
  std::string dir;
  /// fsync each journal append (the ack ⇒ durable contract); off only
  /// for benches measuring the in-memory path.
  bool fsync = true;
  /// Compact (snapshot + truncate the journal) once this many records
  /// have been appended since the last compaction (0 = manual only).
  std::uint64_t compact_after_records = 4096;
  /// When non-empty, seals journal payloads and snapshot bodies
  /// (AES-128-CTR under a derived key). Empty = plaintext (tests only).
  std::vector<std::uint8_t> storage_key;
};

/// What recovery found and how long replay took (the chaos harness
/// exports these as recovery.replay_ms / recovery.records_replayed).
struct RecoveryStats {
  bool snapshots_loaded = false;
  std::uint64_t records_replayed = 0;  ///< journal records applied
  std::uint64_t stored_records = 0;
  std::uint64_t registry_events = 0;
  std::uint64_t user_enrollments = 0;
  std::uint64_t handshake_marks = 0;
  std::uint64_t last_lsn = 0;
  bool tail_truncated = false;
  double replay_ms = 0.0;
};

class DurableState {
 public:
  /// Opens (or creates) the journal under config.dir. Throws
  /// PersistenceError on corrupt on-disk state.
  explicit DurableState(DurabilityConfig config);

  /// Load snapshots and replay the journal into the server's stores.
  /// Call exactly once, before any log_* hook (CloudServer::
  /// attach_durability does both in order).
  RecoveryStats recover_into(CloudServer& server);

  // Append hooks. Each one journals the event durably and then runs
  // `apply` (the in-memory mutation) under the same lock, so snapshots
  // taken by compact() are always consistent with the journal LSN.
  void log_record(const std::string& key, const StoredRecord& record,
                  const std::function<void()>& apply);
  /// `validate` runs under the gate, immediately before the journal
  /// append: two racing enrollments of one code serialize there, so the
  /// loser throws before its record reaches the WAL. Validating outside
  /// the gate would let both pass and journal a record whose replay
  /// throws on every later recovery — a permanently unbootable server.
  void log_user_enrolled(const std::string& user_id,
                         const auth::CytoCode& code,
                         const std::function<void()>& validate,
                         const std::function<void()>& apply);
  void log_provision(std::uint64_t device_id,
                     std::span<const std::uint8_t> mac_key,
                     const std::function<void()>& apply);
  void log_enroll_device(std::uint64_t device_id,
                         const std::function<void()>& apply);
  void log_revoke(std::uint64_t device_id,
                  const std::function<void()>& apply);
  void log_master_rotated(std::uint32_t epoch,
                          std::span<const std::uint8_t> master,
                          const std::function<void()>& apply);
  void log_epoch_retired(std::uint32_t epoch,
                         const std::function<void()>& apply);
  /// Handshake ordinal burned (already bumped in memory by the caller).
  void log_handshake(std::uint64_t device_id, std::uint64_t seq);

  /// Snapshot all stores (stamped with the journal's current LSN)
  /// and truncate the journal. Blocks concurrent log_* calls for the
  /// duration; crash-safe at every intermediate point.
  void compact(CloudServer& server);
  /// compact() iff the auto-compaction threshold has been reached.
  void maybe_compact(CloudServer& server);

  [[nodiscard]] std::uint64_t last_lsn() const { return journal_.last_lsn(); }
  [[nodiscard]] const RecoveryStats& last_recovery() const {
    return recovery_;
  }
  [[nodiscard]] std::string journal_path() const;
  [[nodiscard]] std::string records_snapshot_path() const;
  [[nodiscard]] std::string enroll_snapshot_path() const;
  [[nodiscard]] std::string registry_snapshot_path() const;
  /// Handshake-ordinal snapshot — without it, compaction would truncate
  /// kHandshake records and a restart could rewind RndB freshness.
  [[nodiscard]] std::string sessions_snapshot_path() const;
  /// The persisted sealing-nonce boot epoch (present only when a
  /// storage key is configured).
  [[nodiscard]] std::string seal_epoch_path() const;

 private:
  /// One-shard Sharded (cloud-mutex rule) serializing append+apply
  /// against compaction. The journal's own lock nests inside.
  struct Gate {};

  void append_and_apply(JournalRecordType type,
                        std::vector<std::uint8_t> payload,
                        const std::function<void()>& apply);
  /// As above, with `validate` run under the gate before the append so
  /// a mutation that cannot apply is rejected before it is journaled.
  void append_and_apply(JournalRecordType type,
                        std::vector<std::uint8_t> payload,
                        const std::function<void()>& validate,
                        const std::function<void()>& apply);
  /// Durably bump (and load) the seal.epoch boot counter; called once
  /// at construction when sealing is enabled, before any seal_payload.
  void bump_seal_epoch();
  /// Flag-prefixed payload sealing: u8 0 | plaintext, or
  /// u8 1 | u64 nonce | ciphertext when a storage key is configured.
  [[nodiscard]] std::vector<std::uint8_t> seal_payload(
      std::vector<std::uint8_t> payload);
  [[nodiscard]] std::vector<std::uint8_t> unseal_payload(
      std::span<const std::uint8_t> flagged);
  void write_snapshot(const std::string& path, std::uint32_t magic,
                      std::uint64_t applied_lsn,
                      std::vector<std::uint8_t> body);
  /// Returns (applied_lsn, body) or applied_lsn 0 when the file is
  /// absent.
  [[nodiscard]] std::pair<std::uint64_t, std::vector<std::uint8_t>>
  read_snapshot(const std::string& path, std::uint32_t magic);

  DurabilityConfig config_;
  Journal journal_;
  util::SecretBytes seal_key_;  ///< derived once; empty = plaintext
  /// This boot's sealing-nonce epoch (high 32 nonce bits), from
  /// seal.epoch. 0 = sealing disabled.
  std::uint64_t seal_epoch_ = 0;
  /// Next sealing nonce: seal_epoch_ << 32 | in-boot counter. Disjoint
  /// per process lifetime — see the header comment.
  std::atomic<std::uint64_t> nonce_{1};
  util::Sharded<Gate> gate_{1};
  RecoveryStats recovery_;
};

}  // namespace medsen::cloud
