#pragma once
// Streaming peak analysis. The paper's 3-hour acquisitions produce
// ~600 MB of measurements; loading a whole channel to detrend it at once
// is exactly what a real cloud service avoids. StreamingAnalyzer consumes
// a channel in chunks, detrends and detects peaks per chunk with an
// overlap margin, and deduplicates peaks found twice in the overlap —
// bounded memory, byte-identical semantics to batch analysis up to
// boundary effects (verified by tests).
//
// Pipelined mode (construct with a util::ThreadPool): block k+1's
// detrend runs on the pool while block k's peak detection completes on
// the caller, overlapping the two dominant costs. Blocks are completed
// strictly in order, so the emitted peaks are identical to serial mode.

#include <cstddef>
#include <future>
#include <optional>
#include <vector>

#include "dsp/detrend.h"
#include "dsp/peak_detect.h"
#include "util/scratch_pool.h"
#include "util/thread_pool.h"

namespace medsen::cloud {

struct StreamingConfig {
  dsp::DetrendConfig detrend;
  dsp::PeakDetectConfig peak_detect;
  std::size_t chunk_samples = 65536;  ///< processing block size
  std::size_t overlap_samples = 512;  ///< carried between blocks
};

/// Streaming analyzer for one channel.
class StreamingAnalyzer {
 public:
  /// A non-null pool enables pipelined mode (pool outlives the analyzer).
  StreamingAnalyzer(double sample_rate_hz, StreamingConfig config = {},
                    util::ThreadPool* pool = nullptr);

  /// Feed the next run of samples (any size; internally re-blocked).
  void push(std::span<const double> samples);

  /// Flush remaining buffered samples and return all detected peaks in
  /// time order. The analyzer can be reused afterwards.
  std::vector<dsp::Peak> finish();

  [[nodiscard]] std::size_t samples_consumed() const { return consumed_; }
  [[nodiscard]] bool pipelined() const { return pool_ != nullptr; }

 private:
  void process_block(bool final_block);
  void start_block_async();
  void complete_pending();
  void emit(std::vector<dsp::Peak> peaks);

  /// Working memory for one block: the pipelined input copy, the
  /// detrended output, and the detrend workspace. Leased per in-flight
  /// block from block_pool_ — two blocks' detrends can overlap in
  /// pipelined mode (block k+1 is submitted before block k completes),
  /// so the scratch must travel with the block, not live in one member.
  struct BlockScratch {
    std::vector<double> block;
    std::vector<double> detrended;
    dsp::DetrendWorkspace detrend;
  };

  /// A full-size block whose detrend is in flight on the pool. The
  /// future carries the block's scratch lease; its `detrended` buffer
  /// holds `len` valid samples once ready.
  struct PendingBlock {
    std::size_t start_index = 0;  ///< global index of the block's sample 0
    std::size_t len = 0;
    std::future<util::ScratchPool<BlockScratch>::Lease> detrended;
  };

  double rate_;
  StreamingConfig config_;
  util::ThreadPool* pool_ = nullptr;
  std::vector<double> buffer_;
  std::size_t buffer_start_index_ = 0;  ///< global index of buffer_[0]
  std::size_t consumed_ = 0;
  double last_emitted_time_ = -1.0;
  std::vector<dsp::Peak> results_;
  std::optional<PendingBlock> pending_;
  util::ScratchPool<BlockScratch> block_pool_;
  BlockScratch serial_scratch_;        ///< serial/final-block path only
  dsp::PeakDetectScratch peak_scratch_;  ///< caller-thread peak detection
};

}  // namespace medsen::cloud
