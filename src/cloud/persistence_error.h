#pragma once
// cloud::PersistenceError — the typed failure for corrupt or
// unloadable on-disk state (snapshots and the write-ahead journal).
// Distinct from generic std::runtime_error so operators can tell "the
// stored state is damaged — restore from backup" apart from transient
// runtime failures, and so tests can assert that hostile bytes surface
// as exactly this, never as UB or a silent partial load.

#include <stdexcept>
#include <string>

namespace medsen::cloud {

struct PersistenceError : std::runtime_error {
  explicit PersistenceError(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace medsen::cloud
