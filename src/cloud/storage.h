#pragma once
// Cloud record storage: encrypted analysis outcomes are stored under the
// patient's cyto-coded identifier (paper Section V), so a practitioner
// with the patient's code — but no biometric, no account password — can
// fetch the history. Records are opaque ciphertext blobs to the cloud.
//
// Thread-safe and sharded: identifiers route deterministically to one of
// N independently-locked shards (util::Sharded, FNV-1a over the code's
// text form), so concurrent stores for different patients never contend.
// Readers only ever see snapshots — the internal maps are never leaked
// by reference. Cross-shard reads (snapshot, counts, visit) lock one
// shard at a time: each shard's view is consistent, the whole is
// eventually consistent while writers are active.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "auth/identifier.h"
#include "util/sharded.h"

namespace medsen::cloud {

struct StoredRecord {
  std::uint64_t session_id = 0;
  std::vector<std::uint8_t> encrypted_result;
};

class RecordStore {
 public:
  /// `shards` 0 = hardware default; rounded up to a power of two.
  explicit RecordStore(std::size_t shards = 0) : shards_(shards) {}
  /// Build a store from pre-keyed entries (persistence layer).
  explicit RecordStore(std::map<std::string, std::vector<StoredRecord>> entries,
                       std::size_t shards = 0);

  /// Append a record under an identifier.
  void store(const auth::CytoCode& code, StoredRecord record);

  /// Fetch all records for an identifier (empty when unknown).
  [[nodiscard]] std::vector<StoredRecord> fetch(
      const auth::CytoCode& code) const;

  /// Most recent record for an identifier.
  [[nodiscard]] std::optional<StoredRecord> latest(
      const auth::CytoCode& code) const;

  [[nodiscard]] std::size_t identifier_count() const;
  [[nodiscard]] std::size_t record_count() const;

  /// Consistent-per-shard copy of all entries, keyed by the code's text
  /// form and merged in key order (persistence layer; replaces the old
  /// by-reference entries()).
  [[nodiscard]] std::map<std::string, std::vector<StoredRecord>> snapshot()
      const;
  /// Visit every (key, records) pair of a snapshot, in key order. The
  /// callback sees a copy, so it may reenter the store.
  void visit(const std::function<void(const std::string&,
                                      const std::vector<StoredRecord>&)>&
                 visitor) const;
  /// Reinstall one identifier's record list (persistence layer).
  void restore(std::string key, std::vector<StoredRecord> records);
  /// Append one record under a pre-keyed identifier (journal replay —
  /// unlike restore(), existing records for the key are kept).
  void append(std::string key, StoredRecord record);

  [[nodiscard]] std::size_t shard_count() const {
    return shards_.shard_count();
  }

 private:
  using Entries = std::map<std::string, std::vector<StoredRecord>>;

  /// Identifier text -> shard route key (deterministic across runs).
  [[nodiscard]] static std::uint64_t route(const std::string& key) {
    return util::fnv1a64(std::string_view(key));
  }

  util::Sharded<Entries> shards_;  // each shard keyed by code text
};

}  // namespace medsen::cloud
