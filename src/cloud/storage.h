#pragma once
// Cloud record storage: encrypted analysis outcomes are stored under the
// patient's cyto-coded identifier (paper Section V), so a practitioner
// with the patient's code — but no biometric, no account password — can
// fetch the history. Records are opaque ciphertext blobs to the cloud.
//
// Thread-safe: a server handling concurrent requests stores and fetches
// through an internal mutex, and readers only ever see snapshots — the
// internal map is never leaked by reference.

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "auth/identifier.h"

namespace medsen::cloud {

struct StoredRecord {
  std::uint64_t session_id = 0;
  std::vector<std::uint8_t> encrypted_result;
};

class RecordStore {
 public:
  RecordStore() = default;
  /// Build a store from pre-keyed entries (persistence layer).
  explicit RecordStore(
      std::map<std::string, std::vector<StoredRecord>> entries)
      : store_(std::move(entries)) {}

  /// Append a record under an identifier.
  void store(const auth::CytoCode& code, StoredRecord record);

  /// Fetch all records for an identifier (empty when unknown).
  [[nodiscard]] std::vector<StoredRecord> fetch(
      const auth::CytoCode& code) const;

  /// Most recent record for an identifier.
  [[nodiscard]] std::optional<StoredRecord> latest(
      const auth::CytoCode& code) const;

  [[nodiscard]] std::size_t identifier_count() const;
  [[nodiscard]] std::size_t record_count() const;

  /// Consistent copy of all entries, keyed by the code's text form
  /// (persistence layer; replaces the old by-reference entries()).
  [[nodiscard]] std::map<std::string, std::vector<StoredRecord>> snapshot()
      const;
  /// Visit every (key, records) pair under the lock, in key order. The
  /// callback must not reenter the store.
  void visit(const std::function<void(const std::string&,
                                      const std::vector<StoredRecord>&)>&
                 visitor) const;
  /// Reinstall one identifier's record list (persistence layer).
  void restore(std::string key, std::vector<StoredRecord> records);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::vector<StoredRecord>> store_;  // key: code text
};

}  // namespace medsen::cloud
