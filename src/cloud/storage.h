#pragma once
// Cloud record storage: encrypted analysis outcomes are stored under the
// patient's cyto-coded identifier (paper Section V), so a practitioner
// with the patient's code — but no biometric, no account password — can
// fetch the history. Records are opaque ciphertext blobs to the cloud.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "auth/identifier.h"

namespace medsen::cloud {

struct StoredRecord {
  std::uint64_t session_id = 0;
  std::vector<std::uint8_t> encrypted_result;
};

class RecordStore {
 public:
  /// Append a record under an identifier.
  void store(const auth::CytoCode& code, StoredRecord record);

  /// Fetch all records for an identifier (empty when unknown).
  [[nodiscard]] std::vector<StoredRecord> fetch(
      const auth::CytoCode& code) const;

  /// Most recent record for an identifier.
  [[nodiscard]] std::optional<StoredRecord> latest(
      const auth::CytoCode& code) const;

  [[nodiscard]] std::size_t identifier_count() const { return store_.size(); }
  [[nodiscard]] std::size_t record_count() const;

  /// Raw entries, keyed by the code's text form (persistence layer).
  [[nodiscard]] const std::map<std::string, std::vector<StoredRecord>>&
  entries() const {
    return store_;
  }
  /// Reinstall one identifier's record list (persistence layer).
  void restore(std::string key, std::vector<StoredRecord> records) {
    store_[std::move(key)] = std::move(records);
  }

 private:
  std::map<std::string, std::vector<StoredRecord>> store_;  // key: code text
};

}  // namespace medsen::cloud
