#pragma once
// cloud::SessionAuthTable: the server half of the EV2-style session
// plane. After an AuthChallenge/AuthResponse handshake the server holds,
// per device, the negotiated session MAC key and a DTLS/IPsec-style
// anti-replay window over the envelope command counter:
//
//   - `highest` is the largest counter accepted so far;
//   - `window` is a 64-bit bitmap of the counters just below it, bit i
//     marking `highest - i` as seen.
//
// A counter above `highest` is fresh; one inside the window is fresh
// exactly once (retransmissions of in-flight commands from the ARQ layer
// land here); anything at or below `highest - 64`, or a second arrival
// of a window bit, is a replay the caller must reject. Commitment is
// separate from classification so the server only burns a counter once
// the request actually succeeded — an admission-shed or quality-rejected
// command can be retried with the same counter.
//
// One active session per device: a new handshake (re-key) atomically
// replaces key, counter, and window, so envelopes from the superseded
// session fail MAC verification from that point on. State is sharded by
// device id (util::Sharded) like every other hot map in this layer.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/secret_bytes.h"
#include "util/sharded.h"

namespace medsen::cloud {

/// Outcome of classifying an envelope counter against the window.
enum class CounterStatus : std::uint8_t {
  kFresh = 0,      ///< never seen; process and commit on success
  kReplay = 1,     ///< seen before; consult the idempotency cache
  kStale = 2,      ///< below the window floor; unservable, reject
  kNoSession = 3,  ///< no session for this (device, session_id)
};

/// Per-device negotiated session state (one live session per device).
struct DeviceSessionState {
  std::uint64_t session_id = 0;
  util::SecretBytes mac_key;        ///< 32-byte derived MAC key (wiped on
                                    ///< replace/drop by SecretBytes)
  std::uint32_t highest = 0;        ///< largest committed counter
  std::uint64_t window = 0;         ///< seen-bitmap below `highest`
  std::uint64_t handshake_seq = 0;  ///< per-device handshake ordinal
};

class SessionAuthTable {
 public:
  static constexpr std::uint32_t kWindowSize = 64;

  explicit SessionAuthTable(std::size_t shard_count = 0)
      : shards_(shard_count) {}

  /// Install (or replace) the device's active session. Counter state
  /// resets: the first command of the new session is counter 1.
  void establish(std::uint64_t device_id, std::uint64_t session_id,
                 std::vector<std::uint8_t> mac_key);

  /// The session MAC key, if `session_id` is the device's live session.
  [[nodiscard]] std::optional<util::SecretBytes> session_key(
      std::uint64_t device_id, std::uint64_t session_id) const;

  /// Classify `counter` against the device's window (no state change).
  [[nodiscard]] CounterStatus classify(std::uint64_t device_id,
                                       std::uint64_t session_id,
                                       std::uint32_t counter) const;

  /// Mark `counter` as seen (call only after the request succeeded and
  /// its response is cached). No-op if the session is gone — a re-key
  /// racing a slow command must not resurrect old state.
  void commit(std::uint64_t device_id, std::uint64_t session_id,
              std::uint32_t counter);

  /// Tear down the device's session (revocation, key rotation,
  /// re-provisioning). Subsequent session-plane envelopes get
  /// kAuthRequired until a new handshake.
  void drop(std::uint64_t device_id);

  /// Tear down every session (master-key rotation re-keys the fleet).
  /// Handshake ordinals survive, as with drop().
  void drop_all();

  /// Next per-device handshake ordinal (feeds the server's
  /// deterministic RndB derivation so repeated handshakes from one
  /// device never reuse a nonce).
  [[nodiscard]] std::uint64_t next_handshake_seq(std::uint64_t device_id);

  /// Recovery: floor the device's handshake ordinal at `seq` (max with
  /// the current value — replay may arrive in any snapshot/journal
  /// interleaving, and the ordinal must never rewind).
  void restore_handshake_seq(std::uint64_t device_id, std::uint64_t seq);

  /// All non-zero handshake ordinals, sorted by device id (feeds the
  /// durability layer's compaction snapshot).
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>
  handshake_seqs() const;

  /// Live session count across all shards (snapshot).
  [[nodiscard]] std::size_t active_sessions() const;

 private:
  struct Shard {
    std::unordered_map<std::uint64_t, DeviceSessionState> sessions;
  };

  util::Sharded<Shard> shards_;
};

}  // namespace medsen::cloud
