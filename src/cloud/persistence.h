#pragma once
// File persistence for the cloud's state: the enrollment database (user
// -> cyto-code) and the record store (cyto-code -> encrypted results).
// Files carry a magic, a version and a CRC-32 so partial writes and
// corruption are rejected on load.

#include <string>

#include "auth/enrollment.h"
#include "cloud/dispatch.h"
#include "cloud/storage.h"

namespace medsen::cloud {

/// Save / load the enrollment database. The alphabet travels with the
/// file so a mismatched deployment is detected at load.
void save_enrollments(const auth::EnrollmentDatabase& db,
                      const std::string& path);
auth::EnrollmentDatabase load_enrollments(const std::string& path);

/// Save / load the record store.
void save_records(const RecordStore& store, const std::string& path);
RecordStore load_records(const std::string& path);

/// Save / load the device registry's keying state: legacy keys,
/// master-key epochs, enrollment and revocation lists. Negotiated
/// sessions are deliberately NOT persisted — a restarted server answers
/// in-session traffic with kAuthRequired and devices re-handshake.
void save_registry(const DeviceRegistry& registry, const std::string& path);
void load_registry(DeviceRegistry& registry, const std::string& path);

}  // namespace medsen::cloud
