#pragma once
// File persistence for the cloud's state: the enrollment database (user
// -> cyto-code), the record store (cyto-code -> encrypted results) and
// the device registry's keying state. Files carry a magic, a version and
// a CRC-32 so partial writes and corruption are rejected on load — all
// load failures surface as the typed PersistenceError, never as UB or a
// silent partial load.
//
// The body codecs are exposed separately from the whole-file save/load
// pairs because the durability layer (cloud/durability.h) reuses them
// for its LSN-stamped, optionally sealed compaction snapshots.

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "auth/enrollment.h"
#include "cloud/dispatch.h"
#include "cloud/persistence_error.h"
#include "cloud/storage.h"

namespace medsen::cloud {

inline constexpr std::uint32_t kEnrollMagic = 0x4D53454E;    // "MSEN"
inline constexpr std::uint32_t kRecordMagic = 0x4D535243;    // "MSRC"
inline constexpr std::uint32_t kRegistryMagic = 0x4D535247;  // "MSRG"

/// Container framing: u32 magic | u32 version | u32 crc32(body) |
/// blob(body). unseal_blob verifies all three and throws
/// PersistenceError on any mismatch (including trailing bytes).
std::vector<std::uint8_t> seal_blob(std::uint32_t magic,
                                    std::vector<std::uint8_t> body);
std::vector<std::uint8_t> unseal_blob(std::uint32_t magic,
                                      std::span<const std::uint8_t> file);

/// Body codecs. Decoders are strict: truncated input, impossible counts
/// and trailing bytes all throw PersistenceError.
std::vector<std::uint8_t> encode_enrollments_body(
    const auth::EnrollmentDatabase& db);
auth::EnrollmentDatabase decode_enrollments_body(
    std::span<const std::uint8_t> body);
std::vector<std::uint8_t> encode_records_body(const RecordStore& store);
std::map<std::string, std::vector<StoredRecord>> decode_records_body(
    std::span<const std::uint8_t> body);
std::vector<std::uint8_t> encode_registry_body(const DeviceRegistry& registry);
RegistrySnapshot decode_registry_body(std::span<const std::uint8_t> body);

/// Save / load the enrollment database. The alphabet travels with the
/// file so a mismatched deployment is detected at load.
void save_enrollments(const auth::EnrollmentDatabase& db,
                      const std::string& path);
auth::EnrollmentDatabase load_enrollments(const std::string& path);

/// Save / load the record store.
void save_records(const RecordStore& store, const std::string& path);
RecordStore load_records(const std::string& path);

/// Save / load the device registry's keying state: legacy keys,
/// master-key epochs, enrollment and revocation lists. Negotiated
/// sessions are deliberately NOT persisted — a restarted server answers
/// in-session traffic with kAuthRequired and devices re-handshake.
void save_registry(const DeviceRegistry& registry, const std::string& path);
void load_registry(DeviceRegistry& registry, const std::string& path);

}  // namespace medsen::cloud
