#include "cloud/session_cache.h"

namespace medsen::cloud {

SessionCache::SessionCache(Config config) : shards_(config.shards) {
  if (config.capacity == 0) {
    per_shard_capacity_ = 0;  // unbounded
  } else {
    const std::size_t per_shard = config.capacity / shards_.shard_count();
    per_shard_capacity_ = per_shard == 0 ? 1 : per_shard;
  }
}

SessionCache::Hit SessionCache::lookup(const net::Envelope& request) {
  const SessionKey key{request.device_id, request.session_id,
                       request.counter};
  return shards_.with(request.device_id, [&](ShardState& shard) {
    Hit hit;
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) return hit;
    if (!crypto::digest_equal(it->second->request_mac, request.mac)) {
      // A replay that is not byte-identical is a protocol violation, not
      // a transport retry.
      hit.state = Lookup::kConflict;
      return hit;
    }
    // Touch: a session the transport is actively retrying must outlive
    // colder entries.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hit.state = Lookup::kReplay;
    hit.response = it->second->response;
    return hit;
  });
}

void SessionCache::insert(const net::Envelope& request,
                          const net::Envelope& response) {
  const SessionKey key{request.device_id, request.session_id,
                       request.counter};
  shards_.with(request.device_id, [&](ShardState& shard) {
    if (shard.index.find(key) != shard.index.end()) return;
    shard.lru.push_front(Entry{key, request.mac, response});
    shard.index.emplace(key, shard.lru.begin());
    if (per_shard_capacity_ == 0) return;
    while (shard.lru.size() > per_shard_capacity_) {
      shard.index.erase(shard.lru.back().key);
      shard.lru.pop_back();
      ++shard.evictions;
    }
  });
}

std::size_t SessionCache::size() const {
  std::size_t total = 0;
  shards_.for_each_shard(
      [&](const ShardState& shard) { total += shard.index.size(); });
  return total;
}

std::uint64_t SessionCache::evictions() const {
  std::uint64_t total = 0;
  shards_.for_each_shard(
      [&](const ShardState& shard) { total += shard.evictions; });
  return total;
}

}  // namespace medsen::cloud
