#pragma once
// The cloud's service plumbing, independent of what the handlers do:
//
//  - DeviceRegistry: device_id -> per-device MAC key, so one server
//    serves many provisioned sensors (multi-tenant; keys are shared out
//    of band at provisioning, exactly like the single-key scheme the
//    paper describes, just one per dongle). Sharded by device_id: a
//    lookup only locks the key's shard, so a fleet of devices never
//    serializes on one registry mutex.
//  - AdmissionGate: a bounded in-flight counter, lock-free. Past the
//    limit the server sheds requests with an `overloaded` error instead
//    of queueing unboundedly on the shared analysis pool.
//  - ServiceCounters: per-shard relaxed std::atomic service counters,
//    aggregated on read — the hot path never takes a stats lock, and a
//    stats() snapshot is eventually consistent (it may miss an update
//    racing the read, never report a torn one).
//  - RequestContext: per-request scratch (identity, quality report,
//    timing) so nothing request-scoped ever lives in a server-wide
//    member — the fix for the old racy `last_quality_`.
//  - ServiceResult: a handler's outcome as data. Failures are values
//    that become kError envelopes at the boundary; exceptions are
//    reserved for programmer errors.
//  - Dispatcher: MessageType -> handler registry behind the single
//    CloudServer::handle() entrypoint.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cloud/quality.h"
#include "net/messages.h"
#include "util/secret_bytes.h"
#include "util/sharded.h"

namespace medsen::cloud {

/// A consistent, deterministic dump of registry state for persistence:
/// every collection is sorted, so serialization never iterates an
/// unordered container (the unordered-serial lint rule) and sealed
/// snapshots are byte-identical across runs. This is the one sanctioned
/// secret-to-plaintext boundary: keys leave their SecretBytes holders
/// here precisely so the persistence layer can seal them to disk.
struct RegistrySnapshot {  // medsen: allow(secret-flow)
  std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>>
      legacy_keys;  ///< sorted by device id
  std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>>
      masters;  ///< sorted by epoch
  std::uint32_t current_epoch = 0;
  std::vector<std::uint64_t> enrolled;  ///< sorted device ids
  std::vector<std::uint64_t> revoked;   ///< sorted device ids
};

/// Thread-safe, sharded device registry with two keying planes:
///
///  - Legacy: an explicit per-device MAC key stored at provision time
///    (the original scheme; kept as a fallback mode so mixed fleets
///    upgrade incrementally).
///  - Diversified: the registry stores one 16-byte *master key per
///    epoch* plus id-only enrollment and revocation sets, and derives a
///    device's long-term key on demand as
///    crypto::diversify_device_key(master[epoch], id, epoch). A
///    million-device fleet holds zero per-device secrets
///    (stored_secret_count() == 0), and rotating the master key — a new
///    epoch — re-keys the whole fleet in one operation.
///
/// lookup() prefers the legacy key when both exist, so explicitly
/// provisioned overrides win. Revoked devices resolve to nothing on
/// either plane until re-provisioned/re-enrolled.
///
/// Routing is deterministic (util::Sharded FNV-1a): the same device
/// always lands on the same shard for a given shard count.
class DeviceRegistry {
 public:
  /// Whether provision() installed a first key or rotated an existing
  /// one. A rotation invalidates every session negotiated under the old
  /// key — the server must drop the device's session state.
  enum class ProvisionResult : std::uint8_t { kNew = 0, kRotated = 1 };

  /// `shards` 0 = hardware default; rounded up to a power of two.
  explicit DeviceRegistry(std::size_t shards = 0)
      : shards_(shards), masters_(1) {}

  /// Install (or rotate) a device's legacy MAC key. Re-provisioning an
  /// already-known device is an explicit rotation: the old key is
  /// invalid from this call on, and the result tells the caller to tear
  /// down any session negotiated under it. Clears revocation.
  ProvisionResult provision(std::uint64_t device_id,
                            std::vector<std::uint8_t> mac_key);
  /// Remove a device from both planes and put it on the revocation
  /// list; returns false when it was never provisioned/enrolled.
  bool revoke(std::uint64_t device_id);
  /// Diversified enrollment: record the id (no secret). Clears
  /// revocation. The device's key is derived on demand.
  void enroll(std::uint64_t device_id);
  [[nodiscard]] bool is_revoked(std::uint64_t device_id) const;
  /// Whether the device has an explicit (epoch-less) legacy key.
  [[nodiscard]] bool has_legacy_key(std::uint64_t device_id) const;

  /// The device's long-term key under the *current* epoch, or nullopt
  /// when unknown or revoked. Legacy keys win over derivation.
  [[nodiscard]] std::optional<util::SecretBytes> lookup(
      std::uint64_t device_id) const;
  /// Like lookup(), but derives under a specific epoch — the rotation
  /// grace path for devices still personalized under an older master.
  /// nullopt when that epoch's master is gone (retired) or the device
  /// is not enrolled. Legacy keys are epoch-less and never returned.
  [[nodiscard]] std::optional<util::SecretBytes> lookup_epoch(
      std::uint64_t device_id, std::uint32_t key_epoch) const;

  /// Install the master key for an epoch (16 bytes) and make it
  /// current. Old epochs stay derivable until retire_epoch().
  void set_master_key(std::uint32_t epoch, std::vector<std::uint8_t> master);
  /// Drop an epoch's master: devices personalized under it can no
  /// longer authenticate until re-personalized.
  bool retire_epoch(std::uint32_t epoch);
  [[nodiscard]] std::uint32_t current_epoch() const;
  [[nodiscard]] bool has_epoch(std::uint32_t epoch) const;

  /// Devices known to either plane (revoked ones excluded).
  [[nodiscard]] std::size_t size() const;
  /// Per-device secrets held server-side — the diversification pitch is
  /// that this stays 0 for an enrolled-only fleet.
  [[nodiscard]] std::size_t stored_secret_count() const;

  /// Deterministic full-state dump / restore for persistence.
  [[nodiscard]] RegistrySnapshot snapshot() const;
  void restore(const RegistrySnapshot& snapshot);

  [[nodiscard]] std::size_t shard_count() const {
    return shards_.shard_count();
  }
  /// Which shard a device routes to (deterministic; exposed for tests
  /// and for operators debugging shard balance).
  [[nodiscard]] std::size_t shard_of(std::uint64_t device_id) const {
    return shards_.shard_index(device_id);
  }

 private:
  /// Per-device state, sharded by device id.
  struct DeviceShard {
    std::unordered_map<std::uint64_t, util::SecretBytes> legacy;
    std::unordered_set<std::uint64_t> enrolled;
    std::unordered_set<std::uint64_t> revoked;
  };
  /// Fleet-wide keying state: tiny and rarely written, so it lives in a
  /// single-shard Sharded (routed with key 0) rather than a bare mutex.
  struct MasterState {
    std::unordered_map<std::uint32_t, util::SecretBytes> by_epoch;
    std::uint32_t current_epoch = 0;
  };

  util::Sharded<DeviceShard> shards_;
  util::Sharded<MasterState> masters_;
};

/// Bounded admission: at most `max_inflight` requests are inside the
/// service at once (0 = unbounded). Excess requests are shed immediately
/// — the caller turns a failed ticket into an `overloaded` error.
/// Lock-free: entering is one fetch_add on a shared atomic, so admission
/// never becomes the global serialization point the mutex version was.
class AdmissionGate {
 public:
  explicit AdmissionGate(std::size_t max_inflight = 0)
      : limit_(max_inflight) {}

  /// RAII admission slot; releases on destruction.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept;
    Ticket& operator=(Ticket&& other) noexcept;
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { release(); }

    [[nodiscard]] bool admitted() const { return gate_ != nullptr; }
    void release();

   private:
    friend class AdmissionGate;
    explicit Ticket(AdmissionGate* gate) : gate_(gate) {}
    AdmissionGate* gate_ = nullptr;
  };

  /// Try to enter; the ticket reports whether admission succeeded.
  /// Never admits more than `limit()` concurrent holders (the counter
  /// may transiently overshoot while a shed request backs out, but a
  /// ticket is only issued when the post-increment count is in bounds).
  [[nodiscard]] Ticket try_enter();

  [[nodiscard]] std::size_t limit() const { return limit_; }
  [[nodiscard]] std::size_t in_flight() const;
  /// Requests shed since construction.
  [[nodiscard]] std::uint64_t shed_total() const;

 private:
  std::size_t limit_;
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::uint64_t> shed_{0};
};

/// Aggregate service counters (all monotonic).
struct ServiceStats {
  std::uint64_t requests_processed = 0;  ///< cache-miss successes
  std::uint64_t replays_served = 0;      ///< idempotent cache hits
  std::uint64_t errors_returned = 0;     ///< kError responses sent
  std::uint64_t requests_shed = 0;       ///< refused by the admission gate
  std::uint64_t handshakes_completed = 0;  ///< sessions established
  std::uint64_t counter_rejections = 0;  ///< stale/replayed command counters
  double processing_time_s = 0.0;        ///< summed handler wall-clock
};

/// Per-shard relaxed atomic counters behind ServiceStats. Increments
/// route by device_id so a hot device's counters stay on one cache line
/// and fleets spread across shards; aggregate() sums the shards, giving
/// an eventually-consistent (never torn) snapshot. Wall-clock is summed
/// in integer nanoseconds — atomic<double> accumulation isn't portable
/// and the hot path must stay a plain fetch_add.
class ServiceCounters {
 public:
  explicit ServiceCounters(std::size_t shards = 0);

  void count_processed(std::uint64_t device_id, double processing_time_s);
  void count_replay(std::uint64_t device_id);
  void count_error(std::uint64_t device_id);
  void count_shed(std::uint64_t device_id);
  void count_handshake(std::uint64_t device_id);
  void count_counter_rejection(std::uint64_t device_id);

  [[nodiscard]] ServiceStats aggregate() const;
  [[nodiscard]] std::size_t shard_count() const { return count_; }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> requests_processed{0};
    std::atomic<std::uint64_t> replays_served{0};
    std::atomic<std::uint64_t> errors_returned{0};
    std::atomic<std::uint64_t> requests_shed{0};
    std::atomic<std::uint64_t> handshakes_completed{0};
    std::atomic<std::uint64_t> counter_rejections{0};
    std::atomic<std::uint64_t> processing_time_ns{0};
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t device_id) {
    return shards_[static_cast<std::size_t>(util::fnv1a64(device_id)) &
                   (count_ - 1)];
  }

  std::size_t count_;
  std::unique_ptr<Shard[]> shards_;
};

/// Per-request state threaded through a handler: who is asking, what the
/// quality gate concluded, and how long the handler ran. Owned by the
/// dispatching thread — never shared, never a server member.
struct RequestContext {
  std::uint64_t device_id = 0;
  std::uint64_t session_id = 0;
  util::SecretBytes mac_key;       ///< resolved from the registry
  QualityReport quality;           ///< filled by the upload handler
  double processing_time_s = 0.0;  ///< filled by the dispatcher
};

/// A handler's outcome. Success carries the response payload; failure
/// carries the structured error that becomes a kError envelope.
struct ServiceResult {
  bool ok = false;
  net::MessageType response_type = net::MessageType::kError;
  std::vector<std::uint8_t> response_payload;
  net::ErrorCode error = net::ErrorCode::kMalformed;
  std::uint8_t error_subcode = 0;
  std::string detail;
  /// Per-channel QualityReason bytes for quality failures (empty
  /// otherwise); copied into ErrorPayload::channel_reasons.
  std::vector<std::uint8_t> error_channel_reasons;

  static ServiceResult success(net::MessageType type,
                               std::vector<std::uint8_t> payload);
  static ServiceResult failure(net::ErrorCode code, std::string detail,
                               std::uint8_t subcode = 0,
                               std::vector<std::uint8_t> channel_reasons = {});
};

/// MessageType -> handler registry. Handlers run after admission, device
/// resolution and MAC verification, so they only see authenticated
/// requests from known devices.
class Dispatcher {
 public:
  using Handler =
      std::function<ServiceResult(const net::Envelope&, RequestContext&)>;

  void add(net::MessageType type, Handler handler);
  [[nodiscard]] const Handler* find(net::MessageType type) const;
  [[nodiscard]] std::vector<net::MessageType> registered() const;

 private:
  std::unordered_map<std::uint8_t, Handler> handlers_;
};

}  // namespace medsen::cloud
