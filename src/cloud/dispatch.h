#pragma once
// The cloud's service plumbing, independent of what the handlers do:
//
//  - DeviceRegistry: device_id -> per-device MAC key, so one server
//    serves many provisioned sensors (multi-tenant; keys are shared out
//    of band at provisioning, exactly like the single-key scheme the
//    paper describes, just one per dongle). Sharded by device_id: a
//    lookup only locks the key's shard, so a fleet of devices never
//    serializes on one registry mutex.
//  - AdmissionGate: a bounded in-flight counter, lock-free. Past the
//    limit the server sheds requests with an `overloaded` error instead
//    of queueing unboundedly on the shared analysis pool.
//  - ServiceCounters: per-shard relaxed std::atomic service counters,
//    aggregated on read — the hot path never takes a stats lock, and a
//    stats() snapshot is eventually consistent (it may miss an update
//    racing the read, never report a torn one).
//  - RequestContext: per-request scratch (identity, quality report,
//    timing) so nothing request-scoped ever lives in a server-wide
//    member — the fix for the old racy `last_quality_`.
//  - ServiceResult: a handler's outcome as data. Failures are values
//    that become kError envelopes at the boundary; exceptions are
//    reserved for programmer errors.
//  - Dispatcher: MessageType -> handler registry behind the single
//    CloudServer::handle() entrypoint.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cloud/quality.h"
#include "net/messages.h"
#include "util/sharded.h"

namespace medsen::cloud {

/// Thread-safe, sharded map of provisioned devices to their transport
/// MAC keys. Routing is deterministic (util::Sharded FNV-1a): the same
/// device always lands on the same shard for a given shard count.
class DeviceRegistry {
 public:
  /// `shards` 0 = hardware default; rounded up to a power of two.
  explicit DeviceRegistry(std::size_t shards = 0) : shards_(shards) {}

  /// Install (or rotate) a device's MAC key.
  void provision(std::uint64_t device_id, std::vector<std::uint8_t> mac_key);
  /// Remove a device; returns false when it was never provisioned.
  bool revoke(std::uint64_t device_id);
  /// The device's key, or nullopt when unknown.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> lookup(
      std::uint64_t device_id) const;
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] std::size_t shard_count() const {
    return shards_.shard_count();
  }
  /// Which shard a device routes to (deterministic; exposed for tests
  /// and for operators debugging shard balance).
  [[nodiscard]] std::size_t shard_of(std::uint64_t device_id) const {
    return shards_.shard_index(device_id);
  }

 private:
  using KeyMap = std::unordered_map<std::uint64_t, std::vector<std::uint8_t>>;
  util::Sharded<KeyMap> shards_;
};

/// Bounded admission: at most `max_inflight` requests are inside the
/// service at once (0 = unbounded). Excess requests are shed immediately
/// — the caller turns a failed ticket into an `overloaded` error.
/// Lock-free: entering is one fetch_add on a shared atomic, so admission
/// never becomes the global serialization point the mutex version was.
class AdmissionGate {
 public:
  explicit AdmissionGate(std::size_t max_inflight = 0)
      : limit_(max_inflight) {}

  /// RAII admission slot; releases on destruction.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept;
    Ticket& operator=(Ticket&& other) noexcept;
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { release(); }

    [[nodiscard]] bool admitted() const { return gate_ != nullptr; }
    void release();

   private:
    friend class AdmissionGate;
    explicit Ticket(AdmissionGate* gate) : gate_(gate) {}
    AdmissionGate* gate_ = nullptr;
  };

  /// Try to enter; the ticket reports whether admission succeeded.
  /// Never admits more than `limit()` concurrent holders (the counter
  /// may transiently overshoot while a shed request backs out, but a
  /// ticket is only issued when the post-increment count is in bounds).
  [[nodiscard]] Ticket try_enter();

  [[nodiscard]] std::size_t limit() const { return limit_; }
  [[nodiscard]] std::size_t in_flight() const;
  /// Requests shed since construction.
  [[nodiscard]] std::uint64_t shed_total() const;

 private:
  std::size_t limit_;
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::uint64_t> shed_{0};
};

/// Aggregate service counters (all monotonic).
struct ServiceStats {
  std::uint64_t requests_processed = 0;  ///< cache-miss successes
  std::uint64_t replays_served = 0;      ///< idempotent cache hits
  std::uint64_t errors_returned = 0;     ///< kError responses sent
  std::uint64_t requests_shed = 0;       ///< refused by the admission gate
  double processing_time_s = 0.0;        ///< summed handler wall-clock
};

/// Per-shard relaxed atomic counters behind ServiceStats. Increments
/// route by device_id so a hot device's counters stay on one cache line
/// and fleets spread across shards; aggregate() sums the shards, giving
/// an eventually-consistent (never torn) snapshot. Wall-clock is summed
/// in integer nanoseconds — atomic<double> accumulation isn't portable
/// and the hot path must stay a plain fetch_add.
class ServiceCounters {
 public:
  explicit ServiceCounters(std::size_t shards = 0);

  void count_processed(std::uint64_t device_id, double processing_time_s);
  void count_replay(std::uint64_t device_id);
  void count_error(std::uint64_t device_id);
  void count_shed(std::uint64_t device_id);

  [[nodiscard]] ServiceStats aggregate() const;
  [[nodiscard]] std::size_t shard_count() const { return count_; }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> requests_processed{0};
    std::atomic<std::uint64_t> replays_served{0};
    std::atomic<std::uint64_t> errors_returned{0};
    std::atomic<std::uint64_t> requests_shed{0};
    std::atomic<std::uint64_t> processing_time_ns{0};
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t device_id) {
    return shards_[static_cast<std::size_t>(util::fnv1a64(device_id)) &
                   (count_ - 1)];
  }

  std::size_t count_;
  std::unique_ptr<Shard[]> shards_;
};

/// Per-request state threaded through a handler: who is asking, what the
/// quality gate concluded, and how long the handler ran. Owned by the
/// dispatching thread — never shared, never a server member.
struct RequestContext {
  std::uint64_t device_id = 0;
  std::uint64_t session_id = 0;
  std::vector<std::uint8_t> mac_key;  ///< resolved from the registry
  QualityReport quality;              ///< filled by the upload handler
  double processing_time_s = 0.0;     ///< filled by the dispatcher
};

/// A handler's outcome. Success carries the response payload; failure
/// carries the structured error that becomes a kError envelope.
struct ServiceResult {
  bool ok = false;
  net::MessageType response_type = net::MessageType::kError;
  std::vector<std::uint8_t> response_payload;
  net::ErrorCode error = net::ErrorCode::kMalformed;
  std::uint8_t error_subcode = 0;
  std::string detail;
  /// Per-channel QualityReason bytes for quality failures (empty
  /// otherwise); copied into ErrorPayload::channel_reasons.
  std::vector<std::uint8_t> error_channel_reasons;

  static ServiceResult success(net::MessageType type,
                               std::vector<std::uint8_t> payload);
  static ServiceResult failure(net::ErrorCode code, std::string detail,
                               std::uint8_t subcode = 0,
                               std::vector<std::uint8_t> channel_reasons = {});
};

/// MessageType -> handler registry. Handlers run after admission, device
/// resolution and MAC verification, so they only see authenticated
/// requests from known devices.
class Dispatcher {
 public:
  using Handler =
      std::function<ServiceResult(const net::Envelope&, RequestContext&)>;

  void add(net::MessageType type, Handler handler);
  [[nodiscard]] const Handler* find(net::MessageType type) const;
  [[nodiscard]] std::vector<net::MessageType> registered() const;

 private:
  std::unordered_map<std::uint8_t, Handler> handlers_;
};

}  // namespace medsen::cloud
