#pragma once
// The cloud's service plumbing, independent of what the handlers do:
//
//  - DeviceRegistry: device_id -> per-device MAC key, so one server
//    serves many provisioned sensors (multi-tenant; keys are shared out
//    of band at provisioning, exactly like the single-key scheme the
//    paper describes, just one per dongle).
//  - AdmissionGate: a bounded in-flight counter. Past the limit the
//    server sheds requests with an `overloaded` error instead of
//    queueing unboundedly on the shared analysis pool.
//  - RequestContext: per-request scratch (identity, quality report,
//    timing) so nothing request-scoped ever lives in a server-wide
//    member — the fix for the old racy `last_quality_`.
//  - ServiceResult: a handler's outcome as data. Failures are values
//    that become kError envelopes at the boundary; exceptions are
//    reserved for programmer errors.
//  - Dispatcher: MessageType -> handler registry behind the single
//    CloudServer::handle() entrypoint.

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cloud/quality.h"
#include "net/messages.h"

namespace medsen::cloud {

/// Thread-safe map of provisioned devices to their transport MAC keys.
class DeviceRegistry {
 public:
  /// Install (or rotate) a device's MAC key.
  void provision(std::uint64_t device_id, std::vector<std::uint8_t> mac_key);
  /// Remove a device; returns false when it was never provisioned.
  bool revoke(std::uint64_t device_id);
  /// The device's key, or nullopt when unknown.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> lookup(
      std::uint64_t device_id) const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> keys_;
};

/// Bounded admission: at most `max_inflight` requests are inside the
/// service at once (0 = unbounded). Excess requests are shed immediately
/// — the caller turns a failed ticket into an `overloaded` error.
class AdmissionGate {
 public:
  explicit AdmissionGate(std::size_t max_inflight = 0)
      : limit_(max_inflight) {}

  /// RAII admission slot; releases on destruction.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept;
    Ticket& operator=(Ticket&& other) noexcept;
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { release(); }

    [[nodiscard]] bool admitted() const { return gate_ != nullptr; }
    void release();

   private:
    friend class AdmissionGate;
    explicit Ticket(AdmissionGate* gate) : gate_(gate) {}
    AdmissionGate* gate_ = nullptr;
  };

  /// Try to enter; the ticket reports whether admission succeeded.
  [[nodiscard]] Ticket try_enter();

  [[nodiscard]] std::size_t limit() const { return limit_; }
  [[nodiscard]] std::size_t in_flight() const;
  /// Requests shed since construction.
  [[nodiscard]] std::uint64_t shed_total() const;

 private:
  std::size_t limit_;
  mutable std::mutex mutex_;
  std::size_t in_flight_ = 0;
  std::uint64_t shed_ = 0;
};

/// Per-request state threaded through a handler: who is asking, what the
/// quality gate concluded, and how long the handler ran. Owned by the
/// dispatching thread — never shared, never a server member.
struct RequestContext {
  std::uint64_t device_id = 0;
  std::uint64_t session_id = 0;
  std::vector<std::uint8_t> mac_key;  ///< resolved from the registry
  QualityReport quality;              ///< filled by the upload handler
  double processing_time_s = 0.0;     ///< filled by the dispatcher
};

/// A handler's outcome. Success carries the response payload; failure
/// carries the structured error that becomes a kError envelope.
struct ServiceResult {
  bool ok = false;
  net::MessageType response_type = net::MessageType::kError;
  std::vector<std::uint8_t> response_payload;
  net::ErrorCode error = net::ErrorCode::kMalformed;
  std::uint8_t error_subcode = 0;
  std::string detail;
  /// Per-channel QualityReason bytes for quality failures (empty
  /// otherwise); copied into ErrorPayload::channel_reasons.
  std::vector<std::uint8_t> error_channel_reasons;

  static ServiceResult success(net::MessageType type,
                               std::vector<std::uint8_t> payload);
  static ServiceResult failure(net::ErrorCode code, std::string detail,
                               std::uint8_t subcode = 0,
                               std::vector<std::uint8_t> channel_reasons = {});
};

/// MessageType -> handler registry. Handlers run after admission, device
/// resolution and MAC verification, so they only see authenticated
/// requests from known devices.
class Dispatcher {
 public:
  using Handler =
      std::function<ServiceResult(const net::Envelope&, RequestContext&)>;

  void add(net::MessageType type, Handler handler);
  [[nodiscard]] const Handler* find(net::MessageType type) const;
  [[nodiscard]] std::vector<net::MessageType> registered() const;

 private:
  std::unordered_map<std::uint8_t, Handler> handlers_;
};

}  // namespace medsen::cloud
