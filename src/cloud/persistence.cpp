#include "cloud/persistence.h"

#include <stdexcept>

#include "compress/crc32.h"
#include "util/fileio.h"
#include "util/serialize.h"

namespace medsen::cloud {

namespace {

constexpr std::uint32_t kEnrollMagic = 0x4D53454E;  // "MSEN"
constexpr std::uint32_t kRecordMagic = 0x4D535243;  // "MSRC"
constexpr std::uint32_t kVersion = 1;

std::vector<std::uint8_t> seal(std::uint32_t magic,
                               std::vector<std::uint8_t> body) {
  util::ByteWriter out;
  out.u32(magic);
  out.u32(kVersion);
  out.u32(compress::crc32(body));
  out.blob(body);
  return out.take();
}

std::vector<std::uint8_t> unseal(std::uint32_t magic,
                                 std::span<const std::uint8_t> file) {
  util::ByteReader in(file);
  if (in.u32() != magic)
    throw std::runtime_error("persistence: bad magic");
  if (in.u32() != kVersion)
    throw std::runtime_error("persistence: unsupported version");
  const std::uint32_t crc = in.u32();
  auto body = in.blob();
  if (compress::crc32(body) != crc)
    throw std::runtime_error("persistence: CRC mismatch");
  return body;
}

void write_alphabet(util::ByteWriter& out, const auth::CytoAlphabet& a) {
  out.u32(static_cast<std::uint32_t>(a.bead_types.size()));
  for (auto type : a.bead_types) out.u8(static_cast<std::uint8_t>(type));
  out.f64_vec(a.concentration_levels_per_ul);
}

auth::CytoAlphabet read_alphabet(util::ByteReader& in) {
  auth::CytoAlphabet a;
  const std::uint32_t types = in.u32();
  a.bead_types.clear();
  for (std::uint32_t i = 0; i < types; ++i)
    a.bead_types.push_back(static_cast<sim::ParticleType>(in.u8()));
  a.concentration_levels_per_ul = in.f64_vec();
  return a;
}

}  // namespace

void save_enrollments(const auth::EnrollmentDatabase& db,
                      const std::string& path) {
  util::ByteWriter body;
  write_alphabet(body, db.alphabet());
  const auto records = db.records();
  body.u32(static_cast<std::uint32_t>(records.size()));
  for (const auto& record : records) {
    body.str(record.user_id);
    body.blob(auth::serialize_code(record.code));
  }
  // Temp-then-rename: a crash mid-save must not tear the live database.
  util::write_file_atomic(path, seal(kEnrollMagic, body.take()));
}

auth::EnrollmentDatabase load_enrollments(const std::string& path) {
  const auto body = unseal(kEnrollMagic, util::read_file(path));
  util::ByteReader in(body);
  auth::EnrollmentDatabase db(read_alphabet(in));
  const std::uint32_t count = in.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string user = in.str();
    const auto code = auth::deserialize_code(in.blob());
    db.enroll(user, code);
  }
  return db;
}

void save_records(const RecordStore& store, const std::string& path) {
  util::ByteWriter body;
  // snapshot(): a consistent copy even while the server keeps serving.
  const auto entries = store.snapshot();
  body.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& [key, records] : entries) {
    body.str(key);
    body.u32(static_cast<std::uint32_t>(records.size()));
    for (const auto& record : records) {
      body.u64(record.session_id);
      body.blob(record.encrypted_result);
    }
  }
  util::write_file_atomic(path, seal(kRecordMagic, body.take()));
}

RecordStore load_records(const std::string& path) {
  const auto body = unseal(kRecordMagic, util::read_file(path));
  util::ByteReader in(body);
  std::map<std::string, std::vector<StoredRecord>> entries;
  const std::uint32_t identifiers = in.u32();
  for (std::uint32_t i = 0; i < identifiers; ++i) {
    const std::string key = in.str();
    const std::uint32_t count = in.u32();
    std::vector<StoredRecord> records;
    records.reserve(count);
    for (std::uint32_t k = 0; k < count; ++k) {
      StoredRecord record;
      record.session_id = in.u64();
      record.encrypted_result = in.blob();
      records.push_back(std::move(record));
    }
    entries[key] = std::move(records);
  }
  return RecordStore(std::move(entries));
}

}  // namespace medsen::cloud
