#include "cloud/persistence.h"

#include <stdexcept>

#include "compress/crc32.h"
#include "util/fileio.h"
#include "util/serialize.h"

namespace medsen::cloud {

namespace {

constexpr std::uint32_t kEnrollMagic = 0x4D53454E;    // "MSEN"
constexpr std::uint32_t kRecordMagic = 0x4D535243;    // "MSRC"
constexpr std::uint32_t kRegistryMagic = 0x4D535247;  // "MSRG"
constexpr std::uint32_t kVersion = 1;

std::vector<std::uint8_t> seal(std::uint32_t magic,
                               std::vector<std::uint8_t> body) {
  util::ByteWriter out;
  out.u32(magic);
  out.u32(kVersion);
  out.u32(compress::crc32(body));
  out.blob(body);
  return out.take();
}

std::vector<std::uint8_t> unseal(std::uint32_t magic,
                                 std::span<const std::uint8_t> file) {
  util::ByteReader in(file);
  if (in.u32() != magic)
    throw std::runtime_error("persistence: bad magic");
  if (in.u32() != kVersion)
    throw std::runtime_error("persistence: unsupported version");
  const std::uint32_t crc = in.u32();
  auto body = in.blob();
  if (compress::crc32(body) != crc)
    throw std::runtime_error("persistence: CRC mismatch");
  return body;
}

void write_alphabet(util::ByteWriter& out, const auth::CytoAlphabet& a) {
  out.u32(static_cast<std::uint32_t>(a.bead_types.size()));
  for (auto type : a.bead_types) out.u8(static_cast<std::uint8_t>(type));
  out.f64_vec(a.concentration_levels_per_ul);
}

auth::CytoAlphabet read_alphabet(util::ByteReader& in) {
  auth::CytoAlphabet a;
  const std::uint32_t types = in.u32();
  a.bead_types.clear();
  for (std::uint32_t i = 0; i < types; ++i)
    a.bead_types.push_back(static_cast<sim::ParticleType>(in.u8()));
  a.concentration_levels_per_ul = in.f64_vec();
  return a;
}

}  // namespace

void save_enrollments(const auth::EnrollmentDatabase& db,
                      const std::string& path) {
  util::ByteWriter body;
  write_alphabet(body, db.alphabet());
  const auto records = db.records();
  body.u32(static_cast<std::uint32_t>(records.size()));
  for (const auto& record : records) {
    body.str(record.user_id);
    body.blob(auth::serialize_code(record.code));
  }
  // Temp-then-rename: a crash mid-save must not tear the live database.
  util::write_file_atomic(path, seal(kEnrollMagic, body.take()));
}

auth::EnrollmentDatabase load_enrollments(const std::string& path) {
  const auto body = unseal(kEnrollMagic, util::read_file(path));
  util::ByteReader in(body);
  auth::EnrollmentDatabase db(read_alphabet(in));
  const std::uint32_t count = in.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string user = in.str();
    const auto code = auth::deserialize_code(in.blob());
    db.enroll(user, code);
  }
  return db;
}

void save_records(const RecordStore& store, const std::string& path) {
  util::ByteWriter body;
  // snapshot(): a consistent copy even while the server keeps serving.
  const auto entries = store.snapshot();
  body.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& [key, records] : entries) {
    body.str(key);
    body.u32(static_cast<std::uint32_t>(records.size()));
    for (const auto& record : records) {
      body.u64(record.session_id);
      body.blob(record.encrypted_result);
    }
  }
  util::write_file_atomic(path, seal(kRecordMagic, body.take()));
}

void save_registry(const DeviceRegistry& registry, const std::string& path) {
  // snapshot() hands back fully sorted collections, so this body is
  // byte-identical across runs whatever the hash tables did.
  const RegistrySnapshot snap = registry.snapshot();
  util::ByteWriter body;
  body.u32(static_cast<std::uint32_t>(snap.legacy_keys.size()));
  for (const auto& [id, key] : snap.legacy_keys) {
    body.u64(id);
    body.blob(key);
  }
  body.u32(static_cast<std::uint32_t>(snap.masters.size()));
  for (const auto& [epoch, key] : snap.masters) {
    body.u32(epoch);
    body.blob(key);
  }
  body.u32(snap.current_epoch);
  body.u32(static_cast<std::uint32_t>(snap.enrolled.size()));
  for (const std::uint64_t id : snap.enrolled) body.u64(id);
  body.u32(static_cast<std::uint32_t>(snap.revoked.size()));
  for (const std::uint64_t id : snap.revoked) body.u64(id);
  util::write_file_atomic(path, seal(kRegistryMagic, body.take()));
}

void load_registry(DeviceRegistry& registry, const std::string& path) {
  const auto body = unseal(kRegistryMagic, util::read_file(path));
  util::ByteReader in(body);
  RegistrySnapshot snap;
  const std::uint32_t legacy = in.count_u32(8 + 4);
  for (std::uint32_t i = 0; i < legacy; ++i) {
    const std::uint64_t id = in.u64();
    snap.legacy_keys.emplace_back(id, in.blob());
  }
  const std::uint32_t masters = in.count_u32(4 + 4);
  for (std::uint32_t i = 0; i < masters; ++i) {
    const std::uint32_t epoch = in.u32();
    snap.masters.emplace_back(epoch, in.blob());
  }
  snap.current_epoch = in.u32();
  const std::uint32_t enrolled = in.count_u32(8);
  for (std::uint32_t i = 0; i < enrolled; ++i)
    snap.enrolled.push_back(in.u64());
  const std::uint32_t revoked = in.count_u32(8);
  for (std::uint32_t i = 0; i < revoked; ++i) snap.revoked.push_back(in.u64());
  in.expect_done("load_registry");
  registry.restore(snap);
}

RecordStore load_records(const std::string& path) {
  const auto body = unseal(kRecordMagic, util::read_file(path));
  util::ByteReader in(body);
  std::map<std::string, std::vector<StoredRecord>> entries;
  const std::uint32_t identifiers = in.u32();
  for (std::uint32_t i = 0; i < identifiers; ++i) {
    const std::string key = in.str();
    const std::uint32_t count = in.u32();
    std::vector<StoredRecord> records;
    records.reserve(count);
    for (std::uint32_t k = 0; k < count; ++k) {
      StoredRecord record;
      record.session_id = in.u64();
      record.encrypted_result = in.blob();
      records.push_back(std::move(record));
    }
    entries[key] = std::move(records);
  }
  return RecordStore(std::move(entries));
}

}  // namespace medsen::cloud
