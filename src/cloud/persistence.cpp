#include "cloud/persistence.h"

#include <stdexcept>
#include <utility>

#include "compress/crc32.h"
#include "util/fileio.h"
#include "util/serialize.h"

namespace medsen::cloud {

namespace {

constexpr std::uint32_t kVersion = 1;

/// Run a decoder, converting any low-level throw (ByteReader underflow,
/// hostile counts, code deserialization) into the typed PersistenceError
/// so corrupt bytes never surface as an untyped internal error.
template <typename Fn>
auto decode_guard(const char* what, Fn&& fn) {
  try {
    return fn();
  } catch (const PersistenceError&) {
    throw;
  } catch (const std::exception& e) {
    throw PersistenceError(std::string(what) + ": " + e.what());
  }
}

void write_alphabet(util::ByteWriter& out, const auth::CytoAlphabet& a) {
  out.u32(static_cast<std::uint32_t>(a.bead_types.size()));
  for (auto type : a.bead_types) out.u8(static_cast<std::uint8_t>(type));
  out.f64_vec(a.concentration_levels_per_ul);
}

auth::CytoAlphabet read_alphabet(util::ByteReader& in) {
  auth::CytoAlphabet a;
  const std::uint32_t types = in.count_u32(1);
  a.bead_types.clear();
  for (std::uint32_t i = 0; i < types; ++i)
    a.bead_types.push_back(static_cast<sim::ParticleType>(in.u8()));
  a.concentration_levels_per_ul = in.f64_vec();
  return a;
}

}  // namespace

std::vector<std::uint8_t> seal_blob(std::uint32_t magic,
                                    std::vector<std::uint8_t> body) {
  util::ByteWriter out;
  out.u32(magic);
  out.u32(kVersion);
  out.u32(compress::crc32(body));
  out.blob(body);
  return out.take();
}

std::vector<std::uint8_t> unseal_blob(std::uint32_t magic,
                                      std::span<const std::uint8_t> file) {
  return decode_guard("unseal", [&] {
    util::ByteReader in(file);
    if (in.u32() != magic) throw PersistenceError("persistence: bad magic");
    if (in.u32() != kVersion)
      throw PersistenceError("persistence: unsupported version");
    const std::uint32_t crc = in.u32();
    auto body = in.blob();
    if (compress::crc32(body) != crc)
      throw PersistenceError("persistence: CRC mismatch");
    in.expect_done("unseal");
    return body;
  });
}

std::vector<std::uint8_t> encode_enrollments_body(
    const auth::EnrollmentDatabase& db) {
  util::ByteWriter body;
  write_alphabet(body, db.alphabet());
  const auto records = db.records();
  body.u32(static_cast<std::uint32_t>(records.size()));
  for (const auto& record : records) {
    body.str(record.user_id);
    body.blob(auth::serialize_code(record.code));
  }
  return body.take();
}

auth::EnrollmentDatabase decode_enrollments_body(
    std::span<const std::uint8_t> body) {
  return decode_guard("decode_enrollments_body", [&] {
    util::ByteReader in(body);
    auth::EnrollmentDatabase db(read_alphabet(in));
    const std::uint32_t count = in.count_u32(4 + 4);
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::string user = in.str();
      const auto code = auth::deserialize_code(in.blob());
      db.enroll(user, code);
    }
    in.expect_done("decode_enrollments_body");
    return db;
  });
}

std::vector<std::uint8_t> encode_records_body(const RecordStore& store) {
  util::ByteWriter body;
  // snapshot(): a consistent copy even while the server keeps serving.
  const auto entries = store.snapshot();
  body.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& [key, records] : entries) {
    body.str(key);
    body.u32(static_cast<std::uint32_t>(records.size()));
    for (const auto& record : records) {
      body.u64(record.session_id);
      body.blob(record.encrypted_result);
    }
  }
  return body.take();
}

std::map<std::string, std::vector<StoredRecord>> decode_records_body(
    std::span<const std::uint8_t> body) {
  return decode_guard("decode_records_body", [&] {
    util::ByteReader in(body);
    std::map<std::string, std::vector<StoredRecord>> entries;
    const std::uint32_t identifiers = in.count_u32(4 + 4);
    for (std::uint32_t i = 0; i < identifiers; ++i) {
      const std::string key = in.str();
      const std::uint32_t count = in.count_u32(8 + 4);
      std::vector<StoredRecord> records;
      records.reserve(count);
      for (std::uint32_t k = 0; k < count; ++k) {
        StoredRecord record;
        record.session_id = in.u64();
        record.encrypted_result = in.blob();
        records.push_back(std::move(record));
      }
      entries[key] = std::move(records);
    }
    in.expect_done("decode_records_body");
    return entries;
  });
}

std::vector<std::uint8_t> encode_registry_body(
    const DeviceRegistry& registry) {
  // snapshot() hands back fully sorted collections, so this body is
  // byte-identical across runs whatever the hash tables did.
  const RegistrySnapshot snap = registry.snapshot();
  util::ByteWriter body;
  body.u32(static_cast<std::uint32_t>(snap.legacy_keys.size()));
  for (const auto& [id, key] : snap.legacy_keys) {
    body.u64(id);
    body.blob(key);
  }
  body.u32(static_cast<std::uint32_t>(snap.masters.size()));
  for (const auto& [epoch, key] : snap.masters) {
    body.u32(epoch);
    body.blob(key);
  }
  body.u32(snap.current_epoch);
  body.u32(static_cast<std::uint32_t>(snap.enrolled.size()));
  for (const std::uint64_t id : snap.enrolled) body.u64(id);
  body.u32(static_cast<std::uint32_t>(snap.revoked.size()));
  for (const std::uint64_t id : snap.revoked) body.u64(id);
  return body.take();
}

RegistrySnapshot decode_registry_body(std::span<const std::uint8_t> body) {
  return decode_guard("decode_registry_body", [&] {
    util::ByteReader in(body);
    RegistrySnapshot snap;
    const std::uint32_t legacy = in.count_u32(8 + 4);
    for (std::uint32_t i = 0; i < legacy; ++i) {
      const std::uint64_t id = in.u64();
      snap.legacy_keys.emplace_back(id, in.blob());
    }
    const std::uint32_t masters = in.count_u32(4 + 4);
    for (std::uint32_t i = 0; i < masters; ++i) {
      const std::uint32_t epoch = in.u32();
      snap.masters.emplace_back(epoch, in.blob());
    }
    snap.current_epoch = in.u32();
    const std::uint32_t enrolled = in.count_u32(8);
    for (std::uint32_t i = 0; i < enrolled; ++i)
      snap.enrolled.push_back(in.u64());
    const std::uint32_t revoked = in.count_u32(8);
    for (std::uint32_t i = 0; i < revoked; ++i)
      snap.revoked.push_back(in.u64());
    in.expect_done("decode_registry_body");
    return snap;
  });
}

void save_enrollments(const auth::EnrollmentDatabase& db,
                      const std::string& path) {
  // Temp-then-rename: a crash mid-save must not tear the live database.
  util::write_file_atomic(path,
                          seal_blob(kEnrollMagic, encode_enrollments_body(db)));
}

auth::EnrollmentDatabase load_enrollments(const std::string& path) {
  return decode_enrollments_body(
      unseal_blob(kEnrollMagic, util::read_file(path)));
}

void save_records(const RecordStore& store, const std::string& path) {
  util::write_file_atomic(path,
                          seal_blob(kRecordMagic, encode_records_body(store)));
}

RecordStore load_records(const std::string& path) {
  return RecordStore(
      decode_records_body(unseal_blob(kRecordMagic, util::read_file(path))));
}

void save_registry(const DeviceRegistry& registry, const std::string& path) {
  util::write_file_atomic(
      path, seal_blob(kRegistryMagic, encode_registry_body(registry)));
}

void load_registry(DeviceRegistry& registry, const std::string& path) {
  registry.restore(
      decode_registry_body(unseal_blob(kRegistryMagic, util::read_file(path))));
}

}  // namespace medsen::cloud
