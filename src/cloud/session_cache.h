#pragma once
// The idempotent session cache, sharded by device and bounded by an LRU
// eviction policy. The reliable transport re-uploads whenever a response
// is lost, so the server must answer a byte-identical replay of
// (device_id, session_id) with the original response without re-running
// the analysis — but a million-device soak must not let the cache grow
// without limit. Eviction drops the *least recently touched* exchange;
// a replay of an evicted session is simply processed again (idempotent
// handlers make that safe), and a conflicting payload under an evicted
// session is re-detected by the handler path, never served from stale
// cache state.
//
// Sharding routes on device_id, so a request's cache traffic stays on
// the same shard as its registry lookup and no cross-shard lock is ever
// taken while handling a request.

#include <cstdint>
#include <list>
#include <tuple>
#include <unordered_map>

#include "net/messages.h"
#include "util/sharded.h"

namespace medsen::cloud {

struct SessionCacheConfig {
  /// Shard count (0 = util::default_shard_count(); rounded to a power
  /// of two). Use 1 to reproduce the old single-lock behavior.
  std::size_t shards = 0;
  /// Total cached exchanges across all shards (approximate: the bound
  /// is enforced per shard as capacity / shard_count, at least 1).
  /// 0 = unbounded (the pre-eviction behavior; soak tests only).
  std::size_t capacity = 1u << 16;
};

class SessionCache {
 public:
  using Config = SessionCacheConfig;

  enum class Lookup : std::uint8_t {
    kMiss,     ///< never seen (or evicted): process the request
    kReplay,   ///< byte-identical replay: serve the cached response
    kConflict  ///< same session, different bytes: protocol violation
  };

  struct Hit {
    Lookup state = Lookup::kMiss;
    net::Envelope response;
  };

  explicit SessionCache(Config config = {});

  /// Classify `request` against the cache. A replay hit also refreshes
  /// the entry's LRU position (hot sessions stay cached).
  [[nodiscard]] Hit lookup(const net::Envelope& request);

  /// Cache a successful exchange, evicting the shard's least recently
  /// used entries past its capacity. An entry that already exists (two
  /// threads racing the same first request) is left untouched.
  void insert(const net::Envelope& request, const net::Envelope& response);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t evictions() const;
  [[nodiscard]] std::size_t shard_count() const { return shards_.shard_count(); }
  [[nodiscard]] std::size_t per_shard_capacity() const {
    return per_shard_capacity_;
  }

 private:
  // Keyed (device, session, counter): the session-crypto plane keeps one
  // session_id across the whole retry ladder and disambiguates attempts
  // by command counter, so each counter value is its own idempotency
  // slot. Legacy traffic carries counter 0 and degrades to the old
  // (device, session) behavior unchanged.
  using SessionKey = std::tuple<std::uint64_t, std::uint64_t, std::uint32_t>;

  struct KeyHash {
    std::size_t operator()(const SessionKey& key) const {
      return static_cast<std::size_t>(util::fnv1a64(
          util::fnv1a64(std::get<0>(key) ^ std::get<2>(key)) ^
          std::get<1>(key)));
    }
  };

  struct Entry {
    SessionKey key;
    crypto::Sha256Digest request_mac{};
    net::Envelope response;
  };

  struct ShardState {
    std::list<Entry> lru;  ///< front = most recently touched
    std::unordered_map<SessionKey, std::list<Entry>::iterator, KeyHash> index;
    std::uint64_t evictions = 0;
  };

  std::size_t per_shard_capacity_;
  util::Sharded<ShardState> shards_;
};

}  // namespace medsen::cloud
