#include "cloud/analysis_service.h"

#include <span>
#include <thread>

#include "dsp/noise.h"

namespace medsen::cloud {

namespace {

unsigned resolved_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

AnalysisService::AnalysisService(AnalysisConfig config,
                                 std::shared_ptr<util::ThreadPool> pool)
    : config_(config), pool_(std::move(pool)) {
  const unsigned threads = resolved_threads(config_.threads);
  if (!pool_ && threads > 1)
    pool_ = std::make_shared<util::ThreadPool>(threads - 1);
}

core::PeakReport AnalysisService::analyze(
    const util::MultiChannelSeries& series) {
  const auto start = std::chrono::steady_clock::now();
  const std::size_t n_channels = series.channels.size();
  core::PeakReport report;
  report.channels.resize(n_channels);
  // Per-channel accumulation slots: each channel task writes only its own
  // slot, so the fan-out is race-free and the serial merge below is
  // deterministic.
  std::vector<std::uint64_t> samples(n_channels, 0);
  std::vector<std::uint64_t> peaks(n_channels, 0);

  const auto analyze_channel = [&](std::size_t i) {
    const auto& channel = series.channels[i];
    core::ChannelPeaks& out = report.channels[i];
    out.carrier_hz = series.carrier_frequencies_hz.at(i);
    // Lease working memory for this channel task; every buffer below is
    // reused across requests instead of allocated per channel.
    auto scratch = scratch_pool_.acquire();
    scratch->detrended.resize(channel.size());
    const std::span<double> detrended(scratch->detrended.data(),
                                      channel.size());
    dsp::detrend_into(channel.samples(), config_.detrend, detrended,
                      pool_.get(), scratch->detrend);
    dsp::PeakDetectConfig detect = config_.peak_detect;
    if (config_.adaptive_threshold)
      detect.threshold =
          dsp::adaptive_threshold(detrended, config_.adaptive_k_sigma);
    out.peaks =
        dsp::detect_peaks(detrended, channel.sample_rate(),
                          channel.start_time(), detect, scratch->peak_detect);
    samples[i] = channel.size();
    peaks[i] = out.peaks.size();
  };

  if (pool_ && n_channels > 1) {
    pool_->parallel_for(n_channels, 1,
                        [&](std::size_t begin, std::size_t end) {
                          for (std::size_t i = begin; i < end; ++i)
                            analyze_channel(i);
                        });
  } else {
    for (std::size_t i = 0; i < n_channels; ++i) analyze_channel(i);
  }

  AnalysisStats fresh;
  for (std::size_t i = 0; i < n_channels; ++i) {
    fresh.samples_processed += samples[i];
    fresh.peaks_found += peaks[i];
  }
  fresh.processing_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // Last-analyze snapshot as independent relaxed atomics: the hot path
  // never takes a stats lock; concurrent readers may mix fields from two
  // analyses but never observe a torn value.
  samples_processed_.store(fresh.samples_processed,
                           std::memory_order_relaxed);
  peaks_found_.store(fresh.peaks_found, std::memory_order_relaxed);
  processing_time_ns_.store(
      static_cast<std::uint64_t>(fresh.processing_time_s * 1e9),
      std::memory_order_relaxed);
  return report;
}

AnalysisStats AnalysisService::stats() const {
  AnalysisStats snapshot;
  snapshot.samples_processed =
      samples_processed_.load(std::memory_order_relaxed);
  snapshot.peaks_found = peaks_found_.load(std::memory_order_relaxed);
  snapshot.processing_time_s =
      static_cast<double>(processing_time_ns_.load(std::memory_order_relaxed)) *
      1e-9;
  return snapshot;
}

}  // namespace medsen::cloud
