#include "cloud/analysis_service.h"

#include "dsp/noise.h"

namespace medsen::cloud {

AnalysisService::AnalysisService(AnalysisConfig config) : config_(config) {}

core::PeakReport AnalysisService::analyze(
    const util::MultiChannelSeries& series) {
  const auto start = std::chrono::steady_clock::now();
  core::PeakReport report;
  report.channels.reserve(series.channels.size());
  stats_.samples_processed = 0;
  stats_.peaks_found = 0;
  for (std::size_t i = 0; i < series.channels.size(); ++i) {
    const auto& channel = series.channels[i];
    core::ChannelPeaks out;
    out.carrier_hz = series.carrier_frequencies_hz.at(i);
    const auto detrended = dsp::detrend(channel.samples(), config_.detrend);
    dsp::PeakDetectConfig detect = config_.peak_detect;
    if (config_.adaptive_threshold)
      detect.threshold = dsp::adaptive_threshold(
          detrended, config_.adaptive_k_sigma);
    out.peaks = dsp::detect_peaks(detrended, channel.sample_rate(),
                                  channel.start_time(), detect);
    stats_.samples_processed += channel.size();
    stats_.peaks_found += out.peaks.size();
    report.channels.push_back(std::move(out));
  }
  stats_.processing_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

}  // namespace medsen::cloud
