#include "cloud/quality.h"

#include <cmath>

#include "dsp/detrend.h"
#include "util/stats.h"

namespace medsen::cloud {

namespace {

void record_failure(ChannelQuality& quality, QualityReason reason) {
  quality.failure_bits |= 1u << static_cast<std::uint8_t>(reason);
  if (more_severe(reason, quality.worst)) quality.worst = reason;
}

ChannelQuality assess_channel(const util::TimeSeries& channel,
                              const QualityConfig& config) {
  ChannelQuality quality;
  const auto samples = channel.samples();
  if (samples.empty()) {
    // An empty channel cannot be scored by the other checks; it carries
    // exactly one (severe) failure.
    record_failure(quality, QualityReason::kEmptyChannel);
    return quality;
  }

  quality.drift_span =
      util::max_value(samples) - util::min_value(samples);

  std::size_t out_of_range = 0;
  std::size_t pinned = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (samples[i] < config.min_plausible ||
        samples[i] > config.max_plausible)
      ++out_of_range;
    if (i > 0 && samples[i] == samples[i - 1]) ++pinned;
  }
  quality.saturated =
      out_of_range > samples.size() / 100;  // >1% implausible
  // `pinned` counts adjacent equal pairs, of which there are size()-1; a
  // single sample has no pairs and cannot demonstrate a live signal, so
  // it scores as fully pinned rather than unconditionally clean.
  quality.dropout_fraction =
      samples.size() < 2
          ? 1.0
          : static_cast<double>(pinned) /
                static_cast<double>(samples.size() - 1);

  // Noise: rms of the first difference of the detrended signal, which is
  // insensitive to the (wanted) peaks but tracks broadband noise.
  const auto detrended = dsp::detrend(samples);
  double acc = 0.0;
  for (std::size_t i = 1; i < detrended.size(); ++i) {
    const double d = detrended[i] - detrended[i - 1];
    acc += d * d;
  }
  if (detrended.size() > 1)
    quality.noise_rms =
        std::sqrt(acc / static_cast<double>(detrended.size() - 1));

  // Every check is scored — a channel that is both saturated and noisy
  // reports both failures so recovery can reason about the combination.
  if (quality.saturated)
    record_failure(quality, QualityReason::kSaturated);
  if (quality.dropout_fraction > config.max_dropout_fraction)
    record_failure(quality, QualityReason::kDropout);
  if (quality.noise_rms > config.max_noise_rms)
    record_failure(quality, QualityReason::kNoiseFloor);
  if (quality.drift_span > config.max_drift_span)
    record_failure(quality, QualityReason::kDrift);
  return quality;
}

std::string describe(std::size_t channel, QualityReason reason) {
  const std::string label = "channel " + std::to_string(channel) + ": ";
  switch (reason) {
    case QualityReason::kEmptyChannel:
      return label + "empty";
    case QualityReason::kSaturated:
      return label + "saturated/implausible samples";
    case QualityReason::kDropout:
      return label + "dropouts (pinned samples)";
    case QualityReason::kNoiseFloor:
      return label + "noise floor too high";
    case QualityReason::kDrift:
      return label + "baseline drift out of range";
    default:
      return label + to_string(reason);
  }
}

}  // namespace

std::vector<std::uint8_t> QualityReport::channel_reason_bytes() const {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(channels.size());
  for (const auto& channel : channels)
    bytes.push_back(static_cast<std::uint8_t>(channel.worst));
  return bytes;
}

std::vector<std::uint8_t> QualityReport::channel_failure_bytes() const {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(channels.size());
  // All QualityReason values are < 8, so the bitmask fits one byte.
  for (const auto& channel : channels)
    bytes.push_back(static_cast<std::uint8_t>(channel.failure_bits));
  return bytes;
}

QualityReport assess_quality(const util::MultiChannelSeries& series,
                             const QualityConfig& config) {
  QualityReport report;
  if (series.channels.empty()) {
    report.acceptable = false;
    report.reason_code = QualityReason::kNoChannels;
    report.reason = "no channels";
    return report;
  }
  // Score every channel against every check; the summary code is the
  // single highest-severity failure (ties broken toward the lowest
  // channel index) for wire compatibility with the subcode byte.
  std::size_t worst_channel = 0;
  for (std::size_t c = 0; c < series.channels.size(); ++c) {
    const auto quality = assess_channel(series.channels[c], config);
    if (more_severe(quality.worst, report.reason_code)) {
      report.reason_code = quality.worst;
      worst_channel = c;
    }
    report.channels.push_back(quality);
  }
  if (report.reason_code != QualityReason::kNone) {
    report.acceptable = false;
    report.reason = describe(worst_channel, report.reason_code);
    std::size_t failing = 0;
    for (const auto& channel : report.channels)
      if (channel.worst != QualityReason::kNone) ++failing;
    if (failing > 1)
      report.reason += " (+" + std::to_string(failing - 1) +
                       " more failing channel" +
                       (failing > 2 ? "s)" : ")");
  }
  return report;
}

}  // namespace medsen::cloud
