#include "cloud/quality.h"

#include <cmath>

#include "dsp/detrend.h"
#include "util/stats.h"

namespace medsen::cloud {

namespace {

ChannelQuality assess_channel(const util::TimeSeries& channel,
                              const QualityConfig& config) {
  ChannelQuality quality;
  const auto samples = channel.samples();
  if (samples.empty()) return quality;

  quality.drift_span =
      util::max_value(samples) - util::min_value(samples);

  std::size_t out_of_range = 0;
  std::size_t pinned = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (samples[i] < config.min_plausible ||
        samples[i] > config.max_plausible)
      ++out_of_range;
    if (i > 0 && samples[i] == samples[i - 1]) ++pinned;
  }
  quality.saturated =
      out_of_range > samples.size() / 100;  // >1% implausible
  // `pinned` counts adjacent equal pairs, of which there are size()-1; a
  // single sample has no pairs and cannot demonstrate a live signal, so
  // it scores as fully pinned rather than unconditionally clean.
  quality.dropout_fraction =
      samples.size() < 2
          ? 1.0
          : static_cast<double>(pinned) /
                static_cast<double>(samples.size() - 1);

  // Noise: rms of the first difference of the detrended signal, which is
  // insensitive to the (wanted) peaks but tracks broadband noise.
  const auto detrended = dsp::detrend(samples);
  double acc = 0.0;
  for (std::size_t i = 1; i < detrended.size(); ++i) {
    const double d = detrended[i] - detrended[i - 1];
    acc += d * d;
  }
  if (detrended.size() > 1)
    quality.noise_rms =
        std::sqrt(acc / static_cast<double>(detrended.size() - 1));
  return quality;
}

}  // namespace

const char* to_string(QualityReason reason) {
  switch (reason) {
    case QualityReason::kNone: return "acceptable";
    case QualityReason::kNoChannels: return "no channels";
    case QualityReason::kEmptyChannel: return "empty channel";
    case QualityReason::kSaturated: return "saturated";
    case QualityReason::kDropout: return "dropout";
    case QualityReason::kNoiseFloor: return "noise floor";
    case QualityReason::kDrift: return "drift";
  }
  return "unknown";
}

QualityReport assess_quality(const util::MultiChannelSeries& series,
                             const QualityConfig& config) {
  QualityReport report;
  if (series.channels.empty()) {
    report.acceptable = false;
    report.reason_code = QualityReason::kNoChannels;
    report.reason = "no channels";
    return report;
  }
  for (std::size_t c = 0; c < series.channels.size(); ++c) {
    const auto quality = assess_channel(series.channels[c], config);
    report.channels.push_back(quality);
    if (!report.acceptable) continue;
    const std::string label = "channel " + std::to_string(c) + ": ";
    if (series.channels[c].empty()) {
      report.acceptable = false;
      report.reason_code = QualityReason::kEmptyChannel;
      report.reason = label + "empty";
    } else if (quality.saturated) {
      report.acceptable = false;
      report.reason_code = QualityReason::kSaturated;
      report.reason = label + "saturated/implausible samples";
    } else if (quality.dropout_fraction > config.max_dropout_fraction) {
      report.acceptable = false;
      report.reason_code = QualityReason::kDropout;
      report.reason = label + "dropouts (pinned samples)";
    } else if (quality.noise_rms > config.max_noise_rms) {
      report.acceptable = false;
      report.reason_code = QualityReason::kNoiseFloor;
      report.reason = label + "noise floor too high";
    } else if (quality.drift_span > config.max_drift_span) {
      report.acceptable = false;
      report.reason_code = QualityReason::kDrift;
      report.reason = label + "baseline drift out of range";
    }
  }
  return report;
}

}  // namespace medsen::cloud
