#pragma once
// The cloud server endpoint: receives protocol envelopes, runs the
// analysis service on uploaded (encrypted) acquisitions, authenticates
// auth-pass submissions against the enrollment database, and stores
// results under cyto-coded identifiers. Curious-but-honest: it follows
// the protocol faithfully but sees only ciphertext cytometry.

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "auth/verifier.h"
#include "cloud/analysis_service.h"
#include "cloud/quality.h"
#include "cloud/storage.h"
#include "net/messages.h"

namespace medsen::cloud {

class CloudServer {
 public:
  /// One thread pool is shared across all requests the server handles
  /// (uploads and auth passes); pass `pool` to share it wider (e.g. with
  /// streaming analyzers), or leave it null to let the analysis service
  /// size one from analysis_config.threads (0 = hardware concurrency,
  /// 1 = fully serial).
  CloudServer(AnalysisConfig analysis_config, auth::CytoAlphabet alphabet,
              auth::ParticleClassifier classifier,
              auth::VerifierConfig verifier_config = {},
              std::shared_ptr<util::ThreadPool> pool = nullptr);

  /// Handle a signal-upload envelope: decompress/deserialize, run the
  /// quality gate, analyze, and return the analysis-result envelope
  /// (serialized PeakReport). Throws std::runtime_error on MAC failure or
  /// a rejected (unusable) acquisition.
  net::Envelope handle_upload(const net::Envelope& request,
                              std::span<const std::uint8_t> mac_key);

  /// Quality gate applied to every upload; disable for raw benchmarks.
  void set_quality_gate(bool enabled) { quality_gate_ = enabled; }
  [[nodiscard]] const QualityReport& last_quality() const {
    return last_quality_;
  }

  /// Authenticate a plaintext (encryption-off) auth pass: analyze, build
  /// the bead census with the classifier, match against enrollments.
  /// `volume_ul` and `duration_s` are announced by the sensor in the
  /// clear (neither reveals cytometry); the duration enables the
  /// verifier's coincidence (dead-time) correction. Returns the
  /// auth-decision envelope.
  net::Envelope handle_auth(const net::Envelope& request, double volume_ul,
                            std::span<const std::uint8_t> mac_key,
                            double duration_s = 0.0);

  /// Store an encrypted result under an identifier.
  void store_result(const auth::CytoCode& code, StoredRecord record) {
    store_.store(code, std::move(record));
  }

  [[nodiscard]] AnalysisService& analysis() { return analysis_; }
  /// The request-shared analysis pool (null when running serial).
  [[nodiscard]] const std::shared_ptr<util::ThreadPool>& thread_pool() const {
    return analysis_.thread_pool();
  }
  [[nodiscard]] auth::EnrollmentDatabase& enrollments() { return db_; }
  [[nodiscard]] const auth::Verifier& verifier() const { return verifier_; }
  [[nodiscard]] RecordStore& records() { return store_; }

  /// Requests fully processed (cache misses) and replays served from the
  /// session cache. The reliable transport retries lost responses by
  /// re-uploading, so duplicate session_ids are expected in normal
  /// operation and must not trigger a second analysis.
  [[nodiscard]] std::uint64_t requests_processed() const;
  [[nodiscard]] std::uint64_t replays_served() const;

 private:
  util::MultiChannelSeries decode_upload(const net::Envelope& request,
                                         std::span<const std::uint8_t> mac_key);
  /// Cached response for a replayed session, if any. Throws if the
  /// session_id was seen before with a *different* request MAC (a replay
  /// that is not byte-identical is a protocol violation, not a retry).
  std::optional<net::Envelope> cached_response(const net::Envelope& request);
  void cache_response(const net::Envelope& request,
                      const net::Envelope& response);

  AnalysisService analysis_;
  auth::EnrollmentDatabase db_;
  auth::Verifier verifier_;
  RecordStore store_;
  bool quality_gate_ = true;
  QualityReport last_quality_;

  struct CachedExchange {
    crypto::Sha256Digest request_mac{};
    net::Envelope response;
  };
  mutable std::mutex cache_mutex_;
  std::unordered_map<std::uint64_t, CachedExchange> session_cache_;
  std::uint64_t requests_processed_ = 0;
  std::uint64_t replays_served_ = 0;
};

}  // namespace medsen::cloud
