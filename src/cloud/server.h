#pragma once
// The cloud service endpoint. One CloudServer serves many provisioned
// MedSen dongles: `handle()` is the single request/response entrypoint —
// it admits (or sheds) the request, resolves the sender's MAC key from
// the device registry, verifies the envelope, consults the idempotent
// session cache, and routes through the handler registry. Every failure
// travels back as a kError envelope with a structured ErrorPayload;
// exceptions never cross the service boundary. Curious-but-honest: the
// server follows the protocol faithfully but sees only ciphertext
// cytometry.
//
// The service layer is sharded by device_id (see DESIGN.md "Sharded
// service layer"): the registry, the session cache, and the stats
// counters all route a request to per-device shards, so handling a
// request never takes a process-wide lock and never touches a shard
// another device's request is using.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "auth/verifier.h"
#include "cloud/analysis_service.h"
#include "cloud/dispatch.h"
#include "cloud/quality.h"
#include "cloud/session_auth.h"
#include "cloud/session_cache.h"
#include "cloud/storage.h"
#include "net/messages.h"

namespace medsen::cloud {

class DurableState;    // cloud/durability.h
struct RecoveryStats;  // cloud/durability.h (complete at call sites)

/// Service-boundary knobs (the analysis knobs live in AnalysisConfig).
struct ServiceConfig {
  /// Quality gate applied to every upload; disable for raw benchmarks.
  bool quality_gate = true;
  /// Admission limit: at most this many requests inside the service at
  /// once; excess requests are shed with an `overloaded` error
  /// (0 = unbounded).
  std::size_t max_inflight = 0;
  /// Shard count for the registry, session cache, record store and
  /// stats (0 = hardware default, rounded up to a power of two; 1
  /// reproduces the old single-lock layout as a contention baseline).
  std::size_t shards = 0;
  /// Total session-cache capacity in cached exchanges; past it the
  /// least recently replayed sessions are evicted (0 = unbounded).
  std::size_t session_cache_capacity = 1u << 16;
  /// Seed for the server's deterministic handshake-nonce (RndB)
  /// derivation. The nonce is KDF'd from the *device key* with this
  /// seed, the device id, a per-device handshake ordinal and the
  /// device's RndA in the context, so it is unpredictable to anyone
  /// without the key yet fully reproducible in tests (no OS entropy —
  /// the determinism lint applies to the cloud too).
  std::uint64_t challenge_seed = 0x9e3779b97f4a7c15ull;
  /// When false, counter-0 command traffic on the legacy static-key
  /// plane is refused with kAuthRequired — only the handshake itself
  /// rides counter 0, and every command needs a negotiated session.
  /// Defaults to true so mixed fleets upgrade incrementally.
  bool allow_legacy_plane = true;
};

class CloudServer {
 public:
  /// One thread pool is shared across all requests the server handles
  /// (uploads and auth passes); pass `pool` to share it wider (e.g. with
  /// streaming analyzers), or leave it null to let the analysis service
  /// size one from analysis_config.threads (0 = hardware concurrency,
  /// 1 = fully serial).
  CloudServer(AnalysisConfig analysis_config, auth::CytoAlphabet alphabet,
              auth::ParticleClassifier classifier,
              auth::VerifierConfig verifier_config = {},
              std::shared_ptr<util::ThreadPool> pool = nullptr,
              ServiceConfig service = {});

  /// The service boundary: route any request envelope to its handler and
  /// return the response envelope. Thread-safe; call it from as many
  /// client threads as you like. Failures (unknown device, bad MAC,
  /// quality rejection, malformed payload, overload, session conflict)
  /// come back as kError envelopes carrying a net::ErrorPayload — this
  /// method only throws on programmer errors.
  net::Envelope handle(const net::Envelope& request);

  /// Attach a durability layer: first recovers the journal + snapshots
  /// under `durable` into this server's stores, then journals every
  /// subsequent mutation (provision/enroll/revoke/rotate/retire, user
  /// enrollment, stored record, handshake ordinal) before it is applied
  /// — the ack ⇒ durable contract. Call once, on a freshly constructed
  /// server, before serving traffic. Returns what recovery found.
  RecoveryStats attach_durability(DurableState& durable);

  /// The device registry: provision each dongle's MAC key before it may
  /// talk to this server.
  [[nodiscard]] DeviceRegistry& devices() { return devices_; }
  /// Provision (or rotate) a device's legacy key. A rotation tears down
  /// the device's negotiated session: envelopes MAC'd under keys derived
  /// from the old long-term key are rejected from this call on.
  DeviceRegistry::ProvisionResult provision_device(
      std::uint64_t device_id, std::vector<std::uint8_t> mac_key);
  /// Diversified enrollment: the registry records only the id; the
  /// device's key is derived on demand from the epoch master.
  void enroll_device(std::uint64_t device_id);
  /// Revoke a device on both keying planes and kill its live session.
  bool revoke_device(std::uint64_t device_id);
  /// Install a new master-key epoch and re-key the fleet: every live
  /// session is dropped, forcing fresh handshakes under the new epoch
  /// (old epochs keep deriving until retired, so devices still
  /// personalized under them can hand-shake through the grace window).
  void rotate_master_key(std::uint32_t epoch,
                         std::vector<std::uint8_t> master);
  /// Drop a master-key epoch (devices personalized under it can no
  /// longer handshake). Returns false when the epoch was unknown.
  bool retire_epoch(std::uint32_t epoch);
  /// Enroll a user's cyto-code in the identity database. Validation
  /// failures throw std::invalid_argument *before* anything is
  /// journaled, exactly like EnrollmentDatabase::enroll.
  void enroll_user(const std::string& user_id, const auth::CytoCode& code);

  /// The admission gate (exposed so tests and load shedders can hold
  /// slots directly).
  [[nodiscard]] AdmissionGate& admission() { return admission_; }

  void set_quality_gate(bool enabled) { quality_gate_ = enabled; }

  /// Store an encrypted result under an identifier (journaled when a
  /// durability layer is attached — the record is on disk when this
  /// returns).
  void store_result(const auth::CytoCode& code, StoredRecord record);

  [[nodiscard]] AnalysisService& analysis() { return analysis_; }
  /// The request-shared analysis pool (null when running serial).
  [[nodiscard]] const std::shared_ptr<util::ThreadPool>& thread_pool() const {
    return analysis_.thread_pool();
  }
  [[nodiscard]] auth::EnrollmentDatabase& enrollments() { return db_; }
  [[nodiscard]] const auth::Verifier& verifier() const { return verifier_; }
  [[nodiscard]] RecordStore& records() { return store_; }
  /// The idempotent session cache (exposed so tests and capacity
  /// planners can watch occupancy and evictions).
  [[nodiscard]] SessionCache& session_cache() { return cache_; }
  /// The negotiated-session table (keys + anti-replay windows).
  [[nodiscard]] SessionAuthTable& sessions() { return sessions_; }

  /// Snapshot of the aggregate counters. Aggregated from per-shard
  /// atomics on read: eventually consistent while requests are in
  /// flight, exact once they drain.
  [[nodiscard]] ServiceStats stats() const;
  /// Requests fully processed (cache misses) and replays served from the
  /// session cache. The reliable transport retries lost responses by
  /// re-uploading, so duplicate session_ids are expected in normal
  /// operation and must not trigger a second analysis.
  [[nodiscard]] std::uint64_t requests_processed() const;
  [[nodiscard]] std::uint64_t replays_served() const;

 private:
  /// Handlers (registered on MessageType in the constructor). They run
  /// after admission + device resolution + MAC verification.
  ServiceResult serve_upload(const net::Envelope& request,
                             RequestContext& context);
  ServiceResult serve_auth_pass(const net::Envelope& request,
                                RequestContext& context);
  ServiceResult serve_handshake(const net::Envelope& request,
                                RequestContext& context);

  /// Resolve the key that must verify `request` (long-term, epoch
  /// derivation for handshakes, or the negotiated session key), or the
  /// kError envelope to return when resolution fails.
  struct ResolvedKey {
    std::optional<util::SecretBytes> key;
    std::optional<net::Envelope> error;
    bool session_plane = false;
  };
  ResolvedKey resolve_mac_key(const net::Envelope& request);

  util::MultiChannelSeries decode_series(
      const net::SignalUploadPayload& payload) const;
  net::Envelope error_response(const net::Envelope& request,
                               std::span<const std::uint8_t> mac_key,
                               net::ErrorCode code, std::uint8_t subcode,
                               std::string detail,
                               std::vector<std::uint8_t> channel_reasons = {});

  AnalysisService analysis_;
  auth::EnrollmentDatabase db_;
  auth::Verifier verifier_;
  RecordStore store_;
  DeviceRegistry devices_;
  AdmissionGate admission_;
  Dispatcher dispatch_;
  std::atomic<bool> quality_gate_{true};
  SessionCache cache_;
  SessionAuthTable sessions_;
  ServiceCounters counters_;
  std::uint64_t challenge_seed_;
  bool allow_legacy_plane_;
  /// Optional WAL (attach_durability). Not owned; must outlive serving.
  DurableState* durable_ = nullptr;
};

}  // namespace medsen::cloud
