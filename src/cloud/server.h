#pragma once
// The cloud service endpoint. One CloudServer serves many provisioned
// MedSen dongles: `handle()` is the single request/response entrypoint —
// it admits (or sheds) the request, resolves the sender's MAC key from
// the device registry, verifies the envelope, consults the idempotent
// session cache, and routes through the handler registry. Every failure
// travels back as a kError envelope with a structured ErrorPayload;
// exceptions never cross the service boundary. Curious-but-honest: the
// server follows the protocol faithfully but sees only ciphertext
// cytometry.
//
// The service layer is sharded by device_id (see DESIGN.md "Sharded
// service layer"): the registry, the session cache, and the stats
// counters all route a request to per-device shards, so handling a
// request never takes a process-wide lock and never touches a shard
// another device's request is using.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "auth/verifier.h"
#include "cloud/analysis_service.h"
#include "cloud/dispatch.h"
#include "cloud/quality.h"
#include "cloud/session_cache.h"
#include "cloud/storage.h"
#include "net/messages.h"

namespace medsen::cloud {

/// Service-boundary knobs (the analysis knobs live in AnalysisConfig).
struct ServiceConfig {
  /// Quality gate applied to every upload; disable for raw benchmarks.
  bool quality_gate = true;
  /// Admission limit: at most this many requests inside the service at
  /// once; excess requests are shed with an `overloaded` error
  /// (0 = unbounded).
  std::size_t max_inflight = 0;
  /// Shard count for the registry, session cache, record store and
  /// stats (0 = hardware default, rounded up to a power of two; 1
  /// reproduces the old single-lock layout as a contention baseline).
  std::size_t shards = 0;
  /// Total session-cache capacity in cached exchanges; past it the
  /// least recently replayed sessions are evicted (0 = unbounded).
  std::size_t session_cache_capacity = 1u << 16;
};

class CloudServer {
 public:
  /// One thread pool is shared across all requests the server handles
  /// (uploads and auth passes); pass `pool` to share it wider (e.g. with
  /// streaming analyzers), or leave it null to let the analysis service
  /// size one from analysis_config.threads (0 = hardware concurrency,
  /// 1 = fully serial).
  CloudServer(AnalysisConfig analysis_config, auth::CytoAlphabet alphabet,
              auth::ParticleClassifier classifier,
              auth::VerifierConfig verifier_config = {},
              std::shared_ptr<util::ThreadPool> pool = nullptr,
              ServiceConfig service = {});

  /// The service boundary: route any request envelope to its handler and
  /// return the response envelope. Thread-safe; call it from as many
  /// client threads as you like. Failures (unknown device, bad MAC,
  /// quality rejection, malformed payload, overload, session conflict)
  /// come back as kError envelopes carrying a net::ErrorPayload — this
  /// method only throws on programmer errors.
  net::Envelope handle(const net::Envelope& request);

  /// The device registry: provision each dongle's MAC key before it may
  /// talk to this server.
  [[nodiscard]] DeviceRegistry& devices() { return devices_; }
  /// Shorthand for devices().provision().
  void provision_device(std::uint64_t device_id,
                        std::vector<std::uint8_t> mac_key) {
    devices_.provision(device_id, std::move(mac_key));
  }

  /// The admission gate (exposed so tests and load shedders can hold
  /// slots directly).
  [[nodiscard]] AdmissionGate& admission() { return admission_; }

  void set_quality_gate(bool enabled) { quality_gate_ = enabled; }

  /// Store an encrypted result under an identifier.
  void store_result(const auth::CytoCode& code, StoredRecord record) {
    store_.store(code, std::move(record));
  }

  [[nodiscard]] AnalysisService& analysis() { return analysis_; }
  /// The request-shared analysis pool (null when running serial).
  [[nodiscard]] const std::shared_ptr<util::ThreadPool>& thread_pool() const {
    return analysis_.thread_pool();
  }
  [[nodiscard]] auth::EnrollmentDatabase& enrollments() { return db_; }
  [[nodiscard]] const auth::Verifier& verifier() const { return verifier_; }
  [[nodiscard]] RecordStore& records() { return store_; }
  /// The idempotent session cache (exposed so tests and capacity
  /// planners can watch occupancy and evictions).
  [[nodiscard]] SessionCache& session_cache() { return cache_; }

  /// Snapshot of the aggregate counters. Aggregated from per-shard
  /// atomics on read: eventually consistent while requests are in
  /// flight, exact once they drain.
  [[nodiscard]] ServiceStats stats() const;
  /// Requests fully processed (cache misses) and replays served from the
  /// session cache. The reliable transport retries lost responses by
  /// re-uploading, so duplicate session_ids are expected in normal
  /// operation and must not trigger a second analysis.
  [[nodiscard]] std::uint64_t requests_processed() const;
  [[nodiscard]] std::uint64_t replays_served() const;

 private:
  /// Handlers (registered on MessageType in the constructor). They run
  /// after admission + device resolution + MAC verification.
  ServiceResult serve_upload(const net::Envelope& request,
                             RequestContext& context);
  ServiceResult serve_auth_pass(const net::Envelope& request,
                                RequestContext& context);

  util::MultiChannelSeries decode_series(
      const net::SignalUploadPayload& payload) const;
  net::Envelope error_response(const net::Envelope& request,
                               std::span<const std::uint8_t> mac_key,
                               net::ErrorCode code, std::uint8_t subcode,
                               std::string detail,
                               std::vector<std::uint8_t> channel_reasons = {});

  AnalysisService analysis_;
  auth::EnrollmentDatabase db_;
  auth::Verifier verifier_;
  RecordStore store_;
  DeviceRegistry devices_;
  AdmissionGate admission_;
  Dispatcher dispatch_;
  std::atomic<bool> quality_gate_{true};
  SessionCache cache_;
  ServiceCounters counters_;
};

}  // namespace medsen::cloud
