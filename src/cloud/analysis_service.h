#pragma once
// The cloud's signal-analysis service: detrend each carrier channel of the
// (encrypted) acquisition and extract peaks — the heavyweight processing
// the paper offloads from the sensor (Section VI-C). The service sees
// only ciphertext-domain signals; peak lists it returns are still
// encrypted in the counting sense.

#include <chrono>
#include <cstdint>

#include "core/peak_report.h"
#include "dsp/detrend.h"
#include "dsp/peak_detect.h"
#include "util/time_series.h"

namespace medsen::cloud {

struct AnalysisConfig {
  dsp::DetrendConfig detrend;
  dsp::PeakDetectConfig peak_detect;
  /// Derive the detection threshold from each channel's measured noise
  /// floor instead of peak_detect.threshold (deployments see sensors
  /// with differing noise).
  bool adaptive_threshold = false;
  double adaptive_k_sigma = 6.0;
};

struct AnalysisStats {
  std::uint64_t samples_processed = 0;
  std::uint64_t peaks_found = 0;
  double processing_time_s = 0.0;  ///< wall-clock of the last analyze()
};

class AnalysisService {
 public:
  explicit AnalysisService(AnalysisConfig config = {});

  /// Analyze a full acquisition: detrend + peak detection per channel.
  core::PeakReport analyze(const util::MultiChannelSeries& series);

  [[nodiscard]] const AnalysisStats& stats() const { return stats_; }
  [[nodiscard]] const AnalysisConfig& config() const { return config_; }

 private:
  AnalysisConfig config_;
  AnalysisStats stats_;
};

}  // namespace medsen::cloud
