#pragma once
// The cloud's signal-analysis service: detrend each carrier channel of the
// (encrypted) acquisition and extract peaks — the heavyweight processing
// the paper offloads from the sensor (Section VI-C). The service sees
// only ciphertext-domain signals; peak lists it returns are still
// encrypted in the counting sense.
//
// Parallelism: channels are analyzed concurrently and each channel's
// detrend window loop fans out on the same util::ThreadPool. The pool is
// shared across requests (CloudServer injects one service-wide instance)
// and the parallel result is bit-identical to a serial run — see the
// "Threading model" section of DESIGN.md.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include <vector>

#include "core/peak_report.h"
#include "dsp/detrend.h"
#include "dsp/peak_detect.h"
#include "util/scratch_pool.h"
#include "util/thread_pool.h"
#include "util/time_series.h"

namespace medsen::cloud {

struct AnalysisConfig {
  dsp::DetrendConfig detrend;
  dsp::PeakDetectConfig peak_detect;
  /// Derive the detection threshold from each channel's measured noise
  /// floor instead of peak_detect.threshold (deployments see sensors
  /// with differing noise).
  bool adaptive_threshold = false;
  double adaptive_k_sigma = 6.0;
  /// Analysis parallelism: 0 = one thread per hardware core, 1 = fully
  /// serial (no pool), N = N-way. Ignored when a pool is injected.
  unsigned threads = 0;
};

struct AnalysisStats {
  std::uint64_t samples_processed = 0;
  std::uint64_t peaks_found = 0;
  double processing_time_s = 0.0;  ///< wall-clock of the last analyze()
};

class AnalysisService {
 public:
  /// Construct with an optional externally shared pool. Without one, a
  /// pool sized from config.threads is created (none when threads == 1).
  explicit AnalysisService(AnalysisConfig config = {},
                           std::shared_ptr<util::ThreadPool> pool = nullptr);

  /// Analyze a full acquisition: detrend + peak detection per channel.
  /// Safe to call from several request threads concurrently.
  core::PeakReport analyze(const util::MultiChannelSeries& series);

  /// Snapshot of the last analyze()'s statistics. Lock-free: the fields
  /// are independent relaxed atomics, so a read racing a concurrent
  /// analyze() may mix two analyses' fields — never tear one value.
  [[nodiscard]] AnalysisStats stats() const;
  [[nodiscard]] const AnalysisConfig& config() const { return config_; }
  /// The pool driving this service (null = serial), shared across
  /// requests and reusable by other components.
  [[nodiscard]] const std::shared_ptr<util::ThreadPool>& thread_pool() const {
    return pool_;
  }

 private:
  /// Everything one channel task needs: the detrended-signal buffer and
  /// the detrend/peak-detect workspaces. Leased from scratch_pool_ per
  /// channel task, so steady-state requests analyze with no per-channel
  /// allocation (buffers warm up to the largest channel seen). A pool —
  /// not thread_local — because ThreadPool's help-while-waiting can run
  /// a nested task on a thread whose outer frame still uses its scratch.
  struct ChannelScratch {
    std::vector<double> detrended;
    dsp::DetrendWorkspace detrend;
    dsp::PeakDetectScratch peak_detect;
  };

  AnalysisConfig config_;
  std::shared_ptr<util::ThreadPool> pool_;
  util::ScratchPool<ChannelScratch> scratch_pool_;
  std::atomic<std::uint64_t> samples_processed_{0};
  std::atomic<std::uint64_t> peaks_found_{0};
  std::atomic<std::uint64_t> processing_time_ns_{0};
};

}  // namespace medsen::cloud
