#pragma once
// cloud::Journal — the checksummed, length-prefixed write-ahead log
// behind the cloud's ack ⇒ durable contract. Every state mutation the
// server acknowledges (stored record, enrollment, registry event,
// handshake ordinal) is appended — and fsync'd — here *before* the
// acknowledgement leaves the building; recovery replays the journal over
// the last snapshots. See DESIGN.md "Durability model" and PROTOCOL.md
// for the wire format.
//
// On-disk layout (all integers little-endian):
//
//   header   u32 magic "MSJL" | u32 version | u32 flags | u32 reserved
//   record*  u32 body_len | u32 crc32(body) | body
//   body     u64 lsn | u8 type | payload bytes
//
// LSNs are strictly increasing and survive compaction (truncate_all
// keeps counting), so "counters monotonic across restart" is checkable
// from the log alone.
//
// Torn-tail tolerance: a crash can tear only the *final* record (appends
// are sequential), so a partial or CRC-broken record that reaches EOF is
// truncated away — it was never acknowledged, because the ack waits for
// fsync. A CRC-broken record with more records *after* it cannot be a
// torn append; that is real corruption and open() throws
// PersistenceError rather than silently dropping acknowledged state.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cloud/persistence_error.h"
#include "util/fileio.h"
#include "util/sharded.h"

namespace medsen::cloud {

/// What a journal record describes. Values are the wire encoding —
/// append-only, never renumber.
enum class JournalRecordType : std::uint8_t {
  kRecordStored = 1,      ///< record store append
  kUserEnrolled = 2,      ///< enrollment database append
  kDeviceProvisioned = 3, ///< legacy key installed/rotated
  kDeviceEnrolled = 4,    ///< diversified enrollment (id only)
  kDeviceRevoked = 5,     ///< revocation on both planes
  kMasterRotated = 6,     ///< master-key epoch installed
  kEpochRetired = 7,      ///< master-key epoch dropped
  kHandshake = 8,         ///< handshake ordinal burned (nonce freshness)
};

struct JournalRecord {
  std::uint64_t lsn = 0;
  JournalRecordType type{};
  std::vector<std::uint8_t> payload;
};

/// What open() found on disk.
struct JournalOpenStats {
  std::uint64_t records_recovered = 0;
  std::uint64_t last_lsn = 0;
  bool tail_truncated = false;      ///< a torn final record was dropped
  std::uint64_t truncated_bytes = 0;
};

class Journal {
 public:
  struct Config {
    /// fsync after every append (the ack ⇒ durable contract). Off only
    /// for benches that measure the in-memory path.
    bool fsync_each_append = true;
  };

  static constexpr std::uint32_t kMagic = 0x4D534A4C;  // "MSJL"
  static constexpr std::uint32_t kVersion = 1;
  static constexpr std::size_t kHeaderSize = 16;

  /// Open (or create) the journal at `path`, scanning existing records.
  /// A torn tail is truncated; interior corruption or a foreign header
  /// throws PersistenceError.
  explicit Journal(std::string path, Config config);
  explicit Journal(std::string path) : Journal(std::move(path), Config{}) {}

  /// The records recovered at open, in LSN order (moved out — call
  /// once, during recovery).
  [[nodiscard]] std::vector<JournalRecord> take_recovered();
  [[nodiscard]] const JournalOpenStats& open_stats() const { return stats_; }

  /// Append one record durably and return its LSN. Thread-safe. When
  /// this returns, the record survives a crash (fsync_each_append).
  std::uint64_t append(JournalRecordType type,
                       std::span<const std::uint8_t> payload);

  /// Compaction: durably drop every record (the caller has just written
  /// snapshots covering them). The LSN sequence continues.
  void truncate_all();

  /// Raise the next-LSN floor so appends continue above `last_lsn`. The
  /// journal file does not persist the sequence across truncate_all —
  /// after a crash that lands between compaction's truncate and the next
  /// append, the snapshots are the only carrier of the LSN high-water
  /// mark, and recovery must push it back in here or the next acked
  /// record would reuse LSN 1 and be replay-gated out behind the
  /// snapshot. No-op when the journal already scanned past it.
  void raise_lsn_floor(std::uint64_t last_lsn);

  [[nodiscard]] std::uint64_t last_lsn() const;
  /// Records appended since open or the last truncate_all (feeds the
  /// auto-compaction threshold).
  [[nodiscard]] std::uint64_t appended_since_compaction() const;
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  struct State {
    util::DurableFile file;
    std::uint64_t next_lsn = 1;
    std::uint64_t appended = 0;
  };

  std::string path_;
  Config config_;
  JournalOpenStats stats_;
  std::vector<JournalRecord> recovered_;
  /// Single-shard Sharded instead of a bare mutex (the cloud-mutex
  /// rule): appends serialize here, which is also the fsync cost model.
  util::Sharded<State> state_{1};
};

}  // namespace medsen::cloud
