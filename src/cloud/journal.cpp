#include "cloud/journal.h"

#include <utility>

#include "compress/crc32.h"
#include "util/crash_point.h"
#include "util/serialize.h"

namespace medsen::cloud {

namespace {

std::uint32_t read_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t read_u64le(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(read_u32le(p)) |
         (static_cast<std::uint64_t>(read_u32le(p + 4)) << 32);
}

std::vector<std::uint8_t> make_header() {
  util::ByteWriter out;
  out.u32(Journal::kMagic);
  out.u32(Journal::kVersion);
  out.u32(0);  // flags (reserved)
  out.u32(0);  // reserved
  return out.take();
}

/// A record body must hold at least its LSN and type byte.
constexpr std::size_t kMinBodySize = 8 + 1;

}  // namespace

Journal::Journal(std::string path, Config config)
    : path_(std::move(path)), config_(config) {
  util::crash_point("journal.open");
  const bool existed = util::file_exists(path_);
  std::vector<std::uint8_t> bytes;
  if (existed) bytes = util::read_file(path_);

  // Scan phase: find the valid prefix. A file smaller than the header
  // can only be a creation the crash interrupted before anything was
  // acknowledged — reinitialize it. A *wrong* header is foreign or
  // corrupt state and must not be silently wiped.
  bool reinit = !existed || bytes.size() < kHeaderSize;
  std::uint64_t scan_last_lsn = 0;
  std::size_t keep = kHeaderSize;
  if (!reinit) {
    if (read_u32le(bytes.data()) != kMagic)
      throw PersistenceError("journal: bad magic in " + path_);
    if (read_u32le(bytes.data() + 4) != kVersion)
      throw PersistenceError("journal: unsupported version in " + path_);
    std::size_t offset = kHeaderSize;
    while (offset < bytes.size()) {
      const std::size_t rem = bytes.size() - offset;
      if (rem < 8) break;  // torn length/CRC prefix
      const std::uint32_t len = read_u32le(bytes.data() + offset);
      const std::uint32_t crc = read_u32le(bytes.data() + offset + 4);
      if (len > rem - 8) break;  // body extends past EOF: torn append
      const std::span<const std::uint8_t> body{bytes.data() + offset + 8,
                                               len};
      const bool is_last = offset + 8 + len == bytes.size();
      const bool valid =
          len >= kMinBodySize && compress::crc32(body) == crc;
      if (!valid) {
        if (is_last) break;  // torn final record
        throw PersistenceError(
            "journal: interior corruption at offset " +
            std::to_string(offset) + " in " + path_);
      }
      const std::uint64_t lsn = read_u64le(body.data());
      if (lsn <= scan_last_lsn)
        throw PersistenceError("journal: non-monotonic LSN " +
                               std::to_string(lsn) + " in " + path_);
      JournalRecord record;
      record.lsn = lsn;
      record.type = static_cast<JournalRecordType>(body[8]);
      record.payload.assign(body.begin() + 9, body.end());
      recovered_.push_back(std::move(record));
      scan_last_lsn = lsn;
      offset += 8 + len;
    }
    keep = offset;
  }

  stats_.records_recovered = recovered_.size();
  stats_.last_lsn = scan_last_lsn;
  stats_.tail_truncated = !reinit && keep < bytes.size();
  stats_.truncated_bytes =
      stats_.tail_truncated ? bytes.size() - keep : 0;

  state_.with(0, [&](State& state) {
    state.file = util::DurableFile::open_append(path_);
    if (reinit) {
      state.file.truncate(0);
      state.file.append(make_header());
      state.file.sync();
    } else if (stats_.tail_truncated) {
      util::crash_point("journal.open.truncate_tail");
      state.file.truncate(keep);
    }
    state.next_lsn = scan_last_lsn + 1;
    state.appended = recovered_.size();
  });
}

std::vector<JournalRecord> Journal::take_recovered() {
  return std::move(recovered_);
}

std::uint64_t Journal::append(JournalRecordType type,
                              std::span<const std::uint8_t> payload) {
  return state_.with(0, [&](State& state) {
    util::ByteWriter body;
    body.u64(state.next_lsn);
    body.u8(static_cast<std::uint8_t>(type));
    body.bytes(payload);
    util::ByteWriter frame;
    frame.u32(static_cast<std::uint32_t>(body.size()));
    frame.u32(compress::crc32(body.data()));
    frame.bytes(body.data());
    const std::span<const std::uint8_t> out{frame.data()};
    // Two half-appends around a crash site: the sweep gets a genuinely
    // torn tail, which open() must truncate cleanly.
    const std::size_t half = out.size() / 2;
    state.file.append(out.first(half));
    util::crash_point("journal.append.torn");
    state.file.append(out.subspan(half));
    util::crash_point("journal.append.unsynced");
    if (config_.fsync_each_append) state.file.sync();
    util::crash_point("journal.append.synced");
    ++state.appended;
    return state.next_lsn++;
  });
}

void Journal::truncate_all() {
  state_.with(0, [&](State& state) {
    util::crash_point("journal.compact.before_truncate");
    state.file.truncate(kHeaderSize);
    state.appended = 0;
  });
}

void Journal::raise_lsn_floor(std::uint64_t last_lsn) {
  state_.with(0, [&](State& state) {
    if (last_lsn + 1 > state.next_lsn) state.next_lsn = last_lsn + 1;
  });
}

std::uint64_t Journal::last_lsn() const {
  return state_.with(0,
                     [](const State& state) { return state.next_lsn - 1; });
}

std::uint64_t Journal::appended_since_compaction() const {
  return state_.with(0, [](const State& state) { return state.appended; });
}

}  // namespace medsen::cloud
