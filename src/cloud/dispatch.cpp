#include "cloud/dispatch.h"

#include <algorithm>
#include <utility>

namespace medsen::cloud {

void DeviceRegistry::provision(std::uint64_t device_id,
                               std::vector<std::uint8_t> mac_key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  keys_[device_id] = std::move(mac_key);
}

bool DeviceRegistry::revoke(std::uint64_t device_id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return keys_.erase(device_id) > 0;
}

std::optional<std::vector<std::uint8_t>> DeviceRegistry::lookup(
    std::uint64_t device_id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = keys_.find(device_id);
  if (it == keys_.end()) return std::nullopt;
  return it->second;
}

std::size_t DeviceRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return keys_.size();
}

AdmissionGate::Ticket::Ticket(Ticket&& other) noexcept
    : gate_(std::exchange(other.gate_, nullptr)) {}

AdmissionGate::Ticket& AdmissionGate::Ticket::operator=(
    Ticket&& other) noexcept {
  if (this != &other) {
    release();
    gate_ = std::exchange(other.gate_, nullptr);
  }
  return *this;
}

void AdmissionGate::Ticket::release() {
  if (gate_ == nullptr) return;
  const std::lock_guard<std::mutex> lock(gate_->mutex_);
  --gate_->in_flight_;
  gate_ = nullptr;
}

AdmissionGate::Ticket AdmissionGate::try_enter() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (limit_ != 0 && in_flight_ >= limit_) {
    ++shed_;
    return Ticket(nullptr);
  }
  ++in_flight_;
  return Ticket(this);
}

std::size_t AdmissionGate::in_flight() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

std::uint64_t AdmissionGate::shed_total() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return shed_;
}

ServiceResult ServiceResult::success(net::MessageType type,
                                     std::vector<std::uint8_t> payload) {
  ServiceResult result;
  result.ok = true;
  result.response_type = type;
  result.response_payload = std::move(payload);
  return result;
}

ServiceResult ServiceResult::failure(
    net::ErrorCode code, std::string detail, std::uint8_t subcode,
    std::vector<std::uint8_t> channel_reasons) {
  ServiceResult result;
  result.ok = false;
  result.error = code;
  result.error_subcode = subcode;
  result.detail = std::move(detail);
  result.error_channel_reasons = std::move(channel_reasons);
  return result;
}

void Dispatcher::add(net::MessageType type, Handler handler) {
  handlers_[static_cast<std::uint8_t>(type)] = std::move(handler);
}

const Dispatcher::Handler* Dispatcher::find(net::MessageType type) const {
  const auto it = handlers_.find(static_cast<std::uint8_t>(type));
  return it == handlers_.end() ? nullptr : &it->second;
}

std::vector<net::MessageType> Dispatcher::registered() const {
  std::vector<net::MessageType> types;
  types.reserve(handlers_.size());
  for (const auto& [key, handler] : handlers_)
    types.push_back(static_cast<net::MessageType>(key));
  std::sort(types.begin(), types.end(),
            [](net::MessageType a, net::MessageType b) {
              return static_cast<std::uint8_t>(a) <
                     static_cast<std::uint8_t>(b);
            });
  return types;
}

}  // namespace medsen::cloud
