#include "cloud/dispatch.h"

#include <algorithm>
#include <utility>

namespace medsen::cloud {

void DeviceRegistry::provision(std::uint64_t device_id,
                               std::vector<std::uint8_t> mac_key) {
  shards_.with(device_id, [&](KeyMap& keys) {
    keys[device_id] = std::move(mac_key);
  });
}

bool DeviceRegistry::revoke(std::uint64_t device_id) {
  return shards_.with(device_id, [&](KeyMap& keys) {
    return keys.erase(device_id) > 0;
  });
}

std::optional<std::vector<std::uint8_t>> DeviceRegistry::lookup(
    std::uint64_t device_id) const {
  return shards_.with(
      device_id,
      [&](const KeyMap& keys) -> std::optional<std::vector<std::uint8_t>> {
        const auto it = keys.find(device_id);
        if (it == keys.end()) return std::nullopt;
        return it->second;
      });
}

std::size_t DeviceRegistry::size() const {
  std::size_t total = 0;
  shards_.for_each_shard([&](const KeyMap& keys) { total += keys.size(); });
  return total;
}

AdmissionGate::Ticket::Ticket(Ticket&& other) noexcept
    : gate_(std::exchange(other.gate_, nullptr)) {}

AdmissionGate::Ticket& AdmissionGate::Ticket::operator=(
    Ticket&& other) noexcept {
  if (this != &other) {
    release();
    gate_ = std::exchange(other.gate_, nullptr);
  }
  return *this;
}

void AdmissionGate::Ticket::release() {
  if (gate_ == nullptr) return;
  gate_->in_flight_.fetch_sub(1, std::memory_order_release);
  gate_ = nullptr;
}

AdmissionGate::Ticket AdmissionGate::try_enter() {
  const std::size_t prior = in_flight_.fetch_add(1, std::memory_order_acquire);
  if (limit_ != 0 && prior >= limit_) {
    // Back out: the transient overshoot is invisible to correctness —
    // no ticket was issued, and concurrent try_enter() calls that lose
    // the race shed exactly as the mutex version did.
    in_flight_.fetch_sub(1, std::memory_order_release);
    shed_.fetch_add(1, std::memory_order_relaxed);
    return Ticket(nullptr);
  }
  return Ticket(this);
}

std::size_t AdmissionGate::in_flight() const {
  return in_flight_.load(std::memory_order_acquire);
}

std::uint64_t AdmissionGate::shed_total() const {
  return shed_.load(std::memory_order_relaxed);
}

ServiceCounters::ServiceCounters(std::size_t shards)
    : count_(shards == 0 ? util::default_shard_count()
                         : util::round_up_pow2(shards)),
      shards_(std::make_unique<Shard[]>(count_)) {}

void ServiceCounters::count_processed(std::uint64_t device_id,
                                      double processing_time_s) {
  Shard& shard = shard_for(device_id);
  shard.requests_processed.fetch_add(1, std::memory_order_relaxed);
  shard.processing_time_ns.fetch_add(
      static_cast<std::uint64_t>(processing_time_s * 1e9),
      std::memory_order_relaxed);
}

void ServiceCounters::count_replay(std::uint64_t device_id) {
  shard_for(device_id).replays_served.fetch_add(1, std::memory_order_relaxed);
}

void ServiceCounters::count_error(std::uint64_t device_id) {
  shard_for(device_id).errors_returned.fetch_add(1, std::memory_order_relaxed);
}

void ServiceCounters::count_shed(std::uint64_t device_id) {
  shard_for(device_id).requests_shed.fetch_add(1, std::memory_order_relaxed);
}

ServiceStats ServiceCounters::aggregate() const {
  ServiceStats stats;
  std::uint64_t time_ns = 0;
  for (std::size_t i = 0; i < count_; ++i) {
    const Shard& shard = shards_[i];
    stats.requests_processed +=
        shard.requests_processed.load(std::memory_order_relaxed);
    stats.replays_served +=
        shard.replays_served.load(std::memory_order_relaxed);
    stats.errors_returned +=
        shard.errors_returned.load(std::memory_order_relaxed);
    stats.requests_shed +=
        shard.requests_shed.load(std::memory_order_relaxed);
    time_ns += shard.processing_time_ns.load(std::memory_order_relaxed);
  }
  stats.processing_time_s = static_cast<double>(time_ns) * 1e-9;
  return stats;
}

ServiceResult ServiceResult::success(net::MessageType type,
                                     std::vector<std::uint8_t> payload) {
  ServiceResult result;
  result.ok = true;
  result.response_type = type;
  result.response_payload = std::move(payload);
  return result;
}

ServiceResult ServiceResult::failure(
    net::ErrorCode code, std::string detail, std::uint8_t subcode,
    std::vector<std::uint8_t> channel_reasons) {
  ServiceResult result;
  result.ok = false;
  result.error = code;
  result.error_subcode = subcode;
  result.detail = std::move(detail);
  result.error_channel_reasons = std::move(channel_reasons);
  return result;
}

void Dispatcher::add(net::MessageType type, Handler handler) {
  handlers_[static_cast<std::uint8_t>(type)] = std::move(handler);
}

const Dispatcher::Handler* Dispatcher::find(net::MessageType type) const {
  const auto it = handlers_.find(static_cast<std::uint8_t>(type));
  return it == handlers_.end() ? nullptr : &it->second;
}

std::vector<net::MessageType> Dispatcher::registered() const {
  std::vector<net::MessageType> types;
  types.reserve(handlers_.size());
  for (const auto& [key, handler] : handlers_)
    types.push_back(static_cast<net::MessageType>(key));
  std::sort(types.begin(), types.end(),
            [](net::MessageType a, net::MessageType b) {
              return static_cast<std::uint8_t>(a) <
                     static_cast<std::uint8_t>(b);
            });
  return types;
}

}  // namespace medsen::cloud
