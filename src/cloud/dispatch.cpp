#include "cloud/dispatch.h"

#include <algorithm>
#include <utility>

#include "crypto/cmac.h"

namespace medsen::cloud {

DeviceRegistry::ProvisionResult DeviceRegistry::provision(
    std::uint64_t device_id, std::vector<std::uint8_t> mac_key) {
  return shards_.with(device_id, [&](DeviceShard& shard) {
    const bool known = shard.legacy.find(device_id) != shard.legacy.end() ||
                       shard.enrolled.find(device_id) != shard.enrolled.end();
    // Adoption wipes the caller's vector; rotation wipes the old key
    // inside the SecretBytes assignment.
    shard.legacy[device_id] = util::SecretBytes(std::move(mac_key));
    shard.revoked.erase(device_id);
    return known ? ProvisionResult::kRotated : ProvisionResult::kNew;
  });
}

bool DeviceRegistry::revoke(std::uint64_t device_id) {
  return shards_.with(device_id, [&](DeviceShard& shard) {
    const bool known = shard.legacy.erase(device_id) > 0 ||
                       shard.enrolled.erase(device_id) > 0;
    if (known) shard.revoked.insert(device_id);
    return known;
  });
}

void DeviceRegistry::enroll(std::uint64_t device_id) {
  shards_.with(device_id, [&](DeviceShard& shard) {
    shard.enrolled.insert(device_id);
    shard.revoked.erase(device_id);
  });
}

bool DeviceRegistry::is_revoked(std::uint64_t device_id) const {
  return shards_.with(device_id, [&](const DeviceShard& shard) {
    return shard.revoked.find(device_id) != shard.revoked.end();
  });
}

bool DeviceRegistry::has_legacy_key(std::uint64_t device_id) const {
  return shards_.with(device_id, [&](const DeviceShard& shard) {
    return shard.legacy.find(device_id) != shard.legacy.end();
  });
}

std::optional<util::SecretBytes> DeviceRegistry::lookup(
    std::uint64_t device_id) const {
  const auto direct = shards_.with(
      device_id,
      [&](const DeviceShard& shard)
          -> std::optional<std::optional<util::SecretBytes>> {
        if (shard.revoked.find(device_id) != shard.revoked.end())
          return std::optional<util::SecretBytes>{};
        const auto it = shard.legacy.find(device_id);
        if (it != shard.legacy.end())
          return std::optional<util::SecretBytes>{it->second};
        if (shard.enrolled.find(device_id) == shard.enrolled.end())
          return std::optional<util::SecretBytes>{};
        return std::nullopt;  // enrolled: derive below, outside the lock
      });
  if (direct.has_value()) return *direct;
  return lookup_epoch(device_id, current_epoch());
}

std::optional<util::SecretBytes> DeviceRegistry::lookup_epoch(
    std::uint64_t device_id, std::uint32_t key_epoch) const {
  const bool derivable = shards_.with(device_id, [&](const DeviceShard& s) {
    return s.revoked.find(device_id) == s.revoked.end() &&
           s.enrolled.find(device_id) != s.enrolled.end();
  });
  if (!derivable) return std::nullopt;
  const auto master = masters_.with(
      0, [&](const MasterState& m) -> std::optional<util::SecretBytes> {
        const auto it = m.by_epoch.find(key_epoch);
        if (it == m.by_epoch.end()) return std::nullopt;
        return it->second;
      });
  if (!master.has_value()) return std::nullopt;
  // Derivation runs outside every lock: CMAC cost must never extend a
  // shard's critical section. Adoption wipes the KDF's working vector.
  return util::SecretBytes(
      crypto::diversify_device_key(*master, device_id, key_epoch));
}

void DeviceRegistry::set_master_key(std::uint32_t epoch,
                                    std::vector<std::uint8_t> master) {
  masters_.with(0, [&](MasterState& m) {
    m.by_epoch[epoch] = util::SecretBytes(std::move(master));
    m.current_epoch = epoch;
  });
}

bool DeviceRegistry::retire_epoch(std::uint32_t epoch) {
  return masters_.with(0, [&](MasterState& m) {
    return m.by_epoch.erase(epoch) > 0;
  });
}

std::uint32_t DeviceRegistry::current_epoch() const {
  return masters_.with(0, [&](const MasterState& m) {
    return m.current_epoch;
  });
}

bool DeviceRegistry::has_epoch(std::uint32_t epoch) const {
  return masters_.with(0, [&](const MasterState& m) {
    return m.by_epoch.find(epoch) != m.by_epoch.end();
  });
}

std::size_t DeviceRegistry::size() const {
  std::size_t total = 0;
  shards_.for_each_shard([&](const DeviceShard& shard) {
    total += shard.legacy.size();
    for (const std::uint64_t id : shard.enrolled)
      if (shard.legacy.find(id) == shard.legacy.end()) ++total;
  });
  return total;
}

std::size_t DeviceRegistry::stored_secret_count() const {
  std::size_t total = 0;
  shards_.for_each_shard(
      [&](const DeviceShard& shard) { total += shard.legacy.size(); });
  return total;
}

RegistrySnapshot DeviceRegistry::snapshot() const {
  RegistrySnapshot snap;
  shards_.for_each_shard([&](const DeviceShard& shard) {
    for (const auto& [id, key] : shard.legacy)
      snap.legacy_keys.emplace_back(
          id, std::vector<std::uint8_t>(key.data(), key.data() + key.size()));
    snap.enrolled.insert(snap.enrolled.end(), shard.enrolled.begin(),
                         shard.enrolled.end());
    snap.revoked.insert(snap.revoked.end(), shard.revoked.begin(),
                        shard.revoked.end());
  });
  masters_.with(0, [&](const MasterState& m) {
    for (const auto& [epoch, key] : m.by_epoch)
      snap.masters.emplace_back(
          epoch, std::vector<std::uint8_t>(key.data(), key.data() + key.size()));
    snap.current_epoch = m.current_epoch;
  });
  // Sort everything: snapshots feed serialization, which must be
  // byte-identical across runs regardless of hash-table iteration order.
  std::sort(snap.legacy_keys.begin(), snap.legacy_keys.end());
  std::sort(snap.masters.begin(), snap.masters.end());
  std::sort(snap.enrolled.begin(), snap.enrolled.end());
  std::sort(snap.revoked.begin(), snap.revoked.end());
  return snap;
}

void DeviceRegistry::restore(const RegistrySnapshot& snapshot) {
  shards_.for_each_shard([&](DeviceShard& shard) { shard = DeviceShard{}; });
  for (const auto& [id, key] : snapshot.legacy_keys)
    shards_.with(id, [&, id = id](DeviceShard& s) {
      s.legacy[id] = util::SecretBytes(std::span<const std::uint8_t>(key));
    });
  for (const std::uint64_t id : snapshot.enrolled)
    shards_.with(id, [&](DeviceShard& s) { s.enrolled.insert(id); });
  for (const std::uint64_t id : snapshot.revoked)
    shards_.with(id, [&](DeviceShard& s) { s.revoked.insert(id); });
  masters_.with(0, [&](MasterState& m) {
    m = MasterState{};
    for (const auto& [epoch, key] : snapshot.masters)
      m.by_epoch[epoch] = util::SecretBytes(std::span<const std::uint8_t>(key));
    m.current_epoch = snapshot.current_epoch;
  });
}

AdmissionGate::Ticket::Ticket(Ticket&& other) noexcept
    : gate_(std::exchange(other.gate_, nullptr)) {}

AdmissionGate::Ticket& AdmissionGate::Ticket::operator=(
    Ticket&& other) noexcept {
  if (this != &other) {
    release();
    gate_ = std::exchange(other.gate_, nullptr);
  }
  return *this;
}

void AdmissionGate::Ticket::release() {
  if (gate_ == nullptr) return;
  gate_->in_flight_.fetch_sub(1, std::memory_order_release);
  gate_ = nullptr;
}

AdmissionGate::Ticket AdmissionGate::try_enter() {
  const std::size_t prior = in_flight_.fetch_add(1, std::memory_order_acquire);
  if (limit_ != 0 && prior >= limit_) {
    // Back out: the transient overshoot is invisible to correctness —
    // no ticket was issued, and concurrent try_enter() calls that lose
    // the race shed exactly as the mutex version did.
    in_flight_.fetch_sub(1, std::memory_order_release);
    shed_.fetch_add(1, std::memory_order_relaxed);
    return Ticket(nullptr);
  }
  return Ticket(this);
}

std::size_t AdmissionGate::in_flight() const {
  return in_flight_.load(std::memory_order_acquire);
}

std::uint64_t AdmissionGate::shed_total() const {
  return shed_.load(std::memory_order_relaxed);
}

ServiceCounters::ServiceCounters(std::size_t shards)
    : count_(shards == 0 ? util::default_shard_count()
                         : util::round_up_pow2(shards)),
      shards_(std::make_unique<Shard[]>(count_)) {}

void ServiceCounters::count_processed(std::uint64_t device_id,
                                      double processing_time_s) {
  Shard& shard = shard_for(device_id);
  shard.requests_processed.fetch_add(1, std::memory_order_relaxed);
  shard.processing_time_ns.fetch_add(
      static_cast<std::uint64_t>(processing_time_s * 1e9),
      std::memory_order_relaxed);
}

void ServiceCounters::count_replay(std::uint64_t device_id) {
  shard_for(device_id).replays_served.fetch_add(1, std::memory_order_relaxed);
}

void ServiceCounters::count_error(std::uint64_t device_id) {
  shard_for(device_id).errors_returned.fetch_add(1, std::memory_order_relaxed);
}

void ServiceCounters::count_shed(std::uint64_t device_id) {
  shard_for(device_id).requests_shed.fetch_add(1, std::memory_order_relaxed);
}

void ServiceCounters::count_handshake(std::uint64_t device_id) {
  shard_for(device_id).handshakes_completed.fetch_add(
      1, std::memory_order_relaxed);
}

void ServiceCounters::count_counter_rejection(std::uint64_t device_id) {
  shard_for(device_id).counter_rejections.fetch_add(
      1, std::memory_order_relaxed);
}

ServiceStats ServiceCounters::aggregate() const {
  ServiceStats stats;
  std::uint64_t time_ns = 0;
  for (std::size_t i = 0; i < count_; ++i) {
    const Shard& shard = shards_[i];
    stats.requests_processed +=
        shard.requests_processed.load(std::memory_order_relaxed);
    stats.replays_served +=
        shard.replays_served.load(std::memory_order_relaxed);
    stats.errors_returned +=
        shard.errors_returned.load(std::memory_order_relaxed);
    stats.requests_shed +=
        shard.requests_shed.load(std::memory_order_relaxed);
    stats.handshakes_completed +=
        shard.handshakes_completed.load(std::memory_order_relaxed);
    stats.counter_rejections +=
        shard.counter_rejections.load(std::memory_order_relaxed);
    time_ns += shard.processing_time_ns.load(std::memory_order_relaxed);
  }
  stats.processing_time_s = static_cast<double>(time_ns) * 1e-9;
  return stats;
}

ServiceResult ServiceResult::success(net::MessageType type,
                                     std::vector<std::uint8_t> payload) {
  ServiceResult result;
  result.ok = true;
  result.response_type = type;
  result.response_payload = std::move(payload);
  return result;
}

ServiceResult ServiceResult::failure(
    net::ErrorCode code, std::string detail, std::uint8_t subcode,
    std::vector<std::uint8_t> channel_reasons) {
  ServiceResult result;
  result.ok = false;
  result.error = code;
  result.error_subcode = subcode;
  result.detail = std::move(detail);
  result.error_channel_reasons = std::move(channel_reasons);
  return result;
}

void Dispatcher::add(net::MessageType type, Handler handler) {
  handlers_[static_cast<std::uint8_t>(type)] = std::move(handler);
}

const Dispatcher::Handler* Dispatcher::find(net::MessageType type) const {
  const auto it = handlers_.find(static_cast<std::uint8_t>(type));
  return it == handlers_.end() ? nullptr : &it->second;
}

std::vector<net::MessageType> Dispatcher::registered() const {
  std::vector<net::MessageType> types;
  types.reserve(handlers_.size());
  for (const auto& [key, handler] : handlers_)
    types.push_back(static_cast<net::MessageType>(key));
  std::sort(types.begin(), types.end(),
            [](net::MessageType a, net::MessageType b) {
              return static_cast<std::uint8_t>(a) <
                     static_cast<std::uint8_t>(b);
            });
  return types;
}

}  // namespace medsen::cloud
