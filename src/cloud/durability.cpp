#include "cloud/durability.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "cloud/persistence.h"
#include "cloud/server.h"
#include "crypto/aes.h"
#include "crypto/cmac.h"
#include "util/crash_point.h"
#include "util/fileio.h"
#include "util/secure_zero.h"
#include "util/serialize.h"

namespace medsen::cloud {

namespace {

// Durable-snapshot magics, distinct from the legacy whole-file formats
// (the bodies here carry an applied_lsn and a sealing flag).
constexpr std::uint32_t kSnapRecordMagic = 0x4D445243;    // "MDRC"
constexpr std::uint32_t kSnapEnrollMagic = 0x4D44454E;    // "MDEN"
constexpr std::uint32_t kSnapRegistryMagic = 0x4D445247;  // "MDRG"
constexpr std::uint32_t kSnapSessionMagic = 0x4D445353;   // "MDSS"
constexpr std::uint32_t kSealEpochMagic = 0x4D444550;     // "MDEP"

std::string journal_file_for(const DurabilityConfig& config) {
  util::ensure_directory(config.dir);
  return config.dir + "/journal.wal";
}

template <typename Fn>
auto replay_guard(const char* what, Fn&& fn) {
  try {
    return fn();
  } catch (const PersistenceError&) {
    throw;
  } catch (const util::SimulatedCrash&) {
    throw;
  } catch (const std::exception& e) {
    throw PersistenceError(std::string(what) + ": " + e.what());
  }
}

/// Handshake-ordinal snapshot body: u32 count | (u64 device, u64 seq)*.
/// Without this, compaction would truncate the kHandshake journal
/// records and a later restart could rewind a device's RndB ordinal.
std::vector<std::uint8_t> encode_sessions_body(const SessionAuthTable& table) {
  const auto seqs = table.handshake_seqs();
  util::ByteWriter body;
  body.u32(static_cast<std::uint32_t>(seqs.size()));
  for (const auto& [device, seq] : seqs) {
    body.u64(device);
    body.u64(seq);
  }
  return body.take();
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> decode_sessions_body(
    std::span<const std::uint8_t> body) {
  return replay_guard("decode_sessions_body", [&] {
    util::ByteReader in(body);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> seqs;
    const std::uint32_t count = in.count_u32(8 + 8);
    seqs.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint64_t device = in.u64();
      seqs.emplace_back(device, in.u64());
    }
    in.expect_done("decode_sessions_body");
    return seqs;
  });
}

}  // namespace

DurableState::DurableState(DurabilityConfig config)
    : config_(std::move(config)),
      journal_(journal_file_for(config_),
               Journal::Config{config_.fsync}) {
  // A crash between write_file_atomic's tmp fsync and its rename
  // strands a fully sealed <store>.snap.tmp whose nonces recovery never
  // reads; drop stale tmps before anything else so the stranded
  // ciphertext cannot outlive the nonce accounting.
  bool removed_tmp = false;
  for (const auto& path :
       {records_snapshot_path(), enroll_snapshot_path(),
        registry_snapshot_path(), sessions_snapshot_path()})
    removed_tmp |= util::remove_file(path + ".tmp");
  if (removed_tmp) util::sync_parent_dir(records_snapshot_path());
  if (!config_.storage_key.empty()) {
    auto normalized =
        crypto::normalize_cmac_key(config_.storage_key);  // medsen: secret
    seal_key_.adopt(crypto::kdf_cmac(normalized, "medsen-store", {},
                                     crypto::Aes128::kKeySize));
    util::secure_wipe(normalized);
    bump_seal_epoch();
  }
}

void DurableState::bump_seal_epoch() {
  // Epoch-partitioned nonces: the durably persisted boot counter forms
  // the high 32 bits of every nonce this process seals with, so this
  // lifetime's nonce space is disjoint from every other's — including
  // nonces that reached disk but are invisible to recovery (stranded
  // snapshot tmps, torn journal tails). The bump is written *before*
  // the first seal, so a crash mid-bump costs an epoch number, never a
  // reuse.
  std::uint64_t prior = 0;
  const auto path = seal_epoch_path();
  if (util::file_exists(path)) {
    const auto body = unseal_blob(kSealEpochMagic, util::read_file(path));
    prior = replay_guard("seal epoch", [&] {
      util::ByteReader in(body);
      const std::uint64_t epoch = in.u64();
      in.expect_done("seal epoch");
      return epoch;
    });
  }
  if (prior >= 0xFFFFFFFFull)
    throw PersistenceError("durability: seal epoch space exhausted");
  seal_epoch_ = prior + 1;
  util::ByteWriter body;
  body.u64(seal_epoch_);
  util::write_file_atomic(path, seal_blob(kSealEpochMagic, body.take()));
  nonce_.store((seal_epoch_ << 32) | 1, std::memory_order_relaxed);
}

std::string DurableState::journal_path() const {
  return config_.dir + "/journal.wal";
}
std::string DurableState::records_snapshot_path() const {
  return config_.dir + "/records.snap";
}
std::string DurableState::enroll_snapshot_path() const {
  return config_.dir + "/enroll.snap";
}
std::string DurableState::registry_snapshot_path() const {
  return config_.dir + "/registry.snap";
}
std::string DurableState::sessions_snapshot_path() const {
  return config_.dir + "/sessions.snap";
}
std::string DurableState::seal_epoch_path() const {
  return config_.dir + "/seal.epoch";
}

std::vector<std::uint8_t> DurableState::seal_payload(
    std::vector<std::uint8_t> payload) {
  util::ByteWriter out;
  if (seal_key_.empty()) {
    out.u8(0);
    out.bytes(payload);
    return out.take();
  }
  const std::uint64_t nonce =
      nonce_.fetch_add(1, std::memory_order_relaxed);
  // A nonce outside this boot's epoch partition could collide with one
  // issued by another lifetime; refuse to seal rather than risk CTR
  // keystream reuse. Unreachable short of 2^32 seals in one process or
  // a rewound seal.epoch file.
  if ((nonce >> 32) != seal_epoch_)
    throw PersistenceError("durability: sealing nonce outside this boot's "
                           "epoch space");
  crypto::Aes128Ctr ctr(
      std::span<const std::uint8_t, crypto::Aes128::kKeySize>(
          seal_key_.data(), crypto::Aes128::kKeySize),
      nonce);
  ctr.apply(payload);
  out.u8(1);
  out.u64(nonce);
  out.bytes(payload);
  return out.take();
}

std::vector<std::uint8_t> DurableState::unseal_payload(
    std::span<const std::uint8_t> flagged) {
  return replay_guard("unseal_payload", [&]() -> std::vector<std::uint8_t> {
    util::ByteReader in(flagged);
    const std::uint8_t sealed = in.u8();
    if (sealed == 0) {
      std::vector<std::uint8_t> plain(flagged.begin() + 1, flagged.end());
      return plain;
    }
    if (sealed != 1)
      throw PersistenceError("durability: unknown sealing flag");
    if (seal_key_.empty())
      throw PersistenceError(
          "durability: sealed payload but no storage key configured");
    const std::uint64_t nonce = in.u64();
    // Defense in depth: keep the counter ahead of every nonce actually
    // observed. The real reuse guarantee is the epoch partition (state
    // written by pre-epoch builds, or after a rewound seal.epoch file,
    // can carry nonces at or above this boot's base — raising past them
    // makes seal_payload fail closed rather than reuse).
    std::uint64_t expected = nonce_.load(std::memory_order_relaxed);
    while (nonce + 1 > expected &&
           !nonce_.compare_exchange_weak(expected, nonce + 1,
                                         std::memory_order_relaxed)) {
    }
    std::vector<std::uint8_t> plain(flagged.begin() + 9, flagged.end());
    crypto::Aes128Ctr ctr(
        std::span<const std::uint8_t, crypto::Aes128::kKeySize>(
            seal_key_.data(), crypto::Aes128::kKeySize),
        nonce);
    ctr.apply(plain);
    return plain;
  });
}

void DurableState::write_snapshot(const std::string& path,
                                  std::uint32_t magic,
                                  std::uint64_t applied_lsn,
                                  std::vector<std::uint8_t> body) {
  util::ByteWriter outer;
  outer.u64(applied_lsn);
  outer.blob(seal_payload(std::move(body)));
  util::write_file_atomic(path, seal_blob(magic, outer.take()));
}

std::pair<std::uint64_t, std::vector<std::uint8_t>>
DurableState::read_snapshot(const std::string& path, std::uint32_t magic) {
  if (!util::file_exists(path)) return {0, {}};
  const auto outer = unseal_blob(magic, util::read_file(path));
  return replay_guard("read_snapshot", [&] {
    util::ByteReader in(outer);
    const std::uint64_t applied_lsn = in.u64();
    const auto flagged = in.blob();
    in.expect_done("read_snapshot");
    return std::make_pair(applied_lsn, unseal_payload(flagged));
  });
}

RecoveryStats DurableState::recover_into(CloudServer& server) {
  const auto started = std::chrono::steady_clock::now();
  RecoveryStats stats;
  stats.tail_truncated = journal_.open_stats().tail_truncated;

  // Snapshots first. Each store is gated on its own applied_lsn, so a
  // crash between compaction's snapshot writes (mixed generations) still
  // replays exactly the missing suffix per store.
  // Each apply loop runs under replay_guard like journal replay below:
  // a snapshot/server mismatch (wrong alphabet, duplicate user) must
  // surface as the typed PersistenceError the persistence contract
  // documents, not a raw invalid_argument out of recovery.
  const auto [records_lsn, records_body] =
      read_snapshot(records_snapshot_path(), kSnapRecordMagic);
  if (records_lsn != 0 || !records_body.empty()) {
    replay_guard("snapshot restore (records)", [&] {
      for (auto& [key, records] : decode_records_body(records_body))
        server.records().restore(key, std::move(records));
    });
    stats.snapshots_loaded = true;
  }
  const auto [enroll_lsn, enroll_body] =
      read_snapshot(enroll_snapshot_path(), kSnapEnrollMagic);
  if (enroll_lsn != 0 || !enroll_body.empty()) {
    replay_guard("snapshot restore (enrollments)", [&] {
      const auto db = decode_enrollments_body(enroll_body);
      for (const auto& record : db.records())
        server.enrollments().enroll(record.user_id, record.code);
    });
    stats.snapshots_loaded = true;
  }
  const auto [registry_lsn, registry_body] =
      read_snapshot(registry_snapshot_path(), kSnapRegistryMagic);
  if (registry_lsn != 0 || !registry_body.empty()) {
    replay_guard("snapshot restore (registry)", [&] {
      server.devices().restore(decode_registry_body(registry_body));
    });
    stats.snapshots_loaded = true;
  }
  const auto [sessions_lsn, sessions_body] =
      read_snapshot(sessions_snapshot_path(), kSnapSessionMagic);
  if (sessions_lsn != 0 || !sessions_body.empty()) {
    replay_guard("snapshot restore (sessions)", [&] {
      for (const auto& [device, seq] : decode_sessions_body(sessions_body))
        server.sessions().restore_handshake_seq(device, seq);
    });
    stats.snapshots_loaded = true;
  }

  // The snapshots are the only carrier of the LSN sequence across a
  // crash that lands between compaction's truncate and the next append:
  // push their high-water mark back into the journal before anything new
  // is appended, or fresh records would reuse gated-out LSNs.
  journal_.raise_lsn_floor(std::max({records_lsn, enroll_lsn, registry_lsn,
                                     sessions_lsn}));

  // Journal replay, LSN-gated per store.
  for (const auto& record : journal_.take_recovered()) {
    const auto payload = unseal_payload(record.payload);
    replay_guard("journal replay", [&] {
      util::ByteReader in(payload);
      switch (record.type) {
        case JournalRecordType::kRecordStored: {
          const std::string key = in.str();
          StoredRecord stored;
          stored.session_id = in.u64();
          stored.encrypted_result = in.blob();
          in.expect_done("replay kRecordStored");
          if (record.lsn <= records_lsn) return;
          server.records().append(key, std::move(stored));
          ++stats.stored_records;
          break;
        }
        case JournalRecordType::kUserEnrolled: {
          const std::string user = in.str();
          const auto code = auth::deserialize_code(in.blob());
          in.expect_done("replay kUserEnrolled");
          if (record.lsn <= enroll_lsn) return;
          server.enrollments().enroll(user, code);
          ++stats.user_enrollments;
          break;
        }
        case JournalRecordType::kDeviceProvisioned: {
          const std::uint64_t id = in.u64();
          auto key = in.blob();
          in.expect_done("replay kDeviceProvisioned");
          if (record.lsn <= registry_lsn) return;
          server.devices().provision(id, std::move(key));
          ++stats.registry_events;
          break;
        }
        case JournalRecordType::kDeviceEnrolled: {
          const std::uint64_t id = in.u64();
          in.expect_done("replay kDeviceEnrolled");
          if (record.lsn <= registry_lsn) return;
          server.devices().enroll(id);
          ++stats.registry_events;
          break;
        }
        case JournalRecordType::kDeviceRevoked: {
          const std::uint64_t id = in.u64();
          in.expect_done("replay kDeviceRevoked");
          if (record.lsn <= registry_lsn) return;
          server.devices().revoke(id);
          ++stats.registry_events;
          break;
        }
        case JournalRecordType::kMasterRotated: {
          const std::uint32_t epoch = in.u32();
          auto master = in.blob();
          in.expect_done("replay kMasterRotated");
          if (record.lsn <= registry_lsn) return;
          server.devices().set_master_key(epoch, std::move(master));
          ++stats.registry_events;
          break;
        }
        case JournalRecordType::kEpochRetired: {
          const std::uint32_t epoch = in.u32();
          in.expect_done("replay kEpochRetired");
          if (record.lsn <= registry_lsn) return;
          server.devices().retire_epoch(epoch);
          ++stats.registry_events;
          break;
        }
        case JournalRecordType::kHandshake: {
          const std::uint64_t device = in.u64();
          const std::uint64_t seq = in.u64();
          in.expect_done("replay kHandshake");
          if (record.lsn <= sessions_lsn) return;
          server.sessions().restore_handshake_seq(device, seq);
          ++stats.handshake_marks;
          break;
        }
        default:
          throw PersistenceError(
              "journal: unknown record type " +
              std::to_string(static_cast<unsigned>(record.type)));
      }
      ++stats.records_replayed;
    });
  }

  stats.last_lsn = journal_.last_lsn();
  stats.replay_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started)
          .count();
  recovery_ = stats;
  util::crash_point("durability.recover.done");
  return stats;
}

void DurableState::append_and_apply(JournalRecordType type,
                                    std::vector<std::uint8_t> payload,
                                    const std::function<void()>& apply) {
  append_and_apply(type, std::move(payload), {}, apply);
}

void DurableState::append_and_apply(JournalRecordType type,
                                    std::vector<std::uint8_t> payload,
                                    const std::function<void()>& validate,
                                    const std::function<void()>& apply) {
  // Seal outside the gate (AES work off the lock), then validate,
  // journal and apply under it so compaction always sees memory ==
  // replay(journal). Validation must be inside the gate: outside it,
  // two racing mutations can both pass, both journal, and the loser's
  // apply() throws *after* its record is durable — every later replay
  // of that record then fails and the server can never boot.
  auto sealed = seal_payload(std::move(payload));
  gate_.with(0, [&](Gate&) {
    if (validate) validate();
    journal_.append(type, sealed);
    apply();
  });
}

void DurableState::log_record(const std::string& key,
                              const StoredRecord& record,
                              const std::function<void()>& apply) {
  util::ByteWriter payload;
  payload.str(key);
  payload.u64(record.session_id);
  payload.blob(record.encrypted_result);
  append_and_apply(JournalRecordType::kRecordStored, payload.take(), apply);
}

void DurableState::log_user_enrolled(const std::string& user_id,
                                     const auth::CytoCode& code,
                                     const std::function<void()>& validate,
                                     const std::function<void()>& apply) {
  util::ByteWriter payload;
  payload.str(user_id);
  payload.blob(auth::serialize_code(code));
  append_and_apply(JournalRecordType::kUserEnrolled, payload.take(), validate,
                   apply);
}

void DurableState::log_provision(std::uint64_t device_id,
                                 std::span<const std::uint8_t> mac_key,
                                 const std::function<void()>& apply) {
  util::ByteWriter payload;
  payload.u64(device_id);
  payload.blob(mac_key);
  append_and_apply(JournalRecordType::kDeviceProvisioned, payload.take(),
                   apply);
}

void DurableState::log_enroll_device(std::uint64_t device_id,
                                     const std::function<void()>& apply) {
  util::ByteWriter payload;
  payload.u64(device_id);
  append_and_apply(JournalRecordType::kDeviceEnrolled, payload.take(), apply);
}

void DurableState::log_revoke(std::uint64_t device_id,
                              const std::function<void()>& apply) {
  util::ByteWriter payload;
  payload.u64(device_id);
  append_and_apply(JournalRecordType::kDeviceRevoked, payload.take(), apply);
}

void DurableState::log_master_rotated(std::uint32_t epoch,
                                      std::span<const std::uint8_t> master,
                                      const std::function<void()>& apply) {
  util::ByteWriter payload;
  payload.u32(epoch);
  payload.blob(master);
  append_and_apply(JournalRecordType::kMasterRotated, payload.take(), apply);
}

void DurableState::log_epoch_retired(std::uint32_t epoch,
                                     const std::function<void()>& apply) {
  util::ByteWriter payload;
  payload.u32(epoch);
  append_and_apply(JournalRecordType::kEpochRetired, payload.take(), apply);
}

void DurableState::log_handshake(std::uint64_t device_id, std::uint64_t seq) {
  util::ByteWriter payload;
  payload.u64(device_id);
  payload.u64(seq);
  append_and_apply(JournalRecordType::kHandshake, payload.take(), [] {});
}

void DurableState::compact(CloudServer& server) {
  gate_.with(0, [&](Gate&) {
    if (journal_.appended_since_compaction() == 0) return;
    util::crash_point("durability.compact.begin");
    const std::uint64_t lsn = journal_.last_lsn();
    write_snapshot(records_snapshot_path(), kSnapRecordMagic, lsn,
                   encode_records_body(server.records()));
    util::crash_point("durability.compact.records_written");
    write_snapshot(enroll_snapshot_path(), kSnapEnrollMagic, lsn,
                   encode_enrollments_body(server.enrollments()));
    write_snapshot(registry_snapshot_path(), kSnapRegistryMagic, lsn,
                   encode_registry_body(server.devices()));
    write_snapshot(sessions_snapshot_path(), kSnapSessionMagic, lsn,
                   encode_sessions_body(server.sessions()));
    util::crash_point("durability.compact.snapshots_written");
    journal_.truncate_all();
    util::crash_point("durability.compact.done");
  });
}

void DurableState::maybe_compact(CloudServer& server) {
  if (config_.compact_after_records == 0) return;
  if (journal_.appended_since_compaction() < config_.compact_after_records)
    return;
  compact(server);
}

}  // namespace medsen::cloud
