#pragma once
// Acquisition quality gate. Before spending analysis cycles (or worse,
// returning a peak report built on garbage), the cloud scores an uploaded
// acquisition: noise floor after detrending, residual drift, saturation /
// dropout detection, and per-channel consistency. Bad uploads — a
// disconnected dongle, an air bubble, clipped electronics — are rejected
// with a reason instead of silently producing a wrong diagnosis.
//
// Every channel is scored against every check: a multi-fault upload (one
// electrode open, another drifting) is fully characterized so the
// controller can plan recovery per channel. The summary `reason_code`
// stays the single highest-severity failure for wire compatibility.

#include <cstdint>
#include <string>
#include <vector>

#include "net/messages.h"
#include "util/time_series.h"

namespace medsen::cloud {

/// The QualityReason values are part of the wire protocol and live in
/// net/messages.h; the cloud-side alias keeps existing call sites.
using QualityReason = net::QualityReason;
using net::more_severe;
using net::to_string;

struct ChannelQuality {
  double noise_rms = 0.0;        ///< detrended high-frequency residual
  double drift_span = 0.0;       ///< max-min of the raw baseline
  double dropout_fraction = 0.0; ///< samples pinned at a constant value
  bool saturated = false;        ///< raw samples outside plausible range
  /// Highest-severity failing check for this channel (kNone = clean).
  QualityReason worst = QualityReason::kNone;
  /// Bitmask of every failing check: bit (1u << reason) set per failure.
  std::uint32_t failure_bits = 0;

  [[nodiscard]] bool failed(QualityReason reason) const {
    return (failure_bits &
            (1u << static_cast<std::uint8_t>(reason))) != 0;
  }
};

struct QualityReport {
  std::vector<ChannelQuality> channels;
  bool acceptable = true;
  /// Highest-severity failure across all channels and checks.
  QualityReason reason_code = QualityReason::kNone;
  std::string reason;  ///< describes the worst channel, empty when clean

  /// Per-channel worst reasons as raw bytes (telemetry / logs).
  [[nodiscard]] std::vector<std::uint8_t> channel_reason_bytes() const;

  /// Per-channel failure bitmasks for ErrorPayload::channel_reasons: one
  /// byte per channel, bit (1u << reason) set for every failing check.
  /// The full signature matters: a channel whose worst failure is
  /// saturation may ALSO carry the systemic drift of a bubble transit,
  /// and recovery planning must see both to blame the right component.
  [[nodiscard]] std::vector<std::uint8_t> channel_failure_bytes() const;
};

struct QualityConfig {
  double max_noise_rms = 2e-3;       ///< vs typical peak depth 3e-3..1.3e-2
  double max_drift_span = 0.2;       ///< relative baseline wander
  double max_dropout_fraction = 0.05;
  double min_plausible = 0.3;        ///< raw normalized amplitude bounds
  double max_plausible = 1.7;
};

/// Score an acquisition. Never throws on bad data — that is the point.
QualityReport assess_quality(const util::MultiChannelSeries& series,
                             const QualityConfig& config = {});

}  // namespace medsen::cloud
