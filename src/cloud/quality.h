#pragma once
// Acquisition quality gate. Before spending analysis cycles (or worse,
// returning a peak report built on garbage), the cloud scores an uploaded
// acquisition: noise floor after detrending, residual drift, saturation /
// dropout detection, and per-channel consistency. Bad uploads — a
// disconnected dongle, an air bubble, clipped electronics — are rejected
// with a reason instead of silently producing a wrong diagnosis.

#include <cstdint>
#include <string>
#include <vector>

#include "util/time_series.h"

namespace medsen::cloud {

struct ChannelQuality {
  double noise_rms = 0.0;        ///< detrended high-frequency residual
  double drift_span = 0.0;       ///< max-min of the raw baseline
  double dropout_fraction = 0.0; ///< samples pinned at a constant value
  bool saturated = false;        ///< raw samples outside plausible range
};

/// Machine-readable failure category (first failing check wins). The
/// numeric values travel on the wire as the ErrorPayload subcode of a
/// quality-rejected upload, so they are part of the protocol.
enum class QualityReason : std::uint8_t {
  kNone = 0,          ///< acceptable
  kNoChannels = 1,    ///< acquisition carries no channels at all
  kEmptyChannel = 2,  ///< a channel has zero samples
  kSaturated = 3,     ///< implausible/clipped samples
  kDropout = 4,       ///< pinned (stuck-ADC) samples
  kNoiseFloor = 5,    ///< broadband noise above threshold
  kDrift = 6,         ///< baseline wander out of range
};

[[nodiscard]] const char* to_string(QualityReason reason);

struct QualityReport {
  std::vector<ChannelQuality> channels;
  bool acceptable = true;
  QualityReason reason_code = QualityReason::kNone;  ///< first failure
  std::string reason;  ///< first failure, empty when acceptable
};

struct QualityConfig {
  double max_noise_rms = 2e-3;       ///< vs typical peak depth 3e-3..1.3e-2
  double max_drift_span = 0.2;       ///< relative baseline wander
  double max_dropout_fraction = 0.05;
  double min_plausible = 0.3;        ///< raw normalized amplitude bounds
  double max_plausible = 1.7;
};

/// Score an acquisition. Never throws on bad data — that is the point.
QualityReport assess_quality(const util::MultiChannelSeries& series,
                             const QualityConfig& config = {});

}  // namespace medsen::cloud
