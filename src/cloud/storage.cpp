#include "cloud/storage.h"

namespace medsen::cloud {

void RecordStore::store(const auth::CytoCode& code, StoredRecord record) {
  store_[code.to_string()].push_back(std::move(record));
}

std::vector<StoredRecord> RecordStore::fetch(
    const auth::CytoCode& code) const {
  const auto it = store_.find(code.to_string());
  if (it == store_.end()) return {};
  return it->second;
}

std::optional<StoredRecord> RecordStore::latest(
    const auth::CytoCode& code) const {
  const auto it = store_.find(code.to_string());
  if (it == store_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

std::size_t RecordStore::record_count() const {
  std::size_t n = 0;
  for (const auto& [key, records] : store_) n += records.size();
  return n;
}

}  // namespace medsen::cloud
