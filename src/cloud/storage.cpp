#include "cloud/storage.h"

namespace medsen::cloud {

void RecordStore::store(const auth::CytoCode& code, StoredRecord record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  store_[code.to_string()].push_back(std::move(record));
}

std::vector<StoredRecord> RecordStore::fetch(
    const auth::CytoCode& code) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = store_.find(code.to_string());
  if (it == store_.end()) return {};
  return it->second;
}

std::optional<StoredRecord> RecordStore::latest(
    const auth::CytoCode& code) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = store_.find(code.to_string());
  if (it == store_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

std::size_t RecordStore::identifier_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return store_.size();
}

std::size_t RecordStore::record_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [key, records] : store_) n += records.size();
  return n;
}

std::map<std::string, std::vector<StoredRecord>> RecordStore::snapshot()
    const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return store_;
}

void RecordStore::visit(
    const std::function<void(const std::string&,
                             const std::vector<StoredRecord>&)>& visitor)
    const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, records] : store_) visitor(key, records);
}

void RecordStore::restore(std::string key,
                          std::vector<StoredRecord> records) {
  const std::lock_guard<std::mutex> lock(mutex_);
  store_[std::move(key)] = std::move(records);
}

}  // namespace medsen::cloud
