#include "cloud/storage.h"

#include <utility>

namespace medsen::cloud {

RecordStore::RecordStore(
    std::map<std::string, std::vector<StoredRecord>> entries,
    std::size_t shards)
    : shards_(shards) {
  for (auto& [key, records] : entries)
    restore(key, std::move(records));
}

void RecordStore::store(const auth::CytoCode& code, StoredRecord record) {
  const std::string key = code.to_string();
  shards_.with(route(key), [&](Entries& entries) {
    entries[key].push_back(std::move(record));
  });
}

std::vector<StoredRecord> RecordStore::fetch(
    const auth::CytoCode& code) const {
  const std::string key = code.to_string();
  return shards_.with(
      route(key), [&](const Entries& entries) -> std::vector<StoredRecord> {
        const auto it = entries.find(key);
        if (it == entries.end()) return {};
        return it->second;
      });
}

std::optional<StoredRecord> RecordStore::latest(
    const auth::CytoCode& code) const {
  const std::string key = code.to_string();
  return shards_.with(
      route(key), [&](const Entries& entries) -> std::optional<StoredRecord> {
        const auto it = entries.find(key);
        if (it == entries.end() || it->second.empty()) return std::nullopt;
        return it->second.back();
      });
}

std::size_t RecordStore::identifier_count() const {
  std::size_t total = 0;
  shards_.for_each_shard(
      [&](const Entries& entries) { total += entries.size(); });
  return total;
}

std::size_t RecordStore::record_count() const {
  std::size_t total = 0;
  shards_.for_each_shard([&](const Entries& entries) {
    for (const auto& [key, records] : entries) total += records.size();
  });
  return total;
}

std::map<std::string, std::vector<StoredRecord>> RecordStore::snapshot()
    const {
  Entries merged;
  shards_.for_each_shard([&](const Entries& entries) {
    for (const auto& [key, records] : entries) merged[key] = records;
  });
  return merged;
}

void RecordStore::visit(
    const std::function<void(const std::string&,
                             const std::vector<StoredRecord>&)>& visitor)
    const {
  const auto merged = snapshot();
  for (const auto& [key, records] : merged) visitor(key, records);
}

void RecordStore::append(std::string key, StoredRecord record) {
  const std::uint64_t route_key = route(key);
  shards_.with(route_key, [&](Entries& entries) {
    entries[std::move(key)].push_back(std::move(record));
  });
}

void RecordStore::restore(std::string key,
                          std::vector<StoredRecord> records) {
  const std::uint64_t route_key = route(key);
  shards_.with(route_key, [&](Entries& entries) {
    entries[std::move(key)] = std::move(records);
  });
}

}  // namespace medsen::cloud
