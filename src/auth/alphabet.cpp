#include "auth/alphabet.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace medsen::auth {

std::vector<sim::ParticleType> default_bead_types() {
  std::vector<sim::ParticleType> types;
  types.reserve(2);
  types.push_back(sim::ParticleType::kBead358);
  types.push_back(sim::ParticleType::kBead780);
  return types;
}

std::uint64_t CytoAlphabet::space_size() const {
  std::uint64_t size = 1;
  for (std::size_t i = 0; i < characters(); ++i) size *= levels();
  return size;
}

double CytoAlphabet::entropy_bits() const {
  return static_cast<double>(characters()) *
         std::log2(static_cast<double>(levels()));
}

std::uint8_t CytoAlphabet::nearest_level(double concentration_per_ul) const {
  std::uint8_t best = 0;
  double best_err = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < concentration_levels_per_ul.size(); ++i) {
    const double err =
        std::fabs(concentration_levels_per_ul[i] - concentration_per_ul);
    if (err < best_err) {
      best_err = err;
      best = static_cast<std::uint8_t>(i);
    }
  }
  return best;
}

double CytoAlphabet::min_level_separation() const {
  double min_gap = std::numeric_limits<double>::max();
  for (std::size_t i = 1; i < concentration_levels_per_ul.size(); ++i)
    min_gap = std::min(min_gap, concentration_levels_per_ul[i] -
                                    concentration_levels_per_ul[i - 1]);
  return min_gap;
}

void CytoAlphabet::validate() const {
  if (bead_types.empty())
    throw std::invalid_argument("CytoAlphabet: no bead types");
  if (levels() < 2)
    throw std::invalid_argument("CytoAlphabet: need >= 2 levels");
  for (std::size_t i = 1; i < concentration_levels_per_ul.size(); ++i)
    if (concentration_levels_per_ul[i] <= concentration_levels_per_ul[i - 1])
      throw std::invalid_argument(
          "CytoAlphabet: levels must be strictly increasing");
  for (auto type : bead_types)
    if (type == sim::ParticleType::kBloodCell)
      throw std::invalid_argument(
          "CytoAlphabet: blood cells cannot be password characters");
}

}  // namespace medsen::auth
