#include "auth/identifier.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/serialize.h"

namespace medsen::auth {

std::string CytoCode::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (i) out += '-';
    out += std::to_string(static_cast<int>(levels[i]));
  }
  return out;
}

std::vector<sim::MixtureComponent> encode_mixture(const CytoAlphabet& alphabet,
                                                  const CytoCode& code) {
  if (code.levels.size() != alphabet.characters())
    throw std::invalid_argument("encode_mixture: code/alphabet mismatch");
  std::vector<sim::MixtureComponent> mixture;
  for (std::size_t i = 0; i < code.levels.size(); ++i) {
    const std::uint8_t level = code.levels[i];
    if (level >= alphabet.levels())
      throw std::invalid_argument("encode_mixture: level out of range");
    const double conc = alphabet.concentration_levels_per_ul[level];
    if (conc <= 0.0) continue;
    mixture.push_back({alphabet.bead_types[i], conc});
  }
  return mixture;
}

CytoCode decode_census(const CytoAlphabet& alphabet,
                       const BeadCensus& census) {
  if (census.counts.size() != alphabet.characters())
    throw std::invalid_argument("decode_census: census/alphabet mismatch");
  CytoCode code;
  code.levels.reserve(alphabet.characters());
  for (std::size_t i = 0; i < alphabet.characters(); ++i)
    code.levels.push_back(alphabet.nearest_level(census.concentration(i)));
  return code;
}

double census_distance(const CytoAlphabet& alphabet, const CytoCode& code,
                       const BeadCensus& census) {
  if (code.levels.size() != alphabet.characters() ||
      census.counts.size() != alphabet.characters())
    throw std::invalid_argument("census_distance: size mismatch");
  const auto& levels = alphabet.concentration_levels_per_ul;
  double worst = 0.0;
  for (std::size_t i = 0; i < alphabet.characters(); ++i) {
    const std::size_t level = code.levels[i];
    const double expected = levels[level];
    // Half the gap to the nearest adjacent level = the decode margin.
    double gap = std::numeric_limits<double>::max();
    if (level > 0) gap = std::min(gap, expected - levels[level - 1]);
    if (level + 1 < levels.size())
      gap = std::min(gap, levels[level + 1] - expected);
    const double margin = gap / 2.0;
    const double measured = census.concentration(i);
    worst = std::max(worst, std::fabs(measured - expected) / margin);
  }
  return worst;
}

std::size_t hamming_distance(const CytoCode& a, const CytoCode& b) {
  if (a.levels.size() != b.levels.size())
    throw std::invalid_argument("hamming_distance: size mismatch");
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.levels.size(); ++i)
    if (a.levels[i] != b.levels[i]) ++d;
  return d;
}

CytoCode random_code(const CytoAlphabet& alphabet, crypto::ChaChaRng& rng) {
  CytoCode code;
  code.levels.resize(alphabet.characters());
  do {
    for (auto& level : code.levels)
      level = static_cast<std::uint8_t>(
          rng.uniform(static_cast<std::uint32_t>(alphabet.levels())));
  } while ([&] {
    for (auto level : code.levels)
      if (level != 0) return false;
    return true;
  }());
  return code;
}

std::vector<CytoCode> enumerate_codes(const CytoAlphabet& alphabet) {
  std::vector<CytoCode> all;
  CytoCode current;
  current.levels.assign(alphabet.characters(), 0);
  const std::size_t levels = alphabet.levels();
  for (;;) {
    all.push_back(current);
    // Increment like an odometer.
    std::size_t pos = 0;
    while (pos < current.levels.size()) {
      if (++current.levels[pos] < levels) break;
      current.levels[pos] = 0;
      ++pos;
    }
    if (pos == current.levels.size()) break;
  }
  return all;
}

std::vector<std::uint8_t> serialize_code(const CytoCode& code) {
  util::ByteWriter out;
  out.u32(static_cast<std::uint32_t>(code.levels.size()));
  for (auto level : code.levels) out.u8(level);
  return out.take();
}

CytoCode deserialize_code(std::span<const std::uint8_t> bytes) {
  util::ByteReader in(bytes);
  CytoCode code;
  const std::uint32_t n = in.count_u32(1);
  code.levels.resize(n);
  for (auto& level : code.levels) level = in.u8();
  in.expect_done("CytoCode");
  return code;
}

}  // namespace medsen::auth
