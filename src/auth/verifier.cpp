#include "auth/verifier.h"

#include <stdexcept>

namespace medsen::auth {

Verifier::Verifier(CytoAlphabet alphabet, ParticleClassifier classifier,
                   VerifierConfig config)
    : alphabet_(std::move(alphabet)),
      classifier_(std::move(classifier)),
      config_(config) {
  alphabet_.validate();
}

BeadCensus Verifier::census_from_peaks(
    std::span<const core::DecodedPeak> peaks, double volume_ul,
    double duration_s) const {
  BeadCensus census;
  census.counts.assign(alphabet_.characters(), 0.0);
  census.volume_ul = volume_ul;
  double width_sum = 0.0;
  for (const auto& peak : peaks) {
    width_sum += peak.width_s;
    const auto features = ParticleClassifier::features_of(peak);
    if (classifier_.margin(features) < config_.min_margin) continue;
    const sim::ParticleType type = classifier_.classify(features);
    for (std::size_t i = 0; i < alphabet_.characters(); ++i) {
      if (alphabet_.bead_types[i] == type) {
        census.counts[i] += 1.0;
        break;
      }
    }
    // Blood cells (and any type outside the alphabet) are simply not part
    // of the census.
  }
  if (config_.dead_time_correction && duration_s > 0.0 && !peaks.empty()) {
    // Coincidence losses apply to the whole particle stream; scale each
    // type's count by the common non-paralyzable correction factor.
    const double mean_width = width_sum / static_cast<double>(peaks.size());
    const double observed = static_cast<double>(peaks.size());
    const double corrected =
        dsp::dead_time_corrected_count(observed, duration_s, mean_width);
    const double factor = corrected / observed;
    for (double& count : census.counts) count *= factor;
  }
  return census;
}

AuthResult Verifier::authenticate(const BeadCensus& census,
                                  const EnrollmentDatabase& db) const {
  AuthResult result;
  result.census = census;
  result.decoded_code = decode_census(alphabet_, census);
  const auto match = db.match_census(census);
  if (!match) return result;
  result.distance = match->distance;
  if (match->distance <= config_.max_distance) {
    result.authenticated = true;
    result.user_id = match->record.user_id;
  }
  return result;
}

AuthResult Verifier::authenticate_peaks(
    std::span<const core::DecodedPeak> peaks, double volume_ul,
    const EnrollmentDatabase& db, double duration_s) const {
  return authenticate(census_from_peaks(peaks, volume_ul, duration_s), db);
}

bool Verifier::verify_integrity(const BeadCensus& census,
                                const CytoCode& stored_code) const {
  return decode_census(alphabet_, census) == stored_code;
}

}  // namespace medsen::auth
