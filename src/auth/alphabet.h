#pragma once
// The cyto-coded password alphabet (paper Section V / VII-C): a password
// "character" is a bead type; its "value" is the concentration level of
// that bead type mixed into the patient's sample. The alphabet fixes the
// admissible types and the quantized concentration levels, spaced far
// enough apart that the sensor's count noise cannot confuse adjacent
// levels (the collision requirement of Section VI-B).

#include <cstdint>
#include <vector>

#include "sim/particle.h"

namespace medsen::auth {

/// The paper's two-bead default character set, out of line because a
/// brace-init default member of a byte-sized enum vector trips GCC 12's
/// -Wmaybe-uninitialized false positive in every including TU at -O2.
[[nodiscard]] std::vector<sim::ParticleType> default_bead_types();

struct CytoAlphabet {
  /// Bead types usable as password characters (blood cells are never part
  /// of a password; they are the diagnostic payload).
  std::vector<sim::ParticleType> bead_types = default_bead_types();
  /// Quantized concentration levels (beads/uL). Level 0 conventionally
  /// means "type absent". The paper observes lower concentrations have
  /// less variance, so levels are denser at the low end.
  std::vector<double> concentration_levels_per_ul = {0.0, 150.0, 300.0,
                                                     500.0, 750.0};

  [[nodiscard]] std::size_t levels() const {
    return concentration_levels_per_ul.size();
  }
  [[nodiscard]] std::size_t characters() const { return bead_types.size(); }

  /// Password space size = levels ^ characters.
  [[nodiscard]] std::uint64_t space_size() const;
  /// Entropy in bits = characters * log2(levels).
  [[nodiscard]] double entropy_bits() const;

  /// Index of the level nearest to a measured concentration.
  [[nodiscard]] std::uint8_t nearest_level(double concentration_per_ul) const;

  /// Smallest gap between adjacent levels (beads/uL) — the resolution the
  /// sensor must meet to avoid identifier collisions.
  [[nodiscard]] double min_level_separation() const;

  /// Validate: >= 1 type, >= 2 levels, strictly increasing levels.
  void validate() const;
};

}  // namespace medsen::auth
