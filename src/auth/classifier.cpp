#include "auth/classifier.h"

#include <cmath>
#include <stdexcept>

namespace medsen::auth {

dsp::LabeledPoint ParticleClassifier::synth_example(
    sim::ParticleType type, const ClassifierConfig& config,
    crypto::ChaChaRng& rng) {
  const auto& props = sim::properties(type);
  sim::Particle particle;
  particle.type = type;
  particle.diameter_um =
      std::max(0.5, rng.normal(props.diameter_um_mean, props.diameter_um_sigma));
  dsp::LabeledPoint point;
  point.label = static_cast<std::size_t>(type);
  point.features.reserve(config.carriers_hz.size());
  for (double carrier : config.carriers_hz) {
    const double noise =
        std::max(0.1, rng.normal(1.0, config.measurement_noise));
    point.features.push_back(sim::peak_contrast(particle, carrier) * noise);
  }
  return point;
}

dsp::FeatureVector ParticleClassifier::transform(
    const dsp::FeatureVector& raw_amplitudes) {
  constexpr double kEps = 1e-9;
  // Shape (frequency-roll-off) separates blood cells from beads of any
  // size; weight it above the size term so a small blood cell is never
  // mistaken for a large bead.
  constexpr double kRatioWeight = 2.0;
  dsp::FeatureVector out;
  out.reserve(raw_amplitudes.size());
  const double ref = std::max(
      raw_amplitudes.empty() ? kEps : raw_amplitudes.front(), kEps);
  out.push_back(std::log10(ref));
  for (std::size_t i = 1; i < raw_amplitudes.size(); ++i)
    out.push_back(kRatioWeight * raw_amplitudes[i] / ref);
  return out;
}

ParticleClassifier ParticleClassifier::train(const ClassifierConfig& config) {
  if (config.carriers_hz.empty())
    throw std::invalid_argument("ParticleClassifier: no carriers");
  crypto::ChaChaRng rng(config.seed);
  std::vector<dsp::LabeledPoint> data;
  data.reserve(config.train_per_class * sim::kParticleTypeCount);
  for (std::size_t t = 0; t < sim::kParticleTypeCount; ++t) {
    for (std::size_t i = 0; i < config.train_per_class; ++i) {
      auto example = synth_example(static_cast<sim::ParticleType>(t), config,
                                   rng);
      example.features = transform(example.features);
      data.push_back(std::move(example));
    }
  }
  ParticleClassifier classifier;
  classifier.config_ = config;
  classifier.model_.fit(data, sim::kParticleTypeCount);
  return classifier;
}

sim::ParticleType ParticleClassifier::classify(
    const dsp::FeatureVector& features) const {
  return static_cast<sim::ParticleType>(model_.predict(transform(features)));
}

double ParticleClassifier::margin(const dsp::FeatureVector& features) const {
  return model_.margin(transform(features));
}

dsp::FeatureVector ParticleClassifier::features_of(
    const core::DecodedPeak& peak) {
  return peak.amplitudes;
}

}  // namespace medsen::auth
