#include "auth/collision.h"

#include <cmath>

namespace medsen::auth {

double normal_tail(double x) {
  return 0.5 * std::erfc(x / std::sqrt(2.0));
}

CollisionAnalysis analyze_collisions(const CytoAlphabet& alphabet,
                                     const CollisionModel& model) {
  alphabet.validate();
  CollisionAnalysis out;
  out.nominal_entropy_bits = alphabet.entropy_bits();

  // Per-level confusion: measured concentration c_hat = N / (V * eff)
  // with N ~ Poisson(c * V * eff). A level decodes wrongly when c_hat
  // crosses the midpoint to an adjacent level. Normal approximation:
  // sigma_c = sqrt(c * V * eff) / (V * eff) = sqrt(c / (V * eff)).
  const auto& levels = alphabet.concentration_levels_per_ul;
  const double ve = model.volume_ul * model.capture_efficiency;
  // Classifier error converts a fraction of the other types' beads into
  // spurious counts of this type; model it as a concentration floor so
  // even the "absent" level has measurement variance.
  const double spurious_c = model.classifier_error * levels.back();
  double worst = 0.0;
  double mean_confusion = 0.0;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const double c = levels[i];
    const double sigma = std::sqrt(std::max(c, spurious_c) / ve);
    double p = 0.0;
    if (sigma > 0.0) {
      if (i > 0) p += normal_tail((c - levels[i - 1]) / 2.0 / sigma);
      if (i + 1 < levels.size())
        p += normal_tail((levels[i + 1] - c) / 2.0 / sigma);
    }
    p = std::min(1.0, p);
    worst = std::max(worst, p);
    mean_confusion += p;
  }
  mean_confusion /= static_cast<double>(levels.size());

  out.per_character_confusion = worst;
  out.code_error_probability =
      1.0 - std::pow(1.0 - worst, static_cast<double>(alphabet.characters()));

  // Effective entropy: each character's usable level count shrinks by the
  // expected number of confusable levels.
  const double usable_levels = std::max(
      1.0, static_cast<double>(alphabet.levels()) * (1.0 - mean_confusion));
  out.effective_entropy_bits =
      static_cast<double>(alphabet.characters()) * std::log2(usable_levels);

  out.random_collision_probability =
      1.0 / static_cast<double>(alphabet.space_size());
  return out;
}

double birthday_collision_probability(const CytoAlphabet& alphabet,
                                      std::uint64_t users) {
  const double space = static_cast<double>(alphabet.space_size());
  if (static_cast<double>(users) >= space) return 1.0;
  // P(no collision) = prod_{k=0}^{users-1} (1 - k/space).
  double log_no_collision = 0.0;
  for (std::uint64_t k = 0; k < users; ++k)
    log_no_collision += std::log1p(-static_cast<double>(k) / space);
  return 1.0 - std::exp(log_no_collision);
}

}  // namespace medsen::auth
