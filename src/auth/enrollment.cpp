#include "auth/enrollment.h"

#include <algorithm>
#include <stdexcept>

namespace medsen::auth {

EnrollmentDatabase::EnrollmentDatabase(CytoAlphabet alphabet)
    : alphabet_(std::move(alphabet)) {
  alphabet_.validate();
}

void EnrollmentDatabase::check_enrollable(const std::string& user_id,
                                          const CytoCode& code) const {
  if (code.levels.size() != alphabet_.characters())
    throw std::invalid_argument("enroll: code does not match alphabet");
  for (auto level : code.levels)
    if (level >= alphabet_.levels())
      throw std::invalid_argument("enroll: level out of range");
  if (std::all_of(code.levels.begin(), code.levels.end(),
                  [](std::uint8_t l) { return l == 0; }))
    throw std::invalid_argument("enroll: all-absent code is unusable");
  for (const auto& r : records_) {
    if (r.code == code)
      throw std::invalid_argument("enroll: code already enrolled");
    if (r.user_id == user_id)
      throw std::invalid_argument("enroll: user already enrolled");
  }
}

void EnrollmentDatabase::enroll(const std::string& user_id,
                                const CytoCode& code) {
  check_enrollable(user_id, code);
  records_.push_back({user_id, code});
}

CytoCode EnrollmentDatabase::enroll_random(const std::string& user_id,
                                           crypto::ChaChaRng& rng) {
  if (records_.size() >= alphabet_.space_size() - 1)
    throw std::runtime_error("enroll_random: password space exhausted");
  for (int attempt = 0; attempt < 100000; ++attempt) {
    const CytoCode code = random_code(alphabet_, rng);
    const bool taken = std::any_of(
        records_.begin(), records_.end(),
        [&](const UserRecord& r) { return r.code == code; });
    if (taken) continue;
    enroll(user_id, code);
    return code;
  }
  throw std::runtime_error("enroll_random: could not find a free code");
}

std::optional<std::string> EnrollmentDatabase::lookup(
    const CytoCode& code) const {
  for (const auto& r : records_)
    if (r.code == code) return r.user_id;
  return std::nullopt;
}

std::optional<EnrollmentDatabase::Match> EnrollmentDatabase::match_census(
    const BeadCensus& census) const {
  std::optional<Match> best;
  for (const auto& r : records_) {
    const double d = census_distance(alphabet_, r.code, census);
    if (!best || d < best->distance) best = Match{r, d};
  }
  return best;
}

bool EnrollmentDatabase::remove(const std::string& user_id) {
  const auto it = std::remove_if(
      records_.begin(), records_.end(),
      [&](const UserRecord& r) { return r.user_id == user_id; });
  const bool removed = it != records_.end();
  records_.erase(it, records_.end());
  return removed;
}

}  // namespace medsen::auth
