#pragma once
// Server-side enrollment database: maps cyto-codes to user identities.
// The cloud stores analysis outcomes keyed by the (decoded) identifier —
// it never learns any biometric, because a cyto-code carries none (paper
// Section V). Enrollment rejects duplicate codes, enforcing the
// collision-free identifier dictionary the paper requires.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "auth/alphabet.h"
#include "auth/identifier.h"

namespace medsen::auth {

struct UserRecord {
  std::string user_id;
  CytoCode code;
};

class EnrollmentDatabase {
 public:
  explicit EnrollmentDatabase(CytoAlphabet alphabet);

  /// Enroll a user with a given code. Throws std::invalid_argument if the
  /// code is malformed, all-zero, or already taken by another user.
  void enroll(const std::string& user_id, const CytoCode& code);

  /// The validation half of enroll(), with no mutation: throws exactly
  /// when enroll() would. Write-ahead callers (cloud durability) check
  /// here first so an enrollment that cannot apply is never journaled.
  void check_enrollable(const std::string& user_id, const CytoCode& code) const;

  /// Enroll with a freshly generated collision-free random code.
  CytoCode enroll_random(const std::string& user_id, crypto::ChaChaRng& rng);

  /// Exact-code lookup.
  [[nodiscard]] std::optional<std::string> lookup(const CytoCode& code) const;

  /// Closest enrolled record to a measured census, with its distance in
  /// level-separation units. nullopt when the database is empty.
  struct Match {
    UserRecord record;
    double distance = 0.0;
  };
  [[nodiscard]] std::optional<Match> match_census(
      const BeadCensus& census) const;

  [[nodiscard]] bool remove(const std::string& user_id);
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] const CytoAlphabet& alphabet() const { return alphabet_; }
  [[nodiscard]] std::span<const UserRecord> records() const {
    return records_;
  }

 private:
  CytoAlphabet alphabet_;
  std::vector<UserRecord> records_;
};

}  // namespace medsen::auth
