#pragma once
// Cyto-coded identifiers: a patient's password is a vector of
// concentration levels, one per bead type in the alphabet. Encoding turns
// the code into the bead mixture added to the sample pipette; decoding
// turns a measured bead census back into the nearest code.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "auth/alphabet.h"
#include "crypto/chacha20.h"
#include "sim/particle.h"

namespace medsen::auth {

/// A concrete cyto-code: level index per alphabet character.
struct CytoCode {
  std::vector<std::uint8_t> levels;  ///< aligned with alphabet.bead_types

  bool operator==(const CytoCode& other) const = default;

  /// Compact display form, e.g. "2-0-4".
  [[nodiscard]] std::string to_string() const;
};

/// Bead counts per type measured from a sample (classification output).
struct BeadCensus {
  /// counts[i] = beads of alphabet.bead_types[i] observed.
  std::vector<double> counts;
  double volume_ul = 0.0;  ///< pumped volume, to convert to concentration

  [[nodiscard]] double concentration(std::size_t type_index) const {
    return volume_ul > 0.0 ? counts.at(type_index) / volume_ul : 0.0;
  }
};

/// Encode: the bead mixture (concentrations) realizing a code. These
/// components are added on top of the blood sample's own cells.
std::vector<sim::MixtureComponent> encode_mixture(const CytoAlphabet& alphabet,
                                                  const CytoCode& code);

/// Decode a census to the nearest code (per-character nearest level).
CytoCode decode_census(const CytoAlphabet& alphabet,
                       const BeadCensus& census);

/// Distance between a census and a code in units of the decode margin:
/// for each character, |measured - level| divided by half the gap to that
/// level's nearest neighbouring level; the maximum over characters is
/// returned. < 1.0 means every character still decodes to its own level;
/// the verifier accepts below a stricter threshold (default 0.9).
double census_distance(const CytoAlphabet& alphabet, const CytoCode& code,
                       const BeadCensus& census);

/// Number of characters that differ between two codes (Hamming distance).
std::size_t hamming_distance(const CytoCode& a, const CytoCode& b);

/// Random code with at least one non-zero character (an all-absent
/// password is unusable).
CytoCode random_code(const CytoAlphabet& alphabet, crypto::ChaChaRng& rng);

/// All codes of the alphabet in lexicographic order (for collision
/// analysis on small alphabets).
std::vector<CytoCode> enumerate_codes(const CytoAlphabet& alphabet);

/// Serialization for enrollment storage.
std::vector<std::uint8_t> serialize_code(const CytoCode& code);
CytoCode deserialize_code(std::span<const std::uint8_t> bytes);

}  // namespace medsen::auth
