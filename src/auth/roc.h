#pragma once
// ROC analysis for the cyto-coded authentication system: given census
// distances observed for genuine attempts and for impostor attempts,
// sweep the acceptance threshold and report FAR/FRR pairs and the equal
// error rate — the standard way to pick VerifierConfig::max_distance for
// a deployment's security/usability trade.

#include <vector>

namespace medsen::auth {

struct RocPoint {
  double threshold = 0.0;
  double far = 0.0;  ///< impostors accepted / impostor attempts
  double frr = 0.0;  ///< genuines rejected / genuine attempts
};

/// One ROC point at a fixed threshold (accept when distance <= threshold).
RocPoint roc_at(const std::vector<double>& genuine_distances,
                const std::vector<double>& impostor_distances,
                double threshold);

/// Full curve: one point per candidate threshold (the union of observed
/// distances plus 0), sorted by threshold.
std::vector<RocPoint> roc_curve(const std::vector<double>& genuine_distances,
                                const std::vector<double>& impostor_distances);

/// Equal error rate: the FAR=FRR crossing, linearly interpolated between
/// the two adjacent curve points.
double equal_error_rate(const std::vector<double>& genuine_distances,
                        const std::vector<double>& impostor_distances);

/// Smallest threshold whose FRR is <= the target while minimizing FAR —
/// the deployment helper ("I can tolerate rejecting X% of patients").
double threshold_for_frr(const std::vector<double>& genuine_distances,
                         double max_frr);

}  // namespace medsen::auth
