#pragma once
// Server-side verification: classify decoded peaks into particle types,
// build the bead census, decode it to a cyto-code, and match it against
// the enrollment database. Also provides the integrity check from the
// paper's Section V: a stored ciphertext is only valid for a patient if
// the census recovered from it matches the identifier used to fetch it.

#include <optional>
#include <span>
#include <string>

#include "auth/classifier.h"
#include "dsp/deadtime.h"
#include "auth/enrollment.h"
#include "core/decryptor.h"

namespace medsen::auth {

struct AuthResult {
  bool authenticated = false;
  std::string user_id;          ///< set when authenticated
  CytoCode decoded_code;        ///< code decoded from the census
  double distance = 0.0;        ///< census distance to the matched code
  BeadCensus census;
};

struct VerifierConfig {
  /// Accept when the census distance (units of the per-level decode
  /// margin; 1.0 = the nearest-level decoding boundary) stays below this.
  double max_distance = 0.9;
  /// Peaks with classifier margin below this are discarded as ambiguous.
  double min_margin = 0.05;
  /// Apply the non-paralyzable dead-time correction to census counts when
  /// the acquisition duration is known (coincidence losses grow with
  /// concentration — the paper's Section VII-C resolution observation).
  bool dead_time_correction = true;
};

class Verifier {
 public:
  Verifier(CytoAlphabet alphabet, ParticleClassifier classifier,
           VerifierConfig config = {});

  /// Build a bead census from decoded peaks (plaintext auth pass). Pass
  /// the acquisition duration to enable dead-time correction; 0 skips it.
  [[nodiscard]] BeadCensus census_from_peaks(
      std::span<const core::DecodedPeak> peaks, double volume_ul,
      double duration_s = 0.0) const;

  /// Authenticate a census against the database.
  [[nodiscard]] AuthResult authenticate(const BeadCensus& census,
                                        const EnrollmentDatabase& db) const;

  /// Convenience: peaks -> census -> authenticate. `duration_s` enables
  /// dead-time correction when nonzero.
  [[nodiscard]] AuthResult authenticate_peaks(
      std::span<const core::DecodedPeak> peaks, double volume_ul,
      const EnrollmentDatabase& db, double duration_s = 0.0) const;

  /// Integrity check (Section V): does this census still decode to the
  /// identifier the record was stored under?
  [[nodiscard]] bool verify_integrity(const BeadCensus& census,
                                      const CytoCode& stored_code) const;

  [[nodiscard]] const CytoAlphabet& alphabet() const { return alphabet_; }
  [[nodiscard]] const ParticleClassifier& classifier() const {
    return classifier_;
  }

 private:
  CytoAlphabet alphabet_;
  ParticleClassifier classifier_;
  VerifierConfig config_;
};

}  // namespace medsen::auth
