#pragma once
// Collision and entropy analysis of the cyto-coded password space
// (paper Sections V, VI-B, VII-C). Measured bead counts are Poisson
// distributed around concentration x volume x capture-efficiency, so
// adjacent concentration levels can be confused; this module quantifies
// the per-character confusion probability, the code-level error rate, and
// the effective password entropy — the engineering trade the paper
// describes when it picks bead types and concentration levels.

#include <cstdint>

#include "auth/alphabet.h"

namespace medsen::auth {

struct CollisionModel {
  double volume_ul = 5.0;           ///< pumped sample volume
  double capture_efficiency = 0.9;  ///< fraction of beads actually counted
                                    ///< (sedimentation/adsorption losses)
  double classifier_error = 0.01;   ///< per-bead type misclassification
};

struct CollisionAnalysis {
  /// Worst-case probability that one character decodes to a wrong level.
  double per_character_confusion = 0.0;
  /// Probability a full code decodes incorrectly (any character wrong).
  double code_error_probability = 0.0;
  /// Nominal entropy of the alphabet in bits.
  double nominal_entropy_bits = 0.0;
  /// Entropy after discounting confusable level pairs.
  double effective_entropy_bits = 0.0;
  /// Probability that two independently drawn random codes collide.
  double random_collision_probability = 0.0;
};

/// Analyze an alphabet under a measurement model.
CollisionAnalysis analyze_collisions(const CytoAlphabet& alphabet,
                                     const CollisionModel& model);

/// Probability that at least two of `users` independently drawn random
/// codes collide (birthday bound over the alphabet's space).
double birthday_collision_probability(const CytoAlphabet& alphabet,
                                      std::uint64_t users);

/// Standard normal upper-tail probability Q(x) = P(Z > x).
double normal_tail(double x);

}  // namespace medsen::auth
