#include "auth/roc.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace medsen::auth {

RocPoint roc_at(const std::vector<double>& genuine_distances,
                const std::vector<double>& impostor_distances,
                double threshold) {
  RocPoint point;
  point.threshold = threshold;
  if (!impostor_distances.empty()) {
    std::size_t accepted = 0;
    for (double d : impostor_distances)
      if (d <= threshold) ++accepted;
    point.far = static_cast<double>(accepted) /
                static_cast<double>(impostor_distances.size());
  }
  if (!genuine_distances.empty()) {
    std::size_t rejected = 0;
    for (double d : genuine_distances)
      if (d > threshold) ++rejected;
    point.frr = static_cast<double>(rejected) /
                static_cast<double>(genuine_distances.size());
  }
  return point;
}

std::vector<RocPoint> roc_curve(
    const std::vector<double>& genuine_distances,
    const std::vector<double>& impostor_distances) {
  std::vector<double> thresholds = {0.0};
  thresholds.insert(thresholds.end(), genuine_distances.begin(),
                    genuine_distances.end());
  thresholds.insert(thresholds.end(), impostor_distances.begin(),
                    impostor_distances.end());
  std::sort(thresholds.begin(), thresholds.end());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());
  std::vector<RocPoint> curve;
  curve.reserve(thresholds.size());
  for (double t : thresholds)
    curve.push_back(roc_at(genuine_distances, impostor_distances, t));
  return curve;
}

double equal_error_rate(const std::vector<double>& genuine_distances,
                        const std::vector<double>& impostor_distances) {
  const auto curve = roc_curve(genuine_distances, impostor_distances);
  if (curve.empty()) return 0.0;
  // FRR decreases and FAR increases with threshold; find the crossing.
  for (std::size_t i = 0; i < curve.size(); ++i) {
    if (curve[i].far >= curve[i].frr) {
      if (i == 0) return (curve[0].far + curve[0].frr) / 2.0;
      // Interpolate between point i-1 (far < frr) and i (far >= frr).
      const auto& a = curve[i - 1];
      const auto& b = curve[i];
      const double da = a.frr - a.far;  // > 0
      const double db = b.far - b.frr;  // >= 0
      if (da + db <= 0.0) return (b.far + b.frr) / 2.0;
      const double w = da / (da + db);
      return (1.0 - w) * (a.far + a.frr) / 2.0 + w * (b.far + b.frr) / 2.0;
    }
  }
  return (curve.back().far + curve.back().frr) / 2.0;
}

double threshold_for_frr(const std::vector<double>& genuine_distances,
                         double max_frr) {
  if (genuine_distances.empty())
    throw std::invalid_argument("threshold_for_frr: no genuine samples");
  std::vector<double> sorted = genuine_distances;
  std::sort(sorted.begin(), sorted.end());
  // Accept the smallest threshold that keeps FRR <= max_frr: the
  // ceil((1-max_frr) * n)-th smallest genuine distance.
  const auto n = static_cast<double>(sorted.size());
  const auto keep = static_cast<std::size_t>(
      std::min(n, std::ceil((1.0 - max_frr) * n)));
  if (keep == 0) return 0.0;
  return sorted[keep - 1];
}

}  // namespace medsen::auth
