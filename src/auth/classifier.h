#pragma once
// Particle-type classification for cyto-coded authentication. Peaks from
// the (plaintext, encryption-off) authentication pass are mapped to
// particle types using their multi-frequency amplitude feature vectors —
// the clusters of the paper's Fig. 16. Training data is drawn from the
// calibrated particle physics model, which is exactly how the prototype
// calibrates against known bead solutions.
//
// Note: authentication runs with in-sensor encryption off (paper Section
// V, last paragraph), so peak amplitudes reach the classifier unscaled.

#include <cstdint>
#include <vector>

#include "core/decryptor.h"
#include "dsp/classify.h"
#include "sim/particle.h"

namespace medsen::auth {

struct ClassifierConfig {
  /// Carrier frequencies forming the feature vector; must match the
  /// acquisition channels the peaks were measured on.
  std::vector<double> carriers_hz = {5.0e5, 8.0e5, 1.0e6, 1.2e6,
                                     1.4e6, 2.0e6, 3.0e6, 4.0e6};
  std::size_t train_per_class = 300;
  /// Relative multiplicative measurement noise applied to training
  /// amplitudes (electronics + focusing variation).
  double measurement_noise = 0.06;
  std::uint64_t seed = 7;
};

/// Nearest-centroid classifier over particle types, trained on the
/// physics model.
class ParticleClassifier {
 public:
  /// Train from the calibrated model (all three particle types).
  static ParticleClassifier train(const ClassifierConfig& config);

  /// Classify one multi-frequency amplitude feature vector.
  [[nodiscard]] sim::ParticleType classify(
      const dsp::FeatureVector& features) const;

  /// Classification margin in [0,1] (see dsp classifier).
  [[nodiscard]] double margin(const dsp::FeatureVector& features) const;

  /// Build the feature vector of a decoded peak (its per-channel
  /// amplitudes, which must align with config.carriers_hz).
  [[nodiscard]] static dsp::FeatureVector features_of(
      const core::DecodedPeak& peak);

  /// Internal feature transform: raw per-carrier amplitudes ->
  /// [log10(reference amplitude), a_i / a_ref ...]. The log captures
  /// particle size (bead358 vs bead780) while the ratios capture the
  /// frequency-response *shape* (blood-cell membrane roll-off, Fig. 15),
  /// making classification insensitive to per-particle size jitter.
  [[nodiscard]] static dsp::FeatureVector transform(
      const dsp::FeatureVector& raw_amplitudes);

  [[nodiscard]] const ClassifierConfig& config() const { return config_; }
  [[nodiscard]] const dsp::NearestCentroidClassifier& model() const {
    return model_;
  }

  /// Generate one synthetic labeled example (exposed for tests/benches).
  static dsp::LabeledPoint synth_example(sim::ParticleType type,
                                         const ClassifierConfig& config,
                                         crypto::ChaChaRng& rng);

 private:
  ClassifierConfig config_;
  dsp::NearestCentroidClassifier model_;
};

}  // namespace medsen::auth
