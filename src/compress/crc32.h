#pragma once
// CRC-32 (IEEE 802.3 polynomial, the zlib/zip variant). Guards compressed
// containers and network frames against corruption.

#include <cstdint>
#include <span>

namespace medsen::compress {

/// CRC-32 of a buffer (init 0xFFFFFFFF, reflected, final XOR).
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Incremental form: pass the previous return value as `state` (start with
/// crc32_init()) and finish with crc32_final().
std::uint32_t crc32_init();
std::uint32_t crc32_update(std::uint32_t state,
                           std::span<const std::uint8_t> data);
std::uint32_t crc32_final(std::uint32_t state);

}  // namespace medsen::compress
