#pragma once
// LZSS match finding over a 32 KiB sliding window with hash-chain search.
// Produces a token stream (literals and back-references) that the codec
// entropy-codes with canonical Huffman — a deflate-like pipeline, which is
// what the paper's phone-side "zip data compression" stage does to the CSV
// measurement dumps.

#include <cstdint>
#include <span>
#include <vector>

namespace medsen::compress {

/// One LZSS token: a literal byte or a (length, distance) back-reference.
struct Token {
  bool is_match = false;
  std::uint8_t literal = 0;   ///< valid when !is_match
  std::uint16_t length = 0;   ///< match length, kMinMatch..kMaxMatch
  std::uint16_t distance = 0; ///< backward distance, 1..kWindowSize
};

constexpr std::size_t kWindowSize = 32768;
constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxMatch = 258;

struct LzssConfig {
  unsigned max_chain = 64;   ///< hash-chain positions probed per match
  bool lazy = true;          ///< one-step-lazy matching (deflate style)
};

/// Tokenize `data`.
std::vector<Token> lzss_compress(std::span<const std::uint8_t> data,
                                 const LzssConfig& config = {});

/// Reconstruct original bytes from tokens; throws std::runtime_error on
/// invalid references.
std::vector<std::uint8_t> lzss_decompress(std::span<const Token> tokens);

}  // namespace medsen::compress
