#include "compress/lzss.h"

#include <algorithm>
#include <stdexcept>

namespace medsen::compress {

namespace {

constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1u << kHashBits;

inline std::uint32_t hash3(const std::uint8_t* p) {
  // Multiplicative hash of 3 bytes.
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

struct Match {
  std::size_t length = 0;
  std::size_t distance = 0;
};

Match find_match(std::span<const std::uint8_t> data, std::size_t pos,
                 const std::vector<std::int32_t>& head,
                 const std::vector<std::int32_t>& prev, unsigned max_chain) {
  Match best;
  if (pos + kMinMatch > data.size()) return best;
  const std::size_t limit = std::min(kMaxMatch, data.size() - pos);
  std::int32_t candidate = head[hash3(data.data() + pos)];
  unsigned chain = 0;
  while (candidate >= 0 && chain < max_chain) {
    const auto cand_pos = static_cast<std::size_t>(candidate);
    if (pos - cand_pos > kWindowSize) break;
    std::size_t len = 0;
    while (len < limit && data[cand_pos + len] == data[pos + len]) ++len;
    if (len >= kMinMatch && len > best.length) {
      best.length = len;
      best.distance = pos - cand_pos;
      if (len == limit) break;
    }
    candidate = prev[cand_pos % kWindowSize];
    ++chain;
  }
  return best;
}

}  // namespace

std::vector<Token> lzss_compress(std::span<const std::uint8_t> data,
                                 const LzssConfig& config) {
  std::vector<Token> tokens;
  if (data.empty()) return tokens;
  tokens.reserve(data.size() / 3);

  std::vector<std::int32_t> head(kHashSize, -1);
  std::vector<std::int32_t> prev(kWindowSize, -1);

  auto insert = [&](std::size_t pos) {
    if (pos + kMinMatch > data.size()) return;
    const std::uint32_t h = hash3(data.data() + pos);
    prev[pos % kWindowSize] = head[h];
    head[h] = static_cast<std::int32_t>(pos);
  };

  std::size_t pos = 0;
  while (pos < data.size()) {
    Match match = find_match(data, pos, head, prev, config.max_chain);
    if (config.lazy && match.length >= kMinMatch &&
        match.length < kMaxMatch && pos + 1 < data.size()) {
      // Peek one position ahead; emit a literal now if the next match is
      // strictly better (deflate's lazy matching).
      insert(pos);
      const Match next =
          find_match(data, pos + 1, head, prev, config.max_chain);
      if (next.length > match.length + 1) {
        Token t;
        t.is_match = false;
        t.literal = data[pos];
        tokens.push_back(t);
        ++pos;
        continue;  // head/prev already updated for pos
      }
      // Keep the current match; fall through (pos already inserted).
      for (std::size_t i = 1; i < match.length; ++i) insert(pos + i);
      Token t;
      t.is_match = true;
      t.length = static_cast<std::uint16_t>(match.length);
      t.distance = static_cast<std::uint16_t>(match.distance);
      tokens.push_back(t);
      pos += match.length;
      continue;
    }

    if (match.length >= kMinMatch) {
      for (std::size_t i = 0; i < match.length; ++i) insert(pos + i);
      Token t;
      t.is_match = true;
      t.length = static_cast<std::uint16_t>(match.length);
      t.distance = static_cast<std::uint16_t>(match.distance);
      tokens.push_back(t);
      pos += match.length;
    } else {
      insert(pos);
      Token t;
      t.is_match = false;
      t.literal = data[pos];
      tokens.push_back(t);
      ++pos;
    }
  }
  return tokens;
}

std::vector<std::uint8_t> lzss_decompress(std::span<const Token> tokens) {
  std::vector<std::uint8_t> out;
  for (const Token& t : tokens) {
    if (!t.is_match) {
      out.push_back(t.literal);
      continue;
    }
    if (t.distance == 0 || t.distance > out.size())
      throw std::runtime_error("lzss_decompress: invalid distance");
    if (t.length < kMinMatch || t.length > kMaxMatch)
      throw std::runtime_error("lzss_decompress: invalid length");
    const std::size_t start = out.size() - t.distance;
    for (std::size_t i = 0; i < t.length; ++i)
      out.push_back(out[start + i]);  // overlapping copies are intentional
  }
  return out;
}

}  // namespace medsen::compress
