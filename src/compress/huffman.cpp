#include "compress/huffman.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace medsen::compress {

namespace {

struct Node {
  std::uint64_t freq;
  int left = -1;    // node index or -1
  int right = -1;
  int symbol = -1;  // leaf symbol or -1
};

/// Depth-first traversal assigning depths as code lengths.
void assign_depths(const std::vector<Node>& nodes, int idx, unsigned depth,
                   std::vector<std::uint8_t>& lengths) {
  const Node& n = nodes[static_cast<std::size_t>(idx)];
  if (n.symbol >= 0) {
    lengths[static_cast<std::size_t>(n.symbol)] =
        static_cast<std::uint8_t>(std::max(depth, 1u));
    return;
  }
  assign_depths(nodes, n.left, depth + 1, lengths);
  assign_depths(nodes, n.right, depth + 1, lengths);
}

}  // namespace

std::vector<std::uint8_t> huffman_code_lengths(
    std::span<const std::uint64_t> freqs) {
  std::vector<std::uint64_t> f(freqs.begin(), freqs.end());
  std::vector<std::uint8_t> lengths(f.size(), 0);

  for (;;) {
    std::vector<Node> nodes;
    using HeapItem = std::pair<std::uint64_t, int>;  // (freq, node index)
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
    for (std::size_t s = 0; s < f.size(); ++s) {
      if (f[s] == 0) continue;
      nodes.push_back({f[s], -1, -1, static_cast<int>(s)});
      heap.emplace(f[s], static_cast<int>(nodes.size()) - 1);
    }
    if (nodes.empty()) return lengths;
    if (nodes.size() == 1) {
      lengths[static_cast<std::size_t>(nodes[0].symbol)] = 1;
      return lengths;
    }
    while (heap.size() > 1) {
      const auto [fa, a] = heap.top();
      heap.pop();
      const auto [fb, b] = heap.top();
      heap.pop();
      nodes.push_back({fa + fb, a, b, -1});
      heap.emplace(fa + fb, static_cast<int>(nodes.size()) - 1);
    }
    std::fill(lengths.begin(), lengths.end(), 0);
    assign_depths(nodes, heap.top().second, 0, lengths);

    const unsigned max_len =
        *std::max_element(lengths.begin(), lengths.end());
    if (max_len <= kMaxCodeLength) return lengths;
    // Flatten the distribution and retry; halving frequencies (keeping
    // them >= 1) shortens the deepest paths.
    for (auto& v : f)
      if (v > 0) v = (v + 1) / 2;
  }
}

HuffmanCode build_codes(std::span<const std::uint8_t> lengths) {
  HuffmanCode out;
  out.lengths.assign(lengths.begin(), lengths.end());
  out.codes.assign(lengths.size(), 0);

  std::vector<std::uint32_t> length_count(kMaxCodeLength + 1, 0);
  for (auto len : lengths)
    if (len > 0) ++length_count[len];

  std::vector<std::uint32_t> next_code(kMaxCodeLength + 2, 0);
  std::uint32_t code = 0;
  for (unsigned len = 1; len <= kMaxCodeLength; ++len) {
    code = (code + length_count[len - 1]) << 1;
    next_code[len] = code;
  }
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    const unsigned len = lengths[s];
    if (len == 0) continue;
    std::uint32_t c = next_code[len]++;
    // Bit-reverse for LSB-first emission.
    std::uint32_t rev = 0;
    for (unsigned i = 0; i < len; ++i) {
      rev = (rev << 1) | (c & 1);
      c >>= 1;
    }
    out.codes[s] = static_cast<std::uint16_t>(rev);
  }
  return out;
}

void HuffmanEncoder::encode(BitWriter& out, std::uint16_t symbol) const {
  const unsigned len = code_.lengths.at(symbol);
  if (len == 0)
    throw std::runtime_error("HuffmanEncoder: symbol has no code");
  out.put(code_.codes[symbol], len);
}

HuffmanDecoder::HuffmanDecoder(std::span<const std::uint8_t> lengths) {
  std::vector<std::uint32_t> length_count(kMaxCodeLength + 1, 0);
  for (auto len : lengths) {
    if (len > kMaxCodeLength)
      throw std::invalid_argument("HuffmanDecoder: length too long");
    if (len > 0) {
      ++length_count[len];
      max_len_ = std::max<unsigned>(max_len_, len);
    }
  }
  first_code_.assign(kMaxCodeLength + 2, 0);
  first_index_.assign(kMaxCodeLength + 2, 0);
  std::uint32_t code = 0;
  std::uint32_t index = 0;
  for (unsigned len = 1; len <= kMaxCodeLength; ++len) {
    code = (code + length_count[len - 1]) << 1;
    first_code_[len] = code;
    first_index_[len] = index;
    index += length_count[len];
  }
  // Symbols sorted by (length, symbol value) — canonical order.
  symbols_.clear();
  for (unsigned len = 1; len <= kMaxCodeLength; ++len)
    for (std::size_t s = 0; s < lengths.size(); ++s)
      if (lengths[s] == len) symbols_.push_back(static_cast<std::uint16_t>(s));
}

std::uint16_t HuffmanDecoder::decode(BitReader& in) const {
  std::uint32_t code = 0;
  for (unsigned len = 1; len <= max_len_; ++len) {
    code = (code << 1) | in.bit();
    const std::uint32_t count =
        (len < kMaxCodeLength ? first_index_[len + 1] : static_cast<std::uint32_t>(symbols_.size())) -
        first_index_[len];
    if (count > 0 && code >= first_code_[len] &&
        code < first_code_[len] + count) {
      return symbols_[first_index_[len] + (code - first_code_[len])];
    }
  }
  throw std::runtime_error("HuffmanDecoder: invalid code");
}

}  // namespace medsen::compress
