#pragma once
// Canonical Huffman coding. Symbol code lengths are computed from
// frequencies (package-merge-free heap construction with a length cap via
// frequency flattening), then canonical codes are assigned so only the
// length table needs to be transmitted.

#include <cstdint>
#include <span>
#include <vector>

#include "compress/bitio.h"

namespace medsen::compress {

/// Maximum code length we emit (fits the 4-bit length fields used in the
/// container header).
constexpr unsigned kMaxCodeLength = 15;

/// Compute canonical code lengths for `freqs` (0-frequency symbols get
/// length 0 = absent). At most kMaxCodeLength; lengths are rebalanced if
/// the tree would exceed it.
std::vector<std::uint8_t> huffman_code_lengths(
    std::span<const std::uint64_t> freqs);

/// Canonical code table derived from lengths.
struct HuffmanCode {
  std::vector<std::uint16_t> codes;    ///< bit-reversed for LSB-first I/O
  std::vector<std::uint8_t> lengths;
};

/// Assign canonical codes (per deflate rules) from code lengths.
HuffmanCode build_codes(std::span<const std::uint8_t> lengths);

/// Encoder: writes symbol codes to a BitWriter.
class HuffmanEncoder {
 public:
  explicit HuffmanEncoder(HuffmanCode code) : code_(std::move(code)) {}
  void encode(BitWriter& out, std::uint16_t symbol) const;

 private:
  HuffmanCode code_;
};

/// Decoder: canonical table-walk decoder.
class HuffmanDecoder {
 public:
  explicit HuffmanDecoder(std::span<const std::uint8_t> lengths);
  /// Decode one symbol; throws std::runtime_error on an invalid code.
  std::uint16_t decode(BitReader& in) const;

 private:
  // first_code[len], first_symbol_index[len], and symbols sorted by
  // (length, symbol) — the canonical decoding arrays.
  std::vector<std::uint32_t> first_code_;
  std::vector<std::uint32_t> first_index_;
  std::vector<std::uint16_t> symbols_;
  unsigned max_len_ = 0;
};

}  // namespace medsen::compress
