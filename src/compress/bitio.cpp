#include "compress/bitio.h"

namespace medsen::compress {

void BitWriter::put(std::uint32_t bits, unsigned count) {
  if (count > 32) throw std::invalid_argument("BitWriter: count > 32");
  const std::uint64_t mask =
      count == 32 ? 0xFFFFFFFFull : ((1ull << count) - 1ull);
  acc_ |= (static_cast<std::uint64_t>(bits) & mask) << acc_bits_;
  acc_bits_ += count;
  total_bits_ += count;
  while (acc_bits_ >= 8) {
    buf_.push_back(static_cast<std::uint8_t>(acc_));
    acc_ >>= 8;
    acc_bits_ -= 8;
  }
}

std::vector<std::uint8_t> BitWriter::finish() {
  if (acc_bits_ > 0) {
    buf_.push_back(static_cast<std::uint8_t>(acc_));
    acc_ = 0;
    acc_bits_ = 0;
  }
  return std::move(buf_);
}

std::uint32_t BitReader::get(unsigned count) {
  if (count > 32) throw std::invalid_argument("BitReader: count > 32");
  std::uint32_t out = 0;
  for (unsigned i = 0; i < count; ++i) {
    const std::size_t byte = pos_bits_ / 8;
    if (byte >= data_.size())
      throw std::out_of_range("BitReader: past end of stream");
    const unsigned bit_in_byte = pos_bits_ % 8;
    const std::uint32_t b = (data_[byte] >> bit_in_byte) & 1u;
    out |= b << i;
    ++pos_bits_;
  }
  return out;
}

}  // namespace medsen::compress
