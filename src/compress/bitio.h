#pragma once
// Bit-level I/O for the Huffman coder. Bits are packed LSB-first within
// each byte (deflate convention).

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace medsen::compress {

/// Writes bits LSB-first into a growing byte vector.
class BitWriter {
 public:
  /// Append the low `count` bits of `bits` (count <= 32).
  void put(std::uint32_t bits, unsigned count);
  /// Pad to a byte boundary with zero bits and return the buffer.
  std::vector<std::uint8_t> finish();
  [[nodiscard]] std::size_t bit_count() const { return total_bits_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::uint64_t acc_ = 0;
  unsigned acc_bits_ = 0;
  std::size_t total_bits_ = 0;
};

/// Reads bits LSB-first from a byte span; throws std::out_of_range past
/// the end.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Read `count` bits (count <= 32).
  std::uint32_t get(unsigned count);
  /// Read a single bit.
  std::uint32_t bit() { return get(1); }
  [[nodiscard]] std::size_t bits_consumed() const { return pos_bits_; }
  [[nodiscard]] bool exhausted() const {
    return pos_bits_ >= data_.size() * 8;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_bits_ = 0;
};

}  // namespace medsen::compress
