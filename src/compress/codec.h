#pragma once
// The complete compressor: LZSS tokens entropy-coded with canonical
// Huffman (deflate-style length/distance slot alphabets) inside a small
// container with original-size and CRC-32 fields. This is the "zip data
// compression" stage the paper's Android app applies before uploading the
// 600 MB CSV measurement dumps (reduced to 240 MB, i.e. ~2.5x).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "compress/lzss.h"

namespace medsen::compress {

/// Compress `data` into a self-describing container.
std::vector<std::uint8_t> compress(std::span<const std::uint8_t> data,
                                   const LzssConfig& config = {});

/// Decompress a container produced by compress(). Throws
/// std::runtime_error on magic/CRC mismatch or malformed streams.
std::vector<std::uint8_t> decompress(std::span<const std::uint8_t> packed);

/// Convenience helpers for strings (the CSV path).
std::vector<std::uint8_t> compress_string(const std::string& text);
std::string decompress_string(std::span<const std::uint8_t> packed);

/// original_size / compressed_size (>= 1 means compression won).
double compression_ratio(std::size_t original_size,
                         std::size_t compressed_size);

}  // namespace medsen::compress
