#include "compress/codec.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <stdexcept>

#include "compress/crc32.h"
#include "compress/huffman.h"
#include "util/serialize.h"

namespace medsen::compress {

namespace {

constexpr std::uint32_t kMagic = 0x4D535A31;  // "MSZ1"

// Deflate-style length slots for codes 257..285.
constexpr std::uint16_t kLenBase[29] = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::uint8_t kLenExtra[29] = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1,
                                        1, 1, 2, 2, 2, 2, 3, 3, 3, 3,
                                        4, 4, 4, 4, 5, 5, 5, 5, 0};

// Deflate-style distance slots for codes 0..29.
constexpr std::uint16_t kDistBase[30] = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,    25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,   769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr std::uint8_t kDistExtra[30] = {0, 0, 0,  0,  1,  1,  2,  2,  3,  3,
                                         4, 4, 5,  5,  6,  6,  7,  7,  8,  8,
                                         9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

constexpr std::size_t kLitLenSymbols = 286;  // 0..255 lit, 256 EOB, 257..285
constexpr std::size_t kDistSymbols = 30;
constexpr std::uint16_t kEndOfBlock = 256;

unsigned length_slot(unsigned len) {
  for (unsigned s = 28;; --s) {
    if (len >= kLenBase[s]) return s;
    if (s == 0) break;
  }
  throw std::logic_error("length_slot: length below minimum");
}

unsigned distance_slot(unsigned dist) {
  for (unsigned s = 29;; --s) {
    if (dist >= kDistBase[s]) return s;
    if (s == 0) break;
  }
  throw std::logic_error("distance_slot: distance below minimum");
}

}  // namespace

std::vector<std::uint8_t> compress(std::span<const std::uint8_t> data,
                                   const LzssConfig& config) {
  const std::vector<Token> tokens = lzss_compress(data, config);

  // Symbol statistics.
  std::vector<std::uint64_t> lit_freq(kLitLenSymbols, 0);
  std::vector<std::uint64_t> dist_freq(kDistSymbols, 0);
  for (const Token& t : tokens) {
    if (t.is_match) {
      ++lit_freq[257 + length_slot(t.length)];
      ++dist_freq[distance_slot(t.distance)];
    } else {
      ++lit_freq[t.literal];
    }
  }
  ++lit_freq[kEndOfBlock];

  const auto lit_lengths = huffman_code_lengths(lit_freq);
  const auto dist_lengths = huffman_code_lengths(dist_freq);
  const HuffmanEncoder lit_enc(build_codes(lit_lengths));
  const HuffmanEncoder dist_enc(build_codes(dist_lengths));

  BitWriter bits;
  // Code-length tables, 4 bits each (kMaxCodeLength = 15 fits).
  for (auto len : lit_lengths) bits.put(len, 4);
  for (auto len : dist_lengths) bits.put(len, 4);
  // Token stream.
  for (const Token& t : tokens) {
    if (t.is_match) {
      const unsigned ls = length_slot(t.length);
      lit_enc.encode(bits, static_cast<std::uint16_t>(257 + ls));
      bits.put(t.length - kLenBase[ls], kLenExtra[ls]);
      const unsigned ds = distance_slot(t.distance);
      dist_enc.encode(bits, static_cast<std::uint16_t>(ds));
      bits.put(t.distance - kDistBase[ds], kDistExtra[ds]);
    } else {
      lit_enc.encode(bits, t.literal);
    }
  }
  lit_enc.encode(bits, kEndOfBlock);
  const auto payload = bits.finish();

  util::ByteWriter out;
  out.u32(kMagic);
  out.u64(data.size());
  out.u32(crc32(data));
  out.bytes(payload);
  return out.take();
}

namespace {

std::vector<std::uint8_t> decompress_impl(std::span<const std::uint8_t> packed);

}  // namespace

std::vector<std::uint8_t> decompress(std::span<const std::uint8_t> packed) {
  try {
    return decompress_impl(packed);
  } catch (const std::out_of_range&) {
    // Truncated bit or byte streams surface as the same corruption error
    // class as CRC failures, so callers handle one exception type.
    throw std::runtime_error("decompress: truncated stream");
  }
}

namespace {

std::vector<std::uint8_t> decompress_impl(
    std::span<const std::uint8_t> packed) {
  util::ByteReader header(packed);
  if (header.u32() != kMagic)
    throw std::runtime_error("decompress: bad magic");
  const std::uint64_t original_size = header.u64();
  const std::uint32_t expected_crc = header.u32();

  BitReader bits(packed.subspan(16));
  std::vector<std::uint8_t> lit_lengths(kLitLenSymbols);
  for (auto& len : lit_lengths) len = static_cast<std::uint8_t>(bits.get(4));
  std::vector<std::uint8_t> dist_lengths(kDistSymbols);
  for (auto& len : dist_lengths) len = static_cast<std::uint8_t>(bits.get(4));
  const HuffmanDecoder lit_dec(lit_lengths);
  const HuffmanDecoder dist_dec(dist_lengths);

  // `original_size` comes off the wire: reserve only what a genuine
  // stream could produce (the compressed body bounds it) so a tiny
  // corrupt header cannot demand a multi-gigabyte allocation up front.
  constexpr std::size_t kMaxUpfrontReserve = std::size_t{1} << 20;
  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(original_size, kMaxUpfrontReserve)));
  for (;;) {
    if (out.size() > original_size)
      throw std::runtime_error("decompress: size mismatch");
    const std::uint16_t sym = lit_dec.decode(bits);
    if (sym == kEndOfBlock) break;
    if (sym < 256) {
      out.push_back(static_cast<std::uint8_t>(sym));
      continue;
    }
    const unsigned ls = sym - 257u;
    if (ls >= 29) throw std::runtime_error("decompress: bad length symbol");
    const unsigned len = kLenBase[ls] + bits.get(kLenExtra[ls]);
    const std::uint16_t dsym = dist_dec.decode(bits);
    if (dsym >= kDistSymbols)
      throw std::runtime_error("decompress: bad distance symbol");
    const unsigned dist = kDistBase[dsym] + bits.get(kDistExtra[dsym]);
    if (dist == 0 || dist > out.size())
      throw std::runtime_error("decompress: invalid back-reference");
    const std::size_t start = out.size() - dist;
    for (unsigned i = 0; i < len; ++i) out.push_back(out[start + i]);
  }

  if (out.size() != original_size)
    throw std::runtime_error("decompress: size mismatch");
  if (crc32(out) != expected_crc)
    throw std::runtime_error("decompress: CRC mismatch");
  // Strictness: the container must end where the bit stream ends (plus
  // byte-boundary padding) — appended garbage is rejected, not ignored.
  const std::size_t stream_bytes = (bits.bits_consumed() + 7) / 8;
  if (packed.size() - 16 > stream_bytes)
    throw std::runtime_error("decompress: trailing bytes");
  return out;
}

}  // namespace

std::vector<std::uint8_t> compress_string(const std::string& text) {
  return compress(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

std::string decompress_string(std::span<const std::uint8_t> packed) {
  const auto bytes = decompress(packed);
  return std::string(bytes.begin(), bytes.end());
}

double compression_ratio(std::size_t original_size,
                         std::size_t compressed_size) {
  if (compressed_size == 0) return 0.0;
  return static_cast<double>(original_size) /
         static_cast<double>(compressed_size);
}

}  // namespace medsen::compress
