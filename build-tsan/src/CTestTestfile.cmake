# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-tsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("crypto")
subdirs("dsp")
subdirs("compress")
subdirs("sim")
subdirs("core")
subdirs("auth")
subdirs("net")
subdirs("cloud")
subdirs("phone")
