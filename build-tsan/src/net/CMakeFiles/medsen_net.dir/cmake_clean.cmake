file(REMOVE_RECURSE
  "CMakeFiles/medsen_net.dir/channel.cpp.o"
  "CMakeFiles/medsen_net.dir/channel.cpp.o.d"
  "CMakeFiles/medsen_net.dir/frame.cpp.o"
  "CMakeFiles/medsen_net.dir/frame.cpp.o.d"
  "CMakeFiles/medsen_net.dir/link.cpp.o"
  "CMakeFiles/medsen_net.dir/link.cpp.o.d"
  "CMakeFiles/medsen_net.dir/messages.cpp.o"
  "CMakeFiles/medsen_net.dir/messages.cpp.o.d"
  "libmedsen_net.a"
  "libmedsen_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medsen_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
