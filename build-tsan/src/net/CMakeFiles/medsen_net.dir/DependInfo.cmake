
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/channel.cpp" "src/net/CMakeFiles/medsen_net.dir/channel.cpp.o" "gcc" "src/net/CMakeFiles/medsen_net.dir/channel.cpp.o.d"
  "/root/repo/src/net/frame.cpp" "src/net/CMakeFiles/medsen_net.dir/frame.cpp.o" "gcc" "src/net/CMakeFiles/medsen_net.dir/frame.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/medsen_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/medsen_net.dir/link.cpp.o.d"
  "/root/repo/src/net/messages.cpp" "src/net/CMakeFiles/medsen_net.dir/messages.cpp.o" "gcc" "src/net/CMakeFiles/medsen_net.dir/messages.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/medsen_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/crypto/CMakeFiles/medsen_crypto.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/compress/CMakeFiles/medsen_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
