file(REMOVE_RECURSE
  "libmedsen_net.a"
)
