# Empty dependencies file for medsen_net.
# This may be replaced when dependencies are built.
