
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/classify.cpp" "src/dsp/CMakeFiles/medsen_dsp.dir/classify.cpp.o" "gcc" "src/dsp/CMakeFiles/medsen_dsp.dir/classify.cpp.o.d"
  "/root/repo/src/dsp/deadtime.cpp" "src/dsp/CMakeFiles/medsen_dsp.dir/deadtime.cpp.o" "gcc" "src/dsp/CMakeFiles/medsen_dsp.dir/deadtime.cpp.o.d"
  "/root/repo/src/dsp/demod.cpp" "src/dsp/CMakeFiles/medsen_dsp.dir/demod.cpp.o" "gcc" "src/dsp/CMakeFiles/medsen_dsp.dir/demod.cpp.o.d"
  "/root/repo/src/dsp/detrend.cpp" "src/dsp/CMakeFiles/medsen_dsp.dir/detrend.cpp.o" "gcc" "src/dsp/CMakeFiles/medsen_dsp.dir/detrend.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/dsp/CMakeFiles/medsen_dsp.dir/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/medsen_dsp.dir/fft.cpp.o.d"
  "/root/repo/src/dsp/filters.cpp" "src/dsp/CMakeFiles/medsen_dsp.dir/filters.cpp.o" "gcc" "src/dsp/CMakeFiles/medsen_dsp.dir/filters.cpp.o.d"
  "/root/repo/src/dsp/kmeans.cpp" "src/dsp/CMakeFiles/medsen_dsp.dir/kmeans.cpp.o" "gcc" "src/dsp/CMakeFiles/medsen_dsp.dir/kmeans.cpp.o.d"
  "/root/repo/src/dsp/noise.cpp" "src/dsp/CMakeFiles/medsen_dsp.dir/noise.cpp.o" "gcc" "src/dsp/CMakeFiles/medsen_dsp.dir/noise.cpp.o.d"
  "/root/repo/src/dsp/peak_detect.cpp" "src/dsp/CMakeFiles/medsen_dsp.dir/peak_detect.cpp.o" "gcc" "src/dsp/CMakeFiles/medsen_dsp.dir/peak_detect.cpp.o.d"
  "/root/repo/src/dsp/polyfit.cpp" "src/dsp/CMakeFiles/medsen_dsp.dir/polyfit.cpp.o" "gcc" "src/dsp/CMakeFiles/medsen_dsp.dir/polyfit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/medsen_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/crypto/CMakeFiles/medsen_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
