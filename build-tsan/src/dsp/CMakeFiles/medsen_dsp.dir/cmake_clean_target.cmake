file(REMOVE_RECURSE
  "libmedsen_dsp.a"
)
