file(REMOVE_RECURSE
  "CMakeFiles/medsen_dsp.dir/classify.cpp.o"
  "CMakeFiles/medsen_dsp.dir/classify.cpp.o.d"
  "CMakeFiles/medsen_dsp.dir/deadtime.cpp.o"
  "CMakeFiles/medsen_dsp.dir/deadtime.cpp.o.d"
  "CMakeFiles/medsen_dsp.dir/demod.cpp.o"
  "CMakeFiles/medsen_dsp.dir/demod.cpp.o.d"
  "CMakeFiles/medsen_dsp.dir/detrend.cpp.o"
  "CMakeFiles/medsen_dsp.dir/detrend.cpp.o.d"
  "CMakeFiles/medsen_dsp.dir/fft.cpp.o"
  "CMakeFiles/medsen_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/medsen_dsp.dir/filters.cpp.o"
  "CMakeFiles/medsen_dsp.dir/filters.cpp.o.d"
  "CMakeFiles/medsen_dsp.dir/kmeans.cpp.o"
  "CMakeFiles/medsen_dsp.dir/kmeans.cpp.o.d"
  "CMakeFiles/medsen_dsp.dir/noise.cpp.o"
  "CMakeFiles/medsen_dsp.dir/noise.cpp.o.d"
  "CMakeFiles/medsen_dsp.dir/peak_detect.cpp.o"
  "CMakeFiles/medsen_dsp.dir/peak_detect.cpp.o.d"
  "CMakeFiles/medsen_dsp.dir/polyfit.cpp.o"
  "CMakeFiles/medsen_dsp.dir/polyfit.cpp.o.d"
  "libmedsen_dsp.a"
  "libmedsen_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medsen_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
