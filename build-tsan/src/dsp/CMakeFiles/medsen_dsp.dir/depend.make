# Empty dependencies file for medsen_dsp.
# This may be replaced when dependencies are built.
