file(REMOVE_RECURSE
  "libmedsen_util.a"
)
