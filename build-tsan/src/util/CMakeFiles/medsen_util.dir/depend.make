# Empty dependencies file for medsen_util.
# This may be replaced when dependencies are built.
