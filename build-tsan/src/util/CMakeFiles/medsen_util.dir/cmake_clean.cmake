file(REMOVE_RECURSE
  "CMakeFiles/medsen_util.dir/csv.cpp.o"
  "CMakeFiles/medsen_util.dir/csv.cpp.o.d"
  "CMakeFiles/medsen_util.dir/fileio.cpp.o"
  "CMakeFiles/medsen_util.dir/fileio.cpp.o.d"
  "CMakeFiles/medsen_util.dir/logging.cpp.o"
  "CMakeFiles/medsen_util.dir/logging.cpp.o.d"
  "CMakeFiles/medsen_util.dir/serialize.cpp.o"
  "CMakeFiles/medsen_util.dir/serialize.cpp.o.d"
  "CMakeFiles/medsen_util.dir/stats.cpp.o"
  "CMakeFiles/medsen_util.dir/stats.cpp.o.d"
  "CMakeFiles/medsen_util.dir/thread_pool.cpp.o"
  "CMakeFiles/medsen_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/medsen_util.dir/time_series.cpp.o"
  "CMakeFiles/medsen_util.dir/time_series.cpp.o.d"
  "libmedsen_util.a"
  "libmedsen_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medsen_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
