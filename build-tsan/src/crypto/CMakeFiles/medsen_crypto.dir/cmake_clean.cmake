file(REMOVE_RECURSE
  "CMakeFiles/medsen_crypto.dir/aes.cpp.o"
  "CMakeFiles/medsen_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/medsen_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/medsen_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/medsen_crypto.dir/hkdf.cpp.o"
  "CMakeFiles/medsen_crypto.dir/hkdf.cpp.o.d"
  "CMakeFiles/medsen_crypto.dir/hmac.cpp.o"
  "CMakeFiles/medsen_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/medsen_crypto.dir/keymath.cpp.o"
  "CMakeFiles/medsen_crypto.dir/keymath.cpp.o.d"
  "CMakeFiles/medsen_crypto.dir/sha256.cpp.o"
  "CMakeFiles/medsen_crypto.dir/sha256.cpp.o.d"
  "libmedsen_crypto.a"
  "libmedsen_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medsen_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
