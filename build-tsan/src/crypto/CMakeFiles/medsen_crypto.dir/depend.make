# Empty dependencies file for medsen_crypto.
# This may be replaced when dependencies are built.
