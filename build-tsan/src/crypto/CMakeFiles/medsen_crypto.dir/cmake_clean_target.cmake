file(REMOVE_RECURSE
  "libmedsen_crypto.a"
)
