# Empty dependencies file for medsen_sim.
# This may be replaced when dependencies are built.
