
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/acquisition.cpp" "src/sim/CMakeFiles/medsen_sim.dir/acquisition.cpp.o" "gcc" "src/sim/CMakeFiles/medsen_sim.dir/acquisition.cpp.o.d"
  "/root/repo/src/sim/capture.cpp" "src/sim/CMakeFiles/medsen_sim.dir/capture.cpp.o" "gcc" "src/sim/CMakeFiles/medsen_sim.dir/capture.cpp.o.d"
  "/root/repo/src/sim/channel.cpp" "src/sim/CMakeFiles/medsen_sim.dir/channel.cpp.o" "gcc" "src/sim/CMakeFiles/medsen_sim.dir/channel.cpp.o.d"
  "/root/repo/src/sim/electrode_array.cpp" "src/sim/CMakeFiles/medsen_sim.dir/electrode_array.cpp.o" "gcc" "src/sim/CMakeFiles/medsen_sim.dir/electrode_array.cpp.o.d"
  "/root/repo/src/sim/impedance_model.cpp" "src/sim/CMakeFiles/medsen_sim.dir/impedance_model.cpp.o" "gcc" "src/sim/CMakeFiles/medsen_sim.dir/impedance_model.cpp.o.d"
  "/root/repo/src/sim/lockin.cpp" "src/sim/CMakeFiles/medsen_sim.dir/lockin.cpp.o" "gcc" "src/sim/CMakeFiles/medsen_sim.dir/lockin.cpp.o.d"
  "/root/repo/src/sim/particle.cpp" "src/sim/CMakeFiles/medsen_sim.dir/particle.cpp.o" "gcc" "src/sim/CMakeFiles/medsen_sim.dir/particle.cpp.o.d"
  "/root/repo/src/sim/pump.cpp" "src/sim/CMakeFiles/medsen_sim.dir/pump.cpp.o" "gcc" "src/sim/CMakeFiles/medsen_sim.dir/pump.cpp.o.d"
  "/root/repo/src/sim/signal_synth.cpp" "src/sim/CMakeFiles/medsen_sim.dir/signal_synth.cpp.o" "gcc" "src/sim/CMakeFiles/medsen_sim.dir/signal_synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/medsen_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/crypto/CMakeFiles/medsen_crypto.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dsp/CMakeFiles/medsen_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
