file(REMOVE_RECURSE
  "CMakeFiles/medsen_sim.dir/acquisition.cpp.o"
  "CMakeFiles/medsen_sim.dir/acquisition.cpp.o.d"
  "CMakeFiles/medsen_sim.dir/capture.cpp.o"
  "CMakeFiles/medsen_sim.dir/capture.cpp.o.d"
  "CMakeFiles/medsen_sim.dir/channel.cpp.o"
  "CMakeFiles/medsen_sim.dir/channel.cpp.o.d"
  "CMakeFiles/medsen_sim.dir/electrode_array.cpp.o"
  "CMakeFiles/medsen_sim.dir/electrode_array.cpp.o.d"
  "CMakeFiles/medsen_sim.dir/impedance_model.cpp.o"
  "CMakeFiles/medsen_sim.dir/impedance_model.cpp.o.d"
  "CMakeFiles/medsen_sim.dir/lockin.cpp.o"
  "CMakeFiles/medsen_sim.dir/lockin.cpp.o.d"
  "CMakeFiles/medsen_sim.dir/particle.cpp.o"
  "CMakeFiles/medsen_sim.dir/particle.cpp.o.d"
  "CMakeFiles/medsen_sim.dir/pump.cpp.o"
  "CMakeFiles/medsen_sim.dir/pump.cpp.o.d"
  "CMakeFiles/medsen_sim.dir/signal_synth.cpp.o"
  "CMakeFiles/medsen_sim.dir/signal_synth.cpp.o.d"
  "libmedsen_sim.a"
  "libmedsen_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medsen_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
