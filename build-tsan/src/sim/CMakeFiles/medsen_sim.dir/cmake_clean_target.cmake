file(REMOVE_RECURSE
  "libmedsen_sim.a"
)
