file(REMOVE_RECURSE
  "CMakeFiles/medsen_phone.dir/app.cpp.o"
  "CMakeFiles/medsen_phone.dir/app.cpp.o.d"
  "CMakeFiles/medsen_phone.dir/profile.cpp.o"
  "CMakeFiles/medsen_phone.dir/profile.cpp.o.d"
  "CMakeFiles/medsen_phone.dir/relay.cpp.o"
  "CMakeFiles/medsen_phone.dir/relay.cpp.o.d"
  "libmedsen_phone.a"
  "libmedsen_phone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medsen_phone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
