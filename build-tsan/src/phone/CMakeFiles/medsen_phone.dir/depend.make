# Empty dependencies file for medsen_phone.
# This may be replaced when dependencies are built.
