file(REMOVE_RECURSE
  "libmedsen_phone.a"
)
