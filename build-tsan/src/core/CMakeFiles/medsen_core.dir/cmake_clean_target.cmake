file(REMOVE_RECURSE
  "libmedsen_core.a"
)
