
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/attacker.cpp" "src/core/CMakeFiles/medsen_core.dir/attacker.cpp.o" "gcc" "src/core/CMakeFiles/medsen_core.dir/attacker.cpp.o.d"
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/medsen_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/medsen_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/decryptor.cpp" "src/core/CMakeFiles/medsen_core.dir/decryptor.cpp.o" "gcc" "src/core/CMakeFiles/medsen_core.dir/decryptor.cpp.o.d"
  "/root/repo/src/core/diagnostic.cpp" "src/core/CMakeFiles/medsen_core.dir/diagnostic.cpp.o" "gcc" "src/core/CMakeFiles/medsen_core.dir/diagnostic.cpp.o.d"
  "/root/repo/src/core/encryptor.cpp" "src/core/CMakeFiles/medsen_core.dir/encryptor.cpp.o" "gcc" "src/core/CMakeFiles/medsen_core.dir/encryptor.cpp.o.d"
  "/root/repo/src/core/escrow.cpp" "src/core/CMakeFiles/medsen_core.dir/escrow.cpp.o" "gcc" "src/core/CMakeFiles/medsen_core.dir/escrow.cpp.o.d"
  "/root/repo/src/core/key.cpp" "src/core/CMakeFiles/medsen_core.dir/key.cpp.o" "gcc" "src/core/CMakeFiles/medsen_core.dir/key.cpp.o.d"
  "/root/repo/src/core/mux.cpp" "src/core/CMakeFiles/medsen_core.dir/mux.cpp.o" "gcc" "src/core/CMakeFiles/medsen_core.dir/mux.cpp.o.d"
  "/root/repo/src/core/peak_report.cpp" "src/core/CMakeFiles/medsen_core.dir/peak_report.cpp.o" "gcc" "src/core/CMakeFiles/medsen_core.dir/peak_report.cpp.o.d"
  "/root/repo/src/core/percell.cpp" "src/core/CMakeFiles/medsen_core.dir/percell.cpp.o" "gcc" "src/core/CMakeFiles/medsen_core.dir/percell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/medsen_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/crypto/CMakeFiles/medsen_crypto.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dsp/CMakeFiles/medsen_dsp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/medsen_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
