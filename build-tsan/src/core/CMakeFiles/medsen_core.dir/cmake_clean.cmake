file(REMOVE_RECURSE
  "CMakeFiles/medsen_core.dir/attacker.cpp.o"
  "CMakeFiles/medsen_core.dir/attacker.cpp.o.d"
  "CMakeFiles/medsen_core.dir/controller.cpp.o"
  "CMakeFiles/medsen_core.dir/controller.cpp.o.d"
  "CMakeFiles/medsen_core.dir/decryptor.cpp.o"
  "CMakeFiles/medsen_core.dir/decryptor.cpp.o.d"
  "CMakeFiles/medsen_core.dir/diagnostic.cpp.o"
  "CMakeFiles/medsen_core.dir/diagnostic.cpp.o.d"
  "CMakeFiles/medsen_core.dir/encryptor.cpp.o"
  "CMakeFiles/medsen_core.dir/encryptor.cpp.o.d"
  "CMakeFiles/medsen_core.dir/escrow.cpp.o"
  "CMakeFiles/medsen_core.dir/escrow.cpp.o.d"
  "CMakeFiles/medsen_core.dir/key.cpp.o"
  "CMakeFiles/medsen_core.dir/key.cpp.o.d"
  "CMakeFiles/medsen_core.dir/mux.cpp.o"
  "CMakeFiles/medsen_core.dir/mux.cpp.o.d"
  "CMakeFiles/medsen_core.dir/peak_report.cpp.o"
  "CMakeFiles/medsen_core.dir/peak_report.cpp.o.d"
  "CMakeFiles/medsen_core.dir/percell.cpp.o"
  "CMakeFiles/medsen_core.dir/percell.cpp.o.d"
  "libmedsen_core.a"
  "libmedsen_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medsen_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
