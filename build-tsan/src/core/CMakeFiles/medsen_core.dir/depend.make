# Empty dependencies file for medsen_core.
# This may be replaced when dependencies are built.
