file(REMOVE_RECURSE
  "libmedsen_auth.a"
)
