
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/auth/alphabet.cpp" "src/auth/CMakeFiles/medsen_auth.dir/alphabet.cpp.o" "gcc" "src/auth/CMakeFiles/medsen_auth.dir/alphabet.cpp.o.d"
  "/root/repo/src/auth/classifier.cpp" "src/auth/CMakeFiles/medsen_auth.dir/classifier.cpp.o" "gcc" "src/auth/CMakeFiles/medsen_auth.dir/classifier.cpp.o.d"
  "/root/repo/src/auth/collision.cpp" "src/auth/CMakeFiles/medsen_auth.dir/collision.cpp.o" "gcc" "src/auth/CMakeFiles/medsen_auth.dir/collision.cpp.o.d"
  "/root/repo/src/auth/enrollment.cpp" "src/auth/CMakeFiles/medsen_auth.dir/enrollment.cpp.o" "gcc" "src/auth/CMakeFiles/medsen_auth.dir/enrollment.cpp.o.d"
  "/root/repo/src/auth/identifier.cpp" "src/auth/CMakeFiles/medsen_auth.dir/identifier.cpp.o" "gcc" "src/auth/CMakeFiles/medsen_auth.dir/identifier.cpp.o.d"
  "/root/repo/src/auth/roc.cpp" "src/auth/CMakeFiles/medsen_auth.dir/roc.cpp.o" "gcc" "src/auth/CMakeFiles/medsen_auth.dir/roc.cpp.o.d"
  "/root/repo/src/auth/verifier.cpp" "src/auth/CMakeFiles/medsen_auth.dir/verifier.cpp.o" "gcc" "src/auth/CMakeFiles/medsen_auth.dir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/medsen_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/crypto/CMakeFiles/medsen_crypto.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dsp/CMakeFiles/medsen_dsp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/medsen_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/medsen_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
