file(REMOVE_RECURSE
  "CMakeFiles/medsen_auth.dir/alphabet.cpp.o"
  "CMakeFiles/medsen_auth.dir/alphabet.cpp.o.d"
  "CMakeFiles/medsen_auth.dir/classifier.cpp.o"
  "CMakeFiles/medsen_auth.dir/classifier.cpp.o.d"
  "CMakeFiles/medsen_auth.dir/collision.cpp.o"
  "CMakeFiles/medsen_auth.dir/collision.cpp.o.d"
  "CMakeFiles/medsen_auth.dir/enrollment.cpp.o"
  "CMakeFiles/medsen_auth.dir/enrollment.cpp.o.d"
  "CMakeFiles/medsen_auth.dir/identifier.cpp.o"
  "CMakeFiles/medsen_auth.dir/identifier.cpp.o.d"
  "CMakeFiles/medsen_auth.dir/roc.cpp.o"
  "CMakeFiles/medsen_auth.dir/roc.cpp.o.d"
  "CMakeFiles/medsen_auth.dir/verifier.cpp.o"
  "CMakeFiles/medsen_auth.dir/verifier.cpp.o.d"
  "libmedsen_auth.a"
  "libmedsen_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medsen_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
