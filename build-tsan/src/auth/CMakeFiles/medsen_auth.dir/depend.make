# Empty dependencies file for medsen_auth.
# This may be replaced when dependencies are built.
