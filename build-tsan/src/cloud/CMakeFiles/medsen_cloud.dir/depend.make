# Empty dependencies file for medsen_cloud.
# This may be replaced when dependencies are built.
