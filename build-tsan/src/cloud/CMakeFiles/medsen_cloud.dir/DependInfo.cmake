
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/analysis_service.cpp" "src/cloud/CMakeFiles/medsen_cloud.dir/analysis_service.cpp.o" "gcc" "src/cloud/CMakeFiles/medsen_cloud.dir/analysis_service.cpp.o.d"
  "/root/repo/src/cloud/persistence.cpp" "src/cloud/CMakeFiles/medsen_cloud.dir/persistence.cpp.o" "gcc" "src/cloud/CMakeFiles/medsen_cloud.dir/persistence.cpp.o.d"
  "/root/repo/src/cloud/quality.cpp" "src/cloud/CMakeFiles/medsen_cloud.dir/quality.cpp.o" "gcc" "src/cloud/CMakeFiles/medsen_cloud.dir/quality.cpp.o.d"
  "/root/repo/src/cloud/server.cpp" "src/cloud/CMakeFiles/medsen_cloud.dir/server.cpp.o" "gcc" "src/cloud/CMakeFiles/medsen_cloud.dir/server.cpp.o.d"
  "/root/repo/src/cloud/storage.cpp" "src/cloud/CMakeFiles/medsen_cloud.dir/storage.cpp.o" "gcc" "src/cloud/CMakeFiles/medsen_cloud.dir/storage.cpp.o.d"
  "/root/repo/src/cloud/streaming.cpp" "src/cloud/CMakeFiles/medsen_cloud.dir/streaming.cpp.o" "gcc" "src/cloud/CMakeFiles/medsen_cloud.dir/streaming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/medsen_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dsp/CMakeFiles/medsen_dsp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/medsen_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/auth/CMakeFiles/medsen_auth.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/medsen_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/compress/CMakeFiles/medsen_compress.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/medsen_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/crypto/CMakeFiles/medsen_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
