file(REMOVE_RECURSE
  "libmedsen_cloud.a"
)
