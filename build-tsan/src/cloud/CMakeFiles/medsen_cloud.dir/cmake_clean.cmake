file(REMOVE_RECURSE
  "CMakeFiles/medsen_cloud.dir/analysis_service.cpp.o"
  "CMakeFiles/medsen_cloud.dir/analysis_service.cpp.o.d"
  "CMakeFiles/medsen_cloud.dir/persistence.cpp.o"
  "CMakeFiles/medsen_cloud.dir/persistence.cpp.o.d"
  "CMakeFiles/medsen_cloud.dir/quality.cpp.o"
  "CMakeFiles/medsen_cloud.dir/quality.cpp.o.d"
  "CMakeFiles/medsen_cloud.dir/server.cpp.o"
  "CMakeFiles/medsen_cloud.dir/server.cpp.o.d"
  "CMakeFiles/medsen_cloud.dir/storage.cpp.o"
  "CMakeFiles/medsen_cloud.dir/storage.cpp.o.d"
  "CMakeFiles/medsen_cloud.dir/streaming.cpp.o"
  "CMakeFiles/medsen_cloud.dir/streaming.cpp.o.d"
  "libmedsen_cloud.a"
  "libmedsen_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medsen_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
