file(REMOVE_RECURSE
  "CMakeFiles/medsen_compress.dir/bitio.cpp.o"
  "CMakeFiles/medsen_compress.dir/bitio.cpp.o.d"
  "CMakeFiles/medsen_compress.dir/codec.cpp.o"
  "CMakeFiles/medsen_compress.dir/codec.cpp.o.d"
  "CMakeFiles/medsen_compress.dir/crc32.cpp.o"
  "CMakeFiles/medsen_compress.dir/crc32.cpp.o.d"
  "CMakeFiles/medsen_compress.dir/huffman.cpp.o"
  "CMakeFiles/medsen_compress.dir/huffman.cpp.o.d"
  "CMakeFiles/medsen_compress.dir/lzss.cpp.o"
  "CMakeFiles/medsen_compress.dir/lzss.cpp.o.d"
  "libmedsen_compress.a"
  "libmedsen_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medsen_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
