# Empty dependencies file for medsen_compress.
# This may be replaced when dependencies are built.
