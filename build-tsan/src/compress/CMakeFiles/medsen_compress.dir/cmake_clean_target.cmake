file(REMOVE_RECURSE
  "libmedsen_compress.a"
)
