
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/bitio.cpp" "src/compress/CMakeFiles/medsen_compress.dir/bitio.cpp.o" "gcc" "src/compress/CMakeFiles/medsen_compress.dir/bitio.cpp.o.d"
  "/root/repo/src/compress/codec.cpp" "src/compress/CMakeFiles/medsen_compress.dir/codec.cpp.o" "gcc" "src/compress/CMakeFiles/medsen_compress.dir/codec.cpp.o.d"
  "/root/repo/src/compress/crc32.cpp" "src/compress/CMakeFiles/medsen_compress.dir/crc32.cpp.o" "gcc" "src/compress/CMakeFiles/medsen_compress.dir/crc32.cpp.o.d"
  "/root/repo/src/compress/huffman.cpp" "src/compress/CMakeFiles/medsen_compress.dir/huffman.cpp.o" "gcc" "src/compress/CMakeFiles/medsen_compress.dir/huffman.cpp.o.d"
  "/root/repo/src/compress/lzss.cpp" "src/compress/CMakeFiles/medsen_compress.dir/lzss.cpp.o" "gcc" "src/compress/CMakeFiles/medsen_compress.dir/lzss.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/medsen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
