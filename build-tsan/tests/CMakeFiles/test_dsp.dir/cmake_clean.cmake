file(REMOVE_RECURSE
  "CMakeFiles/test_dsp.dir/dsp/classify_test.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/classify_test.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/deadtime_test.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/deadtime_test.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/demod_test.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/demod_test.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/detrend_test.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/detrend_test.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/fft_test.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/fft_test.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/filters_test.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/filters_test.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/kmeans_test.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/kmeans_test.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/noise_test.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/noise_test.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/peak_detect_test.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/peak_detect_test.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/polyfit_test.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/polyfit_test.cpp.o.d"
  "test_dsp"
  "test_dsp.pdb"
  "test_dsp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
