file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/acquisition_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/acquisition_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/capture_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/capture_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/channel_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/channel_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/electrode_array_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/electrode_array_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/impedance_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/impedance_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/lockin_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/lockin_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/modulated_chain_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/modulated_chain_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/particle_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/particle_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/pump_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/pump_test.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
