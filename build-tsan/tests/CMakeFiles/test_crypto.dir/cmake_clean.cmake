file(REMOVE_RECURSE
  "CMakeFiles/test_crypto.dir/crypto/aes_test.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/aes_test.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/chacha20_test.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/chacha20_test.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/hkdf_test.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/hkdf_test.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/hmac_test.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/hmac_test.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/keymath_test.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/keymath_test.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/rng_test.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/rng_test.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/sha256_test.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/sha256_test.cpp.o.d"
  "test_crypto"
  "test_crypto.pdb"
  "test_crypto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
