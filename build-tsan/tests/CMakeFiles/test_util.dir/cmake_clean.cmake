file(REMOVE_RECURSE
  "CMakeFiles/test_util.dir/util/csv_test.cpp.o"
  "CMakeFiles/test_util.dir/util/csv_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/logging_test.cpp.o"
  "CMakeFiles/test_util.dir/util/logging_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/ring_buffer_test.cpp.o"
  "CMakeFiles/test_util.dir/util/ring_buffer_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/serialize_test.cpp.o"
  "CMakeFiles/test_util.dir/util/serialize_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/stats_test.cpp.o"
  "CMakeFiles/test_util.dir/util/stats_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/thread_pool_test.cpp.o"
  "CMakeFiles/test_util.dir/util/thread_pool_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/time_series_test.cpp.o"
  "CMakeFiles/test_util.dir/util/time_series_test.cpp.o.d"
  "test_util"
  "test_util.pdb"
  "test_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
