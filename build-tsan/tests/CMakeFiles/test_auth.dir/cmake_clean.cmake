file(REMOVE_RECURSE
  "CMakeFiles/test_auth.dir/auth/alphabet_test.cpp.o"
  "CMakeFiles/test_auth.dir/auth/alphabet_test.cpp.o.d"
  "CMakeFiles/test_auth.dir/auth/classifier_test.cpp.o"
  "CMakeFiles/test_auth.dir/auth/classifier_test.cpp.o.d"
  "CMakeFiles/test_auth.dir/auth/collision_test.cpp.o"
  "CMakeFiles/test_auth.dir/auth/collision_test.cpp.o.d"
  "CMakeFiles/test_auth.dir/auth/enrollment_test.cpp.o"
  "CMakeFiles/test_auth.dir/auth/enrollment_test.cpp.o.d"
  "CMakeFiles/test_auth.dir/auth/identifier_test.cpp.o"
  "CMakeFiles/test_auth.dir/auth/identifier_test.cpp.o.d"
  "CMakeFiles/test_auth.dir/auth/roc_test.cpp.o"
  "CMakeFiles/test_auth.dir/auth/roc_test.cpp.o.d"
  "CMakeFiles/test_auth.dir/auth/verifier_test.cpp.o"
  "CMakeFiles/test_auth.dir/auth/verifier_test.cpp.o.d"
  "test_auth"
  "test_auth.pdb"
  "test_auth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
