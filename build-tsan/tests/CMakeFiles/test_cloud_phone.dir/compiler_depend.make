# Empty compiler generated dependencies file for test_cloud_phone.
# This may be replaced when dependencies are built.
