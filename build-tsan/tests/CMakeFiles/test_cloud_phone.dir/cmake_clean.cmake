file(REMOVE_RECURSE
  "CMakeFiles/test_cloud_phone.dir/cloud/analysis_service_test.cpp.o"
  "CMakeFiles/test_cloud_phone.dir/cloud/analysis_service_test.cpp.o.d"
  "CMakeFiles/test_cloud_phone.dir/cloud/parallel_analysis_test.cpp.o"
  "CMakeFiles/test_cloud_phone.dir/cloud/parallel_analysis_test.cpp.o.d"
  "CMakeFiles/test_cloud_phone.dir/cloud/persistence_test.cpp.o"
  "CMakeFiles/test_cloud_phone.dir/cloud/persistence_test.cpp.o.d"
  "CMakeFiles/test_cloud_phone.dir/cloud/quality_test.cpp.o"
  "CMakeFiles/test_cloud_phone.dir/cloud/quality_test.cpp.o.d"
  "CMakeFiles/test_cloud_phone.dir/cloud/server_test.cpp.o"
  "CMakeFiles/test_cloud_phone.dir/cloud/server_test.cpp.o.d"
  "CMakeFiles/test_cloud_phone.dir/cloud/storage_test.cpp.o"
  "CMakeFiles/test_cloud_phone.dir/cloud/storage_test.cpp.o.d"
  "CMakeFiles/test_cloud_phone.dir/cloud/streaming_test.cpp.o"
  "CMakeFiles/test_cloud_phone.dir/cloud/streaming_test.cpp.o.d"
  "CMakeFiles/test_cloud_phone.dir/phone/app_test.cpp.o"
  "CMakeFiles/test_cloud_phone.dir/phone/app_test.cpp.o.d"
  "CMakeFiles/test_cloud_phone.dir/phone/relay_test.cpp.o"
  "CMakeFiles/test_cloud_phone.dir/phone/relay_test.cpp.o.d"
  "test_cloud_phone"
  "test_cloud_phone.pdb"
  "test_cloud_phone[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cloud_phone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
