file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/attacker_test.cpp.o"
  "CMakeFiles/test_core.dir/core/attacker_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/controller_test.cpp.o"
  "CMakeFiles/test_core.dir/core/controller_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/crypto_roundtrip_test.cpp.o"
  "CMakeFiles/test_core.dir/core/crypto_roundtrip_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/diagnostic_test.cpp.o"
  "CMakeFiles/test_core.dir/core/diagnostic_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/escrow_test.cpp.o"
  "CMakeFiles/test_core.dir/core/escrow_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/key_test.cpp.o"
  "CMakeFiles/test_core.dir/core/key_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/mux_test.cpp.o"
  "CMakeFiles/test_core.dir/core/mux_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/peak_report_test.cpp.o"
  "CMakeFiles/test_core.dir/core/peak_report_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/percell_test.cpp.o"
  "CMakeFiles/test_core.dir/core/percell_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
