
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/compress/bitio_test.cpp" "tests/CMakeFiles/test_compress.dir/compress/bitio_test.cpp.o" "gcc" "tests/CMakeFiles/test_compress.dir/compress/bitio_test.cpp.o.d"
  "/root/repo/tests/compress/codec_test.cpp" "tests/CMakeFiles/test_compress.dir/compress/codec_test.cpp.o" "gcc" "tests/CMakeFiles/test_compress.dir/compress/codec_test.cpp.o.d"
  "/root/repo/tests/compress/crc32_test.cpp" "tests/CMakeFiles/test_compress.dir/compress/crc32_test.cpp.o" "gcc" "tests/CMakeFiles/test_compress.dir/compress/crc32_test.cpp.o.d"
  "/root/repo/tests/compress/huffman_test.cpp" "tests/CMakeFiles/test_compress.dir/compress/huffman_test.cpp.o" "gcc" "tests/CMakeFiles/test_compress.dir/compress/huffman_test.cpp.o.d"
  "/root/repo/tests/compress/lzss_test.cpp" "tests/CMakeFiles/test_compress.dir/compress/lzss_test.cpp.o" "gcc" "tests/CMakeFiles/test_compress.dir/compress/lzss_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/medsen_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/crypto/CMakeFiles/medsen_crypto.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dsp/CMakeFiles/medsen_dsp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/compress/CMakeFiles/medsen_compress.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/medsen_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/medsen_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/auth/CMakeFiles/medsen_auth.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/medsen_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cloud/CMakeFiles/medsen_cloud.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/phone/CMakeFiles/medsen_phone.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
