file(REMOVE_RECURSE
  "CMakeFiles/test_compress.dir/compress/bitio_test.cpp.o"
  "CMakeFiles/test_compress.dir/compress/bitio_test.cpp.o.d"
  "CMakeFiles/test_compress.dir/compress/codec_test.cpp.o"
  "CMakeFiles/test_compress.dir/compress/codec_test.cpp.o.d"
  "CMakeFiles/test_compress.dir/compress/crc32_test.cpp.o"
  "CMakeFiles/test_compress.dir/compress/crc32_test.cpp.o.d"
  "CMakeFiles/test_compress.dir/compress/huffman_test.cpp.o"
  "CMakeFiles/test_compress.dir/compress/huffman_test.cpp.o.d"
  "CMakeFiles/test_compress.dir/compress/lzss_test.cpp.o"
  "CMakeFiles/test_compress.dir/compress/lzss_test.cpp.o.d"
  "test_compress"
  "test_compress.pdb"
  "test_compress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
