# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/test_util[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_crypto[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_dsp[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_compress[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_sim[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_core[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_auth[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_net[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_cloud_phone[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_integration[1]_include.cmake")
