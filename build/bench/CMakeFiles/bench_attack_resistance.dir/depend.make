# Empty dependencies file for bench_attack_resistance.
# This may be replaced when dependencies are built.
