file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_aes.dir/ablation_aes.cpp.o"
  "CMakeFiles/bench_ablation_aes.dir/ablation_aes.cpp.o.d"
  "bench_ablation_aes"
  "bench_ablation_aes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_aes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
