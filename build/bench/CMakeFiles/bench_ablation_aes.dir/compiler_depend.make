# Empty compiler generated dependencies file for bench_ablation_aes.
# This may be replaced when dependencies are built.
