# Empty compiler generated dependencies file for bench_fig15_frequency_response.
# This may be replaced when dependencies are built.
