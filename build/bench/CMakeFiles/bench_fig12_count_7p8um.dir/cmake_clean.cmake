file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_count_7p8um.dir/fig12_count_7p8um.cpp.o"
  "CMakeFiles/bench_fig12_count_7p8um.dir/fig12_count_7p8um.cpp.o.d"
  "bench_fig12_count_7p8um"
  "bench_fig12_count_7p8um.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_count_7p8um.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
