# Empty dependencies file for bench_fig12_count_7p8um.
# This may be replaced when dependencies are built.
