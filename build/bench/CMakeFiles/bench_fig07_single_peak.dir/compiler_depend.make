# Empty compiler generated dependencies file for bench_fig07_single_peak.
# This may be replaced when dependencies are built.
