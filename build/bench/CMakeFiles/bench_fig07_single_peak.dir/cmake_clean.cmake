file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_single_peak.dir/fig07_single_peak.cpp.o"
  "CMakeFiles/bench_fig07_single_peak.dir/fig07_single_peak.cpp.o.d"
  "bench_fig07_single_peak"
  "bench_fig07_single_peak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_single_peak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
