file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_count_3p58um.dir/fig13_count_3p58um.cpp.o"
  "CMakeFiles/bench_fig13_count_3p58um.dir/fig13_count_3p58um.cpp.o.d"
  "bench_fig13_count_3p58um"
  "bench_fig13_count_3p58um.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_count_3p58um.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
