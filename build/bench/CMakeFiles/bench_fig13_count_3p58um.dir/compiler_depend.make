# Empty compiler generated dependencies file for bench_fig13_count_3p58um.
# This may be replaced when dependencies are built.
