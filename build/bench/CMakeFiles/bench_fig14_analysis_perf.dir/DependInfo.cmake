
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig14_analysis_perf.cpp" "bench/CMakeFiles/bench_fig14_analysis_perf.dir/fig14_analysis_perf.cpp.o" "gcc" "bench/CMakeFiles/bench_fig14_analysis_perf.dir/fig14_analysis_perf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/medsen_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/medsen_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/medsen_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/medsen_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/medsen_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/medsen_core.dir/DependInfo.cmake"
  "/root/repo/build/src/auth/CMakeFiles/medsen_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/medsen_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/medsen_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/phone/CMakeFiles/medsen_phone.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
