file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_analysis_perf.dir/fig14_analysis_perf.cpp.o"
  "CMakeFiles/bench_fig14_analysis_perf.dir/fig14_analysis_perf.cpp.o.d"
  "bench_fig14_analysis_perf"
  "bench_fig14_analysis_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_analysis_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
