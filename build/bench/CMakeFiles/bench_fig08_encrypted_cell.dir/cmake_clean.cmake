file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_encrypted_cell.dir/fig08_encrypted_cell.cpp.o"
  "CMakeFiles/bench_fig08_encrypted_cell.dir/fig08_encrypted_cell.cpp.o.d"
  "bench_fig08_encrypted_cell"
  "bench_fig08_encrypted_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_encrypted_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
