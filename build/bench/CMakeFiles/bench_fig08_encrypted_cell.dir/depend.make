# Empty dependencies file for bench_fig08_encrypted_cell.
# This may be replaced when dependencies are built.
