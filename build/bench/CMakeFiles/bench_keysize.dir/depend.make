# Empty dependencies file for bench_keysize.
# This may be replaced when dependencies are built.
