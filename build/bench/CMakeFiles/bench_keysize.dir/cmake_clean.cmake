file(REMOVE_RECURSE
  "CMakeFiles/bench_keysize.dir/keysize.cpp.o"
  "CMakeFiles/bench_keysize.dir/keysize.cpp.o.d"
  "bench_keysize"
  "bench_keysize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_keysize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
