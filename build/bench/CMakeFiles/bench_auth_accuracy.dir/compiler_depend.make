# Empty compiler generated dependencies file for bench_auth_accuracy.
# This may be replaced when dependencies are built.
