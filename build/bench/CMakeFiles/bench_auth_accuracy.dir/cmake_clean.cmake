file(REMOVE_RECURSE
  "CMakeFiles/bench_auth_accuracy.dir/auth_accuracy.cpp.o"
  "CMakeFiles/bench_auth_accuracy.dir/auth_accuracy.cpp.o.d"
  "bench_auth_accuracy"
  "bench_auth_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_auth_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
