# Empty dependencies file for bench_streaming_analysis.
# This may be replaced when dependencies are built.
