file(REMOVE_RECURSE
  "CMakeFiles/bench_streaming_analysis.dir/streaming_analysis.cpp.o"
  "CMakeFiles/bench_streaming_analysis.dir/streaming_analysis.cpp.o.d"
  "bench_streaming_analysis"
  "bench_streaming_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_streaming_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
