file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_electrode_keying.dir/fig11_electrode_keying.cpp.o"
  "CMakeFiles/bench_fig11_electrode_keying.dir/fig11_electrode_keying.cpp.o.d"
  "bench_fig11_electrode_keying"
  "bench_fig11_electrode_keying.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_electrode_keying.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
