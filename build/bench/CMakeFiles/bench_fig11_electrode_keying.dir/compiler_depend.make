# Empty compiler generated dependencies file for bench_fig11_electrode_keying.
# This may be replaced when dependencies are built.
