file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_clusters.dir/fig16_clusters.cpp.o"
  "CMakeFiles/bench_fig16_clusters.dir/fig16_clusters.cpp.o.d"
  "bench_fig16_clusters"
  "bench_fig16_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
