file(REMOVE_RECURSE
  "CMakeFiles/hiv_monitoring.dir/hiv_monitoring.cpp.o"
  "CMakeFiles/hiv_monitoring.dir/hiv_monitoring.cpp.o.d"
  "hiv_monitoring"
  "hiv_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hiv_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
