# Empty compiler generated dependencies file for hiv_monitoring.
# This may be replaced when dependencies are built.
