# Empty compiler generated dependencies file for medsen_cli.
# This may be replaced when dependencies are built.
