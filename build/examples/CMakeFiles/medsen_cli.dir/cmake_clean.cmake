file(REMOVE_RECURSE
  "CMakeFiles/medsen_cli.dir/medsen_cli.cpp.o"
  "CMakeFiles/medsen_cli.dir/medsen_cli.cpp.o.d"
  "medsen_cli"
  "medsen_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medsen_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
