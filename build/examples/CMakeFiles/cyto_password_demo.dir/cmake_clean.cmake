file(REMOVE_RECURSE
  "CMakeFiles/cyto_password_demo.dir/cyto_password_demo.cpp.o"
  "CMakeFiles/cyto_password_demo.dir/cyto_password_demo.cpp.o.d"
  "cyto_password_demo"
  "cyto_password_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyto_password_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
