# Empty compiler generated dependencies file for cyto_password_demo.
# This may be replaced when dependencies are built.
