file(REMOVE_RECURSE
  "CMakeFiles/full_assay.dir/full_assay.cpp.o"
  "CMakeFiles/full_assay.dir/full_assay.cpp.o.d"
  "full_assay"
  "full_assay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_assay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
