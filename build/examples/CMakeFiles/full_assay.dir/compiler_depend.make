# Empty compiler generated dependencies file for full_assay.
# This may be replaced when dependencies are built.
