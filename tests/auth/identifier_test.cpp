#include "auth/identifier.h"

#include <gtest/gtest.h>

namespace medsen::auth {
namespace {

TEST(Identifier, ToStringFormat) {
  CytoCode code;
  code.levels = {2, 0, 4};
  EXPECT_EQ(code.to_string(), "2-0-4");
}

TEST(Identifier, EncodeMixtureSkipsAbsent) {
  CytoAlphabet alphabet;
  CytoCode code;
  code.levels = {0, 2};  // first type absent, second at level 2 (300/uL)
  const auto mixture = encode_mixture(alphabet, code);
  ASSERT_EQ(mixture.size(), 1u);
  EXPECT_EQ(mixture[0].type, sim::ParticleType::kBead780);
  EXPECT_DOUBLE_EQ(mixture[0].concentration_per_ul, 300.0);
}

TEST(Identifier, EncodeRejectsMismatchedCode) {
  CytoAlphabet alphabet;
  CytoCode code;
  code.levels = {1};
  EXPECT_THROW(encode_mixture(alphabet, code), std::invalid_argument);
  code.levels = {1, 99};
  EXPECT_THROW(encode_mixture(alphabet, code), std::invalid_argument);
}

TEST(Identifier, DecodeCensusNearestLevels) {
  CytoAlphabet alphabet;  // levels 0,150,300,500,750
  BeadCensus census;
  census.volume_ul = 2.0;
  census.counts = {290.0, 1480.0};  // 145/uL -> level 1; 740/uL -> level 4
  const CytoCode code = decode_census(alphabet, census);
  EXPECT_EQ(code.levels[0], 1);
  EXPECT_EQ(code.levels[1], 4);
}

TEST(Identifier, CensusDistanceZeroForExact) {
  CytoAlphabet alphabet;
  CytoCode code;
  code.levels = {1, 3};
  BeadCensus census;
  census.volume_ul = 1.0;
  census.counts = {150.0, 500.0};
  EXPECT_NEAR(census_distance(alphabet, code, census), 0.0, 1e-12);
}

TEST(Identifier, CensusDistanceInDecodeMarginUnits) {
  CytoAlphabet alphabet;  // levels 0,150,300,500,750
  CytoCode code;
  code.levels = {1, 0};
  BeadCensus census;
  census.volume_ul = 1.0;
  // 75/uL off level 1 whose decode margin is 150/2 = 75 -> exactly 1.0
  // (on the decoding boundary).
  census.counts = {225.0, 0.0};
  EXPECT_NEAR(census_distance(alphabet, code, census), 1.0, 1e-12);
}

TEST(Identifier, CensusDistanceUsesPerLevelMargin) {
  CytoAlphabet alphabet;  // top level 750, nearest gap 250 -> margin 125
  CytoCode code;
  code.levels = {4, 0};
  BeadCensus census;
  census.volume_ul = 1.0;
  census.counts = {687.5, 0.0};  // 62.5 off -> 0.5 margins
  EXPECT_NEAR(census_distance(alphabet, code, census), 0.5, 1e-12);
}

TEST(Identifier, HammingDistance) {
  CytoCode a, b;
  a.levels = {1, 2, 3};
  b.levels = {1, 0, 3};
  EXPECT_EQ(hamming_distance(a, b), 1u);
  EXPECT_EQ(hamming_distance(a, a), 0u);
  b.levels = {0, 0};
  EXPECT_THROW(hamming_distance(a, b), std::invalid_argument);
}

TEST(Identifier, RandomCodeNeverAllZero) {
  CytoAlphabet alphabet;
  crypto::ChaChaRng rng(3);
  for (int i = 0; i < 500; ++i) {
    const CytoCode code = random_code(alphabet, rng);
    bool any = false;
    for (auto level : code.levels) {
      EXPECT_LT(level, alphabet.levels());
      if (level != 0) any = true;
    }
    EXPECT_TRUE(any);
  }
}

TEST(Identifier, EnumerateCodesCoversSpace) {
  CytoAlphabet alphabet;
  alphabet.concentration_levels_per_ul = {0.0, 100.0, 200.0};
  const auto all = enumerate_codes(alphabet);
  EXPECT_EQ(all.size(), 9u);  // 3^2
  // All distinct.
  for (std::size_t i = 0; i < all.size(); ++i)
    for (std::size_t j = i + 1; j < all.size(); ++j)
      EXPECT_FALSE(all[i] == all[j]);
}

TEST(Identifier, SerializationRoundTrip) {
  CytoCode code;
  code.levels = {0, 3, 1, 4};
  const auto restored = deserialize_code(serialize_code(code));
  EXPECT_EQ(restored, code);
}

TEST(Identifier, TrailingBytesRejected) {
  CytoCode code;
  code.levels = {0, 3, 1, 4};
  auto bytes = serialize_code(code);
  bytes.push_back(0x09);
  EXPECT_THROW(deserialize_code(bytes), std::runtime_error);
  bytes.pop_back();
  EXPECT_NO_THROW(deserialize_code(bytes));
}

TEST(Identifier, HostileLevelCountRejectedBeforeAllocation) {
  const std::vector<std::uint8_t> bytes = {0xFF, 0xFF, 0xFF, 0xFF};
  EXPECT_THROW(deserialize_code(bytes), std::out_of_range);
}

}  // namespace
}  // namespace medsen::auth
