#include "auth/roc.h"

#include <gtest/gtest.h>

namespace medsen::auth {
namespace {

// Well-separated populations: genuine distances cluster low, impostors
// high.
const std::vector<double> kGenuine = {0.1, 0.15, 0.2, 0.25, 0.3};
const std::vector<double> kImpostor = {1.5, 1.8, 2.0, 2.5, 3.0};

TEST(Roc, PerfectSeparationHasZeroEer) {
  EXPECT_DOUBLE_EQ(equal_error_rate(kGenuine, kImpostor), 0.0);
}

TEST(Roc, PointAtThresholdCountsCorrectly) {
  const auto point = roc_at(kGenuine, kImpostor, 0.2);
  EXPECT_DOUBLE_EQ(point.far, 0.0);
  EXPECT_DOUBLE_EQ(point.frr, 0.4);  // 0.25 and 0.3 rejected
  const auto loose = roc_at(kGenuine, kImpostor, 2.0);
  EXPECT_DOUBLE_EQ(loose.frr, 0.0);
  EXPECT_DOUBLE_EQ(loose.far, 0.6);  // 1.5, 1.8, 2.0 accepted
}

TEST(Roc, CurveMonotonicity) {
  const auto curve = roc_curve(kGenuine, kImpostor);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].threshold, curve[i - 1].threshold);
    EXPECT_GE(curve[i].far, curve[i - 1].far);
    EXPECT_LE(curve[i].frr, curve[i - 1].frr);
  }
}

TEST(Roc, OverlappingPopulationsPositiveEer) {
  const std::vector<double> genuine = {0.1, 0.3, 0.5, 0.7, 0.9};
  const std::vector<double> impostor = {0.4, 0.6, 0.8, 1.0, 1.2};
  const double eer = equal_error_rate(genuine, impostor);
  EXPECT_GT(eer, 0.0);
  EXPECT_LT(eer, 0.5);
}

TEST(Roc, IdenticalPopulationsEerIsHalf) {
  const std::vector<double> same = {0.5, 0.6, 0.7, 0.8};
  EXPECT_NEAR(equal_error_rate(same, same), 0.5, 0.15);
}

TEST(Roc, ThresholdForFrr) {
  // FRR 0 requires accepting the largest genuine distance.
  EXPECT_DOUBLE_EQ(threshold_for_frr(kGenuine, 0.0), 0.3);
  // Tolerating 20% rejection drops the top sample.
  EXPECT_DOUBLE_EQ(threshold_for_frr(kGenuine, 0.2), 0.25);
  EXPECT_THROW(threshold_for_frr({}, 0.1), std::invalid_argument);
}

TEST(Roc, EmptyPopulationsAreSafe) {
  const auto point = roc_at({}, {}, 1.0);
  EXPECT_DOUBLE_EQ(point.far, 0.0);
  EXPECT_DOUBLE_EQ(point.frr, 0.0);
}

}  // namespace
}  // namespace medsen::auth
