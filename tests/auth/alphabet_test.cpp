#include "auth/alphabet.h"

#include <gtest/gtest.h>

#include <cmath>

namespace medsen::auth {
namespace {

TEST(Alphabet, DefaultIsValid) {
  CytoAlphabet alphabet;
  EXPECT_NO_THROW(alphabet.validate());
  EXPECT_EQ(alphabet.characters(), 2u);
  EXPECT_EQ(alphabet.levels(), 5u);
}

TEST(Alphabet, SpaceSizeIsLevelsPowCharacters) {
  CytoAlphabet alphabet;
  EXPECT_EQ(alphabet.space_size(), 25u);  // 5^2
  alphabet.concentration_levels_per_ul = {0.0, 100.0, 200.0};
  EXPECT_EQ(alphabet.space_size(), 9u);  // 3^2
}

TEST(Alphabet, EntropyBits) {
  CytoAlphabet alphabet;
  EXPECT_NEAR(alphabet.entropy_bits(), 2.0 * std::log2(5.0), 1e-12);
}

TEST(Alphabet, NearestLevelPicksClosest) {
  CytoAlphabet alphabet;  // levels 0, 150, 300, 500, 750
  EXPECT_EQ(alphabet.nearest_level(0.0), 0);
  EXPECT_EQ(alphabet.nearest_level(70.0), 0);
  EXPECT_EQ(alphabet.nearest_level(80.0), 1);
  EXPECT_EQ(alphabet.nearest_level(160.0), 1);
  EXPECT_EQ(alphabet.nearest_level(10000.0), 4);
}

TEST(Alphabet, MinLevelSeparation) {
  CytoAlphabet alphabet;
  EXPECT_DOUBLE_EQ(alphabet.min_level_separation(), 150.0);
}

TEST(Alphabet, ValidateRejectsBloodCells) {
  CytoAlphabet alphabet;
  alphabet.bead_types.push_back(sim::ParticleType::kBloodCell);
  EXPECT_THROW(alphabet.validate(), std::invalid_argument);
}

TEST(Alphabet, ValidateRejectsNonIncreasingLevels) {
  CytoAlphabet alphabet;
  alphabet.concentration_levels_per_ul = {0.0, 100.0, 100.0};
  EXPECT_THROW(alphabet.validate(), std::invalid_argument);
}

TEST(Alphabet, ValidateRejectsDegenerate) {
  CytoAlphabet alphabet;
  alphabet.bead_types.clear();
  EXPECT_THROW(alphabet.validate(), std::invalid_argument);
  CytoAlphabet single;
  single.concentration_levels_per_ul = {0.0};
  EXPECT_THROW(single.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace medsen::auth
