#include "auth/verifier.h"

#include <gtest/gtest.h>

namespace medsen::auth {
namespace {

/// Synthesize decoded peaks for a given bead census plus blood cells.
std::vector<core::DecodedPeak> synth_peaks(
    const ClassifierConfig& config, std::size_t small_beads,
    std::size_t large_beads, std::size_t blood_cells, std::uint64_t seed) {
  crypto::ChaChaRng rng(seed);
  std::vector<core::DecodedPeak> peaks;
  auto add = [&](sim::ParticleType type, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      const auto example =
          ParticleClassifier::synth_example(type, config, rng);
      core::DecodedPeak peak;
      peak.time_s = static_cast<double>(peaks.size()) * 0.1;
      peak.width_s = 0.02;
      peak.amplitudes = example.features;
      peaks.push_back(std::move(peak));
    }
  };
  add(sim::ParticleType::kBead358, small_beads);
  add(sim::ParticleType::kBead780, large_beads);
  add(sim::ParticleType::kBloodCell, blood_cells);
  return peaks;
}

struct VerifierRig {
  CytoAlphabet alphabet;
  Verifier verifier{alphabet, ParticleClassifier::train({}), {}};
  EnrollmentDatabase db{alphabet};
};

TEST(Verifier, CensusCountsBeadsNotBlood) {
  VerifierRig rig;
  const auto peaks =
      synth_peaks(rig.verifier.classifier().config(), 30, 10, 100, 1);
  const BeadCensus census = rig.verifier.census_from_peaks(peaks, 1.0);
  ASSERT_EQ(census.counts.size(), 2u);
  EXPECT_NEAR(census.counts[0], 30.0, 6.0);
  EXPECT_NEAR(census.counts[1], 10.0, 4.0);
}

TEST(Verifier, AuthenticatesEnrolledUser) {
  VerifierRig rig;
  CytoCode code;
  code.levels = {1, 2};  // 150/uL small, 300/uL large
  rig.db.enroll("alice", code);
  // 1 uL pumped: expect ~150 small, ~300 large beads.
  const auto peaks =
      synth_peaks(rig.verifier.classifier().config(), 150, 300, 400, 2);
  const auto result = rig.verifier.authenticate_peaks(peaks, 1.0, rig.db);
  EXPECT_TRUE(result.authenticated);
  EXPECT_EQ(result.user_id, "alice");
  EXPECT_EQ(result.decoded_code, code);
}

TEST(Verifier, RejectsWrongPassword) {
  VerifierRig rig;
  CytoCode code;
  code.levels = {4, 4};  // 750/uL each
  rig.db.enroll("alice", code);
  // Submit a much weaker mixture.
  const auto peaks =
      synth_peaks(rig.verifier.classifier().config(), 150, 150, 200, 3);
  const auto result = rig.verifier.authenticate_peaks(peaks, 1.0, rig.db);
  EXPECT_FALSE(result.authenticated);
  EXPECT_TRUE(result.user_id.empty());
}

TEST(Verifier, DistinguishesMultipleUsers) {
  VerifierRig rig;
  CytoCode alice_code, bob_code;
  alice_code.levels = {1, 0};
  bob_code.levels = {0, 2};
  rig.db.enroll("alice", alice_code);
  rig.db.enroll("bob", bob_code);

  const auto alice_peaks =
      synth_peaks(rig.verifier.classifier().config(), 150, 0, 300, 4);
  const auto bob_peaks =
      synth_peaks(rig.verifier.classifier().config(), 0, 300, 300, 5);
  EXPECT_EQ(rig.verifier.authenticate_peaks(alice_peaks, 1.0, rig.db).user_id,
            "alice");
  EXPECT_EQ(rig.verifier.authenticate_peaks(bob_peaks, 1.0, rig.db).user_id,
            "bob");
}

TEST(Verifier, IntegrityCheckMatchesStoredCode) {
  VerifierRig rig;
  CytoCode code;
  code.levels = {1, 2};
  BeadCensus census;
  census.volume_ul = 1.0;
  census.counts = {155.0, 290.0};
  EXPECT_TRUE(rig.verifier.verify_integrity(census, code));
  census.counts = {700.0, 290.0};
  EXPECT_FALSE(rig.verifier.verify_integrity(census, code));
}

TEST(Verifier, EmptyPeaksGiveZeroCensus) {
  VerifierRig rig;
  const BeadCensus census = rig.verifier.census_from_peaks({}, 1.0);
  for (double c : census.counts) EXPECT_DOUBLE_EQ(c, 0.0);
  const auto result = rig.verifier.authenticate(census, rig.db);
  EXPECT_FALSE(result.authenticated);
}

}  // namespace
}  // namespace medsen::auth
