#include "auth/enrollment.h"

#include <gtest/gtest.h>

namespace medsen::auth {
namespace {

CytoCode code_of(std::initializer_list<std::uint8_t> levels) {
  CytoCode code;
  code.levels = levels;
  return code;
}

TEST(Enrollment, EnrollAndLookup) {
  EnrollmentDatabase db{CytoAlphabet{}};
  db.enroll("alice", code_of({1, 2}));
  EXPECT_EQ(db.lookup(code_of({1, 2})), "alice");
  EXPECT_EQ(db.lookup(code_of({2, 1})), std::nullopt);
  EXPECT_EQ(db.size(), 1u);
}

TEST(Enrollment, RejectsDuplicateCode) {
  EnrollmentDatabase db{CytoAlphabet{}};
  db.enroll("alice", code_of({1, 2}));
  EXPECT_THROW(db.enroll("bob", code_of({1, 2})), std::invalid_argument);
}

TEST(Enrollment, RejectsDuplicateUser) {
  EnrollmentDatabase db{CytoAlphabet{}};
  db.enroll("alice", code_of({1, 2}));
  EXPECT_THROW(db.enroll("alice", code_of({2, 2})), std::invalid_argument);
}

TEST(Enrollment, RejectsAllZeroCode) {
  EnrollmentDatabase db{CytoAlphabet{}};
  EXPECT_THROW(db.enroll("alice", code_of({0, 0})), std::invalid_argument);
}

TEST(Enrollment, RejectsMalformedCode) {
  EnrollmentDatabase db{CytoAlphabet{}};
  EXPECT_THROW(db.enroll("alice", code_of({1})), std::invalid_argument);
  EXPECT_THROW(db.enroll("alice", code_of({1, 9})), std::invalid_argument);
}

TEST(Enrollment, EnrollRandomAvoidsCollisions) {
  EnrollmentDatabase db{CytoAlphabet{}};
  crypto::ChaChaRng rng(1);
  std::vector<CytoCode> codes;
  for (int i = 0; i < 20; ++i)
    codes.push_back(db.enroll_random("user" + std::to_string(i), rng));
  for (std::size_t i = 0; i < codes.size(); ++i)
    for (std::size_t j = i + 1; j < codes.size(); ++j)
      EXPECT_FALSE(codes[i] == codes[j]);
}

TEST(Enrollment, EnrollRandomExhaustsSpaceGracefully) {
  CytoAlphabet tiny;
  tiny.concentration_levels_per_ul = {0.0, 200.0};  // space = 4, 3 usable
  EnrollmentDatabase db{tiny};
  crypto::ChaChaRng rng(2);
  (void)db.enroll_random("a", rng);
  (void)db.enroll_random("b", rng);
  (void)db.enroll_random("c", rng);
  EXPECT_THROW((void)db.enroll_random("d", rng), std::runtime_error);
}

TEST(Enrollment, MatchCensusFindsNearest) {
  EnrollmentDatabase db{CytoAlphabet{}};
  db.enroll("alice", code_of({1, 0}));  // 150, 0 per uL
  db.enroll("bob", code_of({0, 2}));    // 0, 300 per uL
  BeadCensus census;
  census.volume_ul = 1.0;
  census.counts = {140.0, 10.0};
  const auto match = db.match_census(census);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->record.user_id, "alice");
  EXPECT_LT(match->distance, 0.2);
}

TEST(Enrollment, MatchCensusEmptyDbIsNullopt) {
  EnrollmentDatabase db{CytoAlphabet{}};
  BeadCensus census;
  census.volume_ul = 1.0;
  census.counts = {0.0, 0.0};
  EXPECT_FALSE(db.match_census(census).has_value());
}

TEST(Enrollment, RemoveUser) {
  EnrollmentDatabase db{CytoAlphabet{}};
  db.enroll("alice", code_of({1, 2}));
  EXPECT_TRUE(db.remove("alice"));
  EXPECT_FALSE(db.remove("alice"));
  EXPECT_EQ(db.size(), 0u);
}

}  // namespace
}  // namespace medsen::auth
