#include "auth/classifier.h"

#include <gtest/gtest.h>

namespace medsen::auth {
namespace {

TEST(Classifier, SeparatesThreeTypesCleanly) {
  // Fig. 16: the three clusters have clear margins.
  const auto classifier = ParticleClassifier::train({});
  crypto::ChaChaRng rng(99);
  dsp::ConfusionMatrix cm(sim::kParticleTypeCount);
  const ClassifierConfig& config = classifier.config();
  for (std::size_t t = 0; t < sim::kParticleTypeCount; ++t) {
    for (int i = 0; i < 200; ++i) {
      const auto example = ParticleClassifier::synth_example(
          static_cast<sim::ParticleType>(t), config, rng);
      cm.add(t, static_cast<std::size_t>(
                    classifier.classify(example.features)));
    }
  }
  EXPECT_GT(cm.accuracy(), 0.95) << cm.to_string();
}

TEST(Classifier, BloodVsBeadSeparationUsesHighFrequency) {
  // A blood cell and a bead with similar 500 kHz amplitude are separable
  // because the cell's response collapses at >= 2 MHz (Fig. 15).
  ClassifierConfig config;
  config.carriers_hz = {5.0e5, 2.5e6};
  const auto classifier = ParticleClassifier::train(config);
  // Nominal blood cell features.
  sim::Particle cell{sim::ParticleType::kBloodCell, 7.0};
  dsp::FeatureVector cell_features = {
      sim::peak_contrast(cell, 5.0e5), sim::peak_contrast(cell, 2.5e6)};
  EXPECT_EQ(classifier.classify(cell_features),
            sim::ParticleType::kBloodCell);
  // Same low-frequency amplitude but flat response -> must NOT be blood.
  dsp::FeatureVector bead_like = {cell_features[0], cell_features[0]};
  EXPECT_NE(classifier.classify(bead_like), sim::ParticleType::kBloodCell);
}

TEST(Classifier, MarginHighForNominalExamples) {
  const auto classifier = ParticleClassifier::train({});
  sim::Particle big{sim::ParticleType::kBead780, 7.8};
  dsp::FeatureVector features;
  for (double f : classifier.config().carriers_hz)
    features.push_back(sim::peak_contrast(big, f));
  EXPECT_GT(classifier.margin(features), 0.3);
}

TEST(Classifier, FeaturesOfDecodedPeakPassThrough) {
  core::DecodedPeak peak;
  peak.amplitudes = {0.001, 0.002};
  EXPECT_EQ(ParticleClassifier::features_of(peak), peak.amplitudes);
}

TEST(Classifier, EmptyCarriersThrows) {
  ClassifierConfig config;
  config.carriers_hz.clear();
  EXPECT_THROW(ParticleClassifier::train(config), std::invalid_argument);
}

TEST(Classifier, DeterministicForSeed) {
  const auto a = ParticleClassifier::train({});
  const auto b = ParticleClassifier::train({});
  const auto& ca = a.model().centroids();
  const auto& cb = b.model().centroids();
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t i = 0; i < ca.size(); ++i)
    for (std::size_t d = 0; d < ca[i].size(); ++d)
      EXPECT_DOUBLE_EQ(ca[i][d], cb[i][d]);
}

}  // namespace
}  // namespace medsen::auth
