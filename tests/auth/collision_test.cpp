#include "auth/collision.h"

#include <gtest/gtest.h>

namespace medsen::auth {
namespace {

TEST(Collision, NormalTailValues) {
  EXPECT_NEAR(normal_tail(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_tail(1.96), 0.025, 1e-3);
  EXPECT_LT(normal_tail(6.0), 1e-8);
}

TEST(Collision, LargerVolumeReducesConfusion) {
  CytoAlphabet alphabet;
  CollisionModel small_volume;
  small_volume.volume_ul = 1.0;
  CollisionModel large_volume;
  large_volume.volume_ul = 20.0;
  const auto a = analyze_collisions(alphabet, small_volume);
  const auto b = analyze_collisions(alphabet, large_volume);
  EXPECT_GT(a.per_character_confusion, b.per_character_confusion);
}

TEST(Collision, WiderLevelsReduceConfusion) {
  CytoAlphabet dense;
  dense.concentration_levels_per_ul = {0.0, 50.0, 100.0, 150.0, 200.0};
  CytoAlphabet sparse;
  sparse.concentration_levels_per_ul = {0.0, 200.0, 400.0, 600.0, 800.0};
  CollisionModel model;
  model.volume_ul = 2.0;
  EXPECT_GT(analyze_collisions(dense, model).per_character_confusion,
            analyze_collisions(sparse, model).per_character_confusion);
}

TEST(Collision, CodeErrorGrowsWithCharacters) {
  CytoAlphabet two;
  CytoAlphabet three = two;
  three.bead_types.push_back(sim::ParticleType::kBead358);
  // (Type duplication is fine for the arithmetic being tested; validation
  // of physical realizability is a separate concern.)
  CollisionModel model;
  model.volume_ul = 2.0;
  const auto a = analyze_collisions(two, model);
  const auto b = analyze_collisions(three, model);
  EXPECT_LT(a.code_error_probability, b.code_error_probability + 1e-12);
}

TEST(Collision, EffectiveEntropyAtMostNominal) {
  CytoAlphabet alphabet;
  CollisionModel model;
  model.volume_ul = 3.0;
  const auto analysis = analyze_collisions(alphabet, model);
  EXPECT_LE(analysis.effective_entropy_bits,
            analysis.nominal_entropy_bits + 1e-12);
  EXPECT_GT(analysis.effective_entropy_bits, 0.0);
}

TEST(Collision, BirthdayBoundMonotone) {
  CytoAlphabet alphabet;  // space 25
  EXPECT_DOUBLE_EQ(birthday_collision_probability(alphabet, 0), 0.0);
  EXPECT_DOUBLE_EQ(birthday_collision_probability(alphabet, 1), 0.0);
  double prev = 0.0;
  for (std::uint64_t users = 2; users <= 10; ++users) {
    const double p = birthday_collision_probability(alphabet, users);
    EXPECT_GT(p, prev);
    prev = p;
  }
  EXPECT_DOUBLE_EQ(birthday_collision_probability(alphabet, 25), 1.0);
}

TEST(Collision, RandomCollisionIsInverseSpace) {
  CytoAlphabet alphabet;
  CollisionModel model;
  const auto analysis = analyze_collisions(alphabet, model);
  EXPECT_NEAR(analysis.random_collision_probability, 1.0 / 25.0, 1e-12);
}

TEST(Collision, PaperObservationLowConcentrationsBetterResolution) {
  // Paper Section VII-C: lower concentrations have less variance, so a
  // low-level pair is harder to confuse than a high-level pair at the
  // same separation. sigma ~ sqrt(c) => confusion grows with c.
  CytoAlphabet low;
  low.concentration_levels_per_ul = {0.0, 100.0, 200.0};
  CytoAlphabet high;
  high.concentration_levels_per_ul = {0.0, 700.0, 800.0};
  CollisionModel model;
  model.volume_ul = 2.0;
  model.classifier_error = 0.0;
  EXPECT_LT(analyze_collisions(low, model).per_character_confusion,
            analyze_collisions(high, model).per_character_confusion);
}

}  // namespace
}  // namespace medsen::auth
