// Analyzer selftest fixture: a clean TCB file. Fixed-size storage, no
// throw, secrets wiped — the analyzer must report nothing here.
#include <array>
#include <cstdint>

#include "util/secure_zero.h"

namespace medsen::crypto {

std::uint8_t fold_key() {
  std::array<std::uint8_t, 16> round_key{};  // medsen: secret
  std::uint8_t acc = 0;
  for (std::uint8_t b : round_key) acc = static_cast<std::uint8_t>(acc ^ b);
  util::secure_wipe(round_key);
  return acc;
}

}  // namespace medsen::crypto
