// Analyzer selftest fixture: a clean cloud file — no locking
// primitives, no secrets, legal includes only.
#include "util/bytes.h"

namespace medsen::cloud {

int calm() { return 1; }

}  // namespace medsen::cloud
