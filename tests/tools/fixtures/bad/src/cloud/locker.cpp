// Analyzer selftest fixture: locks pass. The cloud service layer is
// sharded — a bare std::mutex here is exactly the primitive the
// cloud-lock rule exists to reject.
#include <mutex>

namespace medsen::cloud {

std::mutex g_table_mutex;  // cloud-lock

int locked_count() {
  std::lock_guard<std::mutex> lock(g_table_mutex);  // cloud-lock
  return 0;
}

}  // namespace medsen::cloud
