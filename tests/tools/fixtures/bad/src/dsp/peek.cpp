// Analyzer selftest fixture: layering pass. dsp may only include dsp
// and util — pulling in a crypto header is the inversion the analyzer
// must catch (keyed material leaking into the signal path).
#include "crypto/chacha20.h"
#include "util/bytes.h"

namespace medsen::dsp {

int peek() { return 0; }

}  // namespace medsen::dsp
