// Analyzer selftest fixture: every pass must fire on this tree.
// This file seeds the secret-flow pass (secret-log, secret-compare,
// secret-unwiped) and the tcb pass (tcb-heap, tcb-throw) — it lives in
// src/crypto/, which is inside the TCB.
#include <cstdint>
#include <iostream>
#include <stdexcept>
#include <vector>

namespace medsen::crypto {

void leak_key() {
  std::vector<std::uint8_t> device_key = {1, 2, 3};  // medsen: secret
  std::cout << "key byte: " << device_key[0] << "\n";      // secret-log
  std::vector<std::uint8_t> expected = {1, 2, 3};
  const bool match = (device_key == expected);             // secret-compare
  (void)match;
  // No secure_wipe anywhere in this stem pair => secret-unwiped.
  auto* scratch = new std::uint8_t[16];                    // tcb-heap
  if (scratch == nullptr) throw std::runtime_error("oom"); // tcb-throw
  delete[] scratch;
}

}  // namespace medsen::crypto
