#include "dsp/classify.h"

#include <gtest/gtest.h>

#include "crypto/chacha20.h"

namespace medsen::dsp {
namespace {

std::vector<LabeledPoint> labeled_blobs(std::size_t per_class,
                                        std::uint64_t seed) {
  crypto::ChaChaRng rng(seed);
  std::vector<LabeledPoint> data;
  const double centers[3][2] = {{0.0, 0.0}, {8.0, 0.0}, {0.0, 8.0}};
  for (std::size_t c = 0; c < 3; ++c)
    for (std::size_t i = 0; i < per_class; ++i)
      data.push_back({{centers[c][0] + rng.normal(0.0, 0.6),
                       centers[c][1] + rng.normal(0.0, 0.6)},
                      c});
  return data;
}

TEST(NearestCentroid, ClassifiesCleanBlobs) {
  const auto train = labeled_blobs(100, 1);
  NearestCentroidClassifier clf;
  clf.fit(train, 3);
  const auto test = labeled_blobs(50, 2);
  ConfusionMatrix cm(3);
  for (const auto& p : test) cm.add(p.label, clf.predict(p.features));
  EXPECT_GT(cm.accuracy(), 0.99);
}

TEST(NearestCentroid, CentroidsNearTrueCenters) {
  const auto train = labeled_blobs(200, 3);
  NearestCentroidClassifier clf;
  clf.fit(train, 3);
  EXPECT_NEAR(clf.centroids()[1][0], 8.0, 0.2);
  EXPECT_NEAR(clf.centroids()[1][1], 0.0, 0.2);
}

TEST(NearestCentroid, MarginHighAtCentroidLowAtBoundary) {
  const auto train = labeled_blobs(100, 4);
  NearestCentroidClassifier clf;
  clf.fit(train, 3);
  EXPECT_GT(clf.margin({0.0, 0.0}), 0.8);
  EXPECT_LT(clf.margin({4.0, 0.0}), 0.2);  // halfway between two centroids
}

TEST(NearestCentroid, EmptyTrainingThrows) {
  NearestCentroidClassifier clf;
  EXPECT_THROW(clf.fit(std::vector<LabeledPoint>{}, 2),
               std::invalid_argument);
}

TEST(NearestCentroid, MissingClassThrows) {
  std::vector<LabeledPoint> data = {{{1.0}, 0}};
  NearestCentroidClassifier clf;
  EXPECT_THROW(clf.fit(data, 2), std::invalid_argument);
}

TEST(NearestCentroid, LabelOutOfRangeThrows) {
  std::vector<LabeledPoint> data = {{{1.0}, 5}};
  NearestCentroidClassifier clf;
  EXPECT_THROW(clf.fit(data, 2), std::invalid_argument);
}

TEST(NearestCentroid, PredictBeforeFitThrows) {
  NearestCentroidClassifier clf;
  EXPECT_THROW((void)clf.predict({1.0}), std::logic_error);
}

TEST(Knn, ClassifiesCleanBlobs) {
  const auto train = labeled_blobs(80, 5);
  KnnClassifier clf(5);
  clf.fit(train, 3);
  const auto test = labeled_blobs(40, 6);
  ConfusionMatrix cm(3);
  for (const auto& p : test) cm.add(p.label, clf.predict(p.features));
  EXPECT_GT(cm.accuracy(), 0.99);
}

TEST(Knn, KLargerThanTrainingSetClamped) {
  std::vector<LabeledPoint> data = {{{0.0}, 0}, {{1.0}, 0}, {{10.0}, 1}};
  KnnClassifier clf(50);
  clf.fit(data, 2);
  // With k clamped to 3 the majority label is 0.
  EXPECT_EQ(clf.predict({0.5}), 0u);
}

TEST(ConfusionMatrix, AccuracyAndTotal) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(1, 1);
  cm.add(1, 0);
  EXPECT_EQ(cm.total(), 4u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.75);
}

TEST(ConfusionMatrix, OutOfRangeThrows) {
  ConfusionMatrix cm(2);
  // volatile keeps -O3 from constant-folding the deliberate bad index,
  // which would turn .at()'s runtime throw into a -Warray-bounds error.
  volatile std::size_t bad_class = 2;
  EXPECT_THROW(cm.add(bad_class, 0), std::out_of_range);
}

}  // namespace
}  // namespace medsen::dsp
