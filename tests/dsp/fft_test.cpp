#include "dsp/fft.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "crypto/chacha20.h"

namespace medsen::dsp {
namespace {

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(6);
  EXPECT_THROW(fft(data), std::invalid_argument);
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<std::complex<double>> data(16, 0.0);
  data[0] = 1.0;
  fft(data);
  for (const auto& x : data) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, DcGivesSingleBin) {
  std::vector<std::complex<double>> data(8, 1.0);
  fft(data);
  EXPECT_NEAR(data[0].real(), 8.0, 1e-12);
  for (std::size_t k = 1; k < 8; ++k) EXPECT_NEAR(std::abs(data[k]), 0.0, 1e-12);
}

TEST(Fft, SineConcentratesInItsBin) {
  const std::size_t n = 256;
  std::vector<double> xs(n);
  const std::size_t bin = 13;
  for (std::size_t i = 0; i < n; ++i)
    xs[i] = std::sin(2.0 * std::numbers::pi * static_cast<double>(bin) *
                     static_cast<double>(i) / static_cast<double>(n));
  const auto power = power_spectrum(xs);
  std::size_t argmax = 0;
  for (std::size_t k = 1; k < power.size(); ++k)
    if (power[k] > power[argmax]) argmax = k;
  EXPECT_EQ(argmax, bin);
  EXPECT_GT(power[bin], 1000.0 * power[bin + 3]);
}

TEST(Fft, RoundTrip) {
  crypto::ChaChaRng rng(8);
  std::vector<std::complex<double>> data(128);
  for (auto& x : data) x = {rng.normal(), rng.normal()};
  const auto original = data;
  fft(data);
  ifft(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-9);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-9);
  }
}

TEST(Fft, ParsevalHolds) {
  crypto::ChaChaRng rng(9);
  const std::size_t n = 64;
  std::vector<std::complex<double>> data(n);
  double time_energy = 0.0;
  for (auto& x : data) {
    x = {rng.normal(), 0.0};
    time_energy += std::norm(x);
  }
  fft(data);
  double freq_energy = 0.0;
  for (const auto& x : data) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-9);
}

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(Fft, BinFrequency) {
  EXPECT_DOUBLE_EQ(bin_frequency(0, 1024, 450.0), 0.0);
  EXPECT_DOUBLE_EQ(bin_frequency(512, 1024, 450.0), 225.0);
}

TEST(Fft, SpectralFlatnessSeparatesNoiseFromTone) {
  crypto::ChaChaRng rng(10);
  std::vector<double> noise(1024);
  for (auto& x : noise) x = rng.normal();
  std::vector<double> tone(1024);
  for (std::size_t i = 0; i < tone.size(); ++i)
    tone[i] = std::sin(2.0 * std::numbers::pi * 37.0 *
                       static_cast<double>(i) / 1024.0);
  EXPECT_GT(spectral_flatness(noise), 0.4);
  EXPECT_LT(spectral_flatness(tone), 0.01);
}

TEST(Fft, PeriodicPeakTrainHasLowFlatness) {
  // A flat periodic train of Gaussian dips (the Fig. 11d signature) is
  // spectrally peaky; randomized trains are flatter. This is the basis
  // of the periodicity leak metric.
  std::vector<double> periodic(2048, 0.0);
  for (int k = 0; k < 40; ++k) {
    const double center = 100.0 + k * 45.0;
    for (std::size_t i = 0; i < periodic.size(); ++i) {
      const double z = (static_cast<double>(i) - center) / 3.0;
      periodic[i] += std::exp(-0.5 * z * z);
    }
  }
  crypto::ChaChaRng rng(11);
  std::vector<double> randomized(2048, 0.0);
  for (int k = 0; k < 40; ++k) {
    const double center = 100.0 + rng.uniform_double() * 1800.0;
    for (std::size_t i = 0; i < randomized.size(); ++i) {
      const double z = (static_cast<double>(i) - center) / 3.0;
      randomized[i] += std::exp(-0.5 * z * z);
    }
  }
  EXPECT_LT(spectral_flatness(periodic), spectral_flatness(randomized));
}

}  // namespace
}  // namespace medsen::dsp
