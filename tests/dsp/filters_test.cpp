#include "dsp/filters.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "util/stats.h"

namespace medsen::dsp {
namespace {

std::vector<double> sine(double freq_hz, double rate_hz, std::size_t n) {
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i)
    xs[i] = std::sin(2.0 * std::numbers::pi * freq_hz *
                     static_cast<double>(i) / rate_hz);
  return xs;
}

double rms(std::span<const double> xs) {
  double acc = 0.0;
  for (double x : xs) acc += x * x;
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

TEST(SinglePoleLowPass, RejectsBadCutoff) {
  EXPECT_THROW(SinglePoleLowPass(0.0, 450.0), std::invalid_argument);
  EXPECT_THROW(SinglePoleLowPass(300.0, 450.0), std::invalid_argument);
}

TEST(SinglePoleLowPass, PassesDc) {
  SinglePoleLowPass lpf(10.0, 450.0);
  double y = 0.0;
  for (int i = 0; i < 2000; ++i) y = lpf.step(1.0);
  EXPECT_NEAR(y, 1.0, 1e-6);
}

TEST(SinglePoleLowPass, AttenuatesHighFrequency) {
  SinglePoleLowPass lpf(10.0, 4500.0);
  const auto hi = sine(1000.0, 4500.0, 8000);
  const auto out = lpf.apply(hi);
  // Skip the transient, measure steady-state RMS.
  EXPECT_LT(rms(std::span(out).subspan(4000)), 0.05 * rms(hi));
}

TEST(SinglePoleLowPass, PrimingAvoidsStartupStep) {
  SinglePoleLowPass lpf(10.0, 450.0);
  EXPECT_DOUBLE_EQ(lpf.step(5.0), 5.0);  // primed on first sample
}

TEST(SinglePoleLowPass, ResetWithInitialPrimesAtThatValue) {
  // Regression: reset(initial) used to discard its argument and leave the
  // filter unprimed, so the next step() adopted its input instead of
  // filtering from `initial`.
  SinglePoleLowPass primed(10.0, 450.0);
  primed.step(123.0);  // arbitrary history to clear
  primed.reset(2.0);

  // Equivalent construction: a fresh filter whose first (priming) sample
  // is 2.0. Every subsequent output must match bit-for-bit.
  SinglePoleLowPass fresh(10.0, 450.0);
  fresh.step(2.0);
  for (double x : {10.0, -4.0, 2.0, 0.5})
    EXPECT_DOUBLE_EQ(primed.step(x), fresh.step(x));
}

TEST(SinglePoleLowPass, ResetWithInitialFiltersNotAdopts) {
  SinglePoleLowPass lpf(10.0, 450.0);
  lpf.reset(2.0);
  const double y = lpf.step(10.0);
  // A primed filter moves only alpha of the way toward the input; the
  // old bug made this return 10.0 exactly.
  EXPECT_GT(y, 2.0);
  EXPECT_LT(y, 10.0);
  EXPECT_DOUBLE_EQ(y, 2.0 + lpf.alpha() * (10.0 - 2.0));
}

TEST(SinglePoleLowPass, ResetNoArgReturnsToUnprimed) {
  SinglePoleLowPass lpf(10.0, 450.0);
  lpf.step(3.0);
  lpf.reset();
  EXPECT_DOUBLE_EQ(lpf.step(7.0), 7.0);  // adopts input again
}

TEST(ButterworthLowPass2, PassesDc) {
  ButterworthLowPass2 lpf(120.0, 4500.0);
  double y = 0.0;
  for (int i = 0; i < 4000; ++i) y = lpf.step(1.0);
  EXPECT_NEAR(y, 1.0, 1e-6);
}

TEST(ButterworthLowPass2, SteeperThanSinglePole) {
  const double rate = 4500.0, cutoff = 50.0, test_freq = 800.0;
  const auto input = sine(test_freq, rate, 10000);
  SinglePoleLowPass sp(cutoff, rate);
  ButterworthLowPass2 bw(cutoff, rate);
  const auto out_sp = sp.apply(input);
  const auto out_bw = bw.apply(input);
  EXPECT_LT(rms(std::span(out_bw).subspan(5000)),
            rms(std::span(out_sp).subspan(5000)));
}

TEST(ButterworthLowPass2, PassbandNearlyUnity) {
  ButterworthLowPass2 lpf(120.0, 4500.0);
  const auto input = sine(5.0, 4500.0, 20000);
  const auto out = lpf.apply(input);
  EXPECT_NEAR(rms(std::span(out).subspan(10000)),
              rms(std::span(input).subspan(10000)), 0.01);
}

TEST(ButterworthLowPass2, ResetToDcIsExactSteadyState) {
  ButterworthLowPass2 lpf(120.0, 4500.0);
  lpf.step(50.0);  // arbitrary history
  lpf.reset(0.7);
  // The delay line sits at the DC fixed point: a constant input passes
  // through from the very first sample, no warm-up transient.
  for (int i = 0; i < 16; ++i) EXPECT_NEAR(lpf.step(0.7), 0.7, 1e-12);
}

TEST(ButterworthLowPass2, StepBufferMatchesStepExactly) {
  ButterworthLowPass2 scalar(120.0, 4500.0);
  ButterworthLowPass2 batch(120.0, 4500.0);
  auto xs = sine(30.0, 4500.0, 1003);  // odd length
  std::vector<double> expected(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) expected[i] = scalar.step(xs[i]);
  batch.step_buffer(xs);
  for (std::size_t i = 0; i < xs.size(); ++i)
    EXPECT_DOUBLE_EQ(xs[i], expected[i]) << i;
}

TEST(MovingAverage, SmoothsConstantPerfectly) {
  const std::vector<double> xs(100, 3.0);
  const auto out = moving_average(xs, 7);
  for (double v : out) EXPECT_NEAR(v, 3.0, 1e-12);
}

TEST(MovingAverage, WindowOneIsIdentity) {
  const std::vector<double> xs = {1.0, 5.0, 2.0};
  const auto out = moving_average(xs, 1);
  for (std::size_t i = 0; i < xs.size(); ++i)
    EXPECT_DOUBLE_EQ(out[i], xs[i]);
}

TEST(MovingAverage, CenterValueAveragesNeighbours) {
  const std::vector<double> xs = {0.0, 0.0, 9.0, 0.0, 0.0};
  const auto out = moving_average(xs, 3);
  EXPECT_NEAR(out[2], 3.0, 1e-12);
  EXPECT_NEAR(out[1], 3.0, 1e-12);
}

TEST(MovingAverage, EvenWindowThrows) {
  // A centered even kernel does not exist; the old code silently produced
  // an asymmetric (phase-shifting) filter. Pinned: even windows throw.
  const std::vector<double> xs(16, 1.0);
  EXPECT_THROW(moving_average(xs, 2), std::invalid_argument);
  EXPECT_THROW(moving_average(xs, 4), std::invalid_argument);
  EXPECT_THROW(moving_average(xs, 0), std::invalid_argument);
  EXPECT_NO_THROW(moving_average(xs, 5));
}

TEST(Decimate, KeepsEveryNth) {
  std::vector<double> xs;
  for (int i = 0; i < 20; ++i) xs.push_back(i);
  const auto out = decimate(xs, 5);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[3], 15.0);
}

TEST(Decimate, FactorZeroThrows) {
  EXPECT_THROW(decimate(std::vector<double>{1.0}, 0), std::invalid_argument);
}

TEST(Decimate, FactorOneIsCopy) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_EQ(decimate(xs, 1), xs);
}

}  // namespace
}  // namespace medsen::dsp
