#include "dsp/polyfit.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace medsen::dsp {
namespace {

TEST(Polyfit, RecoversQuadratic) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 40; ++i) {
    const double x = 0.1 * i;
    xs.push_back(x);
    ys.push_back(2.0 - 3.0 * x + 0.5 * x * x);
  }
  const Polynomial p = polyfit(xs, ys, 2);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_NEAR(p[0], 2.0, 1e-9);
  EXPECT_NEAR(p[1], -3.0, 1e-9);
  EXPECT_NEAR(p[2], 0.5, 1e-9);
}

TEST(Polyfit, IndexDomainOverload) {
  std::vector<double> ys;
  for (int i = 0; i < 10; ++i) ys.push_back(4.0 + 2.0 * i);
  const Polynomial p = polyfit(ys, 1);
  EXPECT_NEAR(p[0], 4.0, 1e-9);
  EXPECT_NEAR(p[1], 2.0, 1e-9);
}

TEST(Polyfit, SizeMismatchThrows) {
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> ys = {1.0};
  EXPECT_THROW(polyfit(xs, ys, 1), std::invalid_argument);
}

TEST(Polyfit, TooFewPointsThrows) {
  const std::vector<double> ys = {1.0, 2.0};
  EXPECT_THROW(polyfit(ys, 2), std::invalid_argument);
}

TEST(Polyfit, ExactFitThroughNPlusOnePoints) {
  const std::vector<double> xs = {0.0, 1.0, 2.0};
  const std::vector<double> ys = {1.0, 0.0, 3.0};
  const Polynomial p = polyfit(xs, ys, 2);
  for (std::size_t i = 0; i < xs.size(); ++i)
    EXPECT_NEAR(polyval(p, xs[i]), ys[i], 1e-9);
}

TEST(Polyfit, LeastSquaresBeatsAnyShift) {
  // For noisy data, the fitted polynomial should have no smaller SSE than
  // the fit itself when coefficients are perturbed.
  std::vector<double> xs, ys;
  for (int i = 0; i < 30; ++i) {
    xs.push_back(i);
    ys.push_back(1.0 + 0.1 * i + ((i % 3) - 1) * 0.05);
  }
  const Polynomial p = polyfit(xs, ys, 1);
  auto sse = [&](const Polynomial& q) {
    double acc = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double e = ys[i] - polyval(q, xs[i]);
      acc += e * e;
    }
    return acc;
  };
  const double best = sse(p);
  Polynomial shifted = p;
  shifted[0] += 0.01;
  EXPECT_LE(best, sse(shifted));
  shifted = p;
  shifted[1] -= 0.001;
  EXPECT_LE(best, sse(shifted));
}

TEST(Polyval, HornerAgainstDirect) {
  const Polynomial p = {1.0, -2.0, 3.0, 0.25};
  const double x = 1.7;
  const double direct =
      1.0 - 2.0 * x + 3.0 * x * x + 0.25 * x * x * x;
  EXPECT_NEAR(polyval(p, x), direct, 1e-12);
}

TEST(Polyval, IndicesVector) {
  const Polynomial p = {5.0, 1.0};
  const auto v = polyval_indices(p, 3);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 5.0);
  EXPECT_DOUBLE_EQ(v[2], 7.0);
}

TEST(Polyfit, Degree2FastPathMatchesReferenceBitExactly) {
  // The register-resident degree-2 accumulator must reproduce the generic
  // rolling-power-sum loop bit-for-bit — the detrend hot path dispatches
  // to it, and the golden sim outputs depend on exact equality. Sweep odd
  // and even lengths including the minimum fit size.
  for (std::size_t n : {3u, 7u, 64u, 1001u, 2048u, 9973u}) {
    std::vector<double> ys(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double x = static_cast<double>(i);
      ys[i] = 1.0 + 3e-4 * x - 2e-8 * x * x +
              0.01 * std::sin(0.37 * x) + 1e-3 * std::cos(1.9 * x);
    }
    PolyfitScratch fast, ref;
    const auto got = polyfit_indices(ys, 2, fast);
    const auto expected = polyfit_indices_reference(ys, 2, ref);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t k = 0; k < got.size(); ++k)
      EXPECT_DOUBLE_EQ(got[k], expected[k]) << "n=" << n << " coeff " << k;
  }
}

TEST(Polyfit, NonHotDegreesStillUseGenericPath) {
  // Degrees other than 2 share one code path; sanity-pin a cubic.
  std::vector<double> ys;
  for (int i = 0; i < 50; ++i) {
    const double x = static_cast<double>(i);
    ys.push_back(1.0 - 2.0 * x + 0.5 * x * x - 0.01 * x * x * x);
  }
  PolyfitScratch scratch;
  const auto c = polyfit_indices(ys, 3, scratch);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_NEAR(c[3], -0.01, 1e-9);
}

TEST(Polyval, QuadraticFastPathMatchesHornerBitExactly) {
  const Polynomial p = {1.5, -0.25, 3e-6};
  std::vector<double> out(1003);
  polyval_indices_into(p, out);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_DOUBLE_EQ(out[i], polyval(p, static_cast<double>(i))) << i;
}

}  // namespace
}  // namespace medsen::dsp
