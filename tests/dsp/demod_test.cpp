#include "dsp/demod.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <string>
#include <vector>

namespace medsen::dsp {
namespace {

TEST(Demod, RejectsNyquistViolation) {
  EXPECT_THROW(QuadratureDemodulator(60000.0, 100000.0, 100.0),
               std::invalid_argument);
  EXPECT_THROW(QuadratureDemodulator(0.0, 100000.0, 100.0),
               std::invalid_argument);
}

TEST(Demod, NyquistErrorThrownBeforeFilterValidation) {
  // Regression: the carrier check used to run in the constructor body,
  // after the low-pass members were built — with a bad cutoff AND a bad
  // carrier, callers saw the filter's error instead of the documented
  // Nyquist one.
  try {
    QuadratureDemodulator demod(60000.0, 100000.0, /*cutoff*/ 90000.0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find("Nyquist"), std::string::npos)
        << "got: " << err.what();
  }
}

TEST(Demod, RecoversConstantEnvelope) {
  const double rate = 100000.0, carrier = 10000.0;
  const std::vector<double> envelope(20000, 0.8);
  const auto modulated = modulate(envelope, carrier, rate);
  QuadratureDemodulator demod(carrier, rate, 200.0);
  const auto recovered = demod.apply(modulated);
  // Skip the filter transient, then the envelope must be flat at 0.8.
  for (std::size_t i = 5000; i < recovered.size(); ++i)
    EXPECT_NEAR(recovered[i], 0.8, 0.02) << i;
}

TEST(Demod, PhaseInsensitive) {
  const double rate = 100000.0, carrier = 10000.0;
  const std::vector<double> envelope(20000, 1.0);
  QuadratureDemodulator a(carrier, rate, 200.0), b(carrier, rate, 200.0);
  const auto out_a = a.apply(modulate(envelope, carrier, rate, 0.0));
  const auto out_b = b.apply(modulate(envelope, carrier, rate, 1.3));
  EXPECT_NEAR(out_a.back(), out_b.back(), 0.01);
}

TEST(Demod, RecoversSlowDip) {
  // A 1% dip lasting 20 ms modulated on a 10 kHz carrier — the sensing
  // scenario — must survive demodulation with its depth intact.
  const double rate = 100000.0, carrier = 10000.0;
  std::vector<double> envelope(50000, 1.0);
  for (std::size_t i = 0; i < envelope.size(); ++i) {
    const double t = static_cast<double>(i) / rate;
    const double z = (t - 0.25) / 0.008;
    envelope[i] *= 1.0 - 0.01 * std::exp(-0.5 * z * z);
  }
  QuadratureDemodulator demod(carrier, rate, 300.0);
  const auto recovered = demod.apply(modulate(envelope, carrier, rate));
  double min_v = 1.0;
  for (std::size_t i = 10000; i < recovered.size(); ++i)
    min_v = std::min(min_v, recovered[i]);
  EXPECT_NEAR(1.0 - min_v, 0.01, 0.003);
}

TEST(Demod, RejectsOffCarrierInterference) {
  // A strong tone far from the locked carrier must barely register.
  const double rate = 100000.0;
  std::vector<double> interference(30000);
  for (std::size_t i = 0; i < interference.size(); ++i)
    interference[i] =
        std::sin(2.0 * 3.14159265358979 * 23000.0 * static_cast<double>(i) /
                 rate);
  QuadratureDemodulator demod(10000.0, rate, 200.0);
  const auto out = demod.apply(interference);
  EXPECT_LT(out.back(), 0.02);
}

TEST(Demod, ResetRestartsCleanly) {
  const double rate = 100000.0, carrier = 10000.0;
  const std::vector<double> envelope(5000, 0.5);
  const auto modulated = modulate(envelope, carrier, rate);
  QuadratureDemodulator demod(carrier, rate, 500.0);
  const auto first = demod.apply(modulated);
  demod.reset();
  const auto second = demod.apply(modulated);
  for (std::size_t i = 0; i < first.size(); i += 500)
    EXPECT_DOUBLE_EQ(first[i], second[i]);
}

TEST(Demod, MultiCarrierSeparation) {
  // Two carriers with different envelopes on the same wire (frequency
  // multiplexing, as the HF2IS does with 8 carriers): each demodulator
  // recovers its own envelope.
  const double rate = 200000.0;
  const double f1 = 10000.0, f2 = 31000.0;
  std::vector<double> mixed(60000);
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    const double n = static_cast<double>(i);
    mixed[i] = 0.7 * std::sin(2.0 * 3.14159265358979 * f1 * n / rate) +
               0.3 * std::sin(2.0 * 3.14159265358979 * f2 * n / rate);
  }
  QuadratureDemodulator d1(f1, rate, 150.0), d2(f2, rate, 150.0);
  const auto out1 = d1.apply(mixed);
  const auto out2 = d2.apply(mixed);
  EXPECT_NEAR(out1.back(), 0.7, 0.02);
  EXPECT_NEAR(out2.back(), 0.3, 0.02);
}

TEST(Demod, BatchMatchesStepBitExactly) {
  // The batch kernel (block mix + step_buffer) must reproduce the scalar
  // step() reference bit-for-bit, including at odd lengths that leave a
  // partial final block.
  const double rate = 100000.0, carrier = 10000.0;
  const std::size_t n = 9973;  // odd, not a multiple of the block size
  std::vector<double> envelope(n);
  for (std::size_t i = 0; i < n; ++i)
    envelope[i] = 1.0 + 0.2 * std::sin(static_cast<double>(i) * 0.001);
  const auto xs = modulate(envelope, carrier, rate);

  QuadratureDemodulator scalar(carrier, rate, 300.0);
  QuadratureDemodulator batch(carrier, rate, 300.0);
  std::vector<double> expected(n), got(n);
  for (std::size_t i = 0; i < n; ++i) expected[i] = scalar.step(xs[i]);
  batch.demod_into(xs, got);
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(got[i], expected[i]);
}

TEST(Demod, SplitBatchesMatchOneBatchBitExactly) {
  // State must persist across demod_into calls: splitting the input at an
  // arbitrary odd boundary changes nothing.
  const double rate = 100000.0, carrier = 10000.0;
  const std::vector<double> envelope(5000, 0.9);
  const auto xs = modulate(envelope, carrier, rate);

  QuadratureDemodulator whole(carrier, rate, 300.0);
  QuadratureDemodulator split(carrier, rate, 300.0);
  std::vector<double> a(xs.size()), b(xs.size());
  whole.demod_into(xs, a);
  const std::size_t cut = 1237;
  split.demod_into(std::span(xs).first(cut), std::span(b).first(cut));
  split.demod_into(std::span(xs).subspan(cut), std::span(b).subspan(cut));
  for (std::size_t i = 0; i < xs.size(); ++i) EXPECT_DOUBLE_EQ(b[i], a[i]);
}

TEST(Demod, MultiCarrierMatchesSingleCarrierBitExactly) {
  // Each lane of the SoA kernel must equal a standalone demodulator.
  const double rate = 200000.0;
  const std::vector<double> carriers = {10000.0, 31000.0, 47000.0};
  std::vector<double> mixed(20011);  // odd length
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    const double t = static_cast<double>(i) / rate;
    mixed[i] = 0.7 * std::sin(2.0 * std::numbers::pi * carriers[0] * t) +
               0.3 * std::sin(2.0 * std::numbers::pi * carriers[1] * t) +
               0.5 * std::sin(2.0 * std::numbers::pi * carriers[2] * t);
  }
  MultiCarrierDemodulator multi(carriers, rate, 150.0);
  std::vector<double> planes(carriers.size() * mixed.size());
  multi.demod_into(mixed, planes);
  for (std::size_t c = 0; c < carriers.size(); ++c) {
    QuadratureDemodulator single(carriers[c], rate, 150.0);
    std::vector<double> expected(mixed.size());
    single.demod_into(mixed, expected);
    for (std::size_t i = 0; i < mixed.size(); ++i)
      EXPECT_DOUBLE_EQ(planes[c * mixed.size() + i], expected[i])
          << "carrier " << c << " sample " << i;
  }
}

TEST(Demod, MultiCarrierRejectsAnyNyquistViolation) {
  const std::vector<double> bad = {10000.0, 60000.0};
  EXPECT_THROW(MultiCarrierDemodulator(bad, 100000.0, 100.0),
               std::invalid_argument);
  const std::vector<double> none = {};
  EXPECT_THROW(MultiCarrierDemodulator(none, 100000.0, 100.0),
               std::invalid_argument);
}

TEST(Demod, LongStreamStaysLockedAfterTenMillionSamples) {
  // Regression for the unbounded phase accumulator: with phase tracked as
  // carrier * sample_index, the envelope drifted once the index grew
  // large. The wrapped recurrence (with periodic resync) must hold the
  // envelope at 10^7 samples. Processed in chunks to bound memory.
  const double rate = 100000.0, carrier = 10000.0;
  const std::size_t total = 10'000'000, chunk = 500'000;
  QuadratureDemodulator demod(carrier, rate, 200.0);
  const std::vector<double> envelope(chunk, 0.8);
  std::vector<double> recovered(chunk);
  const double dphi = 2.0 * std::numbers::pi * carrier / rate;
  for (std::size_t base = 0; base < total; base += chunk) {
    // Continue the carrier phase across chunks.
    const double phase =
        std::fmod(dphi * static_cast<double>(base), 2.0 * std::numbers::pi);
    const auto xs = modulate(envelope, carrier, rate, phase);
    demod.demod_into(xs, recovered);
  }
  // After 10^7 samples the envelope must still be exact to the same
  // tolerance as at the start of the stream.
  for (std::size_t i = 0; i < chunk; i += 997)
    EXPECT_NEAR(recovered[i], 0.8, 0.02) << i;
}

TEST(Demod, ModulateMatchesDirectTrig) {
  // The recurrence oscillator must track sin(2 pi f n / rate + phase)
  // to far below the signal tolerances used across the test suite.
  const double rate = 100000.0, carrier = 12345.0, phase = 0.7;
  const std::vector<double> envelope(100000, 1.0);
  const auto xs = modulate(envelope, carrier, rate, phase);
  for (std::size_t i = 0; i < xs.size(); i += 1009) {
    const double direct = std::sin(
        2.0 * std::numbers::pi * carrier * static_cast<double>(i) / rate +
        phase);
    EXPECT_NEAR(xs[i], direct, 1e-9) << i;
  }
}

}  // namespace
}  // namespace medsen::dsp
