#include "dsp/demod.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace medsen::dsp {
namespace {

TEST(Demod, RejectsNyquistViolation) {
  EXPECT_THROW(QuadratureDemodulator(60000.0, 100000.0, 100.0),
               std::invalid_argument);
  EXPECT_THROW(QuadratureDemodulator(0.0, 100000.0, 100.0),
               std::invalid_argument);
}

TEST(Demod, RecoversConstantEnvelope) {
  const double rate = 100000.0, carrier = 10000.0;
  const std::vector<double> envelope(20000, 0.8);
  const auto modulated = modulate(envelope, carrier, rate);
  QuadratureDemodulator demod(carrier, rate, 200.0);
  const auto recovered = demod.apply(modulated);
  // Skip the filter transient, then the envelope must be flat at 0.8.
  for (std::size_t i = 5000; i < recovered.size(); ++i)
    EXPECT_NEAR(recovered[i], 0.8, 0.02) << i;
}

TEST(Demod, PhaseInsensitive) {
  const double rate = 100000.0, carrier = 10000.0;
  const std::vector<double> envelope(20000, 1.0);
  QuadratureDemodulator a(carrier, rate, 200.0), b(carrier, rate, 200.0);
  const auto out_a = a.apply(modulate(envelope, carrier, rate, 0.0));
  const auto out_b = b.apply(modulate(envelope, carrier, rate, 1.3));
  EXPECT_NEAR(out_a.back(), out_b.back(), 0.01);
}

TEST(Demod, RecoversSlowDip) {
  // A 1% dip lasting 20 ms modulated on a 10 kHz carrier — the sensing
  // scenario — must survive demodulation with its depth intact.
  const double rate = 100000.0, carrier = 10000.0;
  std::vector<double> envelope(50000, 1.0);
  for (std::size_t i = 0; i < envelope.size(); ++i) {
    const double t = static_cast<double>(i) / rate;
    const double z = (t - 0.25) / 0.008;
    envelope[i] *= 1.0 - 0.01 * std::exp(-0.5 * z * z);
  }
  QuadratureDemodulator demod(carrier, rate, 300.0);
  const auto recovered = demod.apply(modulate(envelope, carrier, rate));
  double min_v = 1.0;
  for (std::size_t i = 10000; i < recovered.size(); ++i)
    min_v = std::min(min_v, recovered[i]);
  EXPECT_NEAR(1.0 - min_v, 0.01, 0.003);
}

TEST(Demod, RejectsOffCarrierInterference) {
  // A strong tone far from the locked carrier must barely register.
  const double rate = 100000.0;
  std::vector<double> interference(30000);
  for (std::size_t i = 0; i < interference.size(); ++i)
    interference[i] =
        std::sin(2.0 * 3.14159265358979 * 23000.0 * static_cast<double>(i) /
                 rate);
  QuadratureDemodulator demod(10000.0, rate, 200.0);
  const auto out = demod.apply(interference);
  EXPECT_LT(out.back(), 0.02);
}

TEST(Demod, ResetRestartsCleanly) {
  const double rate = 100000.0, carrier = 10000.0;
  const std::vector<double> envelope(5000, 0.5);
  const auto modulated = modulate(envelope, carrier, rate);
  QuadratureDemodulator demod(carrier, rate, 500.0);
  const auto first = demod.apply(modulated);
  demod.reset();
  const auto second = demod.apply(modulated);
  for (std::size_t i = 0; i < first.size(); i += 500)
    EXPECT_DOUBLE_EQ(first[i], second[i]);
}

TEST(Demod, MultiCarrierSeparation) {
  // Two carriers with different envelopes on the same wire (frequency
  // multiplexing, as the HF2IS does with 8 carriers): each demodulator
  // recovers its own envelope.
  const double rate = 200000.0;
  const double f1 = 10000.0, f2 = 31000.0;
  std::vector<double> mixed(60000);
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    const double n = static_cast<double>(i);
    mixed[i] = 0.7 * std::sin(2.0 * 3.14159265358979 * f1 * n / rate) +
               0.3 * std::sin(2.0 * 3.14159265358979 * f2 * n / rate);
  }
  QuadratureDemodulator d1(f1, rate, 150.0), d2(f2, rate, 150.0);
  const auto out1 = d1.apply(mixed);
  const auto out2 = d2.apply(mixed);
  EXPECT_NEAR(out1.back(), 0.7, 0.02);
  EXPECT_NEAR(out2.back(), 0.3, 0.02);
}

}  // namespace
}  // namespace medsen::dsp
