#include "dsp/deadtime.h"

#include <gtest/gtest.h>

#include <cmath>

#include "crypto/chacha20.h"

namespace medsen::dsp {
namespace {

TEST(DeadTime, NoCorrectionForSparseCounts) {
  // 10 peaks of 10 ms over 100 s: busy 0.1% -> negligible correction.
  EXPECT_NEAR(dead_time_corrected_count(10.0, 100.0, 0.01), 10.0, 0.02);
}

TEST(DeadTime, DegenerateInputsPassThrough) {
  EXPECT_DOUBLE_EQ(dead_time_corrected_count(0.0, 100.0, 0.01), 0.0);
  EXPECT_DOUBLE_EQ(dead_time_corrected_count(5.0, 0.0, 0.01), 5.0);
  EXPECT_DOUBLE_EQ(dead_time_corrected_count(5.0, 100.0, 0.0), 5.0);
}

TEST(DeadTime, BusyFractionClamped) {
  EXPECT_DOUBLE_EQ(busy_fraction(1e9, 1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(busy_fraction(0.0, 1.0, 1.0), 0.0);
  EXPECT_NEAR(busy_fraction(100.0, 10.0, 0.01), 0.1, 1e-12);
}

TEST(DeadTime, CorrectionFactorCapped) {
  // Busy fraction ~1 would explode; capped at 5x.
  EXPECT_DOUBLE_EQ(dead_time_corrected_count(100.0, 1.0, 1.0), 500.0);
}

TEST(DeadTime, InvertsSimulatedCoincidenceLoss) {
  // Simulate a Poisson stream where any arrival within tau of the
  // previous *detected* arrival merges (non-paralyzable detector); the
  // correction must recover the true count to a few percent.
  crypto::ChaChaRng rng(77);
  const double rate = 30.0;   // arrivals/s
  const double tau = 0.01;    // dead time
  const double duration = 200.0;
  std::size_t truth = 0, observed = 0;
  double t = 0.0, last_detected = -1.0;
  for (;;) {
    // Exponential inter-arrival times.
    t += -std::log(1.0 - rng.uniform_double()) / rate;
    if (t >= duration) break;
    ++truth;
    if (t - last_detected >= tau) {
      ++observed;
      last_detected = t;
    }
  }
  ASSERT_LT(observed, truth);  // losses actually occurred
  const double corrected = dead_time_corrected_count(
      static_cast<double>(observed), duration, tau);
  EXPECT_NEAR(corrected, static_cast<double>(truth),
              0.03 * static_cast<double>(truth));
}

class DeadTimeRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(DeadTimeRateSweep, CorrectionImprovesEstimateAtAnyRate) {
  crypto::ChaChaRng rng(static_cast<std::uint64_t>(GetParam()));
  const double rate = GetParam();
  const double tau = 0.008;
  const double duration = 150.0;
  std::size_t truth = 0, observed = 0;
  double t = 0.0, last_detected = -1.0;
  while (true) {
    t += -std::log(1.0 - rng.uniform_double()) / rate;
    if (t >= duration) break;
    ++truth;
    if (t - last_detected >= tau) {
      ++observed;
      last_detected = t;
    }
  }
  const double corrected = dead_time_corrected_count(
      static_cast<double>(observed), duration, tau);
  const double raw_error =
      std::abs(static_cast<double>(observed) - static_cast<double>(truth));
  const double corrected_error =
      std::abs(corrected - static_cast<double>(truth));
  EXPECT_LE(corrected_error, raw_error + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, DeadTimeRateSweep,
                         ::testing::Values(5.0, 15.0, 30.0, 60.0, 90.0));

}  // namespace
}  // namespace medsen::dsp
